//! Per-qubit reliability ranking — the use case behind the paper's Fig. 6:
//! "the reliability information of individual logical qubits can provide
//! significant improvements for physical qubit mapping".
//!
//! Runs a campaign on QFT-4, splits the QVF per logical qubit, and ranks
//! qubits from most to least robust.
//!
//! Run with: `cargo run --release --example qubit_ranking`

use qufi::prelude::*;
use std::f64::consts::{FRAC_PI_4, PI};

fn main() -> Result<(), ExecError> {
    let w = qft_value_encoding(4, 0b1010);
    let executor = NoisyExecutor::new(BackendCalibration::jakarta());
    let golden = golden_outputs(&w.circuit)?;
    let result = run_single_campaign(&w.circuit, &golden, &executor, &CampaignOptions::paper())?;

    println!("{}: per-qubit QVF profile", w.name);
    let mut ranking: Vec<(usize, f64, f64)> = result
        .injected_qubits()
        .into_iter()
        .map(|q| {
            let records = result.records_for_qubit(q);
            let qvfs: Vec<f64> = records.iter().map(|r| r.qvf).collect();
            // The paper reads the (φ=π, θ=π/4) cell per qubit as a probe.
            let probe_cells: Vec<f64> = records
                .iter()
                .filter(|r| (r.phi - PI).abs() < 1e-9 && (r.theta - FRAC_PI_4).abs() < 1e-9)
                .map(|r| r.qvf)
                .collect();
            (
                q,
                qufi::core::metrics::mean(&qvfs),
                qufi::core::metrics::mean(&probe_cells),
            )
        })
        .collect();
    ranking.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));

    println!(
        "{:<8} {:>10} {:>22}",
        "qubit", "mean QVF", "QVF at (φ=π, θ=π/4)"
    );
    for (q, mean_qvf, probe) in &ranking {
        println!("q{q:<7} {mean_qvf:>10.4} {probe:>22.4}");
    }
    println!(
        "\n→ map logical qubit {} to the best-calibrated physical qubit;\n  qubit {} benefits most from extra fault tolerance.",
        ranking.first().expect("nonempty").0,
        ranking.last().expect("nonempty").0
    );
    Ok(())
}
