//! Hardware-vs-simulation validation — the paper's Fig. 11: inject the four
//! gate-equivalent faults (T, S, Z, Y) into Bernstein-Vazirani on both the
//! simulated IBM-Q Jakarta hardware backend (calibration drift + 1024-shot
//! sampling) and the noise-model simulation, and confirm the two agree.
//!
//! Run with: `cargo run --release --example physical_vs_sim`

use qufi::prelude::*;

fn main() -> Result<(), ExecError> {
    let w = bernstein_vazirani(0b101, 3);
    let golden = golden_outputs(&w.circuit)?;
    let cal = BackendCalibration::jakarta();
    let hardware = HardwareExecutor::new(cal.clone(), 2026);
    let simulation = NoisyExecutor::new(cal);

    println!(
        "{:<6} {:>12} {:>12} {:>8}",
        "gate", "hardware", "simulation", "|Δ|"
    );
    let mut max_diff = 0.0f64;
    for gate in [Gate::T, Gate::S, Gate::Z, Gate::Y] {
        let (theta, phi) = gate.as_fault_shift().expect("gate-equivalent fault");
        let grid = FaultGrid::custom(vec![theta], vec![phi]);
        let opts = CampaignOptions {
            grid,
            points: None,
            threads: 0,
            naive: false,
        };
        let hw = run_single_campaign(&w.circuit, &golden, &hardware, &opts)?.mean_qvf();
        let sim = run_single_campaign(&w.circuit, &golden, &simulation, &opts)?.mean_qvf();
        let diff = (hw - sim).abs();
        max_diff = max_diff.max(diff);
        println!("{:<6} {hw:>12.4} {sim:>12.4} {diff:>8.4}", gate.name());
    }
    println!("\nmax |Δ| = {max_diff:.4} — the paper reports < 0.052 (§V-E),");
    println!("so noise-model simulation is a sound stand-in for hardware runs.");
    Ok(())
}
