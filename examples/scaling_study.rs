//! Circuit-scaling study — the paper's Fig. 7 analysis: does growing a
//! circuit from 4 to 6 qubits change its fault-propagation profile?
//!
//! BV and DJ keep their QVF distribution as they scale; QFT's distribution
//! concentrates around 0.5, meaning ever more faults make the output
//! dubious. (This example stops at 6 qubits to stay fast; the `fig7` binary
//! runs the full 4→7 sweep.)
//!
//! Run with: `cargo run --release --example scaling_study`

use qufi::prelude::*;

fn main() -> Result<(), ExecError> {
    let executor = NoisyExecutor::new(BackendCalibration::jakarta());
    // 45°-step grid keeps this example snappy; the shape conclusions match
    // the full 15° sweep.
    let options = CampaignOptions::coarse();

    for family in ["bv", "dj", "qft"] {
        println!("\n[{family}]");
        println!("{:>6} {:>10} {:>9} {:>9}", "qubits", "faults", "mean", "σ");
        let mut sigmas = Vec::new();
        for w in scaling_family(family, 6) {
            let golden = golden_outputs(&w.circuit)?;
            let res = run_single_campaign(&w.circuit, &golden, &executor, &options)?;
            println!(
                "{:>6} {:>10} {:>9.4} {:>9.4}",
                w.circuit.num_qubits(),
                res.len(),
                res.mean_qvf(),
                res.stddev_qvf()
            );
            sigmas.push(res.stddev_qvf());
        }
        let trend = sigmas.last().expect("rows") - sigmas.first().expect("rows");
        println!(
            "  σ trend 4q→6q: {trend:+.4} — {}",
            if trend < -0.01 {
                "distribution concentrating (scale-dependent reliability)"
            } else {
                "profile approximately scale-independent"
            }
        );
    }
    Ok(())
}
