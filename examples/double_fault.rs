//! Multi-qubit faults — the paper's §V-D study: a particle strike hits two
//! physically adjacent qubits, the closer one harder. Compares single- vs
//! double-fault QVF on Bernstein-Vazirani.
//!
//! Run with: `cargo run --release --example double_fault`

use qufi::prelude::*;

fn main() -> Result<(), ExecError> {
    let w = bernstein_vazirani(0b101, 3);
    let executor = NoisyExecutor::new(BackendCalibration::jakarta());
    let golden = golden_outputs(&w.circuit)?;

    // Which logical qubits end up physically adjacent? (paper §IV-C)
    let pairs = qufi::core::double::neighbor_pairs(&w.circuit, executor.transpiler())?;
    println!("physically adjacent logical pairs after transpiling: {pairs:?}");

    // Coarse grids keep the example interactive.
    let grid = FaultGrid::coarse();
    let single = run_single_campaign(
        &w.circuit,
        &golden,
        &executor,
        &CampaignOptions {
            grid: grid.clone(),
            points: None,
            threads: 0,
            naive: false,
        },
    )?;
    let double = run_double_campaign(
        &w.circuit,
        &golden,
        &executor,
        &DoubleOptions {
            grid,
            points: None,
            pairs,
            threads: 0,
            naive: false,
        },
    )?;

    println!(
        "single faults: {:>7} injections, mean QVF {:.4} (σ {:.4})",
        single.len(),
        single.mean_qvf(),
        single.stddev_qvf()
    );
    println!(
        "double faults: {:>7} injections, mean QVF {:.4} (σ {:.4})",
        double.len(),
        double.mean_qvf(),
        double.stddev_qvf()
    );
    println!(
        "ΔQVF = {:+.4} → double faults are {} harmful",
        double.mean_qvf() - single.mean_qvf(),
        if double.mean_qvf() > single.mean_qvf() {
            "more"
        } else {
            "not more"
        }
    );

    println!("\nQVF distribution (single vs double):");
    let hs = Histogram::new(&single.qvfs(), 10);
    let hd = Histogram::new(&double.qvfs(), 10);
    println!("single:\n{}", hs.ascii());
    println!("double:\n{}", hd.ascii());
    Ok(())
}
