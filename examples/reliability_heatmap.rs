//! Circuit-reliability heatmap: a full single-fault campaign over the QFT
//! and an ASCII rendering of the resulting (φ, θ) QVF map — the analysis of
//! the paper's Fig. 5.
//!
//! Run with: `cargo run --release --example reliability_heatmap`

use qufi::prelude::*;

fn main() -> Result<(), ExecError> {
    let w = qft_value_encoding(4, 0b1010);
    let executor = NoisyExecutor::new(BackendCalibration::jakarta());
    let golden = golden_outputs(&w.circuit)?;

    // The paper's 312-configuration grid over every injection point.
    let options = CampaignOptions::paper();
    let result = run_single_campaign(&w.circuit, &golden, &executor, &options)?;

    println!(
        "{}: {} injections across {} fault sites",
        w.name,
        result.len(),
        enumerate_injection_points(&w.circuit).len()
    );
    println!(
        "mean QVF {:.4} (σ {:.4}), baseline (fault-free, noisy) {:.4}",
        result.mean_qvf(),
        result.stddev_qvf(),
        result.baseline_qvf
    );
    let (masked, dubious, sdc) = result.severity_counts();
    println!("masked {masked}, dubious {dubious}, SDC {sdc}");
    println!(
        "injections that improved on the baseline: {:.2}%",
        100.0 * result.improved_fraction()
    );

    let heatmap = Heatmap::from_campaign(&result);
    println!("\nQVF heatmap ('.' masked, 'o' dubious, '#' SDC):");
    print!("{}", heatmap.ascii());
    Ok(())
}
