//! Quickstart: inject one fault into Bernstein-Vazirani and read the QVF.
//!
//! Reproduces the paper's Fig. 4 worked example: a θ=π/4 phase-shift fault
//! on qubit 0 right after its first Hadamard, executed over the IBM-Q-like
//! Jakarta noise model.
//!
//! Run with: `cargo run --release --example quickstart`

use qufi::prelude::*;
use std::f64::consts::FRAC_PI_4;

fn main() -> Result<(), ExecError> {
    // 1. A workload: the 4-qubit Bernstein-Vazirani circuit, secret 101.
    let w = bernstein_vazirani(0b101, 3);
    println!("{}", w.circuit);

    // 2. An executor: noisy density-matrix simulation of a synthetic
    //    IBM Jakarta device (transpilation included).
    let executor = NoisyExecutor::new(BackendCalibration::jakarta());

    // 3. The fault-free reference.
    let clean = executor.execute(&w.circuit)?;
    println!("fault-free output:");
    for (bits, p) in clean.iter_nonzero() {
        if p > 0.005 {
            println!("  |{bits}⟩  {p:.3}");
        }
    }

    // 4. Inject U(π/4, 0, 0) after the first gate touching qubit 0.
    let point = enumerate_injection_points(&w.circuit)
        .into_iter()
        .find(|p| p.qubit == 0)
        .expect("qubit 0 has gates");
    let faulty_circuit =
        inject_fault(&w.circuit, point, FaultParams::shift(FRAC_PI_4, 0.0)).expect("in range");
    let faulty = executor.execute(&faulty_circuit)?;
    println!("faulty output (θ=π/4 on q0 after op {}):", point.op_index);
    for (bits, p) in faulty.iter_nonzero() {
        if p > 0.005 {
            println!("  |{bits}⟩  {p:.3}");
        }
    }

    // 5. Score both with the Quantum Vulnerability Factor.
    let golden = golden_outputs(&w.circuit)?;
    let qvf_clean = qvf_from_dist(&clean, &golden);
    let qvf_faulty = qvf_from_dist(&faulty, &golden);
    println!(
        "QVF fault-free: {qvf_clean:.4} ({:?})",
        Severity::classify(qvf_clean)
    );
    println!(
        "QVF faulty:     {qvf_faulty:.4} ({:?})",
        Severity::classify(qvf_faulty)
    );
    Ok(())
}
