use qufi::core::engine::SweepExecutor;
use qufi::prelude::*;
use std::time::Instant;

fn main() {
    let w = qufi::algos::build_workload("bv-4").unwrap();
    let ex = NoisyExecutor::new(BackendCalibration::jakarta());
    let points = enumerate_injection_points(&w.circuit);
    let point = points[points.len() / 2];
    let prepared = ex.prepare(&w.circuit, point).unwrap();
    println!(
        "prefix_gates={} suffix_gates={}",
        prepared.prefix_gates(),
        prepared.suffix_gates()
    );
    let grid = FaultGrid::paper();
    // serial replays with reused scratch via replay_grid(1)
    let t = Instant::now();
    let cells = prepared.replay_grid(&grid, 1).unwrap();
    println!(
        "replay_grid t1: {:?} for {} cells -> {:?}/cell",
        t.elapsed(),
        cells.len(),
        t.elapsed() / cells.len() as u32
    );
    // fresh-scratch replays
    let t = Instant::now();
    for (theta, phi) in grid.iter() {
        let _ = prepared.replay(FaultParams::shift(theta, phi)).unwrap();
    }
    println!("replay fresh: {:?}", t.elapsed());
}
