//! Quantum error correction vs transient faults — the paper's §II-B/§II-C
//! discussion made concrete: "QEC is designed to protect a qubit from the
//! intrinsic noise … current QEC is not sufficient to guarantee reliability
//! from transient faults."
//!
//! Sweeps the QuFI fault grid over the idle window of the 3-qubit bit-flip
//! code and an unprotected reference qubit, then reports how many faults
//! each masks. The code wins against θ (bit-flip-like) shifts but buys
//! nothing against the φ (phase) component — exactly why transient faults
//! need their own analysis.
//!
//! Run with: `cargo run --release --example qec_resilience`

use qufi::algos::qec::{bit_flip_code, unprotected, CodeWorkload};
use qufi::prelude::*;

fn campaign_on_window(code: &CodeWorkload, ex: &impl SweepExecutor) -> CampaignResult {
    // Inject only inside the idle window between encode and decode.
    let points: Vec<InjectionPoint> = enumerate_injection_points(&code.workload.circuit)
        .into_iter()
        .filter(|p| p.op_index >= code.region.start && p.op_index < code.region.end)
        .collect();
    let opts = CampaignOptions {
        grid: FaultGrid::paper(),
        points: Some(points),
        threads: 0,
        naive: false,
    };
    run_single_campaign(
        &code.workload.circuit,
        &code.workload.correct_outputs,
        ex,
        &opts,
    )
    .expect("campaign")
}

/// The bit-flip code protecting a **superposed** logical state
/// `(|0_L⟩ + |1_L⟩)/√2`, where phase faults become logical errors.
fn superposed_bit_flip_code() -> CodeWorkload {
    use qufi::algos::qec::CodeRegion;
    let mut qc = QuantumCircuit::with_name(3, 1, "bitflip-super");
    qc.h(0);
    qc.cx(0, 1).cx(0, 2);
    qc.barrier(&[]);
    let start = qc.size();
    qc.i(0).i(1).i(2);
    let end = qc.size();
    qc.barrier(&[]);
    qc.cx(0, 1).cx(0, 2).ccx(2, 1, 0);
    qc.h(0); // rotate back: fault-free outcome is |0⟩
    qc.measure(0, 0);
    CodeWorkload {
        workload: Workload::new(qc, vec![0], "bitflip-super"),
        region: CodeRegion { start, end },
    }
}

fn main() {
    let ex = IdealExecutor; // isolate the fault effect from device noise
    let rows = [
        ("code, |1_L⟩", campaign_on_window(&bit_flip_code(true), &ex)),
        (
            "code, |+_L⟩",
            campaign_on_window(&superposed_bit_flip_code(), &ex),
        ),
        ("unprotected", campaign_on_window(&unprotected(true), &ex)),
    ];

    println!("3-qubit bit-flip code vs unprotected qubit, full QuFI grid\n");
    println!(
        "{:<14} {:>10} {:>9} {:>8} {:>8} {:>8}",
        "circuit", "injections", "meanQVF", "masked", "dubious", "sdc"
    );
    for (name, res) in &rows {
        let (m, d, s) = res.severity_counts();
        println!(
            "{:<14} {:>10} {:>9.4} {:>8} {:>8} {:>8}",
            name,
            res.len(),
            res.mean_qvf(),
            m,
            d,
            s
        );
    }

    // Split by fault flavour: pure-θ faults (bit-flip-like) vs pure-φ
    // (phase) faults.
    let flavor_mean = |res: &CampaignResult, theta: bool| -> f64 {
        let vals: Vec<f64> = res
            .records
            .iter()
            .filter(|r| {
                if theta {
                    r.phi.abs() < 1e-9
                } else {
                    r.theta.abs() < 1e-9
                }
            })
            .map(|r| r.qvf)
            .collect();
        qufi::core::metrics::mean(&vals)
    };
    let at = |res: &CampaignResult, theta: f64, phi: f64| -> f64 {
        let vals: Vec<f64> = res
            .records
            .iter()
            .filter(|r| (r.theta - theta).abs() < 1e-9 && (r.phi - phi).abs() < 1e-9)
            .map(|r| r.qvf)
            .collect();
        qufi::core::metrics::mean(&vals)
    };
    println!("\nmean QVF by fault flavour:");
    println!(
        "{:<14} {:>10} {:>10} {:>10} {:>10}",
        "circuit", "θ (mean)", "θ=π exact", "φ (mean)", "φ=π exact"
    );
    for (name, res) in &rows {
        println!(
            "{:<14} {:>10.4} {:>10.4} {:>10.4} {:>10.4}",
            name,
            flavor_mean(res, true),
            at(res, std::f64::consts::PI, 0.0),
            flavor_mean(res, false),
            at(res, 0.0, std::f64::consts::PI),
        );
    }
    println!(
        "\n→ on basis states the code masks the entire grid. On a superposed\n  \
         logical state it fails across the board: the fault model's θ=π is\n  \
         U(π,0,0) = −iY, whose phase component turns into a logical error\n  \
         the bit-flip stabilizers cannot see, mid-range θ rotations decohere\n  \
         into logical phase errors, and pure φ shifts pass straight through.\n  \
         QEC tuned to one fault model does not cover the radiation-induced\n  \
         phase-shift spectrum (paper §II-B)."
    );
}
