//! Offline shim for the `proptest` crate: the strategy combinators and
//! macros the workspace's property tests use, driving randomized (but
//! per-test deterministic) inputs through test bodies. No shrinking, no
//! failure persistence — a failing property panics with the failed
//! assertion and the case number so it can be reproduced (the generator
//! is seeded from the test name). See `vendor/README.md`.

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A source of random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Discards values failing `f`, resampling (bounded retries).
        fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                whence,
                f,
            }
        }

        /// Type-erases the strategy for heterogeneous collections.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A heap-allocated, type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;

        fn new_value(&self, rng: &mut TestRng) -> V {
            (**self).new_value(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Clone)]
    pub struct Filter<S, F> {
        inner: S,
        whence: &'static str,
        f: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;

        fn new_value(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1_000 {
                let candidate = self.inner.new_value(rng);
                if (self.f)(&candidate) {
                    return candidate;
                }
            }
            panic!(
                "prop_filter {:?} rejected 1000 consecutive samples",
                self.whence
            );
        }
    }

    /// Always yields a clone of one value.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<V: Clone>(pub V);

    impl<V: Clone> Strategy for Just<V> {
        type Value = V;

        fn new_value(&self, _rng: &mut TestRng) -> V {
            self.0.clone()
        }
    }

    /// Uniform choice between type-erased strategies (`prop_oneof!`).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Builds a union of equally-likely options.
        ///
        /// # Panics
        ///
        /// Panics if `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn new_value(&self, rng: &mut TestRng) -> V {
            let idx = rng.gen_index(self.options.len());
            self.options[idx].new_value(rng)
        }
    }

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;

        fn new_value(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty f64 range");
            self.start + rng.gen_f64() * (self.end - self.start)
        }
    }

    impl Strategy for core::ops::RangeInclusive<f64> {
        type Value = f64;

        fn new_value(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty f64 range");
            // Stretch slightly past `hi` so the endpoint is reachable.
            let x = lo + rng.gen_f64() * (hi - lo) * (1.0 + 1e-12);
            x.min(hi)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer range");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.gen_index_u64(span) as $t)
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty integer range");
                    let span = (hi - lo) as u64 + 1;
                    lo + (rng.gen_index_u64(span) as $t)
                }
            }
        )*};
    }

    int_range_strategy!(usize, u64, u32, u8);

    /// Uniformly random `bool` (backs `any::<bool>()`).
    #[derive(Clone, Copy, Debug, Default)]
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;

        fn new_value(&self, rng: &mut TestRng) -> bool {
            rng.gen_index(2) == 1
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.new_value(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0);
        (A.0, B.1);
        (A.0, B.1, C.2);
        (A.0, B.1, C.2, D.3);
        (A.0, B.1, C.2, D.3, E.4);
        (A.0, B.1, C.2, D.3, E.4, F.5);
    }
}

pub mod arbitrary {
    use crate::strategy::AnyBool;

    /// Types with a canonical strategy (`any::<T>()`). Only the types the
    /// workspace samples are implemented.
    pub trait Arbitrary {
        /// The canonical strategy type.
        type Strategy: crate::strategy::Strategy<Value = Self>;

        /// The canonical strategy value.
        fn arbitrary() -> Self::Strategy;
    }

    impl Arbitrary for bool {
        type Strategy = AnyBool;

        fn arbitrary() -> AnyBool {
            AnyBool
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }
}

/// Nested module mirroring `proptest::prop::...` paths.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Sizes accepted by [`vec`]: a fixed length or a length range.
        pub trait SizeRange {
            /// Draws a concrete length.
            fn pick(&self, rng: &mut TestRng) -> usize;
        }

        impl SizeRange for usize {
            fn pick(&self, _rng: &mut TestRng) -> usize {
                *self
            }
        }

        impl SizeRange for core::ops::Range<usize> {
            fn pick(&self, rng: &mut TestRng) -> usize {
                assert!(self.start < self.end, "empty size range");
                self.start + rng.gen_index(self.end - self.start)
            }
        }

        impl SizeRange for core::ops::RangeInclusive<usize> {
            fn pick(&self, rng: &mut TestRng) -> usize {
                self.start() + rng.gen_index(self.end() - self.start() + 1)
            }
        }

        /// Vectors of values from `element`, sized by `size`.
        pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
            VecStrategy { element, size }
        }

        /// See [`vec`].
        pub struct VecStrategy<S, Z> {
            element: S,
            size: Z,
        }

        impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
            type Value = Vec<S::Value>;

            fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.size.pick(rng);
                (0..n).map(|_| self.element.new_value(rng)).collect()
            }
        }
    }
}

pub mod test_runner {
    use crate::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::{Rng as _, SeedableRng as _};

    /// Per-property configuration (only `cases` is honored).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` successful cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Why a test case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is not counted.
        Reject(String),
        /// `prop_assert!` failed; the property is falsified.
        Fail(String),
    }

    /// The generator handed to strategies. Deterministic per property
    /// name: re-running a failed test reproduces the same cases.
    pub struct TestRng {
        inner: SmallRng,
    }

    impl TestRng {
        fn from_name(name: &str) -> Self {
            // FNV-1a over the property name.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng {
                inner: SmallRng::seed_from_u64(h),
            }
        }

        /// Uniform in `[0, 1)`.
        pub fn gen_f64(&mut self) -> f64 {
            self.inner.gen::<f64>()
        }

        /// Uniform in `[0, bound)`.
        pub fn gen_index(&mut self, bound: usize) -> usize {
            self.inner.gen_index(bound)
        }

        /// Uniform in `[0, bound)` over `u64`.
        pub fn gen_index_u64(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "empty range");
            self.inner.gen::<u64>() % bound
        }
    }

    /// Drives one property: samples `strategy`, feeds the test body,
    /// counts successes until `config.cases`, and panics on the first
    /// falsified case. Rejections (`prop_assume!`) are retried up to
    /// `cases × 100` times.
    ///
    /// # Panics
    ///
    /// Panics when the property is falsified or rejection-starved.
    pub fn run_property<S, F>(name: &str, config: &ProptestConfig, strategy: &S, mut test: F)
    where
        S: Strategy,
        F: FnMut(S::Value) -> Result<(), TestCaseError>,
    {
        let mut rng = TestRng::from_name(name);
        let mut passed: u32 = 0;
        let mut rejected: u64 = 0;
        let max_rejects = config.cases as u64 * 100;
        let mut case: u64 = 0;
        while passed < config.cases {
            case += 1;
            let value = strategy.new_value(&mut rng);
            match test(value) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    assert!(
                        rejected <= max_rejects,
                        "property {name}: too many prop_assume! rejections \
                         ({rejected} after {passed} passes)"
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("property {name} falsified at case #{case}: {msg}")
                }
            }
        }
    }
}

/// One-stop imports mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Declares property tests. Supports the upstream form with an optional
/// leading `#![proptest_config(...)]` attribute and `pat in strategy`
/// argument lists.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let strategy = ($($strat,)+);
                $crate::test_runner::run_property(
                    stringify!($name),
                    &config,
                    &strategy,
                    |($($pat,)+)| {
                        $body
                        ::core::result::Result::Ok(())
                    },
                );
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($pat in $strat),+) $body
            )*
        }
    };
}

/// Uniform choice between strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(Box::new($strat) as $crate::strategy::BoxedStrategy<_>,)+
        ])
    };
}

/// Asserts a property-test condition, failing the case (not the process)
/// so the runner can report the case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// `prop_assert!(a == b)` with value reporting.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} != {:?}", a, b);
    }};
}

/// `prop_assert!(a != b)` with value reporting.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: both sides are {:?}", a);
    }};
}

/// Rejects the current case without failing the property.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in -2.0f64..3.0, n in 1usize..10) {
            prop_assert!((-2.0..3.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn filters_and_assume_work(
            (a, b) in (0usize..10, 0usize..10).prop_filter("distinct", |(a, b)| a != b),
            flag in any::<bool>(),
        ) {
            prop_assume!(a + b > 0);
            prop_assert!(a != b);
            let _ = flag;
        }

        #[test]
        fn oneof_maps_and_vecs(
            v in prop::collection::vec(prop_oneof![Just(1usize), 2usize..5], 3),
            w in prop::collection::vec(0.0f64..1.0, 1..4),
        ) {
            prop_assert_eq!(v.len(), 3);
            prop_assert!(!w.is_empty() && w.len() < 4);
            for x in v {
                prop_assert!((1usize..5).contains(&x));
            }
        }
    }

    #[test]
    #[should_panic(expected = "falsified")]
    fn failing_property_panics() {
        use crate::test_runner::{run_property, ProptestConfig, TestCaseError};
        run_property(
            "always_fails",
            &ProptestConfig::with_cases(4),
            &(0usize..3),
            |_| Err(TestCaseError::Fail("nope".into())),
        );
    }
}
