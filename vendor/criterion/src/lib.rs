//! Offline shim for the `criterion` crate: the macro entry points and
//! the `Criterion`/`BenchmarkGroup`/`Bencher` API the workspace benches
//! use. Reports wall-clock mean ns/iter on stdout; `--test` (as passed
//! by `cargo bench -- --test`) runs every benchmark body exactly once as
//! a smoke test. See `vendor/README.md`.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Minimum measured iterations per benchmark in timing mode.
const MIN_ITERS: u64 = 10;
/// Wall-clock budget per benchmark in timing mode.
const TIME_BUDGET: Duration = Duration::from_millis(300);

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            test_mode: false,
            filter: None,
        }
    }
}

impl Criterion {
    /// Sets the target number of timed samples (builder style, as used in
    /// `criterion_group!` config expressions).
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Applies command-line arguments: `--test` switches to run-once
    /// smoke mode; the first free-standing argument filters benchmarks by
    /// substring. Harness flags (`--bench`, `--quiet`, …) are ignored.
    pub fn configure_from_args(&mut self) {
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--test" => self.test_mode = true,
                "--profile-time" | "--save-baseline" | "--baseline" | "--load-baseline"
                | "--measurement-time" | "--warm-up-time" => {
                    let _ = args.next();
                }
                a if a.starts_with("--") => {}
                a => self.filter = Some(a.to_string()),
            }
        }
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let sample_size = self.sample_size;
        self.run_one(&id, sample_size, f);
        self
    }

    fn run_one(&self, id: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            test_mode: self.test_mode,
            sample_size,
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        if self.test_mode {
            println!("test {id} ... ok");
        } else if bencher.iters > 0 {
            let per_iter = bencher.elapsed.as_nanos() as f64 / bencher.iters as f64;
            println!(
                "{id:<50} {per_iter:>14.1} ns/iter ({} iters)",
                bencher.iters
            );
        } else {
            println!("{id:<50} (no measurement)");
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample size for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        self.criterion.run_one(&full, sample_size, f);
        self
    }

    /// Ends the group (reporting is incremental, so this is a no-op).
    pub fn finish(self) {}
}

/// How batched inputs are grouped (accepted for API compatibility; the
/// shim re-runs setup per iteration in all cases).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Passed to each benchmark body; runs and times the routine.
pub struct Bencher {
    test_mode: bool,
    sample_size: usize,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    fn plan(&self) -> u64 {
        if self.test_mode {
            1
        } else {
            self.sample_size.max(MIN_ITERS as usize) as u64
        }
    }

    /// Times repeated calls of `routine`.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let planned = self.plan();
        if !self.test_mode {
            black_box(routine()); // warm-up, untimed
        }
        let start = Instant::now();
        let mut done = 0;
        while done < planned {
            black_box(routine());
            done += 1;
            if !self.test_mode && done >= MIN_ITERS && start.elapsed() > TIME_BUDGET {
                break;
            }
        }
        self.iters += done;
        self.elapsed += start.elapsed();
    }

    /// Times `routine` over inputs built by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let planned = self.plan();
        if !self.test_mode {
            black_box(routine(setup())); // warm-up, untimed
        }
        let mut done = 0;
        while done < planned {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
            done += 1;
            if !self.test_mode && done >= MIN_ITERS && self.elapsed > TIME_BUDGET {
                break;
            }
        }
        self.iters += done;
    }
}

/// Declares a benchmark group function (both upstream forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            criterion.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(10);
        group.bench_function("iter", |b| b.iter(|| 1 + 1));
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
        c.bench_function("standalone", |b| b.iter(|| black_box(2) * 2));
    }

    #[test]
    fn bench_bodies_run_in_test_mode() {
        let mut c = Criterion {
            test_mode: true,
            ..Criterion::default()
        };
        smoke(&mut c);
    }

    #[test]
    fn timing_mode_measures() {
        let mut c = Criterion::default().sample_size(10);
        c.bench_function("count", |b| b.iter(|| (0..100).sum::<u64>()));
    }
}
