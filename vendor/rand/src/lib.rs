//! Offline shim for the `rand` crate (0.8 API surface): the [`Rng`] and
//! [`SeedableRng`] traits plus [`rngs::SmallRng`], a xoshiro256++
//! generator seeded through SplitMix64. The statistical quality matches
//! upstream's `SmallRng`; the exact stream per seed does not (nothing in
//! this workspace asserts specific sampled values). See
//! `vendor/README.md`.

/// Low-level source of randomness.
pub trait RngCore {
    /// The next 64 uniformly-random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly-random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable from uniform bits (the shim's stand-in for
/// `Standard: Distribution<T>`).
pub trait Standard: Sized {
    /// Draws one uniformly-distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a uniformly-distributed value of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.gen::<f64>() < p
    }

    /// Uniform integer in `[0, bound)` (Lemire's method would be
    /// overkill here; modulo bias is negligible for the bounds used).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    fn gen_index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "empty range");
        (self.next_u64() % bound as u64) as usize
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of reproducible generators from small seeds.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed via SplitMix64 expansion.
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds a generator seeded from the system clock and a counter —
    /// *not* cryptographic, mirrors `SmallRng::from_entropy` in spirit.
    fn from_entropy() -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::time::{SystemTime, UNIX_EPOCH};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        Self::seed_from_u64(nanos ^ COUNTER.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed))
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Small, fast generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ — the same algorithm family upstream `SmallRng` uses
    /// on 64-bit targets.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // An all-zero state would be a fixed point; SplitMix64 cannot
            // produce four zeros from any seed, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.03);
    }

    #[test]
    fn works_through_dyn_and_mut_refs() {
        fn takes_unsized<R: super::Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen::<f64>()
        }
        let mut rng = SmallRng::seed_from_u64(1);
        let _ = takes_unsized(&mut rng);
        let _ = super::Rng::gen::<u64>(&mut rng);
    }
}
