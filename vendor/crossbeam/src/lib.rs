//! Offline shim for the `crossbeam` crate: the `channel::unbounded`
//! MPMC channel with cloneable senders *and* receivers, built on a
//! mutex-protected queue and a condvar. See `vendor/README.md`.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// The sending half; cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; cloneable (work-stealing consumers).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`]; carries the unsent value.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    impl<T> Sender<T> {
        /// Enqueues `value`. The unbounded queue cannot reject it.
        #[allow(clippy::result_large_err)]
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            queue.push_back(value);
            drop(queue);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::SeqCst);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if let Some(value) = queue.pop_front() {
                    return Ok(value);
                }
                if self.shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                queue = self
                    .shared
                    .ready
                    .wait(queue)
                    .unwrap_or_else(|p| p.into_inner());
            }
        }

        /// Pops a value without blocking; `None` when the queue is empty.
        pub fn try_recv(&self) -> Option<T> {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .pop_front()
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn fifo_single_thread() {
        let (tx, rx) = channel::unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert!(rx.recv().is_err());
    }

    #[test]
    fn multi_consumer_drains_everything() {
        let (tx, rx) = channel::unbounded();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let total = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let rx = rx.clone();
                let total = &total;
                s.spawn(move || {
                    while let Ok(v) = rx.recv() {
                        total.fetch_add(v, std::sync::atomic::Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(total.into_inner(), (0..100).sum());
    }

    #[test]
    fn recv_unblocks_on_disconnect() {
        let (tx, rx) = channel::unbounded::<u8>();
        let handle = std::thread::spawn(move || rx.recv());
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(tx);
        assert!(handle.join().unwrap().is_err());
    }
}
