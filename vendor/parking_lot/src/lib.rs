//! Offline shim for the `parking_lot` crate: a `Mutex` whose `lock()`
//! returns the guard directly (no `Result`), implemented over
//! `std::sync::Mutex` with poisoning ignored. See `vendor/README.md`.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion primitive with `parking_lot`'s panic-free API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self
                .inner
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner()),
        }
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_lock() {
            Ok(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            Err(_) => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn shared_across_threads() {
        let m = Mutex::new(0usize);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(m.into_inner(), 4000);
    }
}
