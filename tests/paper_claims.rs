//! The paper's headline experimental claims, encoded as integration tests.
//! Each test cites the section of the paper it reproduces. These run on
//! coarse grids so the suite stays fast; the `fig*` binaries confirm the
//! same claims on the full 15° grids.

use qufi::prelude::*;
use std::f64::consts::PI;

fn noisy() -> NoisyExecutor {
    NoisyExecutor::new(BackendCalibration::jakarta())
}

fn campaign(w: &Workload, ex: &impl SweepExecutor, grid: FaultGrid) -> CampaignResult {
    let opts = CampaignOptions {
        grid,
        points: None,
        threads: 0,
        naive: false,
    };
    run_single_campaign(&w.circuit, &w.correct_outputs, ex, &opts).expect("campaign")
}

/// §V-B: "a shift in θ … is indeed more critical than a shift in φ".
#[test]
fn theta_shifts_are_more_critical_than_phi_shifts() {
    let ex = noisy();
    for w in qufi::algos::paper_workloads(4) {
        // Pure θ=π vs pure φ=π faults across all positions.
        let theta_only = campaign(&w, &ex, FaultGrid::custom(vec![PI], vec![0.0]));
        let phi_only = campaign(&w, &ex, FaultGrid::custom(vec![0.0], vec![PI]));
        assert!(
            theta_only.mean_qvf() > phi_only.mean_qvf(),
            "{}: θ-fault QVF {:.3} should exceed φ-fault QVF {:.3}",
            w.name,
            theta_only.mean_qvf(),
            phi_only.mean_qvf()
        );
    }
}

/// §V-B: "the QVF, for Bernstein-Vazirani and Deutsch-Jozsa, is almost
/// symmetric on φ with respect to π".
#[test]
fn bv_and_dj_are_phi_symmetric_about_pi() {
    let ex = noisy();
    let phis: Vec<f64> = vec![PI / 4.0, 7.0 * PI / 4.0, PI / 2.0, 3.0 * PI / 2.0];
    let thetas: Vec<f64> = vec![0.0, PI / 2.0, PI];
    for w in &qufi::algos::paper_workloads(4)[..2] {
        let res = campaign(w, &ex, FaultGrid::custom(thetas.clone(), phis.clone()));
        let hm = Heatmap::from_campaign(&res);
        // φ and 2π−φ cells must be close.
        for (lo, hi) in [(0usize, 1usize), (2, 3)] {
            for ti in 0..thetas.len() {
                let a = hm.value(lo, ti);
                let b = hm.value(hi, ti);
                assert!(
                    (a - b).abs() < 0.06,
                    "{}: asymmetry at θ idx {ti}: {a:.3} vs {b:.3}",
                    w.name
                );
            }
        }
    }
}

/// §V-B: "a fault of (φ = π, θ = π) is critical for QFT, but is harmless
/// for Bernstein-Vazirani and Deutsch-Jozsa".
#[test]
fn pi_pi_fault_is_circuit_dependent() {
    let ex = noisy();
    let grid = FaultGrid::custom(vec![PI], vec![PI]);
    let ws = qufi::algos::paper_workloads(4);
    let bv = campaign(&ws[0], &ex, grid.clone()).mean_qvf();
    let dj = campaign(&ws[1], &ex, grid.clone()).mean_qvf();
    let qft = campaign(&ws[2], &ex, grid).mean_qvf();
    assert!(bv < 0.45, "(π,π) should be masked on BV, got {bv:.3}");
    assert!(dj < 0.45, "(π,π) should be masked on DJ, got {dj:.3}");
    assert!(
        qft > bv + 0.1,
        "(π,π) should hit QFT ({qft:.3}) harder than BV ({bv:.3})"
    );
}

/// §V-B: the fault-free spot of the noisy heatmap "is not solid green
/// (i.e., QVF > 0) due to noise".
#[test]
fn noisy_baseline_qvf_is_positive_but_masked() {
    let ex = noisy();
    for w in qufi::algos::paper_workloads(4) {
        let res = campaign(&w, &ex, FaultGrid::custom(vec![0.0], vec![0.0]));
        assert!(res.baseline_qvf > 0.0, "{}", w.name);
        assert!(res.baseline_qvf < 0.45, "{}", w.name);
    }
}

/// §V-C: BV and DJ reliability profiles are scale-independent; QFT
/// concentrates toward QVF ≈ 0.5 (its σ drops) as the circuit grows.
#[test]
fn qft_concentrates_with_scale_bv_does_not() {
    let ex = noisy();
    let grid = FaultGrid::coarse();
    let sigma = |family: &str, n: usize| -> f64 {
        let ws = qufi::algos::scaling_family(family, n);
        let w = ws.last().expect("family nonempty");
        // Subsample fault sites on the larger instances: σ is estimated
        // across positions, so every-other-site keeps the statistic while
        // halving the 6-qubit simulation cost.
        let points: Vec<_> = enumerate_injection_points(&w.circuit)
            .into_iter()
            .step_by(if n >= 6 { 2 } else { 1 })
            .collect();
        let opts = CampaignOptions {
            grid: grid.clone(),
            points: Some(points),
            threads: 0,
            naive: false,
        };
        run_single_campaign(&w.circuit, &w.correct_outputs, &ex, &opts)
            .expect("campaign")
            .stddev_qvf()
    };
    let bv_4 = sigma("bv", 4);
    let bv_6 = sigma("bv", 6);
    let qft_4 = sigma("qft", 4);
    let qft_6 = sigma("qft", 6);
    // QFT's σ must visibly shrink; BV's change stays comparatively small.
    assert!(
        qft_4 - qft_6 > 0.02,
        "QFT σ should drop with scale: {qft_4:.4} → {qft_6:.4}"
    );
    assert!(
        (bv_4 - bv_6).abs() < qft_4 - qft_6 + 0.05,
        "BV profile should be steadier: Δbv {:.4} vs Δqft {:.4}",
        bv_4 - bv_6,
        qft_4 - qft_6
    );
}

/// §V-D: "a double fault actually has a higher (negative) effect on the
/// output" — mean QVF rises and the distribution shifts upward.
#[test]
fn double_faults_are_worse_than_single_faults() {
    let ex = noisy();
    let w = bernstein_vazirani(0b101, 3);
    let grid = FaultGrid::coarse();
    let single = campaign(&w, &ex, grid.clone());
    let pairs = qufi::core::double::neighbor_pairs(&w.circuit, ex.transpiler()).expect("pairs");
    let double = run_double_campaign(
        &w.circuit,
        &w.correct_outputs,
        &ex,
        &DoubleOptions {
            grid,
            points: None,
            pairs,
            threads: 0,
            naive: false,
        },
    )
    .expect("double campaign");
    assert!(
        double.mean_qvf() > single.mean_qvf() + 0.05,
        "double {:.4} vs single {:.4}",
        double.mean_qvf(),
        single.mean_qvf()
    );
}

/// §V-E: simulation with the noise model tracks (simulated) hardware to
/// small absolute QVF differences for the T, S, Z, Y gate-equivalent
/// faults (paper: < 0.052; we allow sampling slack).
#[test]
fn hardware_and_simulation_agree() {
    let w = bernstein_vazirani(0b101, 3);
    let cal = BackendCalibration::jakarta();
    let hw = HardwareExecutor::new(cal.clone(), 99);
    let sim = NoisyExecutor::new(cal);
    for gate in [Gate::T, Gate::S, Gate::Z, Gate::Y] {
        let (theta, phi) = gate.as_fault_shift().expect("fault shift");
        let grid = FaultGrid::custom(vec![theta], vec![phi]);
        let opts = CampaignOptions {
            grid,
            points: None,
            threads: 0,
            naive: false,
        };
        let a = run_single_campaign(&w.circuit, &w.correct_outputs, &hw, &opts)
            .expect("hw campaign")
            .mean_qvf();
        let b = run_single_campaign(&w.circuit, &w.correct_outputs, &sim, &opts)
            .expect("sim campaign")
            .mean_qvf();
        assert!(
            (a - b).abs() < 0.08,
            "{}: hardware {a:.4} vs simulation {b:.4}",
            gate.name()
        );
    }
}

/// §IV-B: the paper's grid yields exactly 312 faults per injection point.
#[test]
fn paper_grid_injection_counts() {
    let w = bernstein_vazirani(0b101, 3);
    let points = enumerate_injection_points(&w.circuit);
    let grid = FaultGrid::paper();
    assert_eq!(grid.len(), 312);
    // BV-4 with secret 101: x + 4 H + 2 CX + 3 H = 10 gates, 12 operand slots.
    assert_eq!(points.len(), 12);
}
