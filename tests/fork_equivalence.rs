//! Differential suite for the forked-state sweep engine.
//!
//! The engine's contract: for every executor, replaying a fault from a
//! parked prefix snapshot ([`PreparedSweep::replay`]) is **bit-identical**
//! to the naive per-configuration pipeline that rebuilds, re-transpiles and
//! re-simulates the whole faulty circuit ([`PreparedSweep::replay_naive`]).
//! These tests pin that contract across every registry workload family on
//! the coarse grid, for the ideal, noisy and (fixed-seed) hardware
//! executors — per-replay distributions, campaign records, and the exported
//! JSON/CSV artifacts.
//!
//! CI runs this suite in release mode (the `naive-oracle` job): the
//! density-matrix oracle re-simulates every configuration from scratch,
//! which is exactly the cost the engine exists to avoid.

use qufi::core::engine::SweepExecutor;
use qufi::core::report::records_to_csv;
use qufi::core::serialize::{campaign_to_json, records_to_json};
use qufi::prelude::*;

/// One 3-qubit instance of every registry family — small enough for the
/// naive density-matrix oracle, wide enough to exercise routing/SWAPs.
fn registry_workloads() -> Vec<Workload> {
    qufi::algos::registry::families()
        .iter()
        .map(|f| {
            qufi::algos::build_workload(&format!("{}-3", f.family))
                .expect("every family supports 3 qubits")
        })
        .collect()
}

fn coarse() -> FaultGrid {
    FaultGrid::coarse()
}

/// tv-distance bound of the suite. The paths are expected to be *bit*
/// identical; 1e-12 leaves headroom for nothing but genuine divergence.
const TOL: f64 = 1e-12;

/// Every replay of every point of every workload must match the oracle.
fn assert_executor_equivalence<E: SweepExecutor>(ex: &E, label: &str) {
    let grid = coarse();
    for w in registry_workloads() {
        for point in enumerate_injection_points(&w.circuit) {
            let prepared = ex
                .prepare(&w.circuit, point)
                .unwrap_or_else(|e| panic!("{label}/{}: prepare {point:?}: {e}", w.name));
            for (theta, phi) in grid.iter() {
                let fault = FaultParams::shift(theta, phi);
                let fast = prepared.replay(fault).expect("replay");
                let slow = prepared.replay_naive(fault).expect("naive replay");
                let tv = fast.tv_distance(&slow);
                assert!(
                    tv < TOL,
                    "{label}/{}: {point:?} (θ={theta:.3}, φ={phi:.3}) \
                     diverged: tv = {tv:e}",
                    w.name
                );
            }
        }
    }
}

#[test]
fn ideal_forked_sweep_matches_naive_oracle() {
    assert_executor_equivalence(&IdealExecutor, "ideal");
}

#[test]
fn noisy_forked_sweep_matches_naive_oracle() {
    let ex = NoisyExecutor::new(BackendCalibration::lima());
    assert_executor_equivalence(&ex, "noisy-lima");
}

#[test]
fn hardware_forked_sweep_matches_naive_oracle() {
    let ex = HardwareExecutor::new(BackendCalibration::jakarta(), 0xD5A1);
    assert_executor_equivalence(&ex, "hardware-jakarta");
}

/// Whole-campaign check: the `CampaignOptions::naive` oracle path and the
/// default forked path must export byte-identical JSON and CSV artifacts.
///
/// Takes an executor *factory*: the hardware scenario's fault-free baseline
/// draws from the executor's shared RNG stream, so each campaign gets a
/// fresh fixed-seed instance (exactly what a reproducible run does).
fn assert_campaign_export_identical<E: SweepExecutor>(
    w: &Workload,
    make: impl Fn() -> E,
    label: &str,
) {
    let golden = golden_outputs(&w.circuit).expect("golden");
    let mk = |naive| CampaignOptions {
        grid: coarse(),
        points: None,
        threads: 0,
        naive,
    };
    let forked = run_single_campaign(&w.circuit, &golden, &make(), &mk(false)).expect("forked");
    let naive = run_single_campaign(&w.circuit, &golden, &make(), &mk(true)).expect("naive");
    assert_eq!(
        forked.records.len(),
        naive.records.len(),
        "{label}/{}: record counts differ",
        w.name
    );
    assert_eq!(
        records_to_csv(&forked.records),
        records_to_csv(&naive.records),
        "{label}/{}: CSV export differs",
        w.name
    );
    assert_eq!(
        records_to_json(&forked.records),
        records_to_json(&naive.records),
        "{label}/{}: JSON records differ",
        w.name
    );
    assert_eq!(
        campaign_to_json(&forked),
        campaign_to_json(&naive),
        "{label}/{}: campaign JSON differs",
        w.name
    );
}

#[test]
fn exported_artifacts_are_byte_identical_ideal() {
    for w in registry_workloads() {
        assert_campaign_export_identical(&w, || IdealExecutor, "ideal");
    }
}

#[test]
fn exported_artifacts_are_byte_identical_noisy_and_hardware() {
    let w = qufi::algos::build_workload("bv-4").expect("bv-4");
    assert_campaign_export_identical(
        &w,
        || NoisyExecutor::new(BackendCalibration::jakarta()),
        "noisy-jakarta",
    );
    assert_campaign_export_identical(
        &w,
        || HardwareExecutor::new(BackendCalibration::jakarta(), 99),
        "hardware-jakarta",
    );
}

/// The bench smoke of the CI `naive-oracle` job: on the paper's bv-4
/// baseline, the forked path must perform strictly fewer gate applications
/// than the naive path — prefix gates run once per point instead of once
/// per configuration.
#[test]
fn forked_path_performs_fewer_gate_applications_on_bv4() {
    let w = qufi::algos::build_workload("bv-4").expect("bv-4");
    let ex = NoisyExecutor::new(BackendCalibration::jakarta());
    let configs = FaultGrid::paper().len(); // 312, §IV-B
    let mut forked_apps = 0usize;
    let mut naive_apps = 0usize;
    for point in enumerate_injection_points(&w.circuit) {
        let prepared = ex.prepare(&w.circuit, point).expect("prepare");
        let (prefix, suffix) = (prepared.prefix_gates(), prepared.suffix_gates());
        // Forked: prefix once, suffix per configuration (+1 injector each).
        forked_apps += prefix + configs * (suffix + 1);
        // Naive: the whole circuit per configuration.
        naive_apps += configs * (prefix + suffix + 1);
    }
    assert!(
        forked_apps < naive_apps,
        "forked path should do less work: {forked_apps} vs {naive_apps}"
    );
    // The prefix skipped per replay averages out to a ~2× saving on bv-4
    // (half the circuit sits before the mean injection site).
    assert!(
        (naive_apps as f64) / (forked_apps as f64) > 1.5,
        "expected ≥1.5× fewer gate applications, got {:.2}×",
        naive_apps as f64 / forked_apps as f64
    );
}
