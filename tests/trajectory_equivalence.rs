//! Statistical differential suite for the Monte-Carlo trajectory executor.
//!
//! The density-matrix path computes the *exact* output distribution of a
//! faulty circuit under the backend's noise model; the trajectory path
//! estimates the same distribution from `shots` sampled Kraus-branch
//! histories. The contract pinned here, for 4–7-qubit registry workloads
//! against the density oracle:
//!
//! 1. per-cell tv distance is bounded by `C/√shots`,
//! 2. the grid-mean tv distance tightens monotonically as shots grow
//!    through 256 → 1024 → 4096 (deterministic at fixed seeds), and
//! 3. at 4096 shots the masked/dubious/SDC severity classification agrees
//!    with the oracle's on every cell whose oracle QVF sits clear of the
//!    0.45–0.55 dubious band (a small guard band around the thresholds
//!    absorbs the residual `O(1/√shots)` estimator error).
//!
//! Everything is seeded: the suite is a deterministic regression gate, not
//! a flaky tolerance test. CI runs it in release mode (the `trajectory`
//! job).

use qufi::core::engine::SweepExecutor;
use qufi::core::metrics::Severity;
use qufi::prelude::*;

/// tv bound numerator: `tv ≤ C/√shots` per grid cell. The constant
/// absorbs the output dimension: wide distributions (qft-6 spreads mass
/// over 64 outcomes) accumulate more per-outcome estimator noise than
/// peaked ones, but every workload keeps the `1/√shots` decay.
const C: f64 = 3.0;

/// Severity must agree when the oracle QVF is this far outside the
/// dubious band — absorbs estimator noise right at a threshold.
const GUARD: f64 = 0.03;

const SHOT_LEVELS: [u64; 3] = [256, 1024, 4096];

/// Runs one workload at a mid-circuit injection point over a 3×3 θ/φ
/// grid and checks all three contract clauses against the density oracle.
fn assert_statistical_equivalence(workload: &str, seed: u64) {
    let w = qufi::algos::build_workload(workload).expect("registry workload");
    let golden = golden_outputs(&w.circuit).expect("golden");
    let cal = BackendCalibration::jakarta();
    let grid = FaultGrid::custom(
        vec![0.0, std::f64::consts::FRAC_PI_2, std::f64::consts::PI],
        vec![0.0, std::f64::consts::FRAC_PI_2, std::f64::consts::PI],
    );
    let points = enumerate_injection_points(&w.circuit);
    let point = points[points.len() / 2];

    let oracle = NoisyExecutor::new(cal.clone());
    let oracle_prepared = oracle.prepare(&w.circuit, point).expect("oracle prepare");
    let oracle_cells: Vec<ProbDist> = grid
        .iter()
        .map(|(t, p)| {
            oracle_prepared
                .replay(FaultParams::shift(t, p))
                .expect("oracle replay")
        })
        .collect();

    let mut mean_tvs = Vec::new();
    let mut finest: Vec<ProbDist> = Vec::new();
    for &shots in &SHOT_LEVELS {
        let ex = TrajectoryExecutor::with_shots(cal.clone(), seed, shots);
        let prepared = ex.prepare(&w.circuit, point).expect("trajectory prepare");
        let bound = C / (shots as f64).sqrt();
        let mut tv_sum = 0.0;
        let mut cells = Vec::new();
        for ((theta, phi), want) in grid.iter().zip(&oracle_cells) {
            let got = prepared
                .replay(FaultParams::shift(theta, phi))
                .expect("trajectory replay");
            let tv = got.tv_distance(want);
            assert!(
                tv <= bound,
                "{workload} {point:?} (θ={theta:.3}, φ={phi:.3}) at {shots} shots: \
                 tv = {tv:.4} exceeds {C}/√shots = {bound:.4}"
            );
            tv_sum += tv;
            cells.push(got);
        }
        mean_tvs.push(tv_sum / grid.len() as f64);
        finest = cells;
    }

    for pair in mean_tvs.windows(2) {
        assert!(
            pair[1] <= pair[0],
            "{workload}: grid-mean tv did not tighten with shots: {mean_tvs:?}"
        );
    }

    for ((theta, phi), (got, want)) in grid.iter().zip(finest.iter().zip(&oracle_cells)) {
        let oracle_qvf = qvf_from_dist(want, &golden);
        let clear_of_band = !(0.45 - GUARD..=0.55 + GUARD).contains(&oracle_qvf);
        if !clear_of_band {
            continue;
        }
        let traj_qvf = qvf_from_dist(got, &golden);
        assert_eq!(
            Severity::classify(traj_qvf),
            Severity::classify(oracle_qvf),
            "{workload} (θ={theta:.3}, φ={phi:.3}): severity flipped at 4096 shots \
             (trajectory qvf {traj_qvf:.4} vs oracle {oracle_qvf:.4})"
        );
    }
}

#[test]
fn trajectory_matches_density_oracle_bv4() {
    assert_statistical_equivalence("bv-4", 0x7261_4A01);
}

#[test]
fn trajectory_matches_density_oracle_ghz5() {
    assert_statistical_equivalence("ghz-5", 0x7261_4A02);
}

#[test]
fn trajectory_matches_density_oracle_qft6() {
    assert_statistical_equivalence("qft-6", 0x7261_4A03);
}

#[test]
fn trajectory_matches_density_oracle_dj7() {
    assert_statistical_equivalence("dj-7", 0x7261_4A04);
}

/// The trajectory fast path must stay bit-identical to its own naive
/// oracle (fresh transpile + plan + un-banked shots) — same contract the
/// other executors pin in `fork_equivalence.rs`, here on a 6-qubit
/// workload the density suite cannot afford to sweep.
#[test]
fn trajectory_forked_sweep_matches_naive_oracle_qft6() {
    let w = qufi::algos::build_workload("qft-6").expect("qft-6");
    let ex = TrajectoryExecutor::with_shots(BackendCalibration::jakarta(), 0xD5A2, 128);
    let points = enumerate_injection_points(&w.circuit);
    for &point in [points.first(), points.last()].into_iter().flatten() {
        let prepared = ex.prepare(&w.circuit, point).expect("prepare");
        for (theta, phi) in FaultGrid::custom(vec![0.0, 1.2], vec![0.0, 4.4]).iter() {
            let fault = FaultParams::shift(theta, phi);
            let fast = prepared.replay(fault).expect("replay");
            let slow = prepared.replay_naive(fault).expect("naive replay");
            assert!(
                fast.tv_distance(&slow) < 1e-12,
                "qft-6 {point:?} (θ={theta:.3}, φ={phi:.3}) diverged from naive"
            );
        }
    }
}
