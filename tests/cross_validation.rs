//! Cross-engine and cross-pass validation: the statevector and
//! density-matrix simulators, the transpiler, and the QASM serializer must
//! all agree on circuit semantics. Property-based tests drive random
//! circuits through every pair of paths.

use proptest::prelude::*;
use qufi::prelude::*;
use qufi::sim::{qasm, DensityMatrix, Statevector};

/// A random gate on up to `n` qubits.
fn arb_gate(n: usize) -> impl Strategy<Value = (Gate, Vec<usize>)> {
    let q = 0..n;
    let angle = -std::f64::consts::PI..std::f64::consts::PI;
    prop_oneof![
        q.clone().prop_map(|a| (Gate::H, vec![a])),
        q.clone().prop_map(|a| (Gate::X, vec![a])),
        q.clone().prop_map(|a| (Gate::Y, vec![a])),
        q.clone().prop_map(|a| (Gate::Z, vec![a])),
        q.clone().prop_map(|a| (Gate::S, vec![a])),
        q.clone().prop_map(|a| (Gate::T, vec![a])),
        q.clone().prop_map(|a| (Gate::Sx, vec![a])),
        (angle.clone(), q.clone()).prop_map(|(t, a)| (Gate::Rx(t), vec![a])),
        (angle.clone(), q.clone()).prop_map(|(t, a)| (Gate::Ry(t), vec![a])),
        (angle.clone(), q.clone()).prop_map(|(t, a)| (Gate::Rz(t), vec![a])),
        (angle.clone(), angle.clone(), angle.clone(), q.clone())
            .prop_map(|(t, p, l, a)| (Gate::U(t, p, l), vec![a])),
        (q.clone(), q.clone())
            .prop_filter("distinct", |(a, b)| a != b)
            .prop_map(|(a, b)| (Gate::Cx, vec![a, b])),
        (q.clone(), q.clone())
            .prop_filter("distinct", |(a, b)| a != b)
            .prop_map(|(a, b)| (Gate::Cz, vec![a, b])),
        (angle, q.clone(), q)
            .prop_filter("distinct", |(_, a, b)| a != b)
            .prop_map(|(l, a, b)| (Gate::Cp(l), vec![a, b])),
    ]
}

/// A random measured circuit over `n` qubits.
fn arb_circuit(n: usize, max_gates: usize) -> impl Strategy<Value = QuantumCircuit> {
    prop::collection::vec(arb_gate(n), 1..max_gates).prop_map(move |gates| {
        let mut qc = QuantumCircuit::new(n, n);
        for (g, qs) in gates {
            qc.append(g, &qs);
        }
        qc.measure_all();
        qc
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Statevector and density-matrix engines agree on noiseless circuits.
    #[test]
    fn statevector_matches_density_matrix(qc in arb_circuit(4, 20)) {
        let sv = Statevector::from_circuit(&qc).expect("fits");
        let mut rho = DensityMatrix::new(4).expect("fits");
        rho.run_circuit(&qc);
        let a = sv.measurement_distribution(&qc);
        let b = rho.measurement_distribution(&qc);
        prop_assert!(a.tv_distance(&b) < 1e-9);
        // Pure evolution keeps the density matrix pure and trace-one.
        prop_assert!((rho.purity() - 1.0).abs() < 1e-8);
        prop_assert!((rho.trace().re - 1.0).abs() < 1e-9);
    }

    /// Transpiling onto the H7 device never changes measured semantics,
    /// at any optimization level.
    #[test]
    fn transpilation_preserves_semantics(
        qc in arb_circuit(4, 16),
        level in prop_oneof![
            Just(OptimizationLevel::Level0),
            Just(OptimizationLevel::Level1),
            Just(OptimizationLevel::Level2),
            Just(OptimizationLevel::Level3),
        ],
    ) {
        let t = Transpiler::new(CouplingMap::ibm_h7(), level);
        let result = t.run(&qc).expect("transpiles");
        let golden = Statevector::from_circuit(&qc)
            .expect("fits")
            .measurement_distribution(&qc);
        let routed = Statevector::from_circuit(result.circuit())
            .expect("fits")
            .measurement_distribution(result.circuit());
        prop_assert!(
            golden.tv_distance(&routed) < 1e-8,
            "level {level:?} broke semantics (tv = {})",
            golden.tv_distance(&routed)
        );
    }

    /// QASM export/import round-trips semantics.
    #[test]
    fn qasm_roundtrip(qc in arb_circuit(3, 15)) {
        let text = qasm::to_qasm(&qc);
        let back = qasm::from_qasm(&text).expect("parses");
        let a = Statevector::from_circuit(&qc).expect("fits").measurement_distribution(&qc);
        let b = Statevector::from_circuit(&back).expect("fits").measurement_distribution(&back);
        prop_assert!(a.tv_distance(&b) < 1e-9);
    }

    /// A (0,0) fault injected anywhere is invisible on every backend path.
    #[test]
    fn null_fault_is_invisible(qc in arb_circuit(3, 12), point_sel in 0usize..64) {
        let points = enumerate_injection_points(&qc);
        prop_assume!(!points.is_empty());
        let point = points[point_sel % points.len()];
        let faulty = inject_fault(&qc, point, FaultParams::shift(0.0, 0.0)).expect("in range");
        let a = Statevector::from_circuit(&qc).expect("fits").measurement_distribution(&qc);
        let b = Statevector::from_circuit(&faulty).expect("fits").measurement_distribution(&faulty);
        prop_assert!(a.tv_distance(&b) < 1e-9);
    }

    /// QVF is always in [0, 1], for any distribution and golden set.
    #[test]
    fn qvf_is_bounded(probs in prop::collection::vec(0.0f64..1.0, 8), golden_bits in 0usize..7) {
        let total: f64 = probs.iter().sum();
        prop_assume!(total > 1e-9);
        let normalized: Vec<f64> = probs.iter().map(|p| p / total).collect();
        let dist = ProbDist::from_probs(normalized, 3);
        let v = qvf_from_dist(&dist, &[golden_bits]);
        prop_assert!((0.0..=1.0).contains(&v));
    }

    /// Noise never produces negative probabilities or trace loss.
    #[test]
    fn noisy_execution_yields_valid_distribution(qc in arb_circuit(3, 10)) {
        let ex = NoisyExecutor::new(BackendCalibration::lima());
        let dist = ex.execute(&qc).expect("runs");
        prop_assert!((dist.total() - 1.0).abs() < 1e-6);
        for i in 0..dist.len() {
            prop_assert!(dist.prob(i) >= 0.0);
        }
    }
}
