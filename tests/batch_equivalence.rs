//! Differential suite for the batched grid-replay engine.
//!
//! The engine's contract: replaying a fault grid through the batched
//! cell-major block path ([`PreparedSweep::replay_grid_batched`]) is
//! **bit-identical** to the scalar per-cell path
//! ([`PreparedSweep::replay_grid`], itself pinned against the naive oracle
//! by `fork_equivalence.rs`) — for every registry workload family, every
//! scenario with a batched path (ideal, noisy, fixed-seed hardware), every
//! batch width, every thread count, and every grid shape including ragged
//! grids whose size is not a multiple of the width and single-cell grids
//! that take the scalar fallback.
//!
//! Several tests vary `QUFI_BATCH_CELLS`; the test harness runs them in
//! parallel threads, so tests may observe each other's widths. That race
//! is benign by design: every assertion here holds for *any* width.

use qufi::core::engine::SweepExecutor;
use qufi::prelude::*;

/// One 3-qubit instance of every registry family — wide enough to exercise
/// routing/SWAPs, small enough to replay the full paper grid per family.
fn registry_workloads() -> Vec<Workload> {
    qufi::algos::registry::families()
        .iter()
        .map(|f| {
            qufi::algos::build_workload(&format!("{}-3", f.family))
                .expect("every family supports 3 qubits")
        })
        .collect()
}

fn assert_bit_identical(a: &ProbDist, b: &ProbDist, what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: width mismatch");
    for i in 0..a.len() {
        assert_eq!(
            a.prob(i).to_bits(),
            b.prob(i).to_bits(),
            "{what}: outcome {i} differs ({} vs {})",
            a.prob(i),
            b.prob(i)
        );
    }
}

/// A mid-circuit injection point: representative prefix/suffix balance.
fn mid_point(qc: &QuantumCircuit) -> InjectionPoint {
    let points = enumerate_injection_points(qc);
    points[points.len() / 2]
}

fn assert_grids_match<E: SweepExecutor>(ex: &E, grid: &FaultGrid, threads: usize, label: &str) {
    for w in registry_workloads() {
        let prepared = ex
            .prepare(&w.circuit, mid_point(&w.circuit))
            .unwrap_or_else(|e| panic!("{label}/{}: prepare: {e}", w.name));
        let scalar = prepared.replay_grid(grid, 1).expect("scalar grid");
        let batched = prepared
            .replay_grid_batched(grid, threads)
            .expect("batched grid");
        assert_eq!(batched.len(), scalar.len(), "{label}/{}: cells", w.name);
        for (i, (got, want)) in batched.iter().zip(&scalar).enumerate() {
            assert_bit_identical(got, want, &format!("{label}/{}: cell {i}", w.name));
        }
    }
}

/// Every registry family × scenario, full 312-cell paper grid, default
/// batch width: batched and scalar paths agree bit for bit.
#[test]
fn batched_paper_grid_matches_scalar_ideal() {
    assert_grids_match(&IdealExecutor, &FaultGrid::paper(), 2, "ideal");
}

#[test]
fn batched_paper_grid_matches_scalar_noisy() {
    let ex = NoisyExecutor::new(BackendCalibration::lima());
    assert_grids_match(&ex, &FaultGrid::paper(), 2, "noisy-lima");
}

#[test]
fn batched_paper_grid_matches_scalar_hardware() {
    let ex = HardwareExecutor::new(BackendCalibration::jakarta(), 0xD5A1);
    assert_grids_match(&ex, &FaultGrid::paper(), 2, "hardware-jakarta");
}

/// Ragged grids (cell count not a multiple of any width, down to a single
/// cell) × widths 1/4/8/16 × threads 1/2/4: the tail block simply runs
/// narrower, width 1 takes the scalar path, and everything stays
/// bit-identical to the scalar reference.
#[test]
fn batched_ragged_grids_match_scalar_across_widths_and_threads() {
    let w = qufi::algos::build_workload("bv-3").expect("bv-3");
    let grids = [
        // 5 θ × 3 φ = 15 cells: not a multiple of 4, 8 or 16; the repeated
        // θ exercises the hoisted-trig run sharing.
        FaultGrid::custom(
            vec![0.0, 0.7, 0.7, 2.1, std::f64::consts::PI],
            vec![0.0, 1.3, 5.0],
        ),
        // Single-cell grid: always the scalar fallback.
        FaultGrid::custom(vec![std::f64::consts::FRAC_PI_2], vec![0.4]),
    ];
    let ideal = IdealExecutor;
    let noisy = NoisyExecutor::new(BackendCalibration::jakarta());
    let hw = HardwareExecutor::new(BackendCalibration::jakarta(), 7);
    let prepared: Vec<Box<dyn qufi::core::engine::PreparedSweep + '_>> = vec![
        ideal.prepare(&w.circuit, mid_point(&w.circuit)).unwrap(),
        noisy.prepare(&w.circuit, mid_point(&w.circuit)).unwrap(),
        hw.prepare(&w.circuit, mid_point(&w.circuit)).unwrap(),
    ];
    for (e, p) in prepared.iter().enumerate() {
        for grid in &grids {
            let scalar = p.replay_grid(grid, 1).expect("scalar grid");
            for width in ["1", "4", "8", "16"] {
                std::env::set_var("QUFI_BATCH_CELLS", width);
                for threads in [1usize, 2, 4] {
                    let batched = p.replay_grid_batched(grid, threads).expect("batched grid");
                    assert_eq!(batched.len(), scalar.len());
                    for (i, (got, want)) in batched.iter().zip(&scalar).enumerate() {
                        assert_bit_identical(
                            got,
                            want,
                            &format!("executor {e} cell {i} w={width} t={threads}"),
                        );
                    }
                }
            }
            std::env::remove_var("QUFI_BATCH_CELLS");
        }
    }
}

/// The campaign layer routes through the batched entry point; campaign
/// records must not depend on the batch width either.
#[test]
fn campaign_records_are_identical_with_batching_on_and_off() {
    let w = qufi::algos::build_workload("bv-3").expect("bv-3");
    let golden = golden_outputs(&w.circuit).expect("golden");
    let opts = CampaignOptions {
        grid: FaultGrid::coarse(),
        points: None,
        threads: 0,
        naive: false,
    };
    std::env::set_var("QUFI_BATCH_CELLS", "8");
    let batched = run_single_campaign(
        &w.circuit,
        &golden,
        &NoisyExecutor::new(BackendCalibration::jakarta()),
        &opts,
    )
    .expect("batched campaign");
    std::env::set_var("QUFI_BATCH_CELLS", "1");
    let scalar = run_single_campaign(
        &w.circuit,
        &golden,
        &NoisyExecutor::new(BackendCalibration::jakarta()),
        &opts,
    )
    .expect("scalar campaign");
    std::env::remove_var("QUFI_BATCH_CELLS");
    assert_eq!(
        qufi::core::report::records_to_csv(&batched.records),
        qufi::core::report::records_to_csv(&scalar.records),
        "campaign CSV must not depend on the batch width"
    );
    assert_eq!(
        qufi::core::serialize::campaign_to_json(&batched),
        qufi::core::serialize::campaign_to_json(&scalar),
        "campaign JSON must not depend on the batch width"
    );
}
