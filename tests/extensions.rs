//! Integration tests of the extension features layered on the paper's core:
//! reliability-aware mapping, readout mitigation inside a campaign, coherent
//! noise floors, shot-based QVF estimation accuracy, QPE/QEC workloads and
//! campaign persistence.

use qufi::algos::qec::bit_flip_code;
use qufi::algos::qpe::quantum_phase_estimation;
use qufi::core::serialize;
use qufi::noise::mitigation;
use qufi::prelude::*;

fn coarse_campaign(
    qc: &QuantumCircuit,
    golden: &[usize],
    ex: &impl SweepExecutor,
) -> CampaignResult {
    run_single_campaign(qc, golden, ex, &CampaignOptions::coarse()).expect("campaign")
}

#[test]
fn reliability_aware_layout_places_vulnerable_qubits_on_good_seats() {
    let w = bernstein_vazirani(0b101, 3);
    let ex = NoisyExecutor::new(BackendCalibration::jakarta());
    let res = coarse_campaign(&w.circuit, &w.correct_outputs, &ex);
    let cal = BackendCalibration::jakarta();
    let layout = reliability_aware_layout(&res, &cal);

    let ranking = qubit_reliability(&res);
    assert_eq!(ranking.len(), 4);
    // The produced layout is usable as a transpiler seed: bijective over
    // the device and connected (dense subgraph members).
    let cm = CouplingMap::ibm_h7();
    let members: Vec<usize> = (0..4).map(|l| layout.physical(l)).collect();
    for &m in &members {
        assert!(m < cm.num_qubits());
        assert!(
            cm.neighbors(m).iter().any(|n| members.contains(n)),
            "member {m} isolated in {members:?}"
        );
    }
}

#[test]
fn shot_based_qvf_estimates_track_exact_values() {
    // The paper estimates QVF from 1024-shot histograms; the exact engine
    // removes that sampling error. Quantify it: per-injection |Δ| stays
    // small and the campaign mean converges.
    let w = bernstein_vazirani(0b11, 2);
    let cal = BackendCalibration::lima();
    let exact_ex = NoisyExecutor::new(cal.clone());
    let shot_ex = HardwareExecutor::with_config(cal, 5, 1024, 0.0);

    let grid = FaultGrid::coarse();
    let opts = CampaignOptions {
        grid,
        points: None,
        threads: 0,
        naive: false,
    };
    let exact = run_single_campaign(&w.circuit, &w.correct_outputs, &exact_ex, &opts).unwrap();
    let shots = run_single_campaign(&w.circuit, &w.correct_outputs, &shot_ex, &opts).unwrap();
    assert_eq!(exact.len(), shots.len());
    let diffs: Vec<f64> = exact
        .records
        .iter()
        .zip(&shots.records)
        .map(|(a, b)| (a.qvf - b.qvf).abs())
        .collect();
    let max = diffs.iter().cloned().fold(0.0, f64::max);
    let mean_diff = qufi::core::metrics::mean(&diffs);
    assert!(max < 0.12, "worst per-injection shot error {max:.4}");
    assert!(mean_diff < 0.02, "mean shot error {mean_diff:.4}");
    assert!((exact.mean_qvf() - shots.mean_qvf()).abs() < 0.01);
}

#[test]
fn readout_mitigation_lowers_baseline_qvf() {
    let w = bernstein_vazirani(0b101, 3);
    let ex = NoisyExecutor::new(BackendCalibration::jakarta());
    let raw = ex.execute(&w.circuit).unwrap();
    // Mitigate over the *classical* bits: BV measures q0..q2 into c0..c2 on
    // physical seats — apply the logical qubits' confusion matrices.
    // For this test use a synthetic uniform readout error on all clbits.
    let ro = qufi::noise::ReadoutError::new(0.03, 0.05);
    let confused =
        qufi::noise::readout::apply_readout_errors(&raw, &vec![Some(ro); raw.num_bits()]);
    let mitigated = mitigation::mitigate_readout(&confused, &vec![Some(ro); raw.num_bits()])
        .expect("invertible");
    let golden = &w.correct_outputs;
    let q_confused = qvf_from_dist(&confused, golden);
    let q_mitigated = qvf_from_dist(&mitigated, golden);
    assert!(
        q_mitigated < q_confused,
        "mitigation should help: {q_mitigated:.4} vs {q_confused:.4}"
    );
}

#[test]
fn coherent_noise_floor_raises_fault_sensitivity() {
    // Faults injected over a coherent-error floor compose coherently; the
    // campaign mean over a miscalibrated circuit must not be lower than
    // over the clean circuit.
    let w = bernstein_vazirani(0b11, 2);
    let miscal = CoherentError {
        over_rotation_x: 0.05,
        phase_drift_z: 0.02,
        two_qubit_phase: 0.05,
    };
    let drifted_circuit = miscal.apply_to_circuit(&w.circuit);
    let clean = coarse_campaign(&w.circuit, &w.correct_outputs, &IdealExecutor);
    let drifted = coarse_campaign(&drifted_circuit, &w.correct_outputs, &IdealExecutor);
    assert!(
        drifted.mean_qvf() > clean.mean_qvf() - 1e-6,
        "coherent floor lowered sensitivity: {:.4} vs {:.4}",
        drifted.mean_qvf(),
        clean.mean_qvf()
    );
    assert!(drifted.baseline_qvf >= clean.baseline_qvf);
}

#[test]
fn qpe_workload_campaigns_like_the_paper_benchmarks() {
    let w = quantum_phase_estimation(3, 5);
    let ex = NoisyExecutor::new(BackendCalibration::jakarta());
    let res = coarse_campaign(&w.circuit, &w.correct_outputs, &ex);
    assert!(!res.is_empty());
    assert!(res.baseline_qvf < 0.45, "QPE should survive device noise");
    let (_, _, sdc) = res.severity_counts();
    assert!(sdc > 0, "some faults must corrupt QPE");
}

#[test]
fn qec_workload_masks_more_faults_than_unprotected() {
    let code = bit_flip_code(true);
    let bare = qufi::algos::qec::unprotected(true);
    let window = |c: &qufi::algos::qec::CodeWorkload| -> Vec<InjectionPoint> {
        enumerate_injection_points(&c.workload.circuit)
            .into_iter()
            .filter(|p| p.op_index >= c.region.start && p.op_index < c.region.end)
            .collect()
    };
    let run = |c: &qufi::algos::qec::CodeWorkload| {
        run_single_campaign(
            &c.workload.circuit,
            &c.workload.correct_outputs,
            &IdealExecutor,
            &CampaignOptions {
                grid: FaultGrid::coarse(),
                points: Some(window(c)),
                threads: 0,
                naive: false,
            },
        )
        .expect("campaign")
    };
    let code_res = run(&code);
    let bare_res = run(&bare);
    let masked_frac = |r: &CampaignResult| {
        let (m, _, _) = r.severity_counts();
        m as f64 / r.len() as f64
    };
    assert!(
        masked_frac(&code_res) > masked_frac(&bare_res),
        "code {:.3} vs bare {:.3}",
        masked_frac(&code_res),
        masked_frac(&bare_res)
    );
}

#[test]
fn campaign_records_roundtrip_through_csv() {
    let w = bernstein_vazirani(0b10, 2);
    let res = coarse_campaign(&w.circuit, &w.correct_outputs, &IdealExecutor);
    let csv = qufi::core::report::records_to_csv(&res.records);
    let back = serialize::records_from_csv(&csv).expect("parses");
    assert_eq!(back.len(), res.records.len());
    // Heatmaps built from reloaded records match the originals.
    let hm_orig = Heatmap::from_campaign(&res);
    let hm_back = Heatmap::from_samples(&res.grid, back.iter().map(|r| (r.theta, r.phi, r.qvf)));
    for pi in 0..res.grid.phis.len() {
        for ti in 0..res.grid.thetas.len() {
            let (a, b) = (hm_orig.value(pi, ti), hm_back.value(pi, ti));
            assert!((a - b).abs() < 1e-5 || (a.is_nan() && b.is_nan()));
        }
    }
}

#[test]
fn lookahead_routing_is_usable_by_the_executor_stack() {
    let w = bernstein_vazirani(0b101, 3);
    let t = Transpiler::new(CouplingMap::ibm_h7(), OptimizationLevel::Level3)
        .with_routing(RoutingStrategy::Lookahead { window: 6 });
    let result = t.run(&w.circuit).expect("transpiles");
    let dist = IdealExecutor.execute(result.circuit()).expect("runs");
    assert_eq!(dist.most_probable().0, 0b101);
}
