//! End-to-end pipeline tests across all crates: workloads → transpiler →
//! noise → injector → metric → reports.

use qufi::prelude::*;
use qufi::sim::qasm;

#[test]
fn every_workload_survives_the_full_noisy_pipeline() {
    let ex = NoisyExecutor::new(BackendCalibration::jakarta());
    for n in 4..=6 {
        for w in qufi::algos::paper_workloads(n) {
            let dist = ex.execute(&w.circuit).expect("executes");
            // The golden state must remain the most probable outcome under
            // realistic noise.
            let (winner, _) = dist.most_probable();
            assert!(
                w.correct_outputs.contains(&winner),
                "{}: winner {winner:#b} not golden",
                w.name
            );
        }
    }
}

#[test]
fn extension_workloads_run_end_to_end() {
    let ex = NoisyExecutor::new(BackendCalibration::jakarta());
    // GHZ: two golden states.
    let g = ghz(4);
    let dist = ex.execute(&g.circuit).expect("executes");
    let p: f64 = g.correct_outputs.iter().map(|&o| dist.prob(o)).sum();
    assert!(p > 0.8, "GHZ golden mass only {p:.3}");
    let v = qvf_from_dist(&dist, &g.correct_outputs);
    assert!(v < 0.45, "GHZ noisy baseline should be masked, got {v:.3}");

    // Grover: deeper circuit, still correct under noise.
    let gr = grover(3, 0b101);
    let dist = ex.execute(&gr.circuit).expect("executes");
    assert_eq!(dist.most_probable().0, 0b101);
}

#[test]
fn campaign_to_reports_roundtrip() {
    let w = bernstein_vazirani(0b11, 2);
    let ex = IdealExecutor;
    let golden = golden_outputs(&w.circuit).expect("golden");
    let res = run_single_campaign(&w.circuit, &golden, &ex, &CampaignOptions::coarse())
        .expect("campaign");

    // Heatmap cells aggregate exactly the records.
    let hm = Heatmap::from_campaign(&res);
    let total_cells: usize = (0..hm.phis().len())
        .flat_map(|p| (0..hm.thetas().len()).map(move |t| (p, t)))
        .map(|(p, t)| hm.count(p, t))
        .sum();
    assert_eq!(total_cells, res.len());

    // Histogram covers every record.
    let hist = Histogram::new(&res.qvfs(), 20);
    assert_eq!(hist.counts().iter().sum::<usize>(), res.len());

    // CSV artifacts are well-formed.
    let csv = qufi::core::report::records_to_csv(&res.records);
    assert_eq!(csv.lines().count(), res.len() + 1);
    assert!(csv.lines().next().expect("header").contains("qvf"));
}

#[test]
fn faulty_circuits_export_to_qasm_and_back() {
    // The paper: faulty circuits "can even be exported as QASM files to
    // load and execute the circuits on different systems" (§IV-B).
    let w = bernstein_vazirani(0b101, 3);
    let point = enumerate_injection_points(&w.circuit)[3];
    let faulty = inject_fault(&w.circuit, point, FaultParams::shift(1.0, 2.0)).expect("in range");
    let text = qasm::to_qasm(&faulty);
    assert!(text.contains("u("), "injector gate missing from QASM");
    let back = qasm::from_qasm(&text).expect("parses");
    let a = IdealExecutor.execute(&faulty).expect("runs");
    let b = IdealExecutor.execute(&back).expect("runs");
    assert!(a.tv_distance(&b) < 1e-9);
}

#[test]
fn transpiled_faulty_circuit_matches_logical_fault_semantics() {
    // Injecting on the logical circuit and then transpiling must preserve
    // the fault's effect (the transpiler cannot optimize the fault away —
    // only merge it, preserving semantics).
    let w = bernstein_vazirani(0b101, 3);
    let point = enumerate_injection_points(&w.circuit)[5];
    let faulty = inject_fault(&w.circuit, point, FaultParams::shift(0.7, 1.3)).expect("in range");
    let t = Transpiler::new(CouplingMap::ibm_h7(), OptimizationLevel::Level3);
    let routed = t.run(&faulty).expect("transpiles");
    let logical = IdealExecutor.execute(&faulty).expect("runs");
    let physical = IdealExecutor.execute(routed.circuit()).expect("runs");
    assert!(logical.tv_distance(&physical) < 1e-8);
}

#[test]
fn hardware_executor_statistics_converge_to_noisy_simulation() {
    // With drift disabled and many shots, the hardware backend's sampled
    // distribution converges to the exact noisy one — the invariant that
    // makes Fig. 11's agreement argument meaningful.
    let w = bernstein_vazirani(0b11, 2);
    let cal = BackendCalibration::lima();
    let exact = NoisyExecutor::new(cal.clone())
        .execute(&w.circuit)
        .expect("exact");
    let sampled = HardwareExecutor::with_config(cal, 3, 200_000, 0.0)
        .execute(&w.circuit)
        .expect("sampled");
    assert!(
        exact.tv_distance(&sampled) < 0.01,
        "tv = {}",
        exact.tv_distance(&sampled)
    );
}

#[test]
fn different_devices_give_different_noise_profiles() {
    let w = bernstein_vazirani(0b101, 3);
    let golden = golden_outputs(&w.circuit).expect("golden");
    let mut qvfs = Vec::new();
    for cal in [
        BackendCalibration::jakarta(),
        BackendCalibration::casablanca(),
        BackendCalibration::lima(),
        BackendCalibration::bogota(),
    ] {
        let ex = NoisyExecutor::new(cal);
        let dist = ex.execute(&w.circuit).expect("executes");
        qvfs.push(qvf_from_dist(&dist, &golden));
    }
    // All masked, but not identical across devices.
    assert!(qvfs.iter().all(|&v| v < 0.45), "{qvfs:?}");
    let min = qvfs.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = qvfs.iter().cloned().fold(0.0, f64::max);
    assert!(max - min > 1e-4, "devices indistinguishable: {qvfs:?}");
}
