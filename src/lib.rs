//! # qufi — umbrella crate for the QuFI reproduction
//!
//! Re-exports the whole stack behind one dependency:
//!
//! * [`math`] — complex scalars, matrices, angle grids ([`qufi_math`]).
//! * [`sim`] — circuit IR, statevector & density-matrix engines
//!   ([`qufi_sim`]).
//! * [`noise`] — Kraus channels, noise models, synthetic IBM-like
//!   calibrations ([`qufi_noise`]).
//! * [`transpile`] — layout, routing, basis translation, optimization
//!   ([`qufi_transpile`]).
//! * [`algos`] — Bernstein-Vazirani, Deutsch-Jozsa, QFT, GHZ, Grover
//!   ([`qufi_algos`]).
//! * [`core`] — the fault injector itself: fault model, QVF, campaigns
//!   ([`qufi_core`]).
//!
//! Batch orchestration (run manifests, checkpointed campaigns, artifact
//! export) lives in the separate `qufi-cli` crate, which drives this
//! stack through the `qufi` binary.
//!
//! # Quickstart
//!
//! ```
//! use qufi::prelude::*;
//!
//! // Build the paper's Fig. 4 scenario and score one fault.
//! let w = qufi::algos::bernstein_vazirani(0b101, 3);
//! let executor = NoisyExecutor::new(qufi::noise::BackendCalibration::jakarta());
//! // Prepare the injection point once (transpile + shared-prefix
//! // evolution), then replay faults from the snapshot.
//! let prepared = executor
//!     .prepare(&w.circuit, InjectionPoint { op_index: 2, qubit: 0 })
//!     .unwrap();
//! let dist = prepared
//!     .replay(FaultParams::shift(std::f64::consts::FRAC_PI_4, 0.0))
//!     .unwrap();
//! let qvf = qufi::core::metrics::qvf_from_dist(&dist, &w.correct_outputs);
//! assert!(qvf < 0.45, "a θ=π/4 shift is masked on BV (Fig. 4)");
//! ```

pub use qufi_algos as algos;
pub use qufi_core as core;
pub use qufi_math as math;
pub use qufi_noise as noise;
pub use qufi_sim as sim;
pub use qufi_transpile as transpile;

/// One-stop imports for applications.
pub mod prelude {
    pub use qufi_algos::{
        bernstein_vazirani, deutsch_jozsa, ghz, grover, qft_value_encoding, scaling_family,
        DjOracle, Workload,
    };
    pub use qufi_core::prelude::*;
    pub use qufi_core::{
        qubit_reliability, reliability_aware_layout, CampaignResult, ExecError, InjectionRecord,
    };
    pub use qufi_noise::{BackendCalibration, CoherentError, NoiseModel};
    pub use qufi_sim::{Gate, ProbDist, QuantumCircuit};
    pub use qufi_transpile::{CouplingMap, OptimizationLevel, RoutingStrategy, Transpiler};
}
