//! `qufi-obs`: zero-overhead telemetry for the QuFI stack.
//!
//! A process-wide recorder of named **counters**, log-bucketed
//! **histograms** ([`hist`]), per-point **cost records**, and span
//! **trace events** ([`trace`]), plus a leveled stderr [`log`] sink.
//!
//! Design constraints, in order:
//!
//! 1. **Zero cost when disabled.** Every record path checks one `static`
//!    [`AtomicBool`] (relaxed load) and returns. No thread-local is
//!    touched, no time is read, no allocation happens. The replay hot
//!    loop can keep its call sites unconditionally.
//! 2. **Outside the determinism envelope.** The recorder never touches
//!    RNG state, never writes to campaign artifacts, and observes wall
//!    time only — enabling it cannot change a single exported byte.
//! 3. **Lock-light.** Events aggregate into a thread-local sink
//!    ([`std::thread_local`]); the global mutex is taken once per thread
//!    *lifetime* plus once per [`flush`]/[`snapshot`], never per event.
//!    Worker threads must call [`flush`] at the end of their closure:
//!    `std::thread::scope` synchronizes with closure completion, not
//!    with TLS destructors, so the sink's at-exit `Drop` (kept as a
//!    backstop for detached threads) can land *after* a snapshot taken
//!    right after the scope.
//!
//! Spans time *phases*, not cells: a [`span`] pays one `Instant::now()`
//! pair however much work happens inside it. Per-cell work is counted
//! with [`add`] (one atomic load + one thread-local add per chunk).

pub mod hist;
pub mod json;
pub mod log;
pub mod trace;

pub use hist::Histogram;

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Instant;
use trace::TraceEvent;

static ENABLED: AtomicBool = AtomicBool::new(false);
static TRACE_ON: AtomicBool = AtomicBool::new(false);
static NEXT_THREAD: AtomicU64 = AtomicU64::new(0);
static GLOBAL: Mutex<Global> = Mutex::new(Global::new());

/// One per-point cost observation — the row type of `costs.csv` and the
/// direct input for cost-aware shard allocation (ROADMAP item 4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostRecord {
    /// Job id the point belongs to (e.g. `bv-4@jakarta`), `""` if none.
    pub job: String,
    /// Gate index of the injection point.
    pub op_index: usize,
    /// Logical qubit of the injection point.
    pub qubit: usize,
    /// Wall-clock spent preparing the point (transpile + prefix evolve).
    pub prepare_ns: u64,
    /// Wall-clock spent replaying the fault grid from the prepared state.
    pub replay_ns: u64,
    /// Grid cells replayed.
    pub cells: u64,
}

/// A span event still carrying its absolute open time; converted to
/// epoch-relative [`TraceEvent`]s by [`take_trace`].
struct RawEvent {
    name: &'static str,
    thread: u64,
    start: Instant,
    dur_ns: u64,
    depth: u32,
}

/// The merged, process-wide aggregate.
struct Global {
    counters: BTreeMap<&'static str, u64>,
    hists: BTreeMap<&'static str, Histogram>,
    costs: Vec<CostRecord>,
    trace: Vec<RawEvent>,
    epoch: Option<Instant>,
}

impl Global {
    const fn new() -> Self {
        Global {
            counters: BTreeMap::new(),
            hists: BTreeMap::new(),
            costs: Vec::new(),
            trace: Vec::new(),
            epoch: None,
        }
    }
}

fn global() -> MutexGuard<'static, Global> {
    GLOBAL.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Per-thread event sink; merged into [`GLOBAL`] at thread exit.
struct ThreadSink {
    id: u64,
    counters: HashMap<&'static str, u64>,
    hists: HashMap<&'static str, Histogram>,
    costs: Vec<CostRecord>,
    trace: Vec<RawEvent>,
    depth: u32,
    job: Option<Arc<str>>,
}

impl ThreadSink {
    fn new() -> Self {
        ThreadSink {
            id: NEXT_THREAD.fetch_add(1, Ordering::Relaxed),
            counters: HashMap::new(),
            hists: HashMap::new(),
            costs: Vec::new(),
            trace: Vec::new(),
            depth: 0,
            job: None,
        }
    }

    fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.hists.is_empty()
            && self.costs.is_empty()
            && self.trace.is_empty()
    }

    fn merge_into_global(&mut self) {
        if self.is_empty() {
            return;
        }
        let mut g = global();
        for (name, n) in self.counters.drain() {
            *g.counters.entry(name).or_insert(0) += n;
        }
        for (name, h) in self.hists.drain() {
            g.hists.entry(name).or_default().merge(&h);
        }
        g.costs.append(&mut self.costs);
        g.trace.append(&mut self.trace);
    }
}

impl Drop for ThreadSink {
    fn drop(&mut self) {
        self.merge_into_global();
    }
}

thread_local! {
    static SINK: RefCell<ThreadSink> = RefCell::new(ThreadSink::new());
}

/// Turns recording on. Sets the trace epoch if not already set; call
/// [`reset`] first for a fresh epoch and empty aggregates.
pub fn enable() {
    {
        let mut g = global();
        if g.epoch.is_none() {
            g.epoch = Some(Instant::now());
        }
    }
    ENABLED.store(true, Ordering::SeqCst);
}

/// Additionally records a [`TraceEvent`] per finished span. Implies the
/// recorder must be (or become) enabled to have any effect.
pub fn enable_trace() {
    TRACE_ON.store(true, Ordering::SeqCst);
}

/// Turns recording (and tracing) off. Already-recorded events remain
/// until [`reset`].
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
    TRACE_ON.store(false, Ordering::SeqCst);
}

/// Whether the recorder is on.
#[must_use]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Whether span tracing is on.
#[must_use]
pub fn trace_enabled() -> bool {
    TRACE_ON.load(Ordering::Relaxed)
}

/// Clears all aggregates (global and this thread's sink) and restarts
/// the trace epoch. Other threads' unmerged sinks are untouched — reset
/// from the thread that owns the recorder lifecycle, before spawning
/// workers.
pub fn reset() {
    let _ = SINK.try_with(|sink| {
        let mut s = sink.borrow_mut();
        s.counters.clear();
        s.hists.clear();
        s.costs.clear();
        s.trace.clear();
    });
    let mut g = global();
    g.counters.clear();
    g.hists.clear();
    g.costs.clear();
    g.trace.clear();
    g.epoch = Some(Instant::now());
}

/// Adds `n` to the named counter. One relaxed atomic load when disabled.
pub fn add(name: &'static str, n: u64) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    let _ = SINK.try_with(|sink| {
        *sink.borrow_mut().counters.entry(name).or_insert(0) += n;
    });
}

/// Records one observation in the named histogram.
pub fn observe(name: &'static str, value: u64) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    let _ = SINK.try_with(|sink| {
        sink.borrow_mut()
            .hists
            .entry(name)
            .or_default()
            .observe(value);
    });
}

/// A live span timer; the name doubles as the histogram fed on close.
/// Closing happens on [`Span::finish`] (returning the elapsed ns) or on
/// drop. A span opened while the recorder is disabled is inert.
#[must_use = "a span measures the scope it lives in; bind it to a variable"]
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
    depth: u32,
}

/// Opens a span. Costs one relaxed atomic load when disabled.
pub fn span(name: &'static str) -> Span {
    if !ENABLED.load(Ordering::Relaxed) {
        return Span {
            name,
            start: None,
            depth: 0,
        };
    }
    let depth = SINK
        .try_with(|sink| {
            let mut s = sink.borrow_mut();
            let d = s.depth;
            s.depth += 1;
            d
        })
        .unwrap_or(0);
    Span {
        name,
        start: Some(Instant::now()),
        depth,
    }
}

impl Span {
    /// Closes the span and returns its duration in nanoseconds (0 if the
    /// recorder was disabled when it opened).
    pub fn finish(mut self) -> u64 {
        self.close()
    }

    fn close(&mut self) -> u64 {
        let Some(start) = self.start.take() else {
            return 0;
        };
        let dur_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let name = self.name;
        let depth = self.depth;
        let tracing = TRACE_ON.load(Ordering::Relaxed);
        let _ = SINK.try_with(|sink| {
            let mut s = sink.borrow_mut();
            s.depth = s.depth.saturating_sub(1);
            s.hists.entry(name).or_default().observe(dur_ns);
            if tracing {
                let thread = s.id;
                s.trace.push(RawEvent {
                    name,
                    thread,
                    start,
                    dur_ns,
                    depth,
                });
            }
        });
        dur_ns
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let _ = self.close();
    }
}

/// Labels cost records made on this thread until the guard drops (the
/// previous label is restored, so scopes nest).
pub struct JobScope {
    prev: Option<Arc<str>>,
    active: bool,
}

/// Opens a job-label scope for [`record_cost`].
#[must_use = "the scope ends when the guard drops; bind it to a variable"]
pub fn job_scope(job: &str) -> JobScope {
    if !ENABLED.load(Ordering::Relaxed) {
        return JobScope {
            prev: None,
            active: false,
        };
    }
    let prev = SINK
        .try_with(|sink| {
            let mut s = sink.borrow_mut();
            s.job.replace(Arc::from(job))
        })
        .unwrap_or(None);
    JobScope { prev, active: true }
}

impl Drop for JobScope {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let prev = self.prev.take();
        let _ = SINK.try_with(move |sink| sink.borrow_mut().job = prev);
    }
}

/// Records one per-point cost row under the current [`job_scope`] label.
pub fn record_cost(op_index: usize, qubit: usize, prepare_ns: u64, replay_ns: u64, cells: u64) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    let _ = SINK.try_with(|sink| {
        let mut s = sink.borrow_mut();
        let job = s.job.as_deref().unwrap_or("").to_string();
        s.costs.push(CostRecord {
            job,
            op_index,
            qubit,
            prepare_ns,
            replay_ns,
            cells,
        });
    });
}

/// Merges this thread's sink into the global aggregate now. Call this at
/// the **end of every worker closure**: joining (even via
/// `std::thread::scope`) synchronizes with closure completion, not with
/// TLS destructors, so the sink's at-exit merge can race a snapshot taken
/// after the join. The main thread flushes implicitly via [`snapshot`].
pub fn flush() {
    let _ = SINK.try_with(|sink| sink.borrow_mut().merge_into_global());
}

/// A point-in-time copy of the merged aggregates.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Histograms by name (span histograms use the span name).
    pub hists: BTreeMap<String, Histogram>,
    /// Per-point cost rows, sorted by `(job, op_index, qubit)`.
    pub costs: Vec<CostRecord>,
}

/// Flushes this thread and snapshots the global aggregate.
#[must_use]
pub fn snapshot() -> Snapshot {
    flush();
    let g = global();
    let mut costs = g.costs.clone();
    costs.sort_by(|a, b| (&a.job, a.op_index, a.qubit).cmp(&(&b.job, b.op_index, b.qubit)));
    Snapshot {
        counters: g
            .counters
            .iter()
            .map(|(k, v)| ((*k).to_string(), *v))
            .collect(),
        hists: g
            .hists
            .iter()
            .map(|(k, h)| ((*k).to_string(), h.clone()))
            .collect(),
        costs,
    }
}

/// Flushes this thread, then drains and returns all trace events,
/// epoch-relative and sorted by open time.
#[must_use]
pub fn take_trace() -> Vec<TraceEvent> {
    flush();
    let mut g = global();
    let epoch = g.epoch.unwrap_or_else(Instant::now);
    let mut events: Vec<TraceEvent> = g
        .trace
        .drain(..)
        .map(|raw| TraceEvent {
            name: raw.name.to_string(),
            thread: raw.thread,
            start_ns: u64::try_from(raw.start.saturating_duration_since(epoch).as_nanos())
                .unwrap_or(u64::MAX),
            dur_ns: raw.dur_ns,
            depth: raw.depth,
        })
        .collect();
    events.sort_by_key(|e| (e.start_ns, e.thread, e.depth));
    events
}

impl Snapshot {
    /// A counter's total, `0` when it never fired — the convenience
    /// accessor assertion-heavy consumers (the chaos/shard test suites)
    /// use instead of spelling out the map lookup.
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Renders the snapshot as `metrics.json` (counters + histograms;
    /// cost rows go to [`Snapshot::costs_csv`] instead).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"version\": 1,\n  \"counters\": {");
        for (i, (name, n)) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    {}: {n}", json::quote(name));
        }
        out.push_str(if self.counters.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });
        out.push_str("  \"histograms\": {");
        for (i, (name, h)) in self.hists.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let min = if h.count == 0 { 0 } else { h.min };
            let _ = write!(
                out,
                "{sep}\n    {}: {{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[",
                json::quote(name),
                h.count,
                h.sum,
                min,
                h.max
            );
            for (j, (idx, c)) in h.nonzero_buckets().iter().enumerate() {
                let sep = if j == 0 { "" } else { "," };
                let _ = write!(out, "{sep}[{idx},{c}]");
            }
            out.push_str("]}");
        }
        out.push_str(if self.hists.is_empty() {
            "}\n}\n"
        } else {
            "\n  }\n}\n"
        });
        out
    }

    /// Parses a `metrics.json` document back into a snapshot (cost rows
    /// are carried separately in `costs.csv`; see [`parse_costs_csv`]).
    ///
    /// # Errors
    ///
    /// Malformed JSON or an unexpected document shape.
    pub fn from_json(text: &str) -> Result<Snapshot, String> {
        let doc = json::parse(text).map_err(|e| e.to_string())?;
        if doc.get("version").and_then(json::Value::as_u64) != Some(1) {
            return Err("unsupported metrics version".to_string());
        }
        let mut snap = Snapshot::default();
        let counters = doc
            .get("counters")
            .and_then(json::Value::as_obj)
            .ok_or("missing counters object")?;
        for (name, v) in counters {
            let n = v
                .as_u64()
                .ok_or_else(|| format!("counter {name:?} not a u64"))?;
            snap.counters.insert(name.clone(), n);
        }
        let hists = doc
            .get("histograms")
            .and_then(json::Value::as_obj)
            .ok_or("missing histograms object")?;
        for (name, h) in hists {
            let field = |key: &str| -> Result<u64, String> {
                h.get(key)
                    .and_then(json::Value::as_u64)
                    .ok_or_else(|| format!("histogram {name:?} missing {key:?}"))
            };
            let pairs = h
                .get("buckets")
                .and_then(json::Value::as_arr)
                .ok_or_else(|| format!("histogram {name:?} missing buckets"))?
                .iter()
                .map(|pair| {
                    let pair = pair.as_arr().unwrap_or(&[]);
                    match (
                        pair.first().and_then(json::Value::as_u64),
                        pair.get(1).and_then(json::Value::as_u64),
                    ) {
                        (Some(i), Some(c)) => Ok((i as usize, c)),
                        _ => Err(format!("histogram {name:?} has a malformed bucket pair")),
                    }
                })
                .collect::<Result<Vec<_>, _>>()?;
            snap.hists.insert(
                name.clone(),
                Histogram::from_parts(
                    field("count")?,
                    field("sum")?,
                    field("min")?,
                    field("max")?,
                    &pairs,
                ),
            );
        }
        Ok(snap)
    }

    /// Renders the cost rows as `costs.csv`.
    #[must_use]
    pub fn costs_csv(&self) -> String {
        let mut out = String::from("job,op_index,qubit,prepare_ns,replay_ns,cells\n");
        for c in &self.costs {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{}",
                c.job, c.op_index, c.qubit, c.prepare_ns, c.replay_ns, c.cells
            );
        }
        out
    }
}

/// Parses a `costs.csv` document back into cost rows.
///
/// # Errors
///
/// A malformed header or row.
pub fn parse_costs_csv(text: &str) -> Result<Vec<CostRecord>, String> {
    let mut lines = text.lines();
    let header = lines.next().unwrap_or("");
    if header != "job,op_index,qubit,prepare_ns,replay_ns,cells" {
        return Err(format!("unexpected costs.csv header: {header:?}"));
    }
    let mut out = Vec::new();
    for (i, line) in lines.enumerate() {
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 6 {
            return Err(format!("costs.csv row {}: expected 6 fields", i + 2));
        }
        let num = |idx: usize| -> Result<u64, String> {
            fields[idx]
                .parse::<u64>()
                .map_err(|_| format!("costs.csv row {}: bad number {:?}", i + 2, fields[idx]))
        };
        out.push(CostRecord {
            job: fields[0].to_string(),
            op_index: num(1)? as usize,
            qubit: num(2)? as usize,
            prepare_ns: num(3)?,
            replay_ns: num(4)?,
            cells: num(5)?,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The recorder is process-global; tests that toggle it serialize on
    /// this lock so `cargo test`'s parallel harness can't interleave them.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn exclusive() -> MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn disabled_recorder_is_silent() {
        let _guard = exclusive();
        disable();
        reset();
        add("c", 3);
        observe("h", 5);
        let sp = span("s");
        record_cost(1, 2, 3, 4, 5);
        assert_eq!(sp.finish(), 0);
        let snap = snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.hists.is_empty());
        assert!(snap.costs.is_empty());
        assert!(take_trace().is_empty());
    }

    #[test]
    fn counters_spans_and_costs_aggregate() {
        let _guard = exclusive();
        reset();
        enable();
        add("cells", 312);
        add("cells", 312);
        {
            let outer = span("outer_ns");
            let inner = span("inner_ns");
            assert!(inner.finish() < u64::MAX);
            drop(outer);
        }
        {
            let _scope = job_scope("bv-2@lima");
            record_cost(4, 1, 100, 900, 312);
        }
        record_cost(9, 0, 50, 200, 6);
        disable();

        let snap = snapshot();
        assert_eq!(snap.counters["cells"], 624);
        assert_eq!(snap.hists["outer_ns"].count, 1);
        assert_eq!(snap.hists["inner_ns"].count, 1);
        assert_eq!(snap.costs.len(), 2);
        // Sorted by (job, op_index, qubit): unlabeled row first.
        assert_eq!(snap.costs[0].job, "");
        assert_eq!(snap.costs[1].job, "bv-2@lima");
        assert_eq!(snap.costs[1].cells, 312);
        reset();
    }

    #[test]
    fn worker_threads_merge_on_flush() {
        let _guard = exclusive();
        reset();
        enable();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    add("work", 10);
                    observe("lat_ns", 128);
                    flush();
                });
            }
        });
        add("work", 2);
        disable();
        let snap = snapshot();
        assert_eq!(snap.counters["work"], 42);
        assert_eq!(snap.hists["lat_ns"].count, 4);
        reset();
    }

    #[test]
    fn trace_events_nest_and_round_trip() {
        let _guard = exclusive();
        reset();
        enable();
        enable_trace();
        {
            let outer = span("outer_ns");
            {
                let _inner = span("inner_ns");
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            drop(outer);
        }
        disable();
        let events = take_trace();
        assert_eq!(events.len(), 2);
        trace::validate_nesting(&events).unwrap();
        let reparsed = trace::parse_jsonl(&trace::to_jsonl(&events)).unwrap();
        assert_eq!(reparsed, events);
        let inner = events.iter().find(|e| e.name == "inner_ns").unwrap();
        assert_eq!(inner.depth, 1);
        assert!(inner.dur_ns >= 1_000_000);
        reset();
    }

    #[test]
    fn snapshot_serializes_and_parses_back() {
        let _guard = exclusive();
        reset();
        enable();
        add("export.files", 7);
        observe("phase_ns", 1000);
        observe("phase_ns", 2500);
        {
            let _scope = job_scope("ghz-2@lima");
            record_cost(3, 1, 11, 22, 6);
        }
        disable();
        let snap = snapshot();
        let back = Snapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back.counters, snap.counters);
        assert_eq!(back.hists, snap.hists);
        let costs = parse_costs_csv(&snap.costs_csv()).unwrap();
        assert_eq!(costs, snap.costs);
        reset();
    }

    #[test]
    fn json_artifacts_reject_wrong_shapes() {
        assert!(Snapshot::from_json("{}").is_err());
        assert!(Snapshot::from_json("{\"version\":2,\"counters\":{},\"histograms\":{}}").is_err());
        assert!(parse_costs_csv("nope\n").is_err());
        assert!(
            parse_costs_csv("job,op_index,qubit,prepare_ns,replay_ns,cells\na,b,c,d,e,f\n")
                .is_err()
        );
        let empty = Snapshot::default();
        assert_eq!(Snapshot::from_json(&empty.to_json()).unwrap(), empty);
    }
}
