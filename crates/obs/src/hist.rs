//! Fixed log-bucketed histograms.
//!
//! The bucket layout is a pure function of the value — bucket `0` holds
//! zero, bucket `i ≥ 1` holds values in `[2^(i-1), 2^i)` — so merging
//! per-thread histograms is element-wise addition and two runs that
//! observe the same values produce the same layout, regardless of
//! observation order or thread interleaving. Alongside the buckets the
//! histogram keeps exact `count`/`sum`/`min`/`max`, so phase totals read
//! from an artifact are not quantized.

/// Number of buckets: one for zero plus one per power of two of `u64`.
pub const BUCKETS: usize = 65;

/// Bucket index of a value under the fixed log layout.
#[must_use]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Inclusive lower bound of a bucket.
#[must_use]
pub fn bucket_floor(index: usize) -> u64 {
    if index == 0 {
        0
    } else {
        1u64 << (index - 1)
    }
}

/// A log-bucketed histogram with exact moments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Observations recorded.
    pub count: u64,
    /// Exact sum of all observed values.
    pub sum: u64,
    /// Smallest observed value (`u64::MAX` when empty).
    pub min: u64,
    /// Largest observed value.
    pub max: u64,
    buckets: [u64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; BUCKETS],
        }
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[bucket_index(value)] += 1;
    }

    /// Merges another histogram into this one (bucket layouts are fixed,
    /// so merging is element-wise).
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += *theirs;
        }
    }

    /// Rebuilds a histogram from its serialized form (exact moments plus
    /// the non-empty `(index, count)` bucket pairs).
    #[must_use]
    pub fn from_parts(count: u64, sum: u64, min: u64, max: u64, nonzero: &[(usize, u64)]) -> Self {
        let mut h = Histogram {
            count,
            sum,
            min: if count == 0 { u64::MAX } else { min },
            max,
            buckets: [0; BUCKETS],
        };
        for &(i, c) in nonzero {
            if i < BUCKETS {
                h.buckets[i] = c;
            }
        }
        h
    }

    /// Non-empty buckets as `(index, count)` pairs in ascending index
    /// order — the serialized form.
    #[must_use]
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
            .collect()
    }

    /// Mean observed value (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_deterministic_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        for i in 1..BUCKETS {
            assert_eq!(bucket_index(bucket_floor(i)), i, "floor of bucket {i}");
        }
    }

    #[test]
    fn observe_tracks_exact_moments() {
        let mut h = Histogram::new();
        for v in [5u64, 0, 1000, 5] {
            h.observe(v);
        }
        assert_eq!(h.count, 4);
        assert_eq!(h.sum, 1010);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 1000);
        assert_eq!(h.nonzero_buckets(), vec![(0, 1), (3, 2), (10, 1)]);
    }

    #[test]
    fn from_parts_round_trips_serialized_form() {
        let mut h = Histogram::new();
        for v in [7u64, 0, 300, 300, 1 << 40] {
            h.observe(v);
        }
        let back = Histogram::from_parts(h.count, h.sum, h.min, h.max, &h.nonzero_buckets());
        assert_eq!(back, h);
        assert_eq!(Histogram::from_parts(0, 0, 0, 0, &[]), Histogram::new());
    }

    #[test]
    fn merge_is_order_independent() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for (i, v) in [3u64, 17, 0, 90, 17, 2048].iter().enumerate() {
            whole.observe(*v);
            if i % 2 == 0 {
                a.observe(*v);
            } else {
                b.observe(*v);
            }
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, whole);
        assert_eq!(ba, whole);
    }
}
