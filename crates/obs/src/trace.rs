//! Span trace events: JSONL serialization and nesting validation.
//!
//! A trace is the flat list of finished spans, one JSON object per line:
//!
//! ```text
//! {"name":"point.replay_ns","thread":2,"start_ns":81250,"dur_ns":902133,"depth":1}
//! ```
//!
//! `start_ns` is relative to the recorder epoch (set by `enable`/`reset`),
//! `thread` is a small sequential id assigned in order of first telemetry
//! activity, and `depth` is the span-stack depth at open time. Because the
//! recorder pushes an event when a span *closes*, file order is finish
//! order; [`validate_nesting`] re-sorts per thread and checks that the
//! recorded depths describe a proper interval tree (every span contained
//! in its parent).

use crate::json::{self, Value};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One finished span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Span name (a metric histogram name, e.g. `replay.grid_ns`).
    pub name: String,
    /// Sequential recorder thread id.
    pub thread: u64,
    /// Open time in nanoseconds since the recorder epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Span-stack depth at open time (0 = root).
    pub depth: u32,
}

impl TraceEvent {
    fn end_ns(&self) -> u64 {
        self.start_ns.saturating_add(self.dur_ns)
    }
}

/// Renders events as JSONL, one object per line.
#[must_use]
pub fn to_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for ev in events {
        let _ = writeln!(
            out,
            "{{\"name\":{},\"thread\":{},\"start_ns\":{},\"dur_ns\":{},\"depth\":{}}}",
            json::quote(&ev.name),
            ev.thread,
            ev.start_ns,
            ev.dur_ns,
            ev.depth
        );
    }
    out
}

/// Parses a JSONL trace (blank lines ignored).
///
/// # Errors
///
/// A line that is not a JSON object with the expected fields.
pub fn parse_jsonl(text: &str) -> Result<Vec<TraceEvent>, String> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let field = |key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("line {}: missing field {key:?}", lineno + 1))
        };
        out.push(TraceEvent {
            name: v
                .get("name")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("line {}: missing field \"name\"", lineno + 1))?
                .to_string(),
            thread: field("thread")?,
            start_ns: field("start_ns")?,
            dur_ns: field("dur_ns")?,
            depth: u32::try_from(field("depth")?)
                .map_err(|_| format!("line {}: depth out of range", lineno + 1))?,
        });
    }
    Ok(out)
}

/// Checks that every span nests inside its parent.
///
/// Per thread, events are sorted by open time (parents first on ties —
/// a parent opens before its children) and replayed against a span
/// stack: each event's recorded depth must match the stack after
/// unwinding to it, and its interval must lie inside the parent's.
///
/// # Errors
///
/// A human-readable description of the first violation.
pub fn validate_nesting(events: &[TraceEvent]) -> Result<(), String> {
    let mut per_thread: BTreeMap<u64, Vec<&TraceEvent>> = BTreeMap::new();
    for ev in events {
        per_thread.entry(ev.thread).or_default().push(ev);
    }
    for (thread, mut evs) in per_thread {
        evs.sort_by_key(|e| (e.start_ns, e.depth));
        let mut stack: Vec<&TraceEvent> = Vec::new();
        for ev in evs {
            if (ev.depth as usize) > stack.len() {
                return Err(format!(
                    "thread {thread}: span {:?} at depth {} with only {} open ancestors",
                    ev.name,
                    ev.depth,
                    stack.len()
                ));
            }
            stack.truncate(ev.depth as usize);
            if let Some(parent) = stack.last() {
                if ev.start_ns < parent.start_ns || ev.end_ns() > parent.end_ns() {
                    return Err(format!(
                        "thread {thread}: span {:?} [{}, {}] escapes parent {:?} [{}, {}]",
                        ev.name,
                        ev.start_ns,
                        ev.end_ns(),
                        parent.name,
                        parent.start_ns,
                        parent.end_ns()
                    ));
                }
            }
            stack.push(ev);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &str, thread: u64, start_ns: u64, dur_ns: u64, depth: u32) -> TraceEvent {
        TraceEvent {
            name: name.to_string(),
            thread,
            start_ns,
            dur_ns,
            depth,
        }
    }

    #[test]
    fn jsonl_round_trips() {
        let events = vec![
            ev("campaign.total_ns", 0, 0, 1000, 0),
            ev("point.replay_ns", 1, 10, 500, 1),
        ];
        let text = to_jsonl(&events);
        assert_eq!(text.lines().count(), 2);
        assert_eq!(parse_jsonl(&text).unwrap(), events);
    }

    #[test]
    fn well_nested_spans_validate_even_in_finish_order() {
        // Finish order: inner spans first, the way the recorder emits them.
        let events = vec![
            ev("inner_a", 0, 10, 20, 1),
            ev("inner_b", 0, 40, 30, 1),
            ev("leaf", 0, 45, 10, 2),
            ev("outer", 0, 0, 100, 0),
            ev("other_root", 1, 5, 50, 0),
        ];
        validate_nesting(&events).unwrap();
    }

    #[test]
    fn escaping_and_orphaned_spans_are_rejected() {
        let escapes = vec![ev("outer", 0, 0, 50, 0), ev("inner", 0, 40, 30, 1)];
        assert!(validate_nesting(&escapes).unwrap_err().contains("escapes"));
        let orphan = vec![ev("inner", 0, 10, 5, 2), ev("outer", 0, 0, 100, 0)];
        assert!(validate_nesting(&orphan).unwrap_err().contains("ancestors"));
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse_jsonl("{\"name\":\"x\"}").is_err());
        assert!(parse_jsonl("not json").is_err());
        assert!(parse_jsonl("\n\n").unwrap().is_empty());
    }
}
