//! A leveled stderr log sink for the CLI.
//!
//! Independent of the metric recorder: verbosity is a process-wide knob
//! set once from the command line. Policy (from the CLI's `--quiet` /
//! `--verbose` flags):
//!
//! - `error` — always printed.
//! - `warn`  — printed unless `--quiet`; prefixed `warning:` so salvage
//!   and reconcile anomalies are visible in scrollback.
//! - `info`  — progress lines; printed when `--verbose`, or at normal
//!   verbosity only when stderr is a terminal (batch/CI logs stay clean).
//! - `debug` — printed only when `--verbose`.

use std::io::IsTerminal;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// How chatty the process is on stderr.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verbosity {
    /// Errors only.
    Quiet,
    /// Warnings always; progress only on a terminal.
    Normal,
    /// Everything, terminal or not.
    Verbose,
}

static LEVEL: AtomicU8 = AtomicU8::new(1);

/// Sets the process-wide verbosity.
pub fn set_verbosity(level: Verbosity) {
    let raw = match level {
        Verbosity::Quiet => 0,
        Verbosity::Normal => 1,
        Verbosity::Verbose => 2,
    };
    LEVEL.store(raw, Ordering::Relaxed);
}

/// Current process-wide verbosity.
#[must_use]
pub fn verbosity() -> Verbosity {
    match LEVEL.load(Ordering::Relaxed) {
        0 => Verbosity::Quiet,
        1 => Verbosity::Normal,
        _ => Verbosity::Verbose,
    }
}

fn stderr_is_tty() -> bool {
    static TTY: OnceLock<bool> = OnceLock::new();
    *TTY.get_or_init(|| std::io::stderr().is_terminal())
}

/// Whether an `info` line would be printed right now.
#[must_use]
pub fn info_enabled() -> bool {
    match verbosity() {
        Verbosity::Quiet => false,
        Verbosity::Normal => stderr_is_tty(),
        Verbosity::Verbose => true,
    }
}

/// Progress line (see module docs for when it shows).
pub fn info(msg: &str) {
    if info_enabled() {
        eprintln!("{msg}");
    }
}

/// Visible warning; suppressed only by `--quiet`.
pub fn warn(msg: &str) {
    if verbosity() != Verbosity::Quiet {
        eprintln!("warning: {msg}");
    }
}

/// Always printed.
pub fn error(msg: &str) {
    eprintln!("error: {msg}");
}

/// Printed only with `--verbose`.
pub fn debug(msg: &str) {
    if verbosity() == Verbosity::Verbose {
        eprintln!("{msg}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verbosity_gates_are_consistent() {
        // The level is process-global, so exercise all transitions in one
        // test and restore the default at the end.
        set_verbosity(Verbosity::Quiet);
        assert_eq!(verbosity(), Verbosity::Quiet);
        assert!(!info_enabled());

        set_verbosity(Verbosity::Verbose);
        assert_eq!(verbosity(), Verbosity::Verbose);
        assert!(info_enabled());

        set_verbosity(Verbosity::Normal);
        assert_eq!(verbosity(), Verbosity::Normal);
        // Under a test harness stderr may or may not be a terminal; the
        // policy just has to match the probe.
        assert_eq!(info_enabled(), stderr_is_tty());
    }
}
