//! A minimal JSON reader/writer for the telemetry artifacts.
//!
//! The container has no registry access, so — like the CLI's TOML-subset
//! parser — this is a small hand-rolled recursive-descent parser covering
//! exactly what `metrics.json` and `trace.jsonl` need: objects, arrays,
//! strings with `\"`/`\\`/`\n`-style escapes, numbers, booleans and null.
//! It exists so `qufi stats` (and the CI telemetry job) can *read back*
//! what the recorder wrote; it is not a general-purpose JSON library.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (integers up to 2^53 round-trip exactly).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; key order is normalized to sorted.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The value as an object, if it is one.
    #[must_use]
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a whole number.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// Member lookup on objects (`None` elsewhere).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj().and_then(|m| m.get(key))
    }
}

/// A parse failure with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses one JSON document (trailing whitespace allowed, nothing else).
///
/// # Errors
///
/// Malformed input.
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err("trailing characters after document", pos));
    }
    Ok(value)
}

fn err(message: &str, offset: usize) -> ParseError {
    ParseError {
        message: message.to_string(),
        offset,
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), ParseError> {
    if bytes.get(*pos) == Some(&byte) {
        *pos += 1;
        Ok(())
    } else {
        Err(err(&format!("expected {:?}", byte as char), *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Value::Null),
        Some(b'-' | b'0'..=b'9') => parse_num(bytes, pos),
        _ => Err(err("expected a value", *pos)),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, ParseError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(err(&format!("expected {lit:?}"), *pos))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Value::Num)
        .ok_or_else(|| err("malformed number", start))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err("unterminated string", *pos)),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let escape = bytes.get(*pos).ok_or_else(|| err("bad escape", *pos))?;
                match escape {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| err("bad \\u escape", *pos))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err("bad \\u escape", *pos))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(err("unknown escape", *pos)),
                }
                *pos += 1;
            }
            Some(&b) if b < 0x80 => {
                out.push(b as char);
                *pos += 1;
            }
            Some(_) => {
                // Multi-byte UTF-8: copy the whole scalar.
                let rest = &bytes[*pos..];
                let text = std::str::from_utf8(rest).map_err(|_| err("invalid utf-8", *pos))?;
                let ch = text.chars().next().expect("non-empty");
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    expect(bytes, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(map));
            }
            _ => return Err(err("expected ',' or '}'", *pos)),
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(err("expected ',' or ']'", *pos)),
        }
    }
}

/// Renders a string with JSON escaping.
#[must_use]
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_metrics_shapes() {
        let doc = r#"{"version":1,"counters":{"a.b":12,"c":0},
            "histograms":{"x_ns":{"count":3,"sum":700,"min":100,"max":400,
            "buckets":[[7,2],[9,1]]}}}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("version").unwrap().as_u64(), Some(1));
        assert_eq!(
            v.get("counters").unwrap().get("a.b").unwrap().as_u64(),
            Some(12)
        );
        let hist = v.get("histograms").unwrap().get("x_ns").unwrap();
        assert_eq!(hist.get("sum").unwrap().as_u64(), Some(700));
        assert_eq!(hist.get("buckets").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let quoted = quote("a\"b\\c\nd");
        assert_eq!(quoted, r#""a\"b\\c\nd""#);
        assert_eq!(parse(&quoted).unwrap().as_str(), Some("a\"b\\c\nd"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{}x").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn parses_nested_arrays_bools_null() {
        let v = parse(r#"[true, false, null, [1.5, -2], {"k": "v"}]"#).unwrap();
        let items = v.as_arr().unwrap();
        assert_eq!(items[0], Value::Bool(true));
        assert_eq!(items[2], Value::Null);
        assert_eq!(items[3].as_arr().unwrap()[1], Value::Num(-2.0));
        assert_eq!(items[4].get("k").unwrap().as_str(), Some("v"));
    }
}
