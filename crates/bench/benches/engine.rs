//! Microbenchmarks of the simulation and transpilation engines — the
//! substrate costs underneath every campaign number in EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use qufi_algos::bernstein_vazirani;
use qufi_core::campaign::{golden_outputs, run_point_sweep, run_point_sweep_naive};
use qufi_core::engine::SweepExecutor;
use qufi_core::executor::{Executor, NoisyExecutor};
use qufi_core::fault::{enumerate_injection_points, FaultGrid};
use qufi_noise::{simulate, BackendCalibration, KrausChannel};
use qufi_sim::{DensityMatrix, Gate, Statevector};
use qufi_transpile::{CouplingMap, OptimizationLevel, Transpiler};

fn bench_statevector(c: &mut Criterion) {
    let mut group = c.benchmark_group("statevector");
    for n in [4usize, 7, 10] {
        group.bench_function(format!("h_layer_{n}q"), |b| {
            b.iter_batched(
                || Statevector::new(n).expect("fits"),
                |mut sv| {
                    for q in 0..n {
                        sv.apply_gate(Gate::H, &[q]);
                    }
                    sv
                },
                BatchSize::SmallInput,
            )
        });
        group.bench_function(format!("cx_chain_{n}q"), |b| {
            b.iter_batched(
                || Statevector::new(n).expect("fits"),
                |mut sv| {
                    for q in 0..n - 1 {
                        sv.apply_gate(Gate::Cx, &[q, q + 1]);
                    }
                    sv
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_density(c: &mut Criterion) {
    let mut group = c.benchmark_group("density_matrix");
    let channel = KrausChannel::thermal_relaxation(120e-6, 80e-6, 400e-9);
    for n in [4usize, 7] {
        group.bench_function(format!("unitary_gate_{n}q"), |b| {
            b.iter_batched(
                || DensityMatrix::new(n).expect("fits"),
                |mut rho| {
                    rho.apply_gate(Gate::H, &[0]);
                    rho
                },
                BatchSize::SmallInput,
            )
        });
        group.bench_function(format!("kraus_channel_{n}q"), |b| {
            b.iter_batched(
                || DensityMatrix::new(n).expect("fits"),
                |mut rho| {
                    rho.apply_kraus(channel.kraus_operators(), &[0]);
                    rho
                },
                BatchSize::SmallInput,
            )
        });
        group.bench_function(format!("superop_channel_{n}q"), |b| {
            b.iter_batched(
                || DensityMatrix::new(n).expect("fits"),
                |mut rho| {
                    rho.apply_superoperator(channel.superoperator(), &[0]);
                    rho
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    let w = bernstein_vazirani(0b101, 3);
    let cal = BackendCalibration::jakarta();

    group.bench_function("transpile_bv4_level3", |b| {
        let t = Transpiler::new(CouplingMap::ibm_h7(), OptimizationLevel::Level3);
        b.iter(|| t.run(&w.circuit).expect("transpiles"))
    });
    group.bench_function("transpile_bv4_level0", |b| {
        let t = Transpiler::new(CouplingMap::ibm_h7(), OptimizationLevel::Level0);
        b.iter(|| t.run(&w.circuit).expect("transpiles"))
    });
    group.bench_function("noisy_run_bv4_raw", |b| {
        let model = cal.noise_model();
        let t = Transpiler::new(CouplingMap::ibm_h7(), OptimizationLevel::Level3);
        let routed = t.run(&w.circuit).expect("transpiles");
        b.iter(|| simulate::run_noisy(routed.circuit(), &model).expect("runs"))
    });
    group.bench_function("noisy_executor_bv4_end_to_end", |b| {
        let ex = NoisyExecutor::new(cal.clone());
        b.iter(|| ex.execute(&w.circuit).expect("runs"))
    });
    group.finish();
}

/// Forked-state sweep engine vs the naive per-configuration oracle on the
/// paper's bv-4/jakarta baseline — the BENCHMARKS.md before/after numbers.
/// Per-iteration work is one injection point's full grid sweep.
fn bench_sweep_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep_engine");
    group.sample_size(10);
    let w = bernstein_vazirani(0b101, 3);
    let golden = golden_outputs(&w.circuit).expect("golden");
    let ex = NoisyExecutor::new(BackendCalibration::jakarta());
    // A mid-circuit point: representative prefix/suffix balance.
    let points = enumerate_injection_points(&w.circuit);
    let point = points[points.len() / 2];

    for (label, grid) in [
        ("coarse", FaultGrid::coarse()),
        ("paper312", FaultGrid::paper()),
    ] {
        group.bench_function(format!("forked_point_sweep_bv4_{label}"), |b| {
            b.iter(|| run_point_sweep(&w.circuit, &golden, &ex, point, &grid).expect("sweep"))
        });
        group.bench_function(format!("naive_point_sweep_bv4_{label}"), |b| {
            b.iter(|| run_point_sweep_naive(&w.circuit, &golden, &ex, point, &grid).expect("sweep"))
        });
    }
    group.finish();
}

/// Grid-parallel replay on one prepared point — the BENCHMARKS.md
/// per-point numbers for the two-level thread model. Per iteration: all
/// 312 paper configurations of one bv-4/jakarta injection point, replayed
/// from the parked snapshot across 1/2/4 grid threads.
fn bench_replay_grid(c: &mut Criterion) {
    let mut group = c.benchmark_group("replay_grid");
    group.sample_size(10);
    let w = bernstein_vazirani(0b101, 3);
    let ex = NoisyExecutor::new(BackendCalibration::jakarta());
    let points = enumerate_injection_points(&w.circuit);
    let point = points[points.len() / 2];
    let prepared = ex.prepare(&w.circuit, point).expect("prepare");
    let grid = FaultGrid::paper();
    for threads in [1usize, 2, 4] {
        group.bench_function(format!("bv4_paper312_t{threads}"), |b| {
            b.iter(|| prepared.replay_grid(&grid, threads).expect("grid replay"))
        });
    }
    group.finish();
}

/// Batched cell-major replay vs the scalar per-cell path on the same
/// prepared bv-4/jakarta point — the BENCHMARKS.md "batched grid replay"
/// numbers. The width is pinned via `QUFI_BATCH_CELLS` around each case;
/// `scalar` is the retained per-cell path on the identical prepared
/// snapshot, so the ratio isolates batching itself. Exports from both
/// paths are bit-identical; only the wall clock moves.
fn bench_replay_grid_batched(c: &mut Criterion) {
    let mut group = c.benchmark_group("replay_grid_batched");
    group.sample_size(10);
    let w = bernstein_vazirani(0b101, 3);
    let ex = NoisyExecutor::new(BackendCalibration::jakarta());
    let points = enumerate_injection_points(&w.circuit);
    let point = points[points.len() / 2];
    let prepared = ex.prepare(&w.circuit, point).expect("prepare");
    for (label, grid) in [
        ("coarse", FaultGrid::coarse()),
        ("paper312", FaultGrid::paper()),
    ] {
        group.bench_function(format!("bv4_{label}_scalar_t1"), |b| {
            b.iter(|| prepared.replay_grid(&grid, 1).expect("grid replay"))
        });
        for width in [4usize, 8, 16] {
            std::env::set_var("QUFI_BATCH_CELLS", width.to_string());
            group.bench_function(format!("bv4_{label}_w{width}_t1"), |b| {
                b.iter(|| prepared.replay_grid_batched(&grid, 1).expect("grid replay"))
            });
        }
        std::env::remove_var("QUFI_BATCH_CELLS");
    }
    group.finish();
}

/// Telemetry overhead on the hot replay path (BENCHMARKS.md "phase
/// attribution"). `disabled` is the default campaign configuration —
/// every record call is one relaxed atomic load — and must match PR 5's
/// recorded `replay_grid` numbers; `enabled` pays one `Instant::now()`
/// pair per phase (never per cell) and should sit within noise of it.
fn bench_obs_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_overhead");
    group.sample_size(10);
    let w = bernstein_vazirani(0b101, 3);
    let ex = NoisyExecutor::new(BackendCalibration::jakarta());
    let points = enumerate_injection_points(&w.circuit);
    let point = points[points.len() / 2];
    let prepared = ex.prepare(&w.circuit, point).expect("prepare");
    let grid = FaultGrid::paper();

    qufi_obs::disable();
    group.bench_function("replay_bv4_paper312_t1_disabled", |b| {
        b.iter(|| prepared.replay_grid(&grid, 1).expect("grid replay"))
    });
    qufi_obs::reset();
    qufi_obs::enable();
    group.bench_function("replay_bv4_paper312_t1_enabled", |b| {
        b.iter(|| prepared.replay_grid(&grid, 1).expect("grid replay"))
    });
    qufi_obs::disable();
    qufi_obs::reset();
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_statevector, bench_density, bench_pipeline, bench_sweep_engine,
        bench_replay_grid, bench_replay_grid_batched, bench_obs_overhead
}
criterion_main!(benches);
