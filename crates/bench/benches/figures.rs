//! One benchmark per paper figure, on reduced (45°) grids so `cargo bench`
//! stays interactive. The `fig*` binaries regenerate the full-grid numbers.

use criterion::{criterion_group, criterion_main, Criterion};
use qufi_bench::experiments::{
    default_executor, fig10_distributions, fig11_hardware, fig4_worked_example, fig5_heatmaps,
    fig6_per_qubit, fig7_scaling, fig7_trajectory_extension, fig8_double, fig9_delta,
};
use qufi_core::fault::FaultGrid;
use std::f64::consts::PI;

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    // Benches time the campaign pipeline, not the figure: a 2×2 shift grid
    // exercises the same code per injection point at interactive speed.
    // The fig* binaries run the real grids.
    let grid = FaultGrid::custom(vec![0.0, PI], vec![0.0, PI]);

    group.bench_function("fig4_worked_example", |b| b.iter(fig4_worked_example));
    group.bench_function("fig5_heatmaps_tiny", |b| {
        let ex = default_executor();
        b.iter(|| fig5_heatmaps(&grid, &ex))
    });
    group.bench_function("fig6_per_qubit_tiny", |b| {
        let ex = default_executor();
        b.iter(|| fig6_per_qubit(&grid, &ex))
    });
    group.bench_function("fig7_scaling_to4_tiny", |b| {
        let ex = default_executor();
        b.iter(|| fig7_scaling(&grid, &ex, 4))
    });
    group.bench_function("fig8_to_10_double_tiny", |b| {
        let ex = default_executor();
        b.iter(|| {
            let f8 = fig8_double(&grid, &ex);
            let delta = fig9_delta(&f8);
            let f10 = fig10_distributions(&f8);
            (delta.mean(), f10.double_stats)
        })
    });
    group.bench_function("fig11_hardware_vs_sim", |b| b.iter(|| fig11_hardware(7)));
    // Fig. 7 extension: per-point trajectory sweeps past the density wall.
    // 64 shots on the 2×2 grid keeps each width interactive; BENCHMARKS.md
    // records the production shot counts.
    for width in [10usize, 12, 14] {
        group.bench_function(format!("fig7_trajectory_ext_{width}q"), |b| {
            b.iter(|| fig7_trajectory_extension(&grid, 64, &[width]))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_figures
}
criterion_main!(benches);
