//! Ablation benches for the design choices called out in DESIGN.md:
//!
//! * exact density-matrix probabilities vs 1024-shot sampling — cost of the
//!   shot-based QVF estimate the paper uses;
//! * transpiler optimization level 0 vs 3 — how much level 3 buys in
//!   downstream simulation cost;
//! * statevector vs density-matrix evolution of the same circuit — the
//!   price of supporting noise.

use criterion::{criterion_group, criterion_main, Criterion};
use qufi_algos::bernstein_vazirani;
use qufi_core::executor::{Executor, HardwareExecutor, NoisyExecutor};
use qufi_noise::BackendCalibration;
use qufi_sim::{DensityMatrix, Statevector};
use qufi_transpile::{CouplingMap, Layout, OptimizationLevel, RoutingStrategy, Transpiler};

fn bench_exact_vs_shots(c: &mut Criterion) {
    let mut group = c.benchmark_group("abl_exact_vs_shots");
    group.sample_size(10);
    let w = bernstein_vazirani(0b101, 3);
    let cal = BackendCalibration::jakarta();
    group.bench_function("exact_probabilities", |b| {
        let ex = NoisyExecutor::new(cal.clone());
        b.iter(|| ex.execute(&w.circuit).expect("runs"))
    });
    group.bench_function("sampled_1024_shots", |b| {
        let ex = HardwareExecutor::with_config(cal.clone(), 7, 1024, 0.0);
        b.iter(|| ex.execute(&w.circuit).expect("runs"))
    });
    group.finish();
}

fn bench_opt_levels(c: &mut Criterion) {
    let mut group = c.benchmark_group("abl_opt_levels");
    group.sample_size(10);
    let w = bernstein_vazirani(0b101, 3);
    let cal = BackendCalibration::jakarta();
    for (name, level) in [
        ("level0", OptimizationLevel::Level0),
        ("level1", OptimizationLevel::Level1),
        ("level3", OptimizationLevel::Level3),
    ] {
        group.bench_function(format!("noisy_exec_{name}"), |b| {
            let ex = NoisyExecutor::with_level(cal.clone(), level);
            b.iter(|| ex.execute(&w.circuit).expect("runs"))
        });
    }
    group.finish();
}

fn bench_sv_vs_dm(c: &mut Criterion) {
    let mut group = c.benchmark_group("abl_statevector_vs_density");
    group.sample_size(20);
    let w = bernstein_vazirani(0b10101, 5); // 6 qubits
    group.bench_function("statevector_6q", |b| {
        b.iter(|| Statevector::from_circuit(&w.circuit).expect("fits"))
    });
    group.bench_function("density_matrix_6q", |b| {
        b.iter(|| {
            let mut rho = DensityMatrix::new(w.circuit.num_qubits()).expect("fits");
            rho.run_circuit(&w.circuit);
            rho
        })
    });
    group.finish();
}

fn bench_routing_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("abl_routing");
    group.sample_size(20);
    // A routing-heavy circuit: long-range CX pairs on a line device.
    let mut qc = qufi_sim::QuantumCircuit::new(6, 6);
    qc.h(0);
    for (a, b) in [(0, 5), (1, 4), (0, 3), (2, 5), (0, 5)] {
        qc.cx(a, b);
    }
    qc.measure_all();
    let _ = Layout::trivial(6, 6); // routing-only comparison uses the transpiler
    for (name, strategy) in [
        ("shortest_path", RoutingStrategy::ShortestPath),
        ("lookahead_w4", RoutingStrategy::Lookahead { window: 4 }),
        ("lookahead_w8", RoutingStrategy::Lookahead { window: 8 }),
    ] {
        group.bench_function(name, |b| {
            let t = Transpiler::new(CouplingMap::line(6), OptimizationLevel::Level1)
                .with_routing(strategy);
            b.iter(|| t.run(&qc).expect("routes"))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_exact_vs_shots, bench_opt_levels, bench_sv_vs_dm, bench_routing_strategies
}
criterion_main!(benches);
