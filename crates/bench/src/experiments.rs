//! Drivers reproducing each figure of the paper's evaluation (§V).

use qufi_algos::{paper_workloads, scaling_family, Workload};
use qufi_core::campaign::{run_single_campaign, CampaignOptions, CampaignResult};
use qufi_core::double::{neighbor_pairs, run_double_campaign, DoubleCampaignResult, DoubleOptions};
use qufi_core::engine::SweepExecutor;
use qufi_core::executor::{
    Executor, HardwareExecutor, IdealExecutor, NoisyExecutor, TrajectoryExecutor,
};
use qufi_core::fault::{enumerate_injection_points, inject_fault, FaultGrid, FaultParams};
use qufi_core::metrics::{mean, qvf_from_dist, stddev};
use qufi_core::report::{Heatmap, Histogram};
use qufi_noise::BackendCalibration;
use qufi_sim::Gate;
use std::f64::consts::PI;

/// The default device of the reproduction: the synthetic Jakarta
/// calibration (the machine the paper's hardware experiment used).
pub fn default_executor() -> NoisyExecutor {
    NoisyExecutor::new(BackendCalibration::jakarta())
}

/// Fig. 4 — the worked example: a θ=π/4 fault on q0 of Bernstein-Vazirani
/// (secret 101) after the first Hadamard, shown as the fault-free vs faulty
/// output distributions and the resulting QVF.
pub fn fig4_worked_example() -> String {
    use std::fmt::Write as _;
    let w = qufi_algos::bernstein_vazirani(0b101, 3);
    let ex = default_executor();
    let clean = ex.execute(&w.circuit).expect("clean run");
    // op_index 2 is the first H on q0 (ops: x(3), h(3), h(0), …) — inject
    // after the Hadamard that puts q0 into superposition.
    let point = enumerate_injection_points(&w.circuit)
        .into_iter()
        .find(|p| p.qubit == 0)
        .expect("q0 has gates");
    let faulty_qc =
        inject_fault(&w.circuit, point, FaultParams::shift(PI / 4.0, 0.0)).expect("in range");
    let faulty = ex.execute(&faulty_qc).expect("faulty run");

    let mut out = String::new();
    let _ = writeln!(out, "Bernstein-Vazirani (secret 101), θ=π/4 fault on q0:");
    let _ = writeln!(out, "state   P(fault-free)  P(faulty)");
    for idx in 0..clean.len() {
        let _ = writeln!(
            out,
            "{}     {:>10.3}   {:>10.3}",
            clean.bitstring(idx),
            clean.prob(idx),
            faulty.prob(idx)
        );
    }
    let qvf_clean = qvf_from_dist(&clean, &w.correct_outputs);
    let qvf_faulty = qvf_from_dist(&faulty, &w.correct_outputs);
    let _ = writeln!(
        out,
        "QVF fault-free = {qvf_clean:.4}, faulty = {qvf_faulty:.4}"
    );
    out
}

/// Fig. 5 — QVF heatmaps of the three 4-qubit circuits under single-fault
/// injection over the full (φ, θ) grid.
pub fn fig5_heatmaps(
    grid: &FaultGrid,
    executor: &impl SweepExecutor,
) -> Vec<(Workload, CampaignResult, Heatmap)> {
    paper_workloads(4)
        .into_iter()
        .map(|w| {
            let opts = CampaignOptions {
                grid: grid.clone(),
                points: None,
                threads: 0,
                naive: false,
            };
            let res = run_single_campaign(&w.circuit, &w.correct_outputs, executor, &opts)
                .expect("campaign");
            let hm = Heatmap::from_campaign(&res);
            (w, res, hm)
        })
        .collect()
}

/// Fig. 6 — per-qubit QVF heatmaps for the 4-qubit QFT.
pub fn fig6_per_qubit(
    grid: &FaultGrid,
    executor: &impl SweepExecutor,
) -> (CampaignResult, Vec<(usize, Heatmap)>) {
    let w = &paper_workloads(4)[2]; // qft-4
    let opts = CampaignOptions {
        grid: grid.clone(),
        points: None,
        threads: 0,
        naive: false,
    };
    let res =
        run_single_campaign(&w.circuit, &w.correct_outputs, executor, &opts).expect("campaign");
    let maps = res
        .injected_qubits()
        .into_iter()
        .map(|q| (q, Heatmap::from_campaign_qubit(&res, q)))
        .collect();
    (res, maps)
}

/// One scaling data point of Fig. 7.
#[derive(Debug, Clone)]
pub struct ScalingPoint {
    /// Total qubits of the instance.
    pub qubits: usize,
    /// 50-bin QVF density histogram.
    pub histogram: Histogram,
    /// Mean QVF.
    pub mean: f64,
    /// QVF standard deviation.
    pub stddev: f64,
    /// Number of injections.
    pub injections: usize,
}

/// Fig. 7 — QVF distribution histograms while scaling each circuit from 4
/// to `max_qubits` qubits.
pub fn fig7_scaling(
    grid: &FaultGrid,
    executor: &impl SweepExecutor,
    max_qubits: usize,
) -> Vec<(String, Vec<ScalingPoint>)> {
    ["bv", "dj", "qft"]
        .into_iter()
        .map(|family| {
            let points = scaling_family(family, max_qubits)
                .into_iter()
                .map(|w| {
                    let opts = CampaignOptions {
                        grid: grid.clone(),
                        points: None,
                        threads: 0,
                        naive: false,
                    };
                    let res = run_single_campaign(&w.circuit, &w.correct_outputs, executor, &opts)
                        .expect("campaign");
                    let qvfs = res.qvfs();
                    ScalingPoint {
                        qubits: w.circuit.num_qubits(),
                        histogram: Histogram::new(&qvfs, 50),
                        mean: mean(&qvfs),
                        stddev: stddev(&qvfs),
                        injections: qvfs.len(),
                    }
                })
                .collect();
            (family.to_string(), points)
        })
        .collect()
}

/// Fig. 8 — Bernstein-Vazirani single vs double fault injection:
/// (a) the single-fault heatmap restricted to the half-φ grid,
/// (b) the double-fault heatmap (averaging all second faults), and
/// (c) the detailed second-fault sweep with the first fault at (π, π).
pub struct Fig8Output {
    /// Single-fault campaign (half-φ grid).
    pub single: CampaignResult,
    /// Single-fault heatmap — Fig. 8a.
    pub single_map: Heatmap,
    /// Double-fault campaign.
    pub double: DoubleCampaignResult,
    /// Double-fault first-fault heatmap — Fig. 8b.
    pub double_map: Heatmap,
    /// Detail records with the first fault fixed to (π, π) — Fig. 8c.
    pub detail: Vec<qufi_core::double::DoubleInjectionRecord>,
}

/// Runs the Fig. 8 experiment on the given executor.
pub fn fig8_double(grid: &FaultGrid, executor: &NoisyExecutor) -> Fig8Output {
    let w = qufi_algos::bernstein_vazirani(0b101, 3);
    let single_opts = CampaignOptions {
        grid: grid.clone(),
        points: None,
        threads: 0,
        naive: false,
    };
    let single = run_single_campaign(&w.circuit, &w.correct_outputs, executor, &single_opts)
        .expect("single campaign");
    let single_map = Heatmap::from_campaign(&single);

    let pairs = neighbor_pairs(&w.circuit, executor.transpiler()).expect("pairs");
    let double_opts = DoubleOptions {
        grid: grid.clone(),
        points: None,
        pairs,
        threads: 0,
        naive: false,
    };
    let double = run_double_campaign(&w.circuit, &w.correct_outputs, executor, &double_opts)
        .expect("double campaign");
    let double_map = Heatmap::from_double_campaign(&double);
    let t_max = *grid.thetas.last().expect("nonempty grid");
    let p_max = *grid.phis.last().expect("nonempty grid");
    let detail = double.slice_first_fault(t_max, p_max);
    Fig8Output {
        single,
        single_map,
        double,
        double_map,
        detail,
    }
}

/// Fig. 9 — the ΔQVF (double − single) heatmap derived from Fig. 8.
pub fn fig9_delta(fig8: &Fig8Output) -> Heatmap {
    fig8.double_map.delta(&fig8.single_map)
}

/// Fig. 10 — the single vs double QVF distributions with their moments.
pub struct Fig10Output {
    /// Single-fault histogram.
    pub single_hist: Histogram,
    /// Double-fault histogram.
    pub double_hist: Histogram,
    /// Single mean / stddev.
    pub single_stats: (f64, f64),
    /// Double mean / stddev.
    pub double_stats: (f64, f64),
}

/// Derives Fig. 10 from the Fig. 8 campaigns.
pub fn fig10_distributions(fig8: &Fig8Output) -> Fig10Output {
    let s = fig8.single.qvfs();
    let d = fig8.double.qvfs();
    Fig10Output {
        single_hist: Histogram::new(&s, 50),
        double_hist: Histogram::new(&d, 50),
        single_stats: (mean(&s), stddev(&s)),
        double_stats: (mean(&d), stddev(&d)),
    }
}

/// One gate-equivalent fault comparison row of Fig. 11.
#[derive(Debug, Clone)]
pub struct Fig11Row {
    /// Gate whose phase shift was injected (T, S, Z, Y).
    pub gate: &'static str,
    /// Mean QVF on the simulated-hardware backend.
    pub hardware_qvf: f64,
    /// Mean QVF on the noise-model simulation.
    pub simulation_qvf: f64,
}

/// Fig. 11 — QVF of gate-equivalent faults (T, S, Z, Y) on Bernstein-
/// Vazirani: simulated IBM-Q Jakarta hardware vs noise-model simulation,
/// injected at every fault position.
pub fn fig11_hardware(seed: u64) -> Vec<Fig11Row> {
    let w = qufi_algos::bernstein_vazirani(0b101, 3);
    let cal = BackendCalibration::jakarta();
    let hw = HardwareExecutor::new(cal.clone(), seed);
    let sim = NoisyExecutor::new(cal);
    let shifts: [(&'static str, Gate); 4] = [
        ("t", Gate::T),
        ("s", Gate::S),
        ("z", Gate::Z),
        ("y", Gate::Y),
    ];
    shifts
        .into_iter()
        .map(|(name, gate)| {
            let (theta, phi) = gate.as_fault_shift().expect("gate has a fault shift");
            let grid = FaultGrid::custom(vec![theta], vec![phi]);
            let run = |ex: &dyn SweepExecutor| -> f64 {
                let opts = CampaignOptions {
                    grid: grid.clone(),
                    points: None,
                    threads: 1,
                    naive: false,
                };
                run_single_campaign(&w.circuit, &w.correct_outputs, &ex, &opts)
                    .expect("campaign")
                    .mean_qvf()
            };
            Fig11Row {
                gate: name,
                hardware_qvf: run(&hw),
                simulation_qvf: run(&sim),
            }
        })
        .collect()
}

/// One width step of the Fig. 7 trajectory extension.
#[derive(Debug, Clone)]
pub struct TrajectoryExtensionPoint {
    /// Circuit width.
    pub qubits: usize,
    /// Mean QVF across the swept grid at the probed injection point.
    pub mean_qvf: f64,
    /// Grid cells swept (each averaging `shots` trajectories).
    pub cells: usize,
}

/// Fig. 7 extension — the paper's scaling study stops where the
/// density-matrix cost wall (gates × 312 × 4ⁿ) stops being interactive,
/// around 11 qubits. The Monte-Carlo trajectory executor replaces the 4ⁿ
/// term with shots × 2ⁿ, carrying the same per-point QVF sweep to
/// 10–16-qubit GHZ circuits on the 16-qubit guadalupe calibration. One
/// mid-circuit injection point per width keeps the driver interactive;
/// the per-point cost is what BENCHMARKS.md pins.
pub fn fig7_trajectory_extension(
    grid: &FaultGrid,
    shots: u64,
    widths: &[usize],
) -> Vec<TrajectoryExtensionPoint> {
    widths
        .iter()
        .map(|&n| {
            let w = qufi_algos::build_workload(&format!("ghz-{n}")).expect("registry workload");
            let ex = TrajectoryExecutor::with_shots(
                BackendCalibration::guadalupe(),
                0xF160 + n as u64,
                shots,
            );
            let points = enumerate_injection_points(&w.circuit);
            let point = points[points.len() / 2];
            let prepared = ex.prepare(&w.circuit, point).expect("prepare");
            let cells = prepared.replay_grid_batched(grid, 1).expect("replay grid");
            let qvfs: Vec<f64> = cells
                .iter()
                .map(|dist| qvf_from_dist(dist, &w.correct_outputs))
                .collect();
            TrajectoryExtensionPoint {
                qubits: n,
                mean_qvf: mean(&qvfs),
                cells: qvfs.len(),
            }
        })
        .collect()
}

/// The ideal-executor variant used in tests and ablations.
pub fn ideal_executor() -> IdealExecutor {
    IdealExecutor
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_report_mentions_golden_state() {
        let report = fig4_worked_example();
        assert!(report.contains("101"));
        assert!(report.contains("QVF"));
    }

    #[test]
    fn fig5_coarse_produces_three_heatmaps() {
        let out = fig5_heatmaps(&FaultGrid::coarse(), &IdealExecutor);
        assert_eq!(out.len(), 3);
        for (w, res, hm) in &out {
            assert!(!res.is_empty(), "{} empty", w.name);
            // The (0,0) fault cell must be perfect on the ideal executor.
            assert!(hm.value(0, 0) < 1e-9, "{}: {}", w.name, hm.value(0, 0));
        }
    }

    #[test]
    fn fig7_single_family_scales() {
        let grid = FaultGrid::custom(vec![0.0, PI], vec![0.0]);
        let out = fig7_scaling(&grid, &IdealExecutor, 5);
        assert_eq!(out.len(), 3);
        for (name, points) in &out {
            assert_eq!(points.len(), 2, "{name}");
            assert!(points[0].injections > 0);
        }
    }

    #[test]
    fn fig7_trajectory_extension_crosses_the_density_wall() {
        let grid = FaultGrid::custom(vec![0.0, PI], vec![0.0]);
        let out = fig7_trajectory_extension(&grid, 32, &[10, 13]);
        assert_eq!(out.len(), 2);
        for pt in &out {
            assert!(
                pt.qubits > qufi_sim::density::MAX_QUBITS || pt.qubits == 10,
                "{pt:?}"
            );
            assert_eq!(pt.cells, 2);
            assert!((0.0..=1.0).contains(&pt.mean_qvf), "{pt:?}");
        }
        // A θ=π cell drives QVF up relative to the null cell, so the mean
        // sits strictly inside (0, 1).
        assert!(out.iter().all(|p| p.mean_qvf > 0.0));
    }

    #[test]
    fn fig11_rows_track_both_backends() {
        let rows = fig11_hardware(7);
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!((0.0..=1.0).contains(&r.hardware_qvf), "{r:?}");
            assert!((0.0..=1.0).contains(&r.simulation_qvf), "{r:?}");
        }
    }
}
