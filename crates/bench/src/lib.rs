//! Shared experiment drivers for the QuFI reproduction.
//!
//! Every figure of the paper's evaluation (§V) has a driver here, used both
//! by the `fig*` binaries (full paper-scale grids, CSV output under
//! `results/`) and by the Criterion benches (coarse grids, timing only).
//!
//! | Paper artifact | Driver | Binary |
//! |----------------|--------|--------|
//! | Fig. 4 worked example | [`experiments::fig4_worked_example`] | `fig4` |
//! | Fig. 5 QVF heatmaps (BV/DJ/QFT, 4q) | [`experiments::fig5_heatmaps`] | `fig5` |
//! | Fig. 6 per-qubit heatmaps (QFT-4) | [`experiments::fig6_per_qubit`] | `fig6` |
//! | Fig. 7 scaling histograms (4→7q) | [`experiments::fig7_scaling`] | `fig7` |
//! | Fig. 8 single vs double heatmaps | [`experiments::fig8_double`] | `fig8` |
//! | Fig. 9 ΔQVF map | [`experiments::fig9_delta`] | `fig9` |
//! | Fig. 10 QVF distributions | [`experiments::fig10_distributions`] | `fig10` |
//! | Fig. 11 hardware vs simulation | [`experiments::fig11_hardware`] | `fig11` |

pub mod experiments;

use std::fs;
use std::path::{Path, PathBuf};

/// Where experiment binaries drop their CSV artifacts.
pub fn results_dir() -> PathBuf {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .map(|p| p.join("results"))
        .unwrap_or_else(|| PathBuf::from("results"));
    let _ = fs::create_dir_all(&dir);
    dir
}

/// Writes a CSV artifact and reports the path on stdout.
pub fn write_artifact(name: &str, contents: &str) {
    let path = results_dir().join(name);
    match fs::write(&path, contents) {
        Ok(()) => println!("  wrote {}", path.display()),
        Err(e) => eprintln!("  failed to write {}: {e}", path.display()),
    }
}

/// `true` when the binary was invoked with `--coarse` (45° grids instead of
/// the paper's 15°, for quick smoke runs).
pub fn coarse_requested() -> bool {
    std::env::args().any(|a| a == "--coarse")
}

/// A console section header.
pub fn banner(title: &str) {
    println!("\n=== {title} ===");
}
