//! Fig. 6 — per-qubit QVF heatmaps of the 4-qubit QFT, including the
//! highlighted (φ=π, θ=π/4) cell the paper reads off per qubit.

use qufi_bench::experiments::{default_executor, fig6_per_qubit};
use qufi_core::fault::FaultGrid;
use std::f64::consts::PI;

fn main() {
    let grid = if qufi_bench::coarse_requested() {
        FaultGrid::coarse()
    } else {
        FaultGrid::paper()
    };
    qufi_bench::banner("Fig. 6 — per-qubit QVF heatmaps, QFT-4");
    let executor = default_executor();
    let (res, maps) = fig6_per_qubit(&grid, &executor);
    println!(
        "campaign: {} injections, mean QVF {:.4}",
        res.len(),
        res.mean_qvf()
    );

    // The paper highlights the (φ=π, θ=π/4) square per qubit.
    let ti = grid
        .thetas
        .iter()
        .position(|&t| (t - PI / 4.0).abs() < 1e-9);
    let pi_idx = grid.phis.iter().position(|&p| (p - PI).abs() < 1e-9);
    for (q, hm) in &maps {
        println!("\nqubit #{q}: mean {:.4}", hm.mean());
        if let (Some(ti), Some(pi_idx)) = (ti, pi_idx) {
            println!("  QVF at (φ=π, θ=π/4): {:.4}", hm.value(pi_idx, ti));
        }
        println!("{}", hm.ascii());
        qufi_bench::write_artifact(&format!("fig6_qft4_qubit{q}.csv"), &hm.to_csv());
    }
}
