//! Fig. 10 — QVF distributions: single vs double fault injection on
//! Bernstein-Vazirani, with the mean/σ the paper reports (single
//! 0.4647/0.1818 vs double 0.5338 — double faults shift mass upward).

use qufi_bench::experiments::{default_executor, fig10_distributions, fig8_double};
use qufi_core::fault::FaultGrid;

fn main() {
    let grid = if qufi_bench::coarse_requested() {
        FaultGrid::coarse()
    } else {
        FaultGrid::paper_half_phi()
    };
    qufi_bench::banner("Fig. 10 — QVF distribution, single vs double faults (BV)");
    let executor = default_executor();
    let f8 = fig8_double(&grid, &executor);
    let out = fig10_distributions(&f8);

    println!(
        "single: mean {:.4}, σ {:.4}  (paper: 0.4647 / 0.1818)",
        out.single_stats.0, out.single_stats.1
    );
    println!(
        "double: mean {:.4}, σ {:.4}  (paper: 0.5338)",
        out.double_stats.0, out.double_stats.1
    );
    println!("\nsingle-fault histogram:");
    print!("{}", out.single_hist.ascii());
    println!("\ndouble-fault histogram:");
    print!("{}", out.double_hist.ascii());

    qufi_bench::write_artifact("fig10_single_hist.csv", &out.single_hist.to_csv());
    qufi_bench::write_artifact("fig10_double_hist.csv", &out.double_hist.to_csv());
}
