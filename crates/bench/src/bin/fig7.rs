//! Fig. 7 — QVF distribution histograms while scaling BV / DJ / QFT from 4
//! to 7 qubits: BV and DJ keep their reliability profile, QFT concentrates
//! toward QVF ≈ 0.5 (lower σ) as it scales.

use qufi_bench::experiments::{default_executor, fig7_scaling};
use qufi_core::fault::FaultGrid;
use qufi_math::AngleGrid;
use std::f64::consts::PI;

fn main() {
    let coarse = qufi_bench::coarse_requested();
    let full = std::env::args().any(|a| a == "--full");
    // Default: 30°-step grid. The histograms of Fig. 7 are distribution
    // statistics over a smooth QVF surface, so halving the angular
    // resolution leaves mean/σ essentially unchanged while making the
    // 7-qubit sweep tractable on one core; pass --full for the paper's
    // 15° grid.
    let grid = if coarse {
        FaultGrid::coarse()
    } else if full {
        FaultGrid::paper()
    } else {
        FaultGrid::custom(
            AngleGrid::new(0.0, PI, PI / 6.0, true).values(),
            AngleGrid::new(0.0, 2.0 * PI, PI / 6.0, false).values(),
        )
    };
    let max_qubits = 7;
    qufi_bench::banner("Fig. 7 — QVF histograms vs circuit scale (4→7 qubits)");
    let executor = default_executor();
    for (family, points) in fig7_scaling(&grid, &executor, max_qubits) {
        println!("\n[{family}]");
        println!(
            "{:>6} {:>10} {:>9} {:>9}",
            "qubits", "injections", "meanQVF", "stddev"
        );
        for p in &points {
            println!(
                "{:>6} {:>10} {:>9.4} {:>9.4}",
                p.qubits, p.injections, p.mean, p.stddev
            );
            qufi_bench::write_artifact(
                &format!("fig7_{family}_{}q.csv", p.qubits),
                &p.histogram.to_csv(),
            );
        }
        // The paper's scaling claim, printed as an explicit check.
        if points.len() >= 2 {
            let first = &points[0];
            let last = &points[points.len() - 1];
            let trend = last.stddev - first.stddev;
            println!(
                "  σ(QVF) {}q → {}q: {:+.4} ({})",
                first.qubits,
                last.qubits,
                trend,
                if family == "qft" {
                    "QFT concentrates toward 0.5 as it scales"
                } else {
                    "profile approximately scale-independent"
                }
            );
        }
    }
}
