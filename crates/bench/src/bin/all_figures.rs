//! Runs every figure experiment in sequence (pass `--coarse` to smoke-test).

use std::process::Command;

fn main() {
    let coarse = qufi_bench::coarse_requested();
    for fig in [
        "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
    ] {
        let mut cmd = Command::new(
            std::env::current_exe()
                .expect("self path")
                .with_file_name(fig),
        );
        if coarse {
            cmd.arg("--coarse");
        }
        match cmd.status() {
            Ok(s) if s.success() => {}
            Ok(s) => eprintln!("{fig} exited with {s}"),
            Err(e) => eprintln!("could not launch {fig}: {e}"),
        }
    }
}
