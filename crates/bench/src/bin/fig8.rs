//! Fig. 8 — Bernstein-Vazirani single vs double fault injection: (a) the
//! single-fault heatmap on the half-φ grid, (b) the double-fault heatmap
//! averaging all second-fault configurations, (c) the detailed second-fault
//! sweep with the first fault fixed at (π, π).

//! Since Figs. 9 and 10 derive from the same two campaigns, this binary
//! also writes their artifacts (`fig9_delta.csv`, `fig10_*_hist.csv`), so a
//! single run regenerates the whole single-vs-double analysis.

use qufi_bench::experiments::{default_executor, fig10_distributions, fig8_double, fig9_delta};
use qufi_core::fault::FaultGrid;

fn main() {
    let grid = if qufi_bench::coarse_requested() {
        FaultGrid::coarse()
    } else {
        FaultGrid::paper_half_phi()
    };
    qufi_bench::banner("Fig. 8 — BV single vs double fault injection");
    let executor = default_executor();
    let out = fig8_double(&grid, &executor);

    println!(
        "(a) single faults: {} injections, mean QVF {:.4}",
        out.single.len(),
        out.single.mean_qvf()
    );
    println!("{}", out.single_map.ascii());
    println!(
        "(b) double faults: {} injections, mean QVF {:.4}",
        out.double.len(),
        out.double.mean_qvf()
    );
    println!("{}", out.double_map.ascii());

    println!("(c) second-fault sweep with first fault at (θ0=π, φ0=π):");
    println!("{:>8} {:>8} {:>8}", "θ1", "φ1", "QVF");
    for r in out.detail.iter().take(30) {
        println!("{:>8.3} {:>8.3} {:>8.4}", r.theta1, r.phi1, r.qvf);
    }
    if out.detail.len() > 30 {
        println!("  … {} more rows in CSV", out.detail.len() - 30);
    }

    qufi_bench::write_artifact("fig8a_single.csv", &out.single_map.to_csv());
    qufi_bench::write_artifact("fig8b_double.csv", &out.double_map.to_csv());
    let mut detail_csv = String::from("theta1,phi1,qvf\n");
    for r in &out.detail {
        detail_csv.push_str(&format!("{:.6},{:.6},{:.6}\n", r.theta1, r.phi1, r.qvf));
    }
    qufi_bench::write_artifact("fig8c_detail.csv", &detail_csv);

    // Fig. 9 — ΔQVF derived from the same campaigns.
    let delta = fig9_delta(&out);
    println!(
        "\nFig. 9: mean ΔQVF (double − single) = {:+.4}",
        out.double.mean_qvf() - out.single.mean_qvf()
    );
    qufi_bench::write_artifact("fig9_delta.csv", &delta.to_csv());

    // Fig. 10 — the two QVF distributions with moments.
    let f10 = fig10_distributions(&out);
    println!(
        "Fig. 10: single mean {:.4} σ {:.4} | double mean {:.4} σ {:.4}",
        f10.single_stats.0, f10.single_stats.1, f10.double_stats.0, f10.double_stats.1
    );
    qufi_bench::write_artifact("fig10_single_hist.csv", &f10.single_hist.to_csv());
    qufi_bench::write_artifact("fig10_double_hist.csv", &f10.double_hist.to_csv());
}
