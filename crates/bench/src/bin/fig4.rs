//! Fig. 4 — worked example: θ=π/4 fault in Bernstein-Vazirani on q0.

fn main() {
    qufi_bench::banner("Fig. 4 — worked fault-injection example (BV, secret 101)");
    print!("{}", qufi_bench::experiments::fig4_worked_example());
}
