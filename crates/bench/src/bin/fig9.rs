//! Fig. 9 — ΔQVF (double − single) heatmap for Bernstein-Vazirani: the QVF
//! worsens everywhere, most near (π, π).

use qufi_bench::experiments::{default_executor, fig8_double, fig9_delta};
use qufi_core::fault::FaultGrid;

fn main() {
    let grid = if qufi_bench::coarse_requested() {
        FaultGrid::coarse()
    } else {
        FaultGrid::paper_half_phi()
    };
    qufi_bench::banner("Fig. 9 — ΔQVF = double − single (BV)");
    let executor = default_executor();
    let out = fig8_double(&grid, &executor);
    let delta = fig9_delta(&out);

    println!(
        "mean ΔQVF = {:+.4} (positive = double faults are worse)",
        out.double.mean_qvf() - out.single.mean_qvf()
    );
    println!("{:>8} {:>8} {:>9}", "φ", "θ", "ΔQVF");
    for (pi, &phi) in delta.phis().iter().enumerate() {
        for (ti, &theta) in delta.thetas().iter().enumerate() {
            let v = delta.value(pi, ti);
            if !v.is_nan() {
                println!("{phi:>8.3} {theta:>8.3} {v:>+9.4}");
            }
        }
    }
    qufi_bench::write_artifact("fig9_delta.csv", &delta.to_csv());
}
