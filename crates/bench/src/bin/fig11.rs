//! Fig. 11 — QVF comparison between (simulated) IBM-Q Jakarta hardware and
//! the noise-model simulation for the four gate-equivalent faults
//! (T, S, Z, Y) on Bernstein-Vazirani. The paper finds absolute differences
//! below 0.052.

use qufi_bench::experiments::fig11_hardware;

fn main() {
    qufi_bench::banner("Fig. 11 — simulated hardware vs noise-model simulation (BV)");
    let rows = fig11_hardware(2022);
    println!(
        "{:<6} {:>12} {:>12} {:>8}",
        "gate", "hardware", "simulation", "|Δ|"
    );
    let mut csv = String::from("gate,hardware_qvf,simulation_qvf,abs_diff\n");
    let mut max_diff = 0.0f64;
    for r in &rows {
        let diff = (r.hardware_qvf - r.simulation_qvf).abs();
        max_diff = max_diff.max(diff);
        println!(
            "{:<6} {:>12.4} {:>12.4} {:>8.4}",
            r.gate, r.hardware_qvf, r.simulation_qvf, diff
        );
        csv.push_str(&format!(
            "{},{:.6},{:.6},{:.6}\n",
            r.gate, r.hardware_qvf, r.simulation_qvf, diff
        ));
    }
    println!("max |Δ| = {max_diff:.4} (paper reports < 0.052)");
    qufi_bench::write_artifact("fig11_hardware_vs_sim.csv", &csv);
}
