//! Fig. 5 — QVF heatmaps for the 4-qubit BV / DJ / QFT circuits under the
//! full single-fault sweep (φ ∈ [0,2π) and θ ∈ [0,π], 15° steps), injected
//! over the Jakarta noise model. Also prints the §V-B severity
//! classification table and the fraction of noise-compensating injections.

use qufi_bench::experiments::{default_executor, fig5_heatmaps};
use qufi_core::fault::FaultGrid;

fn main() {
    let grid = if qufi_bench::coarse_requested() {
        FaultGrid::coarse()
    } else {
        FaultGrid::paper()
    };
    qufi_bench::banner("Fig. 5 — QVF heatmaps, 4-qubit circuits, single faults");
    let executor = default_executor();
    let results = fig5_heatmaps(&grid, &executor);
    println!(
        "{:<8} {:>10} {:>9} {:>9} {:>8} {:>8} {:>8} {:>10}",
        "circuit", "injections", "meanQVF", "baseline", "masked", "dubious", "sdc", "improved%"
    );
    for (w, res, hm) in &results {
        let (m, d, s) = res.severity_counts();
        println!(
            "{:<8} {:>10} {:>9.4} {:>9.4} {:>8} {:>8} {:>8} {:>9.2}%",
            w.name,
            res.len(),
            res.mean_qvf(),
            res.baseline_qvf,
            m,
            d,
            s,
            100.0 * res.improved_fraction()
        );
        println!("{}", hm.ascii());
        qufi_bench::write_artifact(&format!("fig5_{}.csv", w.name), &hm.to_csv());
    }
}
