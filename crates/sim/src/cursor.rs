//! Resumable circuit evolution.
//!
//! A fault-injection sweep varies only the injected `U(θ, φ, 0)` gate: the
//! hundreds of configurations of one injection point share the entire
//! circuit prefix before the injector. [`CircuitCursor`] exploits that: it
//! evolves a circuit up to an instruction boundary **once**, hands out cheap
//! state snapshots ([`CircuitCursor::fork`]), and each snapshot finishes the
//! suffix independently. Because a cursor applies exactly the same
//! operations in exactly the same order as a straight-line run, a
//! fork-and-finish evolution is **bit-identical** to evolving the whole
//! circuit from scratch — the property the campaign engine's differential
//! test suite pins down.

use crate::circuit::{Op, QuantumCircuit};
use crate::density::DensityMatrix;
use crate::error::SimError;
use crate::gate::Gate;
use crate::statevector::Statevector;

/// A simulation state a [`CircuitCursor`] can drive: something that starts
/// at `|0…0⟩` and absorbs unitary gates.
pub trait EvolvableState: Clone {
    /// The all-zeros state over `n` qubits.
    ///
    /// # Errors
    ///
    /// Returns an error when the register is too wide for the engine.
    fn zero_state(n: usize) -> Result<Self, SimError>;

    /// Applies one unitary gate in place.
    fn apply_gate(&mut self, gate: Gate, qubits: &[usize]);
}

impl EvolvableState for Statevector {
    fn zero_state(n: usize) -> Result<Self, SimError> {
        Statevector::new(n)
    }

    fn apply_gate(&mut self, gate: Gate, qubits: &[usize]) {
        Statevector::apply_gate(self, gate, qubits);
    }
}

impl EvolvableState for DensityMatrix {
    fn zero_state(n: usize) -> Result<Self, SimError> {
        DensityMatrix::new(n)
    }

    fn apply_gate(&mut self, gate: Gate, qubits: &[usize]) {
        DensityMatrix::apply_gate(self, gate, qubits);
    }
}

/// A paused evolution: the state after the first [`position`] instructions
/// of a circuit.
///
/// Barriers and measurements are skipped, exactly as
/// [`Statevector::from_circuit`] and [`DensityMatrix::run_circuit`] skip
/// them, so `advance_to(qc.size())` reproduces those entry points
/// bit-for-bit.
///
/// [`position`]: CircuitCursor::position
///
/// # Example
///
/// ```
/// use qufi_sim::{CircuitCursor, Gate, QuantumCircuit, Statevector};
///
/// let mut qc = QuantumCircuit::new(2, 0);
/// qc.h(0).cx(0, 1);
/// // Evolve the prefix (just the H) once…
/// let mut cursor = CircuitCursor::<Statevector>::start(&qc).unwrap();
/// cursor.advance_to(&qc, 1);
/// // …then replay two different suffixes from snapshots.
/// let mut plain = cursor.fork();
/// plain.advance_to_end(&qc);
/// let mut faulty = cursor.fork();
/// faulty.apply_gate(Gate::X, &[1]);
/// faulty.advance_to_end(&qc);
/// assert!((plain.state().probabilities().prob(0b11) - 0.5).abs() < 1e-12);
/// assert!((faulty.state().probabilities().prob(0b01) - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct CircuitCursor<S> {
    state: S,
    pos: usize,
}

impl<S: EvolvableState> CircuitCursor<S> {
    /// A cursor at instruction 0 of `qc`, in the all-zeros state.
    ///
    /// # Errors
    ///
    /// Returns an error when the register is too wide for the engine.
    pub fn start(qc: &QuantumCircuit) -> Result<Self, SimError> {
        Ok(CircuitCursor {
            state: S::zero_state(qc.num_qubits())?,
            pos: 0,
        })
    }

    /// Resumes from an externally-produced state at instruction `pos` —
    /// the inverse of [`CircuitCursor::into_state`].
    pub fn resume(state: S, pos: usize) -> Self {
        CircuitCursor { state, pos }
    }

    /// Number of instructions already applied (the next instruction index).
    #[inline]
    pub fn position(&self) -> usize {
        self.pos
    }

    /// The current state.
    #[inline]
    pub fn state(&self) -> &S {
        &self.state
    }

    /// Consumes the cursor, yielding the state.
    pub fn into_state(self) -> S {
        self.state
    }

    /// A snapshot of the paused evolution: an independent cursor at the
    /// same position whose state is a deep copy (one `memcpy` of the
    /// amplitude/density buffer). Replays from a fork never mutate the
    /// original.
    pub fn fork(&self) -> Self {
        self.clone()
    }

    /// Applies instructions `[position, upto)` of `qc` (gates evolve the
    /// state; barriers and measurements are skipped).
    ///
    /// # Panics
    ///
    /// Panics when `upto` is behind the cursor or beyond the circuit.
    pub fn advance_to(&mut self, qc: &QuantumCircuit, upto: usize) {
        assert!(
            upto >= self.pos,
            "cursor at {} cannot rewind to {upto}",
            self.pos
        );
        assert!(
            upto <= qc.size(),
            "advance_to({upto}) beyond circuit of {} instructions",
            qc.size()
        );
        for op in &qc.ops()[self.pos..upto] {
            if let Op::Gate { gate, qubits } = op {
                self.state.apply_gate(*gate, qubits);
            }
        }
        self.pos = upto;
    }

    /// Applies every remaining instruction of `qc`.
    ///
    /// # Panics
    ///
    /// Panics when the circuit is shorter than the cursor position.
    pub fn advance_to_end(&mut self, qc: &QuantumCircuit) {
        self.advance_to(qc, qc.size());
    }

    /// Applies one out-of-circuit gate (e.g. a spliced fault injector)
    /// without moving the instruction position.
    ///
    /// # Panics
    ///
    /// Panics if operands are invalid for the state.
    pub fn apply_gate(&mut self, gate: Gate, qubits: &[usize]) {
        self.state.apply_gate(gate, qubits);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_circuit() -> QuantumCircuit {
        let mut qc = QuantumCircuit::new(3, 3);
        qc.h(0).cx(0, 1).t(1).barrier(&[]).ry(0.7, 2).cx(1, 2);
        qc.measure_all();
        qc
    }

    #[test]
    fn split_run_matches_straight_run_statevector() {
        let qc = sample_circuit();
        let whole = Statevector::from_circuit(&qc).unwrap();
        for k in 0..=qc.size() {
            let mut cursor = CircuitCursor::<Statevector>::start(&qc).unwrap();
            cursor.advance_to(&qc, k);
            let mut fork = cursor.fork();
            fork.advance_to_end(&qc);
            assert_eq!(fork.state(), &whole, "split at {k} diverged");
        }
    }

    #[test]
    fn split_run_matches_straight_run_density() {
        let qc = sample_circuit();
        let mut whole = DensityMatrix::new(3).unwrap();
        whole.run_circuit(&qc);
        for k in [0, 2, 4, qc.size()] {
            let mut cursor = CircuitCursor::<DensityMatrix>::start(&qc).unwrap();
            cursor.advance_to(&qc, k);
            cursor.advance_to_end(&qc);
            assert_eq!(cursor.state(), &whole, "split at {k} diverged");
        }
    }

    #[test]
    fn fork_leaves_the_original_untouched() {
        let qc = sample_circuit();
        let mut cursor = CircuitCursor::<Statevector>::start(&qc).unwrap();
        cursor.advance_to(&qc, 2);
        let before = cursor.state().clone();
        let mut fork = cursor.fork();
        fork.apply_gate(Gate::X, &[0]);
        fork.advance_to_end(&qc);
        assert_eq!(cursor.state(), &before, "fork mutated the snapshot");
        assert_eq!(cursor.position(), 2);
    }

    #[test]
    fn resume_round_trips_state_and_position() {
        let qc = sample_circuit();
        let mut cursor = CircuitCursor::<Statevector>::start(&qc).unwrap();
        cursor.advance_to(&qc, 3);
        let pos = cursor.position();
        let resumed = CircuitCursor::resume(cursor.into_state(), pos);
        let mut straight = CircuitCursor::<Statevector>::start(&qc).unwrap();
        straight.advance_to(&qc, 3);
        assert_eq!(resumed.state(), straight.state());
        let mut finished = resumed;
        finished.advance_to_end(&qc);
        assert_eq!(finished.state(), &Statevector::from_circuit(&qc).unwrap());
    }

    #[test]
    #[should_panic(expected = "cannot rewind")]
    fn rewinding_panics() {
        let qc = sample_circuit();
        let mut cursor = CircuitCursor::<Statevector>::start(&qc).unwrap();
        cursor.advance_to(&qc, 3);
        cursor.advance_to(&qc, 1);
    }

    #[test]
    #[should_panic(expected = "beyond circuit")]
    fn overrunning_panics() {
        let qc = sample_circuit();
        let mut cursor = CircuitCursor::<Statevector>::start(&qc).unwrap();
        cursor.advance_to(&qc, qc.size() + 1);
    }

    #[test]
    fn too_wide_register_is_an_error() {
        let qc = QuantumCircuit::new(crate::density::MAX_QUBITS + 1, 0);
        assert!(CircuitCursor::<DensityMatrix>::start(&qc).is_err());
    }
}
