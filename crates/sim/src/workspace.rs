//! Reusable scratch buffers for steady-state allocation-free evolution.
//!
//! A fault-injection campaign applies millions of gates and channels; the
//! unitary and superoperator kernels are in-place and allocate nothing, but
//! Kraus application `ρ ↦ Σₖ Kₖ ρ Kₖ†` inherently needs two `ρ`-sized
//! scratch buffers (one per-term image, one accumulator). An
//! [`EvolutionWorkspace`] owns those buffers so a long-lived caller — a
//! sweep replay loop, a property-test oracle — pays the allocation once and
//! reuses it for every subsequent application
//! ([`crate::DensityMatrix::apply_kraus_with`]).
//!
//! The workspace is plain scratch: it carries no state between calls, so
//! sharing one across unrelated evolutions is always sound (each use
//! overwrites it completely), and results are bit-identical with or without
//! a reused workspace.

use qufi_math::Complex;

/// Reusable scratch buffers for in-place channel application.
///
/// # Example
///
/// ```
/// use qufi_sim::{DensityMatrix, EvolutionWorkspace};
/// use qufi_math::CMatrix;
///
/// let mut ws = EvolutionWorkspace::new();
/// let mut rho = DensityMatrix::new(2).unwrap();
/// let flip = [
///     CMatrix::identity(2).scale_real(0.8f64.sqrt()),
///     CMatrix::pauli_x().scale_real(0.2f64.sqrt()),
/// ];
/// // Buffers are allocated on first use and reused afterwards.
/// rho.apply_kraus_with(&flip, &[0], &mut ws);
/// rho.apply_kraus_with(&flip, &[1], &mut ws);
/// assert!((rho.trace().re - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Default)]
pub struct EvolutionWorkspace {
    /// Per-Kraus-term image `Kₖ ρ Kₖ†`.
    pub(crate) term: Vec<Complex>,
    /// Channel-output accumulator `Σₖ Kₖ ρ Kₖ†`.
    pub(crate) acc: Vec<Complex>,
}

impl EvolutionWorkspace {
    /// An empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        EvolutionWorkspace::default()
    }

    /// Grows both buffers to at least `len` amplitudes (no-op — and no
    /// allocation — once they are large enough).
    pub(crate) fn ensure(&mut self, len: usize) {
        if self.term.len() < len {
            self.term.resize(len, Complex::ZERO);
        }
        if self.acc.len() < len {
            self.acc.resize(len, Complex::ZERO);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ensure_grows_once_and_keeps_capacity() {
        let mut ws = EvolutionWorkspace::new();
        ws.ensure(64);
        assert_eq!(ws.term.len(), 64);
        let ptr = ws.term.as_ptr();
        ws.ensure(16);
        ws.ensure(64);
        assert_eq!(ws.term.as_ptr(), ptr, "re-ensuring must not reallocate");
        assert_eq!(ws.acc.len(), 64);
    }
}
