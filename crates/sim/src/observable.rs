//! Pauli-string observables and expectation values.
//!
//! Fault-injection research often tracks how a fault perturbs an
//! expectation value `⟨ψ|P|ψ⟩` rather than the full distribution; this
//! module provides Pauli strings (`"ZZI"`, `"XIY"`, …) evaluated against
//! both engines.

use crate::density::DensityMatrix;
use crate::error::SimError;
use crate::statevector::Statevector;
use qufi_math::Complex;
use std::str::FromStr;

/// A single-qubit Pauli factor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pauli {
    /// Identity.
    I,
    /// Pauli-X.
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
}

/// A tensor product of Pauli factors; index 0 acts on qubit 0 (LSB).
///
/// # Example
///
/// ```
/// use qufi_sim::{observable::PauliString, QuantumCircuit, Statevector};
///
/// // ⟨Z⟩ of |+⟩ is 0; ⟨X⟩ is 1.
/// let mut qc = QuantumCircuit::new(1, 0);
/// qc.h(0);
/// let sv = Statevector::from_circuit(&qc).unwrap();
/// let z: PauliString = "Z".parse().unwrap();
/// let x: PauliString = "X".parse().unwrap();
/// assert!(z.expectation_state(&sv).abs() < 1e-12);
/// assert!((x.expectation_state(&sv) - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PauliString {
    factors: Vec<Pauli>,
}

impl PauliString {
    /// Builds from explicit factors (index 0 = qubit 0).
    pub fn new(factors: Vec<Pauli>) -> Self {
        PauliString { factors }
    }

    /// All-Z string of the given width (the parity observable).
    pub fn all_z(n: usize) -> Self {
        PauliString {
            factors: vec![Pauli::Z; n],
        }
    }

    /// Number of qubits the string covers.
    pub fn num_qubits(&self) -> usize {
        self.factors.len()
    }

    /// The factor on qubit `q`.
    pub fn factor(&self, q: usize) -> Pauli {
        self.factors[q]
    }

    /// Applies the string to a computational basis state index, returning
    /// `(phase, new_index)` such that `P|idx⟩ = phase·|new_index⟩`.
    fn apply_to_basis(&self, idx: usize) -> (Complex, usize) {
        let mut phase = Complex::ONE;
        let mut out = idx;
        for (q, &p) in self.factors.iter().enumerate() {
            let bit = (idx >> q) & 1;
            match p {
                Pauli::I => {}
                Pauli::X => out ^= 1 << q,
                Pauli::Y => {
                    out ^= 1 << q;
                    // Y|0⟩ = i|1⟩, Y|1⟩ = −i|0⟩.
                    phase *= if bit == 0 { Complex::I } else { -Complex::I };
                }
                Pauli::Z => {
                    if bit == 1 {
                        phase = -phase;
                    }
                }
            }
        }
        (phase, out)
    }

    /// Expectation value `⟨ψ|P|ψ⟩` against a pure state.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn expectation_state(&self, sv: &Statevector) -> f64 {
        assert_eq!(sv.num_qubits(), self.num_qubits(), "width mismatch");
        let mut acc = Complex::ZERO;
        for idx in 0..(1usize << self.num_qubits()) {
            let a = sv.amp(idx);
            if a == Complex::ZERO {
                continue;
            }
            let (phase, j) = self.apply_to_basis(idx);
            // ⟨ψ|P|ψ⟩ = Σ_idx conj(ψ_j)·phase·ψ_idx with P|idx⟩ = phase|j⟩.
            acc += sv.amp(j).conj() * phase * a;
        }
        acc.re
    }

    /// Expectation value `Tr(ρP)` against a density matrix.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn expectation_density(&self, rho: &DensityMatrix) -> f64 {
        assert_eq!(rho.num_qubits(), self.num_qubits(), "width mismatch");
        let mut acc = Complex::ZERO;
        for idx in 0..rho.dim() {
            let (phase, j) = self.apply_to_basis(idx);
            // Tr(ρP) = Σ_idx ⟨idx|ρP|idx⟩ = Σ_idx phase·ρ[idx][j]... careful:
            // P|idx⟩ = phase|j⟩ so ⟨idx|ρ P|idx⟩ = phase·⟨idx|ρ|j⟩ = phase·ρ[idx][j].
            acc += phase * rho.entry(idx, j);
        }
        acc.re
    }
}

impl FromStr for PauliString {
    type Err = SimError;

    /// Parses `"ZXI"` with the **leftmost character acting on the highest
    /// qubit** (matching bitstring rendering).
    fn from_str(s: &str) -> Result<Self, SimError> {
        let mut factors = Vec::with_capacity(s.len());
        for c in s.chars().rev() {
            factors.push(match c.to_ascii_uppercase() {
                'I' => Pauli::I,
                'X' => Pauli::X,
                'Y' => Pauli::Y,
                'Z' => Pauli::Z,
                other => return Err(SimError::Unsupported(format!("pauli character {other:?}"))),
            });
        }
        Ok(PauliString { factors })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::QuantumCircuit;

    fn state(build: impl FnOnce(&mut QuantumCircuit)) -> Statevector {
        let mut qc = QuantumCircuit::new(2, 0);
        build(&mut qc);
        Statevector::from_circuit(&qc).unwrap()
    }

    #[test]
    fn z_on_basis_states() {
        let zero = state(|_| {});
        let one = state(|qc| {
            qc.x(0);
        });
        let z: PauliString = "IZ".parse().unwrap();
        assert!((z.expectation_state(&zero) - 1.0).abs() < 1e-12);
        assert!((z.expectation_state(&one) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn zz_on_bell_state_is_one() {
        let bell = state(|qc| {
            qc.h(0).cx(0, 1);
        });
        let zz: PauliString = "ZZ".parse().unwrap();
        let xx: PauliString = "XX".parse().unwrap();
        let zi: PauliString = "ZI".parse().unwrap();
        assert!((zz.expectation_state(&bell) - 1.0).abs() < 1e-12);
        assert!((xx.expectation_state(&bell) - 1.0).abs() < 1e-12);
        assert!(zi.expectation_state(&bell).abs() < 1e-12);
    }

    #[test]
    fn y_expectation_on_y_eigenstate() {
        // S·H|0⟩ = (|0⟩ + i|1⟩)/√2, the +1 eigenstate of Y.
        let plus_i = state(|qc| {
            qc.h(0).s(0);
        });
        let y: PauliString = "IY".parse().unwrap();
        assert!((y.expectation_state(&plus_i) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn density_matches_statevector() {
        let mut qc = QuantumCircuit::new(2, 0);
        qc.h(0).cx(0, 1).t(1).ry(0.4, 0);
        let sv = Statevector::from_circuit(&qc).unwrap();
        let rho = DensityMatrix::from_statevector(&sv);
        for s in ["ZZ", "XI", "IY", "XY", "ZX"] {
            let p: PauliString = s.parse().unwrap();
            assert!(
                (p.expectation_state(&sv) - p.expectation_density(&rho)).abs() < 1e-10,
                "{s}"
            );
        }
    }

    #[test]
    fn expectation_bounded_by_one() {
        let sv = state(|qc| {
            qc.h(0).t(0).cx(0, 1).ry(1.1, 1);
        });
        for s in ["ZZ", "XX", "YY", "XZ", "IZ"] {
            let p: PauliString = s.parse().unwrap();
            let v = p.expectation_state(&sv);
            assert!(v.abs() <= 1.0 + 1e-12, "{s}: {v}");
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("ZQ".parse::<PauliString>().is_err());
        let ok: PauliString = "ixyz".parse().unwrap();
        assert_eq!(ok.num_qubits(), 4);
        // Leftmost char is the highest qubit.
        assert_eq!(ok.factor(3), Pauli::I);
        assert_eq!(ok.factor(0), Pauli::Z);
    }

    #[test]
    fn all_z_is_parity() {
        let p = PauliString::all_z(2);
        let odd = state(|qc| {
            qc.x(0);
        });
        let even = state(|qc| {
            qc.x(0).x(1);
        });
        assert!((p.expectation_state(&odd) + 1.0).abs() < 1e-12);
        assert!((p.expectation_state(&even) - 1.0).abs() < 1e-12);
    }
}
