//! Index-arithmetic kernels shared by the statevector and density-matrix
//! engines.
//!
//! A `k`-qubit unitary applied to an `n`-qubit register never materializes a
//! `2^n × 2^n` matrix: it transforms groups of `2^k` amplitudes in place.
//! Everything in the stack reduces to one primitive,
//! [`apply_matrix_on_bits`]: apply a `2^k × 2^k` matrix to `k` *flat bit
//! positions* of a `2^m`-amplitude buffer.
//!
//! * Statevector gates: `m = n`, positions are the operand qubits.
//! * Density-matrix `ρ ↦ UρU†`: ρ (row-major) is a statevector over `2n`
//!   bits — row bit `q` is flat bit `n + q`, column bit `q` is flat bit `q`.
//!   The row pass applies `U` at positions `n + qubits`, the column pass
//!   applies the element-wise conjugate at positions `qubits`.
//! * Channel superoperators: a `4^k × 4^k` matrix at the combined positions
//!   `[n + qubits..., qubits...]`.
//!
//! The 1- and 2-qubit cases — all of a transpiled circuit's gates and every
//! 1-qubit channel — run through specialized loops; larger operands (Toffoli,
//! 2-qubit-channel superoperators) fall back to a generic `k ≤ 4` path. All
//! paths are allocation-free (fixed stack buffers) because campaigns call
//! them hundreds of millions of times, and all paths perform **exactly** the
//! same arithmetic in the same order (gather the group, accumulate each
//! output row from zero in column order, scatter), so results are
//! bit-identical regardless of which path dispatches — a property the
//! campaign layer's byte-pinned golden exports rely on.

use qufi_math::Complex;

/// Largest supported operand count: 3-qubit gates (Toffoli) and 2-qubit
/// channel superoperators (4 combined row/column bits).
pub(crate) const MAX_KERNEL_QUBITS: usize = 4;

/// Applies `u` (a row-major `2^k × 2^k` matrix over the listed flat bit
/// `positions`) to `data`, a buffer of `2^m` amplitudes.
///
/// Matrix-index convention: bit `k-1-j` of a matrix index corresponds to
/// `positions[j]`, i.e. the **first operand is the most significant** matrix
/// bit, matching [`qufi_math::CMatrix::cnot`] (control first).
///
/// When `conjugate` is true the element-wise conjugate of `u` is used
/// (needed for the density-matrix column pass: `ρ ↦ K ρ K†`).
pub(crate) fn apply_matrix_on_bits(
    data: &mut [Complex],
    u: &[Complex],
    positions: &[usize],
    m: usize,
    conjugate: bool,
) {
    let k = positions.len();
    debug_assert_eq!(data.len(), 1usize << m, "buffer is not 2^m amplitudes");
    debug_assert_eq!(u.len(), 1usize << (2 * k), "matrix size mismatch");
    debug_assert!(positions.iter().all(|&q| q < m));
    assert!(
        k <= MAX_KERNEL_QUBITS,
        "kernel supports at most {MAX_KERNEL_QUBITS} operand qubits"
    );
    match k {
        1 => apply_1q(data, u, positions[0], conjugate),
        2 => apply_2q(data, u, positions[0], positions[1], conjugate),
        _ => apply_generic(data, u, positions, m, conjugate),
    }
}

/// Specialized single-operand kernel: transforms amplitude pairs in place.
///
/// Blocks are walked as `chunks_exact_mut(2·bit)` split at `bit`, so the
/// inner pair loop is a bounds-check-free zip over two slices the compiler
/// can pipeline and vectorize. Each pair performs the exact operation
/// sequence of the generic path (accumulate from zero in column order), so
/// dispatch never changes bits.
fn apply_1q(data: &mut [Complex], u: &[Complex], q: usize, conjugate: bool) {
    let bit = 1usize << q;
    let (u00, u01, u10, u11) = if conjugate {
        (u[0].conj(), u[1].conj(), u[2].conj(), u[3].conj())
    } else {
        (u[0], u[1], u[2], u[3])
    };
    for block in data.chunks_exact_mut(bit << 1) {
        let (lo, hi) = block.split_at_mut(bit);
        for (p0, p1) in lo.iter_mut().zip(hi.iter_mut()) {
            let v0 = *p0;
            let v1 = *p1;
            let mut a0 = Complex::ZERO;
            a0 += u00 * v0;
            a0 += u01 * v1;
            let mut a1 = Complex::ZERO;
            a1 += u10 * v0;
            a1 += u11 * v1;
            *p0 = a0;
            *p1 = a1;
        }
    }
}

/// Specialized two-operand kernel: 4-amplitude gather, 4×4 transform,
/// scatter. `p_hi` is the most significant matrix bit.
///
/// The transform accumulates column-outer into four independent output
/// accumulators (through a transposed matrix copy, so the inner row loop is
/// contiguous): each output still sums its columns in ascending order —
/// bit-identical to the row-major form — but the four chains pipeline
/// instead of serializing on one accumulator.
fn apply_2q(data: &mut [Complex], u: &[Complex], p_hi: usize, p_lo: usize, conjugate: bool) {
    let o_hi = 1usize << p_hi;
    let o_lo = 1usize << p_lo;
    // Transposed (and optionally conjugated) split-layout copy of the 4×4
    // matrix: real and imaginary parts in separate arrays, so the
    // accumulation below is plain `f64` array arithmetic the compiler can
    // keep in SIMD registers.
    let mut ut_re = [0.0f64; 16];
    let mut ut_im = [0.0f64; 16];
    for row in 0..4 {
        for col in 0..4 {
            let x = u[row * 4 + col];
            ut_re[col * 4 + row] = x.re;
            ut_im[col * 4 + row] = if conjugate { -x.im } else { x.im };
        }
    }
    // Enumerate the "rest" space by depositing counter bits around the two
    // operand holes (sorted ascending).
    let (qa, qb) = if p_hi < p_lo {
        (p_hi, p_lo)
    } else {
        (p_lo, p_hi)
    };
    let mask_a = (1usize << qa) - 1;
    let mask_b = (1usize << qb) - 1;
    let rest = data.len() >> 2;
    for r in 0..rest {
        let t = ((r >> qa) << (qa + 1)) | (r & mask_a);
        let idx = ((t >> qb) << (qb + 1)) | (t & mask_b);
        let i0 = idx;
        let i1 = idx | o_lo;
        let i2 = idx | o_hi;
        let i3 = idx | o_lo | o_hi;
        let g = [data[i0], data[i1], data[i2], data[i3]];
        let mut o_re = [0.0f64; 4];
        let mut o_im = [0.0f64; 4];
        for (col, &gc) in g.iter().enumerate() {
            let (cr, ci) = (gc.re, gc.im);
            let ur = &ut_re[col * 4..col * 4 + 4];
            let ui = &ut_im[col * 4..col * 4 + 4];
            // Exactly `slot += u · g` unrolled into parts: each output's
            // column order — and therefore every bit — is unchanged.
            for (((or_, oi_), &ar), &ai) in o_re.iter_mut().zip(o_im.iter_mut()).zip(ur).zip(ui) {
                *or_ += ar * cr - ai * ci;
                *oi_ += ar * ci + ai * cr;
            }
        }
        data[i0] = Complex::new(o_re[0], o_im[0]);
        data[i1] = Complex::new(o_re[1], o_im[1]);
        data[i2] = Complex::new(o_re[2], o_im[2]);
        data[i3] = Complex::new(o_re[3], o_im[3]);
    }
}

/// Generic `k ≤ 4` fallback (Toffoli, 2-qubit-channel superoperators).
fn apply_generic(data: &mut [Complex], u: &[Complex], positions: &[usize], m: usize, conj: bool) {
    let k = positions.len();

    // Offsets (in flat-index units) contributed by each matrix bit.
    // Matrix bit (k-1-j) <-> positions[j].
    let mut bit_offsets = [0usize; MAX_KERNEL_QUBITS];
    for (j, &q) in positions.iter().enumerate() {
        bit_offsets[k - 1 - j] = 1usize << q;
    }

    // Sorted bit positions for enumerating the "rest" space.
    let mut sorted = [0usize; MAX_KERNEL_QUBITS];
    sorted[..k].copy_from_slice(positions);
    sorted[..k].sort_unstable();

    let group = 1usize << k;
    let rest = 1usize << (m - k);

    // Precompute the data offset of each matrix index (deposit of its bits).
    let mut pos = [0usize; 1 << MAX_KERNEL_QUBITS];
    for (mm, slot) in pos.iter_mut().enumerate().take(group) {
        let mut off = 0usize;
        for (b, &bo) in bit_offsets.iter().enumerate().take(k) {
            if (mm >> b) & 1 == 1 {
                off |= bo;
            }
        }
        *slot = off;
    }

    // Transposed (and optionally conjugated) split-layout copy of the
    // matrix: the column-outer accumulation below walks it contiguously as
    // plain `f64` arrays the compiler can vectorize. Each output element
    // still sums its columns in ascending order — the exact operation
    // sequence (and bits) of a row-major accumulation over `Complex`
    // values — but the `group` output chains are independent and pipeline
    // instead of serializing on a single accumulator.
    let mut ut_re = [0.0f64; 1 << (2 * MAX_KERNEL_QUBITS)];
    let mut ut_im = [0.0f64; 1 << (2 * MAX_KERNEL_QUBITS)];
    for row in 0..group {
        for col in 0..group {
            let x = u[row * group + col];
            ut_re[col * group + row] = x.re;
            ut_im[col * group + row] = if conj { -x.im } else { x.im };
        }
    }

    let mut gathered = [Complex::ZERO; 1 << MAX_KERNEL_QUBITS];
    let mut o_re = [0.0f64; 1 << MAX_KERNEL_QUBITS];
    let mut o_im = [0.0f64; 1 << MAX_KERNEL_QUBITS];

    for r in 0..rest {
        // Deposit the rest-bits of `r` around the holes at `sorted`.
        let mut idx = r;
        for &q in &sorted[..k] {
            let low = idx & ((1 << q) - 1);
            idx = ((idx >> q) << (q + 1)) | low;
        }
        // Gather, transform, scatter.
        for (mm, slot) in gathered.iter_mut().enumerate().take(group) {
            *slot = data[idx | pos[mm]];
        }
        o_re[..group].fill(0.0);
        o_im[..group].fill(0.0);
        for (col, &gc) in gathered.iter().enumerate().take(group) {
            let (cr, ci) = (gc.re, gc.im);
            let ur = &ut_re[col * group..(col + 1) * group];
            let ui = &ut_im[col * group..(col + 1) * group];
            for (((or_, oi_), &ar), &ai) in o_re[..group]
                .iter_mut()
                .zip(o_im[..group].iter_mut())
                .zip(ur)
                .zip(ui)
            {
                *or_ += ar * cr - ai * ci;
                *oi_ += ar * ci + ai * cr;
            }
        }
        for row in 0..group {
            data[idx | pos[row]] = Complex::new(o_re[row], o_im[row]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qufi_math::CMatrix;

    fn apply(data: &mut [Complex], u: &CMatrix, positions: &[usize], m: usize, conj: bool) {
        apply_matrix_on_bits(data, u.as_slice(), positions, m, conj);
    }

    #[test]
    fn single_qubit_gate_on_lsb() {
        // |0> --X--> |1> on a 2-qubit register (qubit 0).
        let mut v = vec![Complex::ONE, Complex::ZERO, Complex::ZERO, Complex::ZERO];
        apply(&mut v, &CMatrix::pauli_x(), &[0], 2, false);
        assert!(v[1].approx_eq(Complex::ONE, 1e-15));
    }

    #[test]
    fn single_qubit_gate_on_msb() {
        let mut v = vec![Complex::ONE, Complex::ZERO, Complex::ZERO, Complex::ZERO];
        apply(&mut v, &CMatrix::pauli_x(), &[1], 2, false);
        assert!(v[2].approx_eq(Complex::ONE, 1e-15));
    }

    #[test]
    fn cnot_control_order() {
        // control = qubit 0, target = qubit 1; state |01> (q0=1) -> |11>.
        let mut v = vec![Complex::ZERO, Complex::ONE, Complex::ZERO, Complex::ZERO];
        apply(&mut v, &CMatrix::cnot(), &[0, 1], 2, false);
        assert!(v[3].approx_eq(Complex::ONE, 1e-15), "{v:?}");

        // control = qubit 1: |01> unchanged.
        let mut v = vec![Complex::ZERO, Complex::ONE, Complex::ZERO, Complex::ZERO];
        apply(&mut v, &CMatrix::cnot(), &[1, 0], 2, false);
        assert!(v[1].approx_eq(Complex::ONE, 1e-15), "{v:?}");
    }

    #[test]
    fn conjugate_flag_conjugates_entries() {
        let s = CMatrix::phase(std::f64::consts::FRAC_PI_2); // diag(1, i)
        let mut v = vec![Complex::ZERO, Complex::ONE];
        apply(&mut v, &s, &[0], 1, true);
        assert!(v[1].approx_eq(-Complex::I, 1e-15));
    }

    #[test]
    fn three_qubit_gate_supported() {
        // Toffoli |110> -> |111> with operands [c0=2, c1=1, t=0].
        let mut v = vec![Complex::ZERO; 8];
        v[0b110] = Complex::ONE;
        let ccx = {
            let mut m = CMatrix::identity(8);
            m[(6, 6)] = Complex::ZERO;
            m[(7, 7)] = Complex::ZERO;
            m[(6, 7)] = Complex::ONE;
            m[(7, 6)] = Complex::ONE;
            m
        };
        apply(&mut v, &ccx, &[2, 1, 0], 3, false);
        assert!(v[0b111].approx_eq(Complex::ONE, 1e-15), "{v:?}");
    }

    #[test]
    #[should_panic(expected = "kernel supports at most")]
    fn too_many_operands_rejected() {
        let mut v = vec![Complex::ONE; 32];
        let u = CMatrix::identity(32);
        apply(&mut v, &u, &[0, 1, 2, 3, 4], 5, false);
    }

    /// The specialized 1q/2q paths must be *bit-identical* to the generic
    /// path on random data — the dispatch must never change results.
    #[test]
    fn specialized_paths_match_generic_bitwise() {
        let mut seed = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let m = 5usize;
        let data: Vec<Complex> = (0..1 << m).map(|_| Complex::new(next(), next())).collect();
        let cases: Vec<(CMatrix, Vec<usize>)> = vec![
            (CMatrix::hadamard(), vec![0]),
            (CMatrix::u_gate(0.7, 1.3, 0.2), vec![3]),
            (CMatrix::sx(), vec![4]),
            (CMatrix::cnot(), vec![1, 3]),
            (CMatrix::cnot(), vec![4, 0]),
            (CMatrix::swap(), vec![2, 1]),
            (CMatrix::cphase(0.9), vec![0, 4]),
        ];
        for (u, positions) in cases {
            for conj in [false, true] {
                let mut fast = data.clone();
                apply_matrix_on_bits(&mut fast, u.as_slice(), &positions, m, conj);
                let mut slow = data.clone();
                apply_generic(&mut slow, u.as_slice(), &positions, m, conj);
                for (i, (a, b)) in fast.iter().zip(&slow).enumerate() {
                    assert!(
                        a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits(),
                        "{u:?} on {positions:?} (conj={conj}): amp {i}: {a:?} vs {b:?}"
                    );
                }
            }
        }
    }
}
