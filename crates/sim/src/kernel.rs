//! Index-arithmetic kernels shared by the statevector and density-matrix
//! engines.
//!
//! A `k`-qubit unitary applied to an `n`-qubit register never materializes a
//! `2^n × 2^n` matrix: it transforms groups of `2^k` amplitudes in place.
//! The same kernel serves the density matrix by walking the row axis
//! (`stride = dim`) and the column axis (`stride = 1`) separately, and
//! channel superoperators by treating ρ as a statevector over `2n` bits.
//!
//! The kernel is allocation-free (fixed stack buffers) because campaigns
//! call it hundreds of millions of times.

use qufi_math::{CMatrix, Complex};

/// Largest supported operand count: 3-qubit gates (Toffoli) and 2-qubit
/// channel superoperators (4 combined row/column bits).
pub(crate) const MAX_KERNEL_QUBITS: usize = 4;

/// Applies `u` (a `2^k × 2^k` unitary over the listed `qubits`) to the
/// amplitudes found at `data[base + index * stride]` for `index` in
/// `0..2^n`.
///
/// Matrix-index convention: bit `k-1-j` of a matrix index corresponds to
/// `qubits[j]`, i.e. the **first operand is the most significant** matrix
/// bit, matching [`CMatrix::cnot`] (control first).
///
/// When `conjugate` is true the element-wise conjugate of `u` is used
/// (needed for the density-matrix column pass: `ρ ↦ K ρ K†`).
pub(crate) fn apply_unitary_strided(
    data: &mut [Complex],
    u: &CMatrix,
    qubits: &[usize],
    n: usize,
    base: usize,
    stride: usize,
    conjugate: bool,
) {
    let k = qubits.len();
    debug_assert_eq!(u.rows(), 1 << k, "matrix size does not match qubit count");
    debug_assert!(qubits.iter().all(|&q| q < n));
    assert!(
        k <= MAX_KERNEL_QUBITS,
        "kernel supports at most {MAX_KERNEL_QUBITS} operand qubits"
    );

    // Offsets (in state-index units) contributed by each matrix bit.
    // Matrix bit (k-1-j) <-> qubits[j].
    let mut bit_offsets = [0usize; MAX_KERNEL_QUBITS];
    for (j, &q) in qubits.iter().enumerate() {
        bit_offsets[k - 1 - j] = 1usize << q;
    }

    // Sorted qubit positions for enumerating the "rest" space.
    let mut sorted = [0usize; MAX_KERNEL_QUBITS];
    sorted[..k].copy_from_slice(qubits);
    sorted[..k].sort_unstable();

    let m = 1usize << k;
    let rest = 1usize << (n - k);

    // Precompute the data offset of each matrix index (deposit of its bits).
    let mut pos = [0usize; 1 << MAX_KERNEL_QUBITS];
    for (mm, slot) in pos.iter_mut().enumerate().take(m) {
        let mut off = 0usize;
        for (b, &bo) in bit_offsets.iter().enumerate().take(k) {
            if (mm >> b) & 1 == 1 {
                off |= bo;
            }
        }
        *slot = off;
    }

    let mut gathered = [Complex::ZERO; 1 << MAX_KERNEL_QUBITS];
    let umat = u.as_slice();

    for r in 0..rest {
        // Deposit the rest-bits of `r` around the holes at `sorted`.
        let mut idx = r;
        for &q in &sorted[..k] {
            let low = idx & ((1 << q) - 1);
            idx = ((idx >> q) << (q + 1)) | low;
        }
        // Gather, transform, scatter.
        for mm in 0..m {
            gathered[mm] = data[base + (idx | pos[mm]) * stride];
        }
        for row in 0..m {
            let mut acc = Complex::ZERO;
            let urow = &umat[row * m..(row + 1) * m];
            if conjugate {
                for (col, &g) in gathered.iter().enumerate().take(m) {
                    acc += urow[col].conj() * g;
                }
            } else {
                for (col, &g) in gathered.iter().enumerate().take(m) {
                    acc += urow[col] * g;
                }
            }
            data[base + (idx | pos[row]) * stride] = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_qubit_gate_on_lsb() {
        // |0> --X--> |1> on a 2-qubit register (qubit 0).
        let mut v = vec![Complex::ONE, Complex::ZERO, Complex::ZERO, Complex::ZERO];
        apply_unitary_strided(&mut v, &CMatrix::pauli_x(), &[0], 2, 0, 1, false);
        assert!(v[1].approx_eq(Complex::ONE, 1e-15));
    }

    #[test]
    fn single_qubit_gate_on_msb() {
        let mut v = vec![Complex::ONE, Complex::ZERO, Complex::ZERO, Complex::ZERO];
        apply_unitary_strided(&mut v, &CMatrix::pauli_x(), &[1], 2, 0, 1, false);
        assert!(v[2].approx_eq(Complex::ONE, 1e-15));
    }

    #[test]
    fn cnot_control_order() {
        // control = qubit 0, target = qubit 1; state |01> (q0=1) -> |11>.
        let mut v = vec![Complex::ZERO, Complex::ONE, Complex::ZERO, Complex::ZERO];
        apply_unitary_strided(&mut v, &CMatrix::cnot(), &[0, 1], 2, 0, 1, false);
        assert!(v[3].approx_eq(Complex::ONE, 1e-15), "{v:?}");

        // control = qubit 1: |01> unchanged.
        let mut v = vec![Complex::ZERO, Complex::ONE, Complex::ZERO, Complex::ZERO];
        apply_unitary_strided(&mut v, &CMatrix::cnot(), &[1, 0], 2, 0, 1, false);
        assert!(v[1].approx_eq(Complex::ONE, 1e-15), "{v:?}");
    }

    #[test]
    fn conjugate_flag_conjugates_entries() {
        let s = CMatrix::phase(std::f64::consts::FRAC_PI_2); // diag(1, i)
        let mut v = vec![Complex::ZERO, Complex::ONE];
        apply_unitary_strided(&mut v, &s, &[0], 1, 0, 1, true);
        assert!(v[1].approx_eq(-Complex::I, 1e-15));
    }

    #[test]
    fn strided_access_touches_only_one_row() {
        // A 2x2 "matrix of amplitudes" stored row-major; apply X to the row
        // axis of column 1 only (base=1, stride=2).
        let mut d = vec![
            Complex::real(1.0),
            Complex::real(2.0),
            Complex::real(3.0),
            Complex::real(4.0),
        ];
        apply_unitary_strided(&mut d, &CMatrix::pauli_x(), &[0], 1, 1, 2, false);
        // Column 1 was (2, 4) -> (4, 2); column 0 untouched.
        assert!(d[0].approx_eq(Complex::real(1.0), 1e-15));
        assert!(d[1].approx_eq(Complex::real(4.0), 1e-15));
        assert!(d[2].approx_eq(Complex::real(3.0), 1e-15));
        assert!(d[3].approx_eq(Complex::real(2.0), 1e-15));
    }

    #[test]
    fn three_qubit_gate_supported() {
        // Toffoli |110> -> |111> with operands [c0=2, c1=1, t=0].
        let mut v = vec![Complex::ZERO; 8];
        v[0b110] = Complex::ONE;
        let ccx = qufi_math::CMatrix::identity(8); // placeholder shape check
        let _ = ccx;
        let ccx = {
            let mut m = qufi_math::CMatrix::identity(8);
            m[(6, 6)] = Complex::ZERO;
            m[(7, 7)] = Complex::ZERO;
            m[(6, 7)] = Complex::ONE;
            m[(7, 6)] = Complex::ONE;
            m
        };
        apply_unitary_strided(&mut v, &ccx, &[2, 1, 0], 3, 0, 1, false);
        assert!(v[0b111].approx_eq(Complex::ONE, 1e-15), "{v:?}");
    }

    #[test]
    #[should_panic(expected = "kernel supports at most")]
    fn too_many_operands_rejected() {
        let mut v = vec![Complex::ONE; 32];
        let u = CMatrix::identity(32);
        apply_unitary_strided(&mut v, &u, &[0, 1, 2, 3, 4], 5, 0, 1, false);
    }
}
