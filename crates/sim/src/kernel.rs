//! Index-arithmetic kernels shared by the statevector and density-matrix
//! engines.
//!
//! A `k`-qubit unitary applied to an `n`-qubit register never materializes a
//! `2^n × 2^n` matrix: it transforms groups of `2^k` amplitudes in place.
//! Everything in the stack reduces to one primitive,
//! [`apply_matrix_on_bits`]: apply a `2^k × 2^k` matrix to `k` *flat bit
//! positions* of a `2^m`-amplitude buffer.
//!
//! * Statevector gates: `m = n`, positions are the operand qubits.
//! * Density-matrix `ρ ↦ UρU†`: ρ (row-major) is a statevector over `2n`
//!   bits — row bit `q` is flat bit `n + q`, column bit `q` is flat bit `q`.
//!   The row pass applies `U` at positions `n + qubits`, the column pass
//!   applies the element-wise conjugate at positions `qubits`.
//! * Channel superoperators: a `4^k × 4^k` matrix at the combined positions
//!   `[n + qubits..., qubits...]`.
//!
//! The 1- and 2-qubit cases — all of a transpiled circuit's gates and every
//! 1-qubit channel — run through specialized loops; larger operands (Toffoli,
//! 2-qubit-channel superoperators) fall back to a generic `k ≤ 4` path. All
//! paths are allocation-free (fixed stack buffers) because campaigns call
//! them hundreds of millions of times, and all paths perform **exactly** the
//! same arithmetic in the same order (gather the group, accumulate each
//! output row from zero in column order, scatter), so results are
//! bit-identical regardless of which path dispatches — a property the
//! campaign layer's byte-pinned golden exports rely on.

use qufi_math::Complex;

/// Largest supported operand count: 3-qubit gates (Toffoli) and 2-qubit
/// channel superoperators (4 combined row/column bits).
pub(crate) const MAX_KERNEL_QUBITS: usize = 4;

/// Applies `u` (a row-major `2^k × 2^k` matrix over the listed flat bit
/// `positions`) to `data`, a buffer of `2^m` amplitudes.
///
/// Matrix-index convention: bit `k-1-j` of a matrix index corresponds to
/// `positions[j]`, i.e. the **first operand is the most significant** matrix
/// bit, matching [`qufi_math::CMatrix::cnot`] (control first).
///
/// When `conjugate` is true the element-wise conjugate of `u` is used
/// (needed for the density-matrix column pass: `ρ ↦ K ρ K†`).
pub(crate) fn apply_matrix_on_bits(
    data: &mut [Complex],
    u: &[Complex],
    positions: &[usize],
    m: usize,
    conjugate: bool,
) {
    let k = positions.len();
    debug_assert_eq!(data.len(), 1usize << m, "buffer is not 2^m amplitudes");
    debug_assert_eq!(u.len(), 1usize << (2 * k), "matrix size mismatch");
    debug_assert!(positions.iter().all(|&q| q < m));
    assert!(
        k <= MAX_KERNEL_QUBITS,
        "kernel supports at most {MAX_KERNEL_QUBITS} operand qubits"
    );
    match k {
        1 => apply_1q(data, u, positions[0], conjugate),
        2 => apply_2q(data, u, positions[0], positions[1], conjugate),
        _ => apply_generic(data, u, positions, m, conjugate),
    }
}

/// Specialized single-operand kernel: transforms amplitude pairs in place.
///
/// Blocks are walked as `chunks_exact_mut(2·bit)` split at `bit`, so the
/// inner pair loop is a bounds-check-free zip over two slices the compiler
/// can pipeline and vectorize. Each pair performs the exact operation
/// sequence of the generic path (accumulate from zero in column order), so
/// dispatch never changes bits.
fn apply_1q(data: &mut [Complex], u: &[Complex], q: usize, conjugate: bool) {
    let bit = 1usize << q;
    let (u00, u01, u10, u11) = if conjugate {
        (u[0].conj(), u[1].conj(), u[2].conj(), u[3].conj())
    } else {
        (u[0], u[1], u[2], u[3])
    };
    for block in data.chunks_exact_mut(bit << 1) {
        let (lo, hi) = block.split_at_mut(bit);
        for (p0, p1) in lo.iter_mut().zip(hi.iter_mut()) {
            let v0 = *p0;
            let v1 = *p1;
            let mut a0 = Complex::ZERO;
            a0 += u00 * v0;
            a0 += u01 * v1;
            let mut a1 = Complex::ZERO;
            a1 += u10 * v0;
            a1 += u11 * v1;
            *p0 = a0;
            *p1 = a1;
        }
    }
}

/// Specialized two-operand kernel: 4-amplitude gather, 4×4 transform,
/// scatter. `p_hi` is the most significant matrix bit.
///
/// The transform accumulates column-outer into four independent output
/// accumulators (through a transposed matrix copy, so the inner row loop is
/// contiguous): each output still sums its columns in ascending order —
/// bit-identical to the row-major form — but the four chains pipeline
/// instead of serializing on one accumulator.
fn apply_2q(data: &mut [Complex], u: &[Complex], p_hi: usize, p_lo: usize, conjugate: bool) {
    let o_hi = 1usize << p_hi;
    let o_lo = 1usize << p_lo;
    // Transposed (and optionally conjugated) split-layout copy of the 4×4
    // matrix: real and imaginary parts in separate arrays, so the
    // accumulation below is plain `f64` array arithmetic the compiler can
    // keep in SIMD registers.
    let mut ut_re = [0.0f64; 16];
    let mut ut_im = [0.0f64; 16];
    for row in 0..4 {
        for col in 0..4 {
            let x = u[row * 4 + col];
            ut_re[col * 4 + row] = x.re;
            ut_im[col * 4 + row] = if conjugate { -x.im } else { x.im };
        }
    }
    // Enumerate the "rest" space by depositing counter bits around the two
    // operand holes (sorted ascending).
    let (qa, qb) = if p_hi < p_lo {
        (p_hi, p_lo)
    } else {
        (p_lo, p_hi)
    };
    let mask_a = (1usize << qa) - 1;
    let mask_b = (1usize << qb) - 1;
    let rest = data.len() >> 2;
    for r in 0..rest {
        let t = ((r >> qa) << (qa + 1)) | (r & mask_a);
        let idx = ((t >> qb) << (qb + 1)) | (t & mask_b);
        let i0 = idx;
        let i1 = idx | o_lo;
        let i2 = idx | o_hi;
        let i3 = idx | o_lo | o_hi;
        let g = [data[i0], data[i1], data[i2], data[i3]];
        let mut o_re = [0.0f64; 4];
        let mut o_im = [0.0f64; 4];
        for (col, &gc) in g.iter().enumerate() {
            let (cr, ci) = (gc.re, gc.im);
            let ur = &ut_re[col * 4..col * 4 + 4];
            let ui = &ut_im[col * 4..col * 4 + 4];
            // Exactly `slot += u · g` unrolled into parts: each output's
            // column order — and therefore every bit — is unchanged.
            for (((or_, oi_), &ar), &ai) in o_re.iter_mut().zip(o_im.iter_mut()).zip(ur).zip(ui) {
                *or_ += ar * cr - ai * ci;
                *oi_ += ar * ci + ai * cr;
            }
        }
        data[i0] = Complex::new(o_re[0], o_im[0]);
        data[i1] = Complex::new(o_re[1], o_im[1]);
        data[i2] = Complex::new(o_re[2], o_im[2]);
        data[i3] = Complex::new(o_re[3], o_im[3]);
    }
}

/// Generic `k ≤ 4` fallback (Toffoli, 2-qubit-channel superoperators).
fn apply_generic(data: &mut [Complex], u: &[Complex], positions: &[usize], m: usize, conj: bool) {
    let k = positions.len();

    // Offsets (in flat-index units) contributed by each matrix bit.
    // Matrix bit (k-1-j) <-> positions[j].
    let mut bit_offsets = [0usize; MAX_KERNEL_QUBITS];
    for (j, &q) in positions.iter().enumerate() {
        bit_offsets[k - 1 - j] = 1usize << q;
    }

    // Sorted bit positions for enumerating the "rest" space.
    let mut sorted = [0usize; MAX_KERNEL_QUBITS];
    sorted[..k].copy_from_slice(positions);
    sorted[..k].sort_unstable();

    let group = 1usize << k;
    let rest = 1usize << (m - k);

    // Precompute the data offset of each matrix index (deposit of its bits).
    let mut pos = [0usize; 1 << MAX_KERNEL_QUBITS];
    for (mm, slot) in pos.iter_mut().enumerate().take(group) {
        let mut off = 0usize;
        for (b, &bo) in bit_offsets.iter().enumerate().take(k) {
            if (mm >> b) & 1 == 1 {
                off |= bo;
            }
        }
        *slot = off;
    }

    // Transposed (and optionally conjugated) split-layout copy of the
    // matrix: the column-outer accumulation below walks it contiguously as
    // plain `f64` arrays the compiler can vectorize. Each output element
    // still sums its columns in ascending order — the exact operation
    // sequence (and bits) of a row-major accumulation over `Complex`
    // values — but the `group` output chains are independent and pipeline
    // instead of serializing on a single accumulator.
    let mut ut_re = [0.0f64; 1 << (2 * MAX_KERNEL_QUBITS)];
    let mut ut_im = [0.0f64; 1 << (2 * MAX_KERNEL_QUBITS)];
    for row in 0..group {
        for col in 0..group {
            let x = u[row * group + col];
            ut_re[col * group + row] = x.re;
            ut_im[col * group + row] = if conj { -x.im } else { x.im };
        }
    }

    let mut gathered = [Complex::ZERO; 1 << MAX_KERNEL_QUBITS];
    let mut o_re = [0.0f64; 1 << MAX_KERNEL_QUBITS];
    let mut o_im = [0.0f64; 1 << MAX_KERNEL_QUBITS];

    for r in 0..rest {
        // Deposit the rest-bits of `r` around the holes at `sorted`.
        let mut idx = r;
        for &q in &sorted[..k] {
            let low = idx & ((1 << q) - 1);
            idx = ((idx >> q) << (q + 1)) | low;
        }
        // Gather, transform, scatter.
        for (mm, slot) in gathered.iter_mut().enumerate().take(group) {
            *slot = data[idx | pos[mm]];
        }
        o_re[..group].fill(0.0);
        o_im[..group].fill(0.0);
        for (col, &gc) in gathered.iter().enumerate().take(group) {
            let (cr, ci) = (gc.re, gc.im);
            let ur = &ut_re[col * group..(col + 1) * group];
            let ui = &ut_im[col * group..(col + 1) * group];
            for (((or_, oi_), &ar), &ai) in o_re[..group]
                .iter_mut()
                .zip(o_im[..group].iter_mut())
                .zip(ur)
                .zip(ui)
            {
                *or_ += ar * cr - ai * ci;
                *oi_ += ar * ci + ai * cr;
            }
        }
        for row in 0..group {
            data[idx | pos[row]] = Complex::new(o_re[row], o_im[row]);
        }
    }
}

// ---------------------------------------------------------------------------
// Batched (cell-major) kernels
// ---------------------------------------------------------------------------
//
// The batched replay engine lays `width` forked states out as columns of one
// split-complex matrix: flat index `amp * width + cell`, real and imaginary
// parts in separate `f64` buffers. A gate's index arithmetic (block walks,
// rest-space deposits, gather/scatter offsets) is computed once per amplitude
// group and applied to all cells through stride-1 inner loops the compiler
// vectorizes *across cells*. Each cell's own operation sequence — gather,
// accumulate each output from zero in column order, scatter — is exactly the
// scalar kernel's, so a batched cell is bit-identical to a scalar replay of
// the same state. (Like the scalar kernels, nothing here may fold the first
// product into the accumulator's initialization: `0.0 + x` normalizes the
// sign of zero exactly as the scalar path does.)
//
// Every public entry point dispatches the runtime `width` to a `const W`
// monomorphization: the cell loops' trip counts must be compile-time
// constants, or the vectorizer emits runtime-trip prologue/epilogue checks
// around 4–16-element loops and the batched path loses to the scalar
// kernels' fully unrolled fixed-length loops. Monomorphizing is what turns
// the cell axis into straight-line vector code (one or two full-width
// vectors per accumulate at W = 8/16 on AVX-512). Unrolling never changes
// arithmetic order, so const and odd-width paths stay bit-identical.

/// Largest supported batch width (cells per block). Sized so a 4-operand
/// gather/accumulate group (16 amplitudes × 16 cells × 4 buffers) still fits
/// comfortably in stack arrays and L1.
pub(crate) const MAX_BATCH_CELLS: usize = 16;

/// Expands `match width` over 1..=[`MAX_BATCH_CELLS`] so each arm calls the
/// kernel with a `const W` equal to the runtime width.
macro_rules! dispatch_width {
    ($width:expr => $f:ident($($args:expr),* $(,)?)) => {
        match $width {
            1 => $f::<1>($($args),*),
            2 => $f::<2>($($args),*),
            3 => $f::<3>($($args),*),
            4 => $f::<4>($($args),*),
            5 => $f::<5>($($args),*),
            6 => $f::<6>($($args),*),
            7 => $f::<7>($($args),*),
            8 => $f::<8>($($args),*),
            9 => $f::<9>($($args),*),
            10 => $f::<10>($($args),*),
            11 => $f::<11>($($args),*),
            12 => $f::<12>($($args),*),
            13 => $f::<13>($($args),*),
            14 => $f::<14>($($args),*),
            15 => $f::<15>($($args),*),
            16 => $f::<16>($($args),*),
            _ => unreachable!("batch width asserted to 1..=MAX_BATCH_CELLS"),
        }
    };
}

/// Batched counterpart of [`apply_matrix_on_bits`]: applies one shared
/// `2^k × 2^k` matrix to every cell of a cell-major split-complex buffer
/// holding `width` states of `2^m` amplitudes each.
pub(crate) fn batch_apply_matrix_on_bits(
    re: &mut [f64],
    im: &mut [f64],
    width: usize,
    u: &[Complex],
    positions: &[usize],
    m: usize,
    conjugate: bool,
) {
    let k = positions.len();
    debug_assert_eq!(re.len(), width << m, "buffer is not width · 2^m reals");
    debug_assert_eq!(re.len(), im.len());
    debug_assert_eq!(u.len(), 1usize << (2 * k), "matrix size mismatch");
    debug_assert!(positions.iter().all(|&q| q < m));
    assert!(
        k <= MAX_KERNEL_QUBITS,
        "kernel supports at most {MAX_KERNEL_QUBITS} operand qubits"
    );
    assert!(
        (1..=MAX_BATCH_CELLS).contains(&width),
        "batch width must be 1..={MAX_BATCH_CELLS}"
    );
    match k {
        1 => dispatch_width!(width => batch_apply_1q(re, im, u, positions[0], conjugate)),
        2 => batch_apply_2q(re, im, width, u, positions[0], positions[1], conjugate),
        _ => batch_apply_generic(re, im, width, u, positions, m, conjugate),
    }
}

/// Cells per register tile in the 2q and generic kernels. Tiling bounds the
/// live accumulator set — a full-width accumulator block for a 4×4 or 16×16
/// transform spills registers at `width` 16 — while a remainder tile narrower
/// than the constant just runs shorter; per-cell arithmetic order is
/// unchanged either way. The sizes are empirical on the bv-4 density
/// workload: the 4×4 transform peaks at 4 lanes (its 4-row accumulator block
/// plus gathers stays register-resident with room for the compiler to
/// software-pipeline), the 16×16 superoperator transform at 8 lanes (one
/// 512-bit vector per row, amortizing its much larger gather).
const BATCH_TILE_2Q: usize = 4;
const BATCH_TILE_GENERIC: usize = 8;

/// Expands `match tile` over 1..=8 so each arm calls the tile kernel with a
/// `const T` equal to the runtime remainder.
macro_rules! dispatch_tile {
    ($tile:expr => $f:ident($($args:expr),* $(,)?)) => {
        match $tile {
            1 => $f::<1>($($args),*),
            2 => $f::<2>($($args),*),
            3 => $f::<3>($($args),*),
            4 => $f::<4>($($args),*),
            5 => $f::<5>($($args),*),
            6 => $f::<6>($($args),*),
            7 => $f::<7>($($args),*),
            8 => $f::<8>($($args),*),
            _ => unreachable!("tile bounded by the per-kernel BATCH_TILE constant"),
        }
    };
}

/// Reborrows one cell row (`W` reals starting at `amp · W`) as a fixed-size
/// array so the cell loops below carry no bounds checks or runtime trips.
#[inline(always)]
fn row_mut<const W: usize>(buf: &mut [f64], amp: usize) -> &mut [f64; W] {
    (&mut buf[amp * W..(amp + 1) * W])
        .try_into()
        .expect("row of W reals")
}

/// Batched single-operand kernel with one shared matrix: the scalar pair
/// loop with a `W`-cell stride-1 lane under every amplitude pair.
fn batch_apply_1q<const W: usize>(
    re: &mut [f64],
    im: &mut [f64],
    u: &[Complex],
    q: usize,
    conj: bool,
) {
    let bit = 1usize << q;
    let (u00, u01, u10, u11) = if conj {
        (u[0].conj(), u[1].conj(), u[2].conj(), u[3].conj())
    } else {
        (u[0], u[1], u[2], u[3])
    };
    let block = (bit << 1) * W;
    let half = bit * W;
    for (bre, bim) in re.chunks_exact_mut(block).zip(im.chunks_exact_mut(block)) {
        let (lo_re, hi_re) = bre.split_at_mut(half);
        let (lo_im, hi_im) = bim.split_at_mut(half);
        for p in 0..bit {
            let p0r = row_mut::<W>(lo_re, p);
            let p0i = row_mut::<W>(lo_im, p);
            let p1r = row_mut::<W>(hi_re, p);
            let p1i = row_mut::<W>(hi_im, p);
            for c in 0..W {
                let (v0r, v0i) = (p0r[c], p0i[c]);
                let (v1r, v1i) = (p1r[c], p1i[c]);
                let mut a0r = 0.0f64;
                let mut a0i = 0.0f64;
                a0r += u00.re * v0r - u00.im * v0i;
                a0i += u00.re * v0i + u00.im * v0r;
                a0r += u01.re * v1r - u01.im * v1i;
                a0i += u01.re * v1i + u01.im * v1r;
                let mut a1r = 0.0f64;
                let mut a1i = 0.0f64;
                a1r += u10.re * v0r - u10.im * v0i;
                a1i += u10.re * v0i + u10.im * v0r;
                a1r += u11.re * v1r - u11.im * v1i;
                a1i += u11.re * v1i + u11.im * v1r;
                p0r[c] = a0r;
                p0i[c] = a0i;
                p1r[c] = a1r;
                p1i[c] = a1i;
            }
        }
    }
}

/// Batched single-operand kernel with one matrix **per cell** (the grid's
/// per-cell injector). `u_re`/`u_im` hold the four matrix entries in
/// element-major layout: entry `e` of cell `c` at `e * width + c`.
pub(crate) fn batch_apply_1q_per_cell(
    re: &mut [f64],
    im: &mut [f64],
    width: usize,
    u_re: &[f64],
    u_im: &[f64],
    q: usize,
    conjugate: bool,
) {
    debug_assert_eq!(u_re.len(), 4 * width);
    debug_assert_eq!(u_im.len(), 4 * width);
    assert!(
        (1..=MAX_BATCH_CELLS).contains(&width),
        "batch width must be 1..={MAX_BATCH_CELLS}"
    );
    dispatch_width!(width => batch_apply_1q_per_cell_w(re, im, u_re, u_im, q, conjugate));
}

fn batch_apply_1q_per_cell_w<const W: usize>(
    re: &mut [f64],
    im: &mut [f64],
    u_re: &[f64],
    u_im: &[f64],
    q: usize,
    conjugate: bool,
) {
    let bit = 1usize << q;
    let block = (bit << 1) * W;
    let half = bit * W;
    // Conjugate the entries once up front. Negation by `-1.0 ·` is exact, so
    // this is bit-identical to the scalar path's per-use `u[i].conj()`.
    let s = if conjugate { -1.0f64 } else { 1.0f64 };
    let mut e_re = [[0.0f64; W]; 4];
    let mut e_im = [[0.0f64; W]; 4];
    for e in 0..4 {
        for c in 0..W {
            e_re[e][c] = u_re[e * W + c];
            e_im[e][c] = s * u_im[e * W + c];
        }
    }
    for (bre, bim) in re.chunks_exact_mut(block).zip(im.chunks_exact_mut(block)) {
        let (lo_re, hi_re) = bre.split_at_mut(half);
        let (lo_im, hi_im) = bim.split_at_mut(half);
        for p in 0..bit {
            let p0r = row_mut::<W>(lo_re, p);
            let p0i = row_mut::<W>(lo_im, p);
            let p1r = row_mut::<W>(hi_re, p);
            let p1i = row_mut::<W>(hi_im, p);
            for c in 0..W {
                let (v0r, v0i) = (p0r[c], p0i[c]);
                let (v1r, v1i) = (p1r[c], p1i[c]);
                let mut a0r = 0.0f64;
                let mut a0i = 0.0f64;
                a0r += e_re[0][c] * v0r - e_im[0][c] * v0i;
                a0i += e_re[0][c] * v0i + e_im[0][c] * v0r;
                a0r += e_re[1][c] * v1r - e_im[1][c] * v1i;
                a0i += e_re[1][c] * v1i + e_im[1][c] * v1r;
                let mut a1r = 0.0f64;
                let mut a1i = 0.0f64;
                a1r += e_re[2][c] * v0r - e_im[2][c] * v0i;
                a1i += e_re[2][c] * v0i + e_im[2][c] * v0r;
                a1r += e_re[3][c] * v1r - e_im[3][c] * v1i;
                a1i += e_re[3][c] * v1i + e_im[3][c] * v1r;
                p0r[c] = a0r;
                p0i[c] = a0i;
                p1r[c] = a1r;
                p1i[c] = a1i;
            }
        }
    }
}

/// Batched two-operand kernel: the scalar 4-amplitude gather/transform/
/// scatter with the cell dimension as the stride-1 inner axis, walked in
/// [`BATCH_TILE_2Q`]-cell register tiles.
fn batch_apply_2q(
    re: &mut [f64],
    im: &mut [f64],
    width: usize,
    u: &[Complex],
    p_hi: usize,
    p_lo: usize,
    conj: bool,
) {
    let o_hi = 1usize << p_hi;
    let o_lo = 1usize << p_lo;
    let mut ut_re = [0.0f64; 16];
    let mut ut_im = [0.0f64; 16];
    for row in 0..4 {
        for col in 0..4 {
            let x = u[row * 4 + col];
            ut_re[col * 4 + row] = x.re;
            ut_im[col * 4 + row] = if conj { -x.im } else { x.im };
        }
    }
    let (qa, qb) = if p_hi < p_lo {
        (p_hi, p_lo)
    } else {
        (p_lo, p_hi)
    };
    let mask_a = (1usize << qa) - 1;
    let mask_b = (1usize << qb) - 1;
    let rest = (re.len() / width) >> 2;
    for r in 0..rest {
        let t = ((r >> qa) << (qa + 1)) | (r & mask_a);
        let idx = ((t >> qb) << (qb + 1)) | (t & mask_b);
        let amps = [idx, idx | o_lo, idx | o_hi, idx | o_lo | o_hi];
        let mut c0 = 0usize;
        while c0 < width {
            let tile = (width - c0).min(BATCH_TILE_2Q);
            dispatch_tile!(tile => batch_2q_tile(re, im, width, c0, &amps, &ut_re, &ut_im));
            c0 += tile;
        }
    }
}

/// One register tile of [`batch_apply_2q`]: cells `c0..c0 + T` of a gathered
/// 4-amplitude group.
#[inline(always)]
fn batch_2q_tile<const T: usize>(
    re: &mut [f64],
    im: &mut [f64],
    width: usize,
    c0: usize,
    amps: &[usize; 4],
    ut_re: &[f64; 16],
    ut_im: &[f64; 16],
) {
    let mut g_re = [[0.0f64; T]; 4];
    let mut g_im = [[0.0f64; T]; 4];
    for (slot, &a) in amps.iter().enumerate() {
        let base = a * width + c0;
        g_re[slot].copy_from_slice(&re[base..base + T]);
        g_im[slot].copy_from_slice(&im[base..base + T]);
    }
    let mut o_re = [[0.0f64; T]; 4];
    let mut o_im = [[0.0f64; T]; 4];
    for col in 0..4 {
        for row in 0..4 {
            let ar = ut_re[col * 4 + row];
            let ai = ut_im[col * 4 + row];
            for c in 0..T {
                let (cr, ci) = (g_re[col][c], g_im[col][c]);
                o_re[row][c] += ar * cr - ai * ci;
                o_im[row][c] += ar * ci + ai * cr;
            }
        }
    }
    for (row, &a) in amps.iter().enumerate() {
        let base = a * width + c0;
        re[base..base + T].copy_from_slice(&o_re[row]);
        im[base..base + T].copy_from_slice(&o_im[row]);
    }
}

/// Batched generic `k ≤ 4` kernel (Toffoli, channel superoperators), walked
/// in [`BATCH_TILE_GENERIC`]-cell register tiles.
fn batch_apply_generic(
    re: &mut [f64],
    im: &mut [f64],
    width: usize,
    u: &[Complex],
    positions: &[usize],
    m: usize,
    conj: bool,
) {
    let k = positions.len();
    let mut bit_offsets = [0usize; MAX_KERNEL_QUBITS];
    for (j, &q) in positions.iter().enumerate() {
        bit_offsets[k - 1 - j] = 1usize << q;
    }
    let mut sorted = [0usize; MAX_KERNEL_QUBITS];
    sorted[..k].copy_from_slice(positions);
    sorted[..k].sort_unstable();

    let group = 1usize << k;
    let rest = 1usize << (m - k);

    let mut pos = [0usize; 1 << MAX_KERNEL_QUBITS];
    for (mm, slot) in pos.iter_mut().enumerate().take(group) {
        let mut off = 0usize;
        for (b, &bo) in bit_offsets.iter().enumerate().take(k) {
            if (mm >> b) & 1 == 1 {
                off |= bo;
            }
        }
        *slot = off;
    }

    let mut ut_re = [0.0f64; 1 << (2 * MAX_KERNEL_QUBITS)];
    let mut ut_im = [0.0f64; 1 << (2 * MAX_KERNEL_QUBITS)];
    for row in 0..group {
        for col in 0..group {
            let x = u[row * group + col];
            ut_re[col * group + row] = x.re;
            ut_im[col * group + row] = if conj { -x.im } else { x.im };
        }
    }

    for r in 0..rest {
        let mut idx = r;
        for &q in &sorted[..k] {
            let low = idx & ((1 << q) - 1);
            idx = ((idx >> q) << (q + 1)) | low;
        }
        let mut c0 = 0usize;
        while c0 < width {
            let tile = (width - c0).min(BATCH_TILE_GENERIC);
            dispatch_tile!(
                tile => batch_generic_tile(re, im, width, c0, idx, &pos, group, &ut_re, &ut_im)
            );
            c0 += tile;
        }
    }
}

/// One register tile of [`batch_apply_generic`]: cells `c0..c0 + T` of one
/// gathered `group`-amplitude rest index. Outputs are produced in blocks of
/// four rows so the live accumulator set stays register-resident even for
/// the 16-row superoperator groups; the gathered stack copy keeps later row
/// blocks reading pre-transform inputs.
#[inline(always)]
#[allow(clippy::too_many_arguments)] // a flat register-tile kernel signature, not an API
fn batch_generic_tile<const T: usize>(
    re: &mut [f64],
    im: &mut [f64],
    width: usize,
    c0: usize,
    idx: usize,
    pos: &[usize; 1 << MAX_KERNEL_QUBITS],
    group: usize,
    ut_re: &[f64; 1 << (2 * MAX_KERNEL_QUBITS)],
    ut_im: &[f64; 1 << (2 * MAX_KERNEL_QUBITS)],
) {
    let mut g_re = [[0.0f64; T]; 1 << MAX_KERNEL_QUBITS];
    let mut g_im = [[0.0f64; T]; 1 << MAX_KERNEL_QUBITS];
    for mm in 0..group {
        let base = (idx | pos[mm]) * width + c0;
        g_re[mm].copy_from_slice(&re[base..base + T]);
        g_im[mm].copy_from_slice(&im[base..base + T]);
    }
    let mut row0 = 0usize;
    while row0 < group {
        let rows = (group - row0).min(4);
        let mut o_re = [[0.0f64; T]; 4];
        let mut o_im = [[0.0f64; T]; 4];
        for col in 0..group {
            for dr in 0..rows {
                let ar = ut_re[col * group + row0 + dr];
                let ai = ut_im[col * group + row0 + dr];
                for c in 0..T {
                    let (cr, ci) = (g_re[col][c], g_im[col][c]);
                    o_re[dr][c] += ar * cr - ai * ci;
                    o_im[dr][c] += ar * ci + ai * cr;
                }
            }
        }
        for dr in 0..rows {
            let base = (idx | pos[row0 + dr]) * width + c0;
            re[base..base + T].copy_from_slice(&o_re[dr]);
            im[base..base + T].copy_from_slice(&o_im[dr]);
        }
        row0 += rows;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qufi_math::CMatrix;

    fn apply(data: &mut [Complex], u: &CMatrix, positions: &[usize], m: usize, conj: bool) {
        apply_matrix_on_bits(data, u.as_slice(), positions, m, conj);
    }

    #[test]
    fn single_qubit_gate_on_lsb() {
        // |0> --X--> |1> on a 2-qubit register (qubit 0).
        let mut v = vec![Complex::ONE, Complex::ZERO, Complex::ZERO, Complex::ZERO];
        apply(&mut v, &CMatrix::pauli_x(), &[0], 2, false);
        assert!(v[1].approx_eq(Complex::ONE, 1e-15));
    }

    #[test]
    fn single_qubit_gate_on_msb() {
        let mut v = vec![Complex::ONE, Complex::ZERO, Complex::ZERO, Complex::ZERO];
        apply(&mut v, &CMatrix::pauli_x(), &[1], 2, false);
        assert!(v[2].approx_eq(Complex::ONE, 1e-15));
    }

    #[test]
    fn cnot_control_order() {
        // control = qubit 0, target = qubit 1; state |01> (q0=1) -> |11>.
        let mut v = vec![Complex::ZERO, Complex::ONE, Complex::ZERO, Complex::ZERO];
        apply(&mut v, &CMatrix::cnot(), &[0, 1], 2, false);
        assert!(v[3].approx_eq(Complex::ONE, 1e-15), "{v:?}");

        // control = qubit 1: |01> unchanged.
        let mut v = vec![Complex::ZERO, Complex::ONE, Complex::ZERO, Complex::ZERO];
        apply(&mut v, &CMatrix::cnot(), &[1, 0], 2, false);
        assert!(v[1].approx_eq(Complex::ONE, 1e-15), "{v:?}");
    }

    #[test]
    fn conjugate_flag_conjugates_entries() {
        let s = CMatrix::phase(std::f64::consts::FRAC_PI_2); // diag(1, i)
        let mut v = vec![Complex::ZERO, Complex::ONE];
        apply(&mut v, &s, &[0], 1, true);
        assert!(v[1].approx_eq(-Complex::I, 1e-15));
    }

    #[test]
    fn three_qubit_gate_supported() {
        // Toffoli |110> -> |111> with operands [c0=2, c1=1, t=0].
        let mut v = vec![Complex::ZERO; 8];
        v[0b110] = Complex::ONE;
        let ccx = {
            let mut m = CMatrix::identity(8);
            m[(6, 6)] = Complex::ZERO;
            m[(7, 7)] = Complex::ZERO;
            m[(6, 7)] = Complex::ONE;
            m[(7, 6)] = Complex::ONE;
            m
        };
        apply(&mut v, &ccx, &[2, 1, 0], 3, false);
        assert!(v[0b111].approx_eq(Complex::ONE, 1e-15), "{v:?}");
    }

    #[test]
    #[should_panic(expected = "kernel supports at most")]
    fn too_many_operands_rejected() {
        let mut v = vec![Complex::ONE; 32];
        let u = CMatrix::identity(32);
        apply(&mut v, &u, &[0, 1, 2, 3, 4], 5, false);
    }

    /// The specialized 1q/2q paths must be *bit-identical* to the generic
    /// path on random data — the dispatch must never change results.
    #[test]
    fn specialized_paths_match_generic_bitwise() {
        let mut seed = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let m = 5usize;
        let data: Vec<Complex> = (0..1 << m).map(|_| Complex::new(next(), next())).collect();
        let cases: Vec<(CMatrix, Vec<usize>)> = vec![
            (CMatrix::hadamard(), vec![0]),
            (CMatrix::u_gate(0.7, 1.3, 0.2), vec![3]),
            (CMatrix::sx(), vec![4]),
            (CMatrix::cnot(), vec![1, 3]),
            (CMatrix::cnot(), vec![4, 0]),
            (CMatrix::swap(), vec![2, 1]),
            (CMatrix::cphase(0.9), vec![0, 4]),
        ];
        for (u, positions) in cases {
            for conj in [false, true] {
                let mut fast = data.clone();
                apply_matrix_on_bits(&mut fast, u.as_slice(), &positions, m, conj);
                let mut slow = data.clone();
                apply_generic(&mut slow, u.as_slice(), &positions, m, conj);
                for (i, (a, b)) in fast.iter().zip(&slow).enumerate() {
                    assert!(
                        a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits(),
                        "{u:?} on {positions:?} (conj={conj}): amp {i}: {a:?} vs {b:?}"
                    );
                }
            }
        }
    }

    fn rng(mut seed: u64) -> impl FnMut() -> f64 {
        move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        }
    }

    /// Packs `width` scalar states into the cell-major split layout.
    fn pack(states: &[Vec<Complex>]) -> (Vec<f64>, Vec<f64>) {
        let width = states.len();
        let len = states[0].len();
        let mut re = vec![0.0f64; len * width];
        let mut im = vec![0.0f64; len * width];
        for (c, s) in states.iter().enumerate() {
            for (a, z) in s.iter().enumerate() {
                re[a * width + c] = z.re;
                im[a * width + c] = z.im;
            }
        }
        (re, im)
    }

    fn assert_cell_bitwise(
        re: &[f64],
        im: &[f64],
        width: usize,
        scalar: &[Vec<Complex>],
        what: &str,
    ) {
        for (c, s) in scalar.iter().enumerate() {
            for (a, z) in s.iter().enumerate() {
                let (br, bi) = (re[a * width + c], im[a * width + c]);
                assert!(
                    br.to_bits() == z.re.to_bits() && bi.to_bits() == z.im.to_bits(),
                    "{what}: cell {c} amp {a}: batched ({br}, {bi}) vs scalar {z:?}"
                );
            }
        }
    }

    /// Every batched shared-matrix path must be *bit-identical*, cell by
    /// cell, to the scalar kernel run on each cell's state separately —
    /// including ragged widths (1, 3) that exercise partial blocks.
    #[test]
    fn batched_shared_matrix_matches_scalar_bitwise() {
        let m = 5usize;
        let cases: Vec<(CMatrix, Vec<usize>)> = vec![
            (CMatrix::hadamard(), vec![0]),
            (CMatrix::u_gate(0.7, 1.3, 0.2), vec![3]),
            (CMatrix::cnot(), vec![1, 3]),
            (CMatrix::swap(), vec![2, 1]),
            (CMatrix::cphase(0.9), vec![0, 4]),
            (
                {
                    let mut ccx = CMatrix::identity(8);
                    ccx[(6, 6)] = Complex::ZERO;
                    ccx[(7, 7)] = Complex::ZERO;
                    ccx[(6, 7)] = Complex::ONE;
                    ccx[(7, 6)] = Complex::ONE;
                    ccx
                },
                vec![4, 2, 0],
            ),
        ];
        for width in [1usize, 3, 8, MAX_BATCH_CELLS] {
            let mut next = rng(0xA5A5_1234_5678_9ABC ^ width as u64);
            let states: Vec<Vec<Complex>> = (0..width)
                .map(|_| (0..1 << m).map(|_| Complex::new(next(), next())).collect())
                .collect();
            for (u, positions) in &cases {
                for conj in [false, true] {
                    let mut scalar = states.clone();
                    for s in &mut scalar {
                        apply_matrix_on_bits(s, u.as_slice(), positions, m, conj);
                    }
                    let (mut re, mut im) = pack(&states);
                    batch_apply_matrix_on_bits(
                        &mut re,
                        &mut im,
                        width,
                        u.as_slice(),
                        positions,
                        m,
                        conj,
                    );
                    assert_cell_bitwise(
                        &re,
                        &im,
                        width,
                        &scalar,
                        &format!("{u:?} on {positions:?} conj={conj} width={width}"),
                    );
                }
            }
        }
    }

    /// The per-cell 1q kernel (grid injectors: one matrix per cell) must be
    /// bit-identical to applying each cell's matrix with the scalar kernel.
    #[test]
    fn batched_per_cell_matrix_matches_scalar_bitwise() {
        let m = 4usize;
        for width in [1usize, 5, MAX_BATCH_CELLS] {
            let mut next = rng(0xDEAD_BEEF_0BAD_F00D ^ width as u64);
            let states: Vec<Vec<Complex>> = (0..width)
                .map(|_| (0..1 << m).map(|_| Complex::new(next(), next())).collect())
                .collect();
            let mats: Vec<CMatrix> = (0..width)
                .map(|c| CMatrix::u_gate(0.3 + c as f64, 0.1 * c as f64, 0.0))
                .collect();
            for q in 0..m {
                for conj in [false, true] {
                    let mut scalar = states.clone();
                    for (s, u) in scalar.iter_mut().zip(&mats) {
                        apply_matrix_on_bits(s, u.as_slice(), &[q], m, conj);
                    }
                    let (mut re, mut im) = pack(&states);
                    let mut u_re = vec![0.0f64; 4 * width];
                    let mut u_im = vec![0.0f64; 4 * width];
                    for (c, u) in mats.iter().enumerate() {
                        for (e, z) in u.as_slice().iter().enumerate() {
                            u_re[e * width + c] = z.re;
                            u_im[e * width + c] = z.im;
                        }
                    }
                    batch_apply_1q_per_cell(&mut re, &mut im, width, &u_re, &u_im, q, conj);
                    assert_cell_bitwise(
                        &re,
                        &im,
                        width,
                        &scalar,
                        &format!("per-cell u on q{q} conj={conj} width={width}"),
                    );
                }
            }
        }
    }
}
