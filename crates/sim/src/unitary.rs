//! Full-circuit unitary extraction.
//!
//! Builds the `2^n × 2^n` matrix a circuit implements by simulating each
//! basis column. Exponentially sized — intended for verification (the
//! transpiler's equivalence tests, gate-identity checks), not for
//! simulation of large circuits.

use crate::circuit::{Op, QuantumCircuit};
use crate::error::SimError;
use crate::statevector::Statevector;
use qufi_math::{CMatrix, Complex};

/// Hard cap: a 10-qubit unitary is already 1024×1024 complex entries.
pub const MAX_UNITARY_QUBITS: usize = 10;

/// Computes the unitary of the circuit's gate operations (barriers and
/// measurements ignored).
///
/// # Errors
///
/// Returns [`SimError::TooManyQubits`] beyond [`MAX_UNITARY_QUBITS`].
///
/// # Example
///
/// ```
/// use qufi_sim::{unitary, QuantumCircuit};
/// use qufi_math::CMatrix;
///
/// let mut qc = QuantumCircuit::new(1, 0);
/// qc.h(0).h(0);
/// let u = unitary::circuit_unitary(&qc).unwrap();
/// assert!(u.approx_eq(&CMatrix::identity(2), 1e-12));
/// ```
pub fn circuit_unitary(qc: &QuantumCircuit) -> Result<CMatrix, SimError> {
    let n = qc.num_qubits();
    if n > MAX_UNITARY_QUBITS {
        return Err(SimError::TooManyQubits {
            requested: n,
            max: MAX_UNITARY_QUBITS,
        });
    }
    let dim = 1usize << n;
    let mut m = CMatrix::zeros(dim, dim);
    for col in 0..dim {
        let mut amps = vec![Complex::ZERO; dim];
        amps[col] = Complex::ONE;
        let mut sv = Statevector::from_amplitudes(amps);
        for op in qc.instructions() {
            if let Op::Gate { gate, qubits } = op {
                sv.apply_gate(*gate, qubits);
            }
        }
        for row in 0..dim {
            m[(row, col)] = sv.amp(row);
        }
    }
    Ok(m)
}

/// `true` when two circuits implement the same unitary up to global phase.
///
/// # Errors
///
/// Propagates width-limit errors; width mismatch returns `Ok(false)`.
pub fn circuits_equivalent(
    a: &QuantumCircuit,
    b: &QuantumCircuit,
    tol: f64,
) -> Result<bool, SimError> {
    if a.num_qubits() != b.num_qubits() {
        return Ok(false);
    }
    let ua = circuit_unitary(a)?;
    let ub = circuit_unitary(b)?;
    Ok(ua.approx_eq_up_to_phase(&ub, tol))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;

    #[test]
    fn bell_circuit_unitary_is_unitary() {
        let mut qc = QuantumCircuit::new(2, 0);
        qc.h(0).cx(0, 1);
        let u = circuit_unitary(&qc).unwrap();
        assert!(u.is_unitary(1e-10));
        // First column: (|00> + |11>)/√2.
        assert!((u[(0, 0)].norm_sqr() - 0.5).abs() < 1e-12);
        assert!((u[(3, 0)].norm_sqr() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn single_gate_matches_gate_matrix() {
        for g in [Gate::H, Gate::T, Gate::Sx, Gate::U(0.3, 1.1, 2.0)] {
            let mut qc = QuantumCircuit::new(1, 0);
            qc.append(g, &[0]);
            let u = circuit_unitary(&qc).unwrap();
            assert!(u.approx_eq(&g.matrix(), 1e-12), "{g}");
        }
    }

    #[test]
    fn equivalence_detects_phase_only_difference() {
        let mut a = QuantumCircuit::new(1, 0);
        a.z(0);
        let mut b = QuantumCircuit::new(1, 0);
        b.rz(std::f64::consts::PI, 0);
        // Z and RZ(π) differ by global phase — equivalent.
        assert!(circuits_equivalent(&a, &b, 1e-10).unwrap());
        let mut c = QuantumCircuit::new(1, 0);
        c.x(0);
        assert!(!circuits_equivalent(&a, &c, 1e-10).unwrap());
    }

    #[test]
    fn width_mismatch_is_not_equivalent() {
        let a = QuantumCircuit::new(1, 0);
        let b = QuantumCircuit::new(2, 0);
        assert!(!circuits_equivalent(&a, &b, 1e-10).unwrap());
    }

    #[test]
    fn width_limit_enforced() {
        let qc = QuantumCircuit::new(MAX_UNITARY_QUBITS + 1, 0);
        assert!(matches!(
            circuit_unitary(&qc),
            Err(SimError::TooManyQubits { .. })
        ));
    }

    #[test]
    fn inverse_circuit_gives_adjoint() {
        let mut qc = QuantumCircuit::new(2, 0);
        qc.h(0).cp(0.8, 0, 1).t(1);
        let u = circuit_unitary(&qc).unwrap();
        let inv = circuit_unitary(&qc.inverse()).unwrap();
        assert!(inv.approx_eq(&u.adjoint(), 1e-10));
    }
}
