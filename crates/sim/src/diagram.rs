//! ASCII circuit diagrams.
//!
//! Renders a circuit in the familiar one-wire-per-qubit style (the view the
//! paper's Fig. 4 uses to show where the injector gate lands):
//!
//! ```text
//! q0: ─[h]───■───[h]──[M0]─
//! q1: ─[h]───┼───[h]──[M1]─
//! q2: ───────┼─────────────
//! q3: ─[x]──[X]─────────────
//! ```
//!
//! Columns are packed greedily: an operation starts in the earliest column
//! where all its wires are free, which mirrors the circuit's dependency
//! structure (and therefore its depth).

use crate::circuit::{Op, QuantumCircuit};
use crate::gate::Gate;

/// One rendered column cell.
#[derive(Debug, Clone, PartialEq)]
enum Cell {
    /// Horizontal wire only.
    Wire,
    /// A boxed label, e.g. `[h]`.
    Boxed(String),
    /// A control dot `■`.
    Control,
    /// A vertical connector through this wire `┼`.
    Through,
    /// An X target `[X]`.
    Target,
    /// Measurement into a classical bit.
    Measure(usize),
    /// Barrier mark.
    Barrier,
}

/// Renders the circuit as ASCII art.
///
/// # Example
///
/// ```
/// use qufi_sim::{diagram, QuantumCircuit};
///
/// let mut qc = QuantumCircuit::new(2, 2);
/// qc.h(0).cx(0, 1).measure_all();
/// let art = diagram::draw(&qc);
/// assert!(art.contains("q0:"));
/// assert!(art.contains("[h]"));
/// ```
pub fn draw(qc: &QuantumCircuit) -> String {
    let n = qc.num_qubits();
    // grid[qubit] = cells per column.
    let mut grid: Vec<Vec<Cell>> = vec![Vec::new(); n];
    // Next free column per qubit.
    let mut free = vec![0usize; n];

    let place = |grid: &mut Vec<Vec<Cell>>,
                 free: &mut Vec<usize>,
                 wires: &[usize],
                 cells: Vec<(usize, Cell)>| {
        let lo = *wires.iter().min().expect("nonempty");
        let hi = *wires.iter().max().expect("nonempty");
        let col = (lo..=hi).map(|q| free[q]).max().unwrap_or(0);
        for row in grid.iter_mut() {
            while row.len() < col {
                row.push(Cell::Wire);
            }
        }
        for q in lo..=hi {
            let cell = cells
                .iter()
                .find(|(w, _)| *w == q)
                .map(|(_, c)| c.clone())
                .unwrap_or(Cell::Through);
            if grid[q].len() == col {
                grid[q].push(cell);
            } else {
                grid[q][col] = cell;
            }
            free[q] = col + 1;
        }
    };

    for op in qc.instructions() {
        match op {
            Op::Gate { gate, qubits } => match gate {
                Gate::Cx => place(
                    &mut grid,
                    &mut free,
                    qubits,
                    vec![(qubits[0], Cell::Control), (qubits[1], Cell::Target)],
                ),
                Gate::Cz | Gate::Cp(_) => place(
                    &mut grid,
                    &mut free,
                    qubits,
                    vec![
                        (qubits[0], Cell::Control),
                        (qubits[1], Cell::Boxed(short_label(*gate))),
                    ],
                ),
                Gate::Swap => place(
                    &mut grid,
                    &mut free,
                    qubits,
                    vec![
                        (qubits[0], Cell::Boxed("x".into())),
                        (qubits[1], Cell::Boxed("x".into())),
                    ],
                ),
                Gate::Ccx => place(
                    &mut grid,
                    &mut free,
                    qubits,
                    vec![
                        (qubits[0], Cell::Control),
                        (qubits[1], Cell::Control),
                        (qubits[2], Cell::Target),
                    ],
                ),
                g => place(
                    &mut grid,
                    &mut free,
                    qubits,
                    vec![(qubits[0], Cell::Boxed(short_label(*g)))],
                ),
            },
            Op::Barrier(qs) => {
                if !qs.is_empty() {
                    let cells = qs.iter().map(|&q| (q, Cell::Barrier)).collect();
                    place(&mut grid, &mut free, qs, cells);
                }
            }
            Op::Measure { qubit, clbit } => place(
                &mut grid,
                &mut free,
                &[*qubit],
                vec![(*qubit, Cell::Measure(*clbit))],
            ),
        }
    }

    // Pad all wires to the same length.
    let width = free.iter().copied().max().unwrap_or(0);
    for row in &mut grid {
        while row.len() < width {
            row.push(Cell::Wire);
        }
    }

    // Column display widths.
    let col_width = |col: usize| -> usize {
        grid.iter()
            .map(|row| cell_text(&row[col]).chars().count())
            .max()
            .unwrap_or(1)
    };
    let widths: Vec<usize> = (0..width).map(col_width).collect();

    let mut out = String::new();
    for (q, row) in grid.iter().enumerate() {
        out.push_str(&format!("q{q}: ─"));
        for (col, cell) in row.iter().enumerate() {
            let text = cell_text(cell);
            let pad = widths[col] - text.chars().count();
            out.push_str(&text);
            for _ in 0..pad {
                out.push('─');
            }
            out.push('─');
        }
        out.push('\n');
    }
    out
}

fn cell_text(cell: &Cell) -> String {
    match cell {
        Cell::Wire => "─".to_string(),
        Cell::Boxed(l) => format!("[{l}]"),
        Cell::Control => "■".to_string(),
        Cell::Through => "┼".to_string(),
        Cell::Target => "[X]".to_string(),
        Cell::Measure(c) => format!("[M{c}]"),
        Cell::Barrier => "░".to_string(),
    }
}

fn short_label(gate: Gate) -> String {
    match gate {
        Gate::U(t, p, l) => format!("u({t:.2},{p:.2},{l:.2})"),
        Gate::Rx(a) | Gate::Ry(a) | Gate::Rz(a) | Gate::P(a) | Gate::Cp(a) => {
            format!("{}({a:.2})", gate.name())
        }
        g => g.name().to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_wire_sequence() {
        let mut qc = QuantumCircuit::new(1, 1);
        qc.h(0).t(0).measure(0, 0);
        let art = draw(&qc);
        assert!(art.contains("[h]"));
        assert!(art.contains("[t]"));
        assert!(art.contains("[M0]"));
        // Gates appear in order on the single line.
        let line = art.lines().next().expect("one line");
        let h = line.find("[h]").expect("h");
        let t = line.find("[t]").expect("t");
        assert!(h < t);
    }

    #[test]
    fn cx_draws_control_and_target() {
        let mut qc = QuantumCircuit::new(2, 0);
        qc.cx(0, 1);
        let art = draw(&qc);
        let lines: Vec<&str> = art.lines().collect();
        assert!(lines[0].contains('■'));
        assert!(lines[1].contains("[X]"));
    }

    #[test]
    fn intermediate_wire_shows_through_connector() {
        let mut qc = QuantumCircuit::new(3, 0);
        qc.cx(0, 2);
        let art = draw(&qc);
        let lines: Vec<&str> = art.lines().collect();
        assert!(
            lines[1].contains('┼'),
            "middle wire missing connector:\n{art}"
        );
    }

    #[test]
    fn parallel_gates_share_a_column() {
        let mut a = QuantumCircuit::new(2, 0);
        a.h(0).h(1);
        let mut b = QuantumCircuit::new(2, 0);
        b.h(0).h(0);
        // Parallel: both h's in one column → narrower than sequential.
        let wa = draw(&a).lines().next().expect("line").chars().count();
        let wb = draw(&b).lines().next().expect("line").chars().count();
        assert!(wa < wb, "parallel {wa} vs sequential {wb}");
    }

    #[test]
    fn fault_injector_gate_is_visible() {
        let mut qc = QuantumCircuit::new(1, 0);
        qc.u(0.79, 0.0, 0.0, 0);
        let art = draw(&qc);
        assert!(art.contains("u(0.79"), "{art}");
    }

    #[test]
    fn barrier_marks_selected_wires() {
        let mut qc = QuantumCircuit::new(2, 0);
        qc.h(0).barrier(&[0, 1]).h(1);
        let art = draw(&qc);
        assert_eq!(art.matches('░').count(), 2);
    }

    #[test]
    fn every_wire_has_a_row() {
        let qc = QuantumCircuit::new(5, 0);
        let art = draw(&qc);
        assert_eq!(art.lines().count(), 5);
        for q in 0..5 {
            assert!(art.contains(&format!("q{q}: ")));
        }
    }
}
