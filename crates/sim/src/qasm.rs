//! OpenQASM 2.0 export and import.
//!
//! QuFI "can export [faulty circuits] as QASM files to load and execute the
//! circuits on different systems" (§IV-B). [`to_qasm`] emits standard
//! OpenQASM 2.0; [`from_qasm`] parses the subset this crate emits (plus
//! simple `pi`-expressions in parameters), enough for lossless round-trips.

use crate::circuit::{Op, QuantumCircuit};
use crate::error::SimError;
use crate::gate::Gate;
use std::f64::consts::PI;
use std::fmt::Write as _;

/// Serializes a circuit as OpenQASM 2.0.
///
/// # Example
///
/// ```
/// use qufi_sim::{qasm, QuantumCircuit};
///
/// let mut qc = QuantumCircuit::new(2, 2);
/// qc.h(0).cx(0, 1).measure_all();
/// let text = qasm::to_qasm(&qc);
/// assert!(text.contains("cx q[0],q[1];"));
/// let back = qasm::from_qasm(&text).unwrap();
/// assert_eq!(back.gate_count(), qc.gate_count());
/// ```
pub fn to_qasm(qc: &QuantumCircuit) -> String {
    let mut out = String::new();
    out.push_str("OPENQASM 2.0;\n");
    out.push_str("include \"qelib1.inc\";\n");
    if !qc.name.is_empty() {
        let _ = writeln!(out, "// circuit: {}", qc.name);
    }
    let _ = writeln!(out, "qreg q[{}];", qc.num_qubits());
    if qc.num_clbits() > 0 {
        let _ = writeln!(out, "creg c[{}];", qc.num_clbits());
    }
    for op in qc.instructions() {
        match op {
            Op::Gate { gate, qubits } => {
                let params = gate.params();
                let qs: Vec<String> = qubits.iter().map(|q| format!("q[{q}]")).collect();
                if params.is_empty() {
                    let _ = writeln!(out, "{} {};", gate.name(), qs.join(","));
                } else {
                    let ps: Vec<String> = params.iter().map(|p| format!("{p:.12}")).collect();
                    let _ = writeln!(out, "{}({}) {};", gate.name(), ps.join(","), qs.join(","));
                }
            }
            Op::Barrier(qs) => {
                let qs: Vec<String> = qs.iter().map(|q| format!("q[{q}]")).collect();
                let _ = writeln!(out, "barrier {};", qs.join(","));
            }
            Op::Measure { qubit, clbit } => {
                let _ = writeln!(out, "measure q[{qubit}] -> c[{clbit}];");
            }
        }
    }
    out
}

/// Parses the OpenQASM 2.0 subset emitted by [`to_qasm`].
///
/// # Errors
///
/// Returns [`SimError::QasmParse`] with a line number on malformed input,
/// unknown gates, or out-of-range registers.
pub fn from_qasm(text: &str) -> Result<QuantumCircuit, SimError> {
    let mut qc: Option<QuantumCircuit> = None;
    let mut n_q = 0usize;
    let mut n_c = 0usize;
    let mut pending: Vec<(usize, String)> = Vec::new();

    for (lineno, raw) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = raw.split("//").next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        for stmt in line.split(';') {
            let stmt = stmt.trim();
            if stmt.is_empty() {
                continue;
            }
            if stmt.starts_with("OPENQASM") || stmt.starts_with("include") {
                continue;
            }
            if let Some(rest) = stmt.strip_prefix("qreg") {
                n_q = parse_reg_decl(rest, lineno)?;
                continue;
            }
            if let Some(rest) = stmt.strip_prefix("creg") {
                n_c = parse_reg_decl(rest, lineno)?;
                continue;
            }
            // Defer gate statements until registers are known.
            pending.push((lineno, stmt.to_string()));
        }
    }

    let mut circuit = QuantumCircuit::new(n_q, n_c);
    for (lineno, stmt) in pending {
        apply_statement(&mut circuit, &stmt, lineno)?;
    }
    qc.replace(circuit);
    Ok(qc.expect("circuit constructed"))
}

fn parse_reg_decl(rest: &str, line: usize) -> Result<usize, SimError> {
    // e.g. ` q[4]`
    let rest = rest.trim();
    let open = rest.find('[').ok_or_else(|| err(line, "missing '['"))?;
    let close = rest.find(']').ok_or_else(|| err(line, "missing ']'"))?;
    rest[open + 1..close]
        .parse::<usize>()
        .map_err(|_| err(line, "bad register size"))
}

fn err(line: usize, reason: &str) -> SimError {
    SimError::QasmParse {
        line,
        reason: reason.to_string(),
    }
}

fn apply_statement(qc: &mut QuantumCircuit, stmt: &str, line: usize) -> Result<(), SimError> {
    if let Some(rest) = stmt.strip_prefix("measure") {
        let parts: Vec<&str> = rest.split("->").collect();
        if parts.len() != 2 {
            return Err(err(line, "malformed measure"));
        }
        let q = parse_ref(parts[0], 'q', line)?;
        let c = parse_ref(parts[1], 'c', line)?;
        if q >= qc.num_qubits() {
            return Err(err(line, "measure qubit out of range"));
        }
        if c >= qc.num_clbits() {
            return Err(err(line, "measure clbit out of range"));
        }
        qc.measure(q, c);
        return Ok(());
    }
    if let Some(rest) = stmt.strip_prefix("barrier") {
        let qs = parse_qubit_list(rest, line)?;
        qc.barrier(&qs);
        return Ok(());
    }

    // gate[(params)] q[i](,q[j])*
    let (head, operands) = match stmt.find(|c: char| c.is_whitespace()) {
        Some(pos) if !stmt[..pos].contains('(') || stmt[..pos].contains(')') => {
            (&stmt[..pos], &stmt[pos..])
        }
        _ => {
            // Parameterized gates may contain spaces inside parens; split at
            // the closing paren instead.
            match stmt.find(')') {
                Some(pos) => (&stmt[..=pos], &stmt[pos + 1..]),
                None => return Err(err(line, "malformed statement")),
            }
        }
    };
    let (name, params) = match head.find('(') {
        Some(open) => {
            let close = head.rfind(')').ok_or_else(|| err(line, "missing ')'"))?;
            let params: Result<Vec<f64>, SimError> = head[open + 1..close]
                .split(',')
                .map(|s| parse_angle(s.trim(), line))
                .collect();
            (&head[..open], params?)
        }
        None => (head, Vec::new()),
    };

    let qubits = parse_qubit_list(operands, line)?;
    let gate = gate_from_name(name, &params, line)?;
    qc.try_append(gate, &qubits)
        .map_err(|e| err(line, &e.to_string()))?;
    Ok(())
}

fn gate_from_name(name: &str, params: &[f64], line: usize) -> Result<Gate, SimError> {
    let need = |n: usize| -> Result<(), SimError> {
        if params.len() == n {
            Ok(())
        } else {
            Err(err(line, &format!("gate {name} expects {n} parameters")))
        }
    };
    let g = match name {
        "id" => Gate::I,
        "h" => Gate::H,
        "x" => Gate::X,
        "y" => Gate::Y,
        "z" => Gate::Z,
        "s" => Gate::S,
        "sdg" => Gate::Sdg,
        "t" => Gate::T,
        "tdg" => Gate::Tdg,
        "sx" => Gate::Sx,
        "sxdg" => Gate::Sxdg,
        "rx" => {
            need(1)?;
            Gate::Rx(params[0])
        }
        "ry" => {
            need(1)?;
            Gate::Ry(params[0])
        }
        "rz" => {
            need(1)?;
            Gate::Rz(params[0])
        }
        "p" | "u1" => {
            need(1)?;
            Gate::P(params[0])
        }
        "u" | "u3" => {
            need(3)?;
            Gate::U(params[0], params[1], params[2])
        }
        "cx" => Gate::Cx,
        "cz" => Gate::Cz,
        "cp" | "cu1" => {
            need(1)?;
            Gate::Cp(params[0])
        }
        "swap" => Gate::Swap,
        "ccx" => Gate::Ccx,
        other => return Err(err(line, &format!("unknown gate {other}"))),
    };
    Ok(g)
}

fn parse_qubit_list(s: &str, line: usize) -> Result<Vec<usize>, SimError> {
    s.split(',')
        .map(|part| parse_ref(part, 'q', line))
        .collect()
}

fn parse_ref(s: &str, reg: char, line: usize) -> Result<usize, SimError> {
    let s = s.trim();
    let expected = format!("{reg}[");
    if !s.starts_with(&expected) || !s.ends_with(']') {
        return Err(err(line, &format!("expected {reg}[i], got {s:?}")));
    }
    s[expected.len()..s.len() - 1]
        .parse::<usize>()
        .map_err(|_| err(line, "bad register index"))
}

/// Parses a parameter that may be a float or a simple `pi` expression:
/// `pi`, `-pi`, `pi/2`, `3*pi/4`, `0.25*pi`.
fn parse_angle(s: &str, line: usize) -> Result<f64, SimError> {
    if let Ok(v) = s.parse::<f64>() {
        return Ok(v);
    }
    let (neg, body) = match s.strip_prefix('-') {
        Some(rest) => (true, rest.trim()),
        None => (false, s),
    };
    let (num, den) = match body.split_once('/') {
        Some((n, d)) => (
            n.trim().to_string(),
            d.trim()
                .parse::<f64>()
                .map_err(|_| err(line, "bad denominator"))?,
        ),
        None => (body.to_string(), 1.0),
    };
    let coeff = if num == "pi" {
        1.0
    } else if let Some(c) = num.strip_suffix("*pi") {
        c.trim()
            .parse::<f64>()
            .map_err(|_| err(line, "bad pi coefficient"))?
    } else {
        return Err(err(line, &format!("cannot parse angle {s:?}")));
    };
    let v = coeff * PI / den;
    Ok(if neg { -v } else { v })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::statevector::Statevector;

    fn roundtrip(qc: &QuantumCircuit) -> QuantumCircuit {
        from_qasm(&to_qasm(qc)).expect("roundtrip parse")
    }

    #[test]
    fn roundtrip_preserves_semantics() {
        let mut qc = QuantumCircuit::new(3, 3);
        qc.h(0)
            .cx(0, 1)
            .u(0.3, 1.2, 2.1, 2)
            .cp(0.7, 1, 2)
            .barrier(&[])
            .t(0)
            .sdg(1)
            .swap(0, 2)
            .measure_all();
        let back = roundtrip(&qc);
        assert_eq!(back.num_qubits(), 3);
        assert_eq!(back.num_clbits(), 3);
        assert_eq!(back.gate_count(), qc.gate_count());
        let a = Statevector::from_circuit(&qc).unwrap();
        let b = Statevector::from_circuit(&back).unwrap();
        assert!(a.probabilities().tv_distance(&b.probabilities()) < 1e-9);
    }

    #[test]
    fn emits_standard_header() {
        let qc = QuantumCircuit::new(1, 1);
        let text = to_qasm(&qc);
        assert!(text.starts_with("OPENQASM 2.0;"));
        assert!(text.contains("qelib1.inc"));
        assert!(text.contains("qreg q[1];"));
        assert!(text.contains("creg c[1];"));
    }

    #[test]
    fn parses_pi_expressions() {
        let text = "OPENQASM 2.0;\nqreg q[1];\nrz(pi/2) q[0];\nrz(-pi/4) q[0];\nrz(3*pi/4) q[0];\nrz(pi) q[0];\n";
        let qc = from_qasm(text).unwrap();
        let params: Vec<f64> = qc
            .ops()
            .iter()
            .filter_map(|op| match op {
                Op::Gate { gate, .. } => Some(gate.params()[0]),
                _ => None,
            })
            .collect();
        assert!((params[0] - PI / 2.0).abs() < 1e-12);
        assert!((params[1] + PI / 4.0).abs() < 1e-12);
        assert!((params[2] - 3.0 * PI / 4.0).abs() < 1e-12);
        assert!((params[3] - PI).abs() < 1e-12);
    }

    #[test]
    fn parses_u1_u3_aliases() {
        let text = "qreg q[1];\nu1(0.5) q[0];\nu3(0.1,0.2,0.3) q[0];\n";
        let qc = from_qasm(text).unwrap();
        assert_eq!(qc.gate_count(), 2);
    }

    #[test]
    fn unknown_gate_reports_line() {
        let text = "qreg q[1];\nfoo q[0];\n";
        match from_qasm(text) {
            Err(SimError::QasmParse { line, reason }) => {
                assert_eq!(line, 2);
                assert!(reason.contains("foo"));
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn out_of_range_measure_rejected() {
        let text = "qreg q[1];\ncreg c[1];\nmeasure q[3] -> c[0];\n";
        assert!(from_qasm(text).is_err());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text =
            "// header comment\nOPENQASM 2.0;\n\nqreg q[2]; // inline\nh q[0]; cx q[0],q[1];\n";
        let qc = from_qasm(text).unwrap();
        assert_eq!(qc.gate_count(), 2);
    }

    #[test]
    fn barrier_roundtrip() {
        let mut qc = QuantumCircuit::new(2, 0);
        qc.h(0).barrier(&[0, 1]).h(1);
        let back = roundtrip(&qc);
        assert_eq!(back.size(), 3);
        assert!(matches!(back.ops()[1], Op::Barrier(_)));
    }
}
