//! The gate set.
//!
//! Includes every gate the QuFI paper touches: the common named gates whose
//! fault-equivalent phase shifts are drawn as reference lines on the paper's
//! heatmaps (X, Y, Z, S, T), the generic `U(θ, φ, λ)` gate used as the fault
//! injector (Eq. 3), the IBM native basis (`rz`, `sx`, `x`, `cx`, `id`) the
//! transpiler targets, and the two-qubit gates needed by the benchmark
//! circuits (CX for BV/DJ, controlled-phase and SWAP for QFT).

use core::fmt;
use qufi_math::CMatrix;
use std::f64::consts::PI;

/// A quantum gate. Parameterized variants carry their angles in radians.
///
/// # Example
///
/// ```
/// use qufi_sim::Gate;
/// use std::f64::consts::PI;
///
/// // A fault injector gate from the QuFI model: U(θ, φ, 0).
/// let fault = Gate::U(PI / 4.0, PI, 0.0);
/// assert_eq!(fault.num_qubits(), 1);
/// assert!(fault.matrix().is_unitary(1e-12));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Gate {
    /// Identity (the `id` delay gate).
    I,
    /// Hadamard.
    H,
    /// Pauli-X.
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
    /// Phase gate S = P(π/2).
    S,
    /// S-dagger.
    Sdg,
    /// T = P(π/4).
    T,
    /// T-dagger.
    Tdg,
    /// Square root of X (IBM native).
    Sx,
    /// Inverse square root of X.
    Sxdg,
    /// Rotation about X.
    Rx(f64),
    /// Rotation about Y.
    Ry(f64),
    /// Rotation about Z (IBM native, virtual).
    Rz(f64),
    /// Phase gate P(λ) = diag(1, e^{iλ}).
    P(f64),
    /// The generic single-qubit gate `U(θ, φ, λ)` (QuFI Eq. 3).
    U(f64, f64, f64),
    /// Controlled-X; operand order is `[control, target]`.
    Cx,
    /// Controlled-Z.
    Cz,
    /// Controlled-phase `CP(λ)`.
    Cp(f64),
    /// SWAP.
    Swap,
    /// Toffoli (CCX); operand order `[control, control, target]`.
    Ccx,
}

impl Gate {
    /// Number of qubits the gate acts on.
    pub fn num_qubits(&self) -> usize {
        match self {
            Gate::Cx | Gate::Cz | Gate::Cp(_) | Gate::Swap => 2,
            Gate::Ccx => 3,
            _ => 1,
        }
    }

    /// Lower-case mnemonic, matching OpenQASM 2 / Qiskit spellings.
    pub fn name(&self) -> &'static str {
        match self {
            Gate::I => "id",
            Gate::H => "h",
            Gate::X => "x",
            Gate::Y => "y",
            Gate::Z => "z",
            Gate::S => "s",
            Gate::Sdg => "sdg",
            Gate::T => "t",
            Gate::Tdg => "tdg",
            Gate::Sx => "sx",
            Gate::Sxdg => "sxdg",
            Gate::Rx(_) => "rx",
            Gate::Ry(_) => "ry",
            Gate::Rz(_) => "rz",
            Gate::P(_) => "p",
            Gate::U(_, _, _) => "u",
            Gate::Cx => "cx",
            Gate::Cz => "cz",
            Gate::Cp(_) => "cp",
            Gate::Swap => "swap",
            Gate::Ccx => "ccx",
        }
    }

    /// The unitary matrix of the gate.
    ///
    /// For multi-qubit gates the first operand is the **most significant**
    /// bit of the matrix index (so [`CMatrix::cnot`] has its control on the
    /// first operand).
    pub fn matrix(&self) -> CMatrix {
        match *self {
            Gate::I => CMatrix::identity(2),
            Gate::H => CMatrix::hadamard(),
            Gate::X => CMatrix::pauli_x(),
            Gate::Y => CMatrix::pauli_y(),
            Gate::Z => CMatrix::pauli_z(),
            Gate::S => CMatrix::phase(PI / 2.0),
            Gate::Sdg => CMatrix::phase(-PI / 2.0),
            Gate::T => CMatrix::phase(PI / 4.0),
            Gate::Tdg => CMatrix::phase(-PI / 4.0),
            Gate::Sx => CMatrix::sx(),
            Gate::Sxdg => CMatrix::sx().adjoint(),
            Gate::Rx(t) => CMatrix::rx(t),
            Gate::Ry(t) => CMatrix::ry(t),
            Gate::Rz(t) => CMatrix::rz(t),
            Gate::P(l) => CMatrix::phase(l),
            Gate::U(t, p, l) => CMatrix::u_gate(t, p, l),
            Gate::Cx => CMatrix::cnot(),
            Gate::Cz => CMatrix::cz(),
            Gate::Cp(l) => CMatrix::cphase(l),
            Gate::Swap => CMatrix::swap(),
            Gate::Ccx => {
                let mut m = CMatrix::identity(8);
                // |110> <-> |111>
                m[(6, 6)] = qufi_math::Complex::ZERO;
                m[(7, 7)] = qufi_math::Complex::ZERO;
                m[(6, 7)] = qufi_math::Complex::ONE;
                m[(7, 6)] = qufi_math::Complex::ONE;
                m
            }
        }
    }

    /// The inverse gate, as a gate (not a matrix).
    pub fn inverse(&self) -> Gate {
        match *self {
            Gate::S => Gate::Sdg,
            Gate::Sdg => Gate::S,
            Gate::T => Gate::Tdg,
            Gate::Tdg => Gate::T,
            Gate::Sx => Gate::Sxdg,
            Gate::Sxdg => Gate::Sx,
            Gate::Rx(t) => Gate::Rx(-t),
            Gate::Ry(t) => Gate::Ry(-t),
            Gate::Rz(t) => Gate::Rz(-t),
            Gate::P(l) => Gate::P(-l),
            Gate::Cp(l) => Gate::Cp(-l),
            Gate::U(t, p, l) => Gate::U(-t, -l, -p),
            // Self-inverse gates.
            g => g,
        }
    }

    /// `true` for gates that are their own inverse.
    pub fn is_self_inverse(&self) -> bool {
        matches!(
            self,
            Gate::I
                | Gate::H
                | Gate::X
                | Gate::Y
                | Gate::Z
                | Gate::Cx
                | Gate::Cz
                | Gate::Swap
                | Gate::Ccx
        )
    }

    /// `true` when the matrix is diagonal in the computational basis
    /// (these commute with each other and with measurement).
    pub fn is_diagonal(&self) -> bool {
        matches!(
            self,
            Gate::I
                | Gate::Z
                | Gate::S
                | Gate::Sdg
                | Gate::T
                | Gate::Tdg
                | Gate::Rz(_)
                | Gate::P(_)
                | Gate::Cz
                | Gate::Cp(_)
        )
    }

    /// The gate's parameters, if any, in declaration order.
    pub fn params(&self) -> Vec<f64> {
        match *self {
            Gate::Rx(t) | Gate::Ry(t) | Gate::Rz(t) | Gate::P(t) | Gate::Cp(t) => vec![t],
            Gate::U(t, p, l) => vec![t, p, l],
            _ => vec![],
        }
    }

    /// The `(θ, φ)` phase-shift a named single-qubit gate corresponds to in
    /// the QuFI fault model — the dotted reference lines of Fig. 5.
    ///
    /// Returns `None` for gates that are not pure `U(θ, φ, 0)` shifts.
    pub fn as_fault_shift(&self) -> Option<(f64, f64)> {
        match self {
            Gate::X => Some((PI, 0.0)),
            Gate::Y => Some((PI, PI / 2.0)),
            // Diagonal phase gates are φ-shifts with θ = 0 (up to the λ/φ
            // equivalence for diagonal U gates: U(0, φ, 0)·|ψ⟩ has the same
            // measurement statistics as P(φ)).
            Gate::Z => Some((0.0, PI)),
            Gate::S => Some((0.0, PI / 2.0)),
            Gate::T => Some((0.0, PI / 4.0)),
            _ => None,
        }
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let params = self.params();
        if params.is_empty() {
            write!(f, "{}", self.name())
        } else {
            let rendered: Vec<String> = params.iter().map(|p| format!("{p:.6}")).collect();
            write!(f, "{}({})", self.name(), rendered.join(","))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL_PARAMLESS: [Gate; 14] = [
        Gate::I,
        Gate::H,
        Gate::X,
        Gate::Y,
        Gate::Z,
        Gate::S,
        Gate::Sdg,
        Gate::T,
        Gate::Tdg,
        Gate::Sx,
        Gate::Sxdg,
        Gate::Cx,
        Gate::Cz,
        Gate::Swap,
    ];

    #[test]
    fn all_gates_unitary() {
        for g in ALL_PARAMLESS {
            assert!(g.matrix().is_unitary(1e-12), "{g} not unitary");
        }
        for g in [
            Gate::Rx(0.3),
            Gate::Ry(1.0),
            Gate::Rz(2.0),
            Gate::P(0.5),
            Gate::U(0.2, 1.4, 2.7),
            Gate::Cp(0.8),
            Gate::Ccx,
        ] {
            assert!(g.matrix().is_unitary(1e-12), "{g} not unitary");
        }
    }

    #[test]
    fn inverse_matrices_multiply_to_identity() {
        let gates = [
            Gate::H,
            Gate::S,
            Gate::T,
            Gate::Sx,
            Gate::Rx(0.7),
            Gate::Ry(-1.3),
            Gate::Rz(2.1),
            Gate::P(0.4),
            Gate::U(0.5, 1.0, 1.5),
            Gate::Cx,
            Gate::Cp(1.1),
            Gate::Swap,
            Gate::Ccx,
        ];
        for g in gates {
            let m = g.matrix();
            let inv = g.inverse().matrix();
            let prod = m.matmul(&inv);
            let n = prod.rows();
            assert!(
                prod.approx_eq_up_to_phase(&CMatrix::identity(n), 1e-10),
                "{g} inverse wrong"
            );
        }
    }

    #[test]
    fn u_gate_inverse_exact() {
        // U(θ,φ,λ)⁻¹ = U(-θ,-λ,-φ), exactly (not only up to phase).
        let g = Gate::U(0.9, 0.3, 1.7);
        let prod = g.matrix().matmul(&g.inverse().matrix());
        assert!(prod.approx_eq(&CMatrix::identity(2), 1e-12));
    }

    #[test]
    fn self_inverse_flag_is_consistent() {
        for g in ALL_PARAMLESS {
            if g.is_self_inverse() {
                let sq = g.matrix().matmul(&g.matrix());
                let n = sq.rows();
                assert!(
                    sq.approx_eq(&CMatrix::identity(n), 1e-12),
                    "{g} not self-inverse"
                );
            }
        }
    }

    #[test]
    fn diagonal_flag_matches_matrix() {
        for g in [
            Gate::Z,
            Gate::S,
            Gate::T,
            Gate::Rz(0.7),
            Gate::P(1.2),
            Gate::Cz,
            Gate::Cp(0.4),
        ] {
            assert!(g.is_diagonal());
            let m = g.matrix();
            for i in 0..m.rows() {
                for j in 0..m.cols() {
                    if i != j {
                        assert!(m[(i, j)].norm() < 1e-12, "{g} has off-diagonal entries");
                    }
                }
            }
        }
        assert!(!Gate::H.is_diagonal());
        assert!(!Gate::Cx.is_diagonal());
    }

    #[test]
    fn fault_shift_reference_lines() {
        // Fig. 5 reference lines: X/Y at θ=π, Z/S/T at φ=π, π/2, π/4.
        assert_eq!(Gate::X.as_fault_shift(), Some((PI, 0.0)));
        assert_eq!(Gate::Z.as_fault_shift(), Some((0.0, PI)));
        assert_eq!(Gate::T.as_fault_shift(), Some((0.0, PI / 4.0)));
        assert_eq!(Gate::H.as_fault_shift(), None);
    }

    #[test]
    fn names_are_qasm_spellings() {
        assert_eq!(Gate::Cx.name(), "cx");
        assert_eq!(Gate::U(0.0, 0.0, 0.0).name(), "u");
        assert_eq!(Gate::Sdg.name(), "sdg");
    }

    #[test]
    fn display_includes_params() {
        assert_eq!(Gate::H.to_string(), "h");
        assert!(Gate::Rz(1.5).to_string().starts_with("rz(1.5"));
        assert!(Gate::U(1.0, 2.0, 3.0).to_string().contains(','));
    }

    #[test]
    fn ccx_flips_target_only_when_controls_set() {
        let m = Gate::Ccx.matrix();
        // |110> (controls q_a=1, q_b=1, target 0) -> |111>
        assert!(m[(7, 6)].approx_eq(qufi_math::Complex::ONE, 1e-15));
        // |100> stays.
        assert!(m[(4, 4)].approx_eq(qufi_math::Complex::ONE, 1e-15));
    }
}
