//! Error type shared by the simulation crate.

use core::fmt;

/// Errors produced by circuit construction, simulation or QASM handling.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A qubit index was out of range for the circuit/register.
    QubitOutOfRange {
        /// The offending index.
        qubit: usize,
        /// Number of qubits available.
        width: usize,
    },
    /// A classical bit index was out of range.
    ClbitOutOfRange {
        /// The offending index.
        clbit: usize,
        /// Number of classical bits available.
        width: usize,
    },
    /// The same qubit was used twice in one multi-qubit gate.
    DuplicateQubit {
        /// The duplicated index.
        qubit: usize,
    },
    /// Simulation would need more qubits than the engine supports.
    TooManyQubits {
        /// Requested width.
        requested: usize,
        /// Maximum supported width.
        max: usize,
    },
    /// The circuit contains no measurement but a measured distribution was
    /// requested.
    NoMeasurements,
    /// OpenQASM parsing failed.
    QasmParse {
        /// 1-based line of the failure.
        line: usize,
        /// Human-readable reason.
        reason: String,
    },
    /// A gate that cannot be inverted symbolically (none currently) or other
    /// unsupported operation.
    Unsupported(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::QubitOutOfRange { qubit, width } => {
                write!(f, "qubit {qubit} out of range for width {width}")
            }
            SimError::ClbitOutOfRange { clbit, width } => {
                write!(f, "classical bit {clbit} out of range for width {width}")
            }
            SimError::DuplicateQubit { qubit } => {
                write!(f, "duplicate qubit {qubit} in multi-qubit gate")
            }
            SimError::TooManyQubits { requested, max } => {
                write!(
                    f,
                    "{requested} qubits requested, simulator supports at most {max}"
                )
            }
            SimError::NoMeasurements => write!(f, "circuit has no measurements"),
            SimError::QasmParse { line, reason } => {
                write!(f, "QASM parse error at line {line}: {reason}")
            }
            SimError::Unsupported(what) => write!(f, "unsupported operation: {what}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_concise() {
        let e = SimError::QubitOutOfRange { qubit: 9, width: 4 };
        assert_eq!(e.to_string(), "qubit 9 out of range for width 4");
        let e = SimError::QasmParse {
            line: 3,
            reason: "unknown gate foo".into(),
        };
        assert!(e.to_string().contains("line 3"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
