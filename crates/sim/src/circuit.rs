//! Instruction-list circuit IR.
//!
//! [`QuantumCircuit`] mirrors the small slice of Qiskit's `QuantumCircuit`
//! that QuFI needs: fluent builder methods for the gate set, measurement
//! mapping qubits to classical bits, composition, inversion, and the
//! structural queries (depth, size, gate counts) used by the transpiler and
//! by injection-point enumeration.

use crate::error::SimError;
use crate::gate::Gate;
use core::fmt;

/// One operation in a circuit.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Op {
    /// A unitary gate applied to `qubits` (operand order matters for
    /// controlled gates).
    Gate {
        /// The gate.
        gate: Gate,
        /// Operand qubits, `gate.num_qubits()` of them.
        qubits: Vec<usize>,
    },
    /// A barrier over the given qubits: a no-op for simulation, but an
    /// optimization boundary for the transpiler.
    Barrier(Vec<usize>),
    /// Projective measurement of `qubit` into classical bit `clbit`.
    Measure {
        /// Measured qubit.
        qubit: usize,
        /// Destination classical bit.
        clbit: usize,
    },
}

/// An [`Op`] paired with its position; yielded by [`QuantumCircuit::instructions`].
pub type Instruction = Op;

/// A quantum circuit over `num_qubits` qubits and `num_clbits` classical bits.
///
/// # Example
///
/// ```
/// use qufi_sim::{QuantumCircuit, Gate};
///
/// let mut qc = QuantumCircuit::new(3, 3);
/// qc.h(0).cx(0, 1).cx(1, 2);
/// assert_eq!(qc.num_qubits(), 3);
/// assert_eq!(qc.gate_count(), 3);
/// assert_eq!(qc.depth(), 3);
/// qc.measure_all(); // measurements extend the depth, as in Qiskit
/// assert_eq!(qc.depth(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct QuantumCircuit {
    num_qubits: usize,
    num_clbits: usize,
    ops: Vec<Op>,
    /// Optional human-readable name (used in reports and QASM comments).
    pub name: String,
}

impl QuantumCircuit {
    /// Creates an empty circuit.
    pub fn new(num_qubits: usize, num_clbits: usize) -> Self {
        QuantumCircuit {
            num_qubits,
            num_clbits,
            ops: Vec::new(),
            name: String::new(),
        }
    }

    /// Creates an empty named circuit.
    pub fn with_name(num_qubits: usize, num_clbits: usize, name: &str) -> Self {
        let mut qc = QuantumCircuit::new(num_qubits, num_clbits);
        qc.name = name.to_owned();
        qc
    }

    /// Number of qubits.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of classical bits.
    #[inline]
    pub fn num_clbits(&self) -> usize {
        self.num_clbits
    }

    /// All operations in order.
    #[inline]
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Iterator over operations.
    pub fn instructions(&self) -> impl Iterator<Item = &Op> {
        self.ops.iter()
    }

    /// Total number of operations (gates + barriers + measurements).
    pub fn size(&self) -> usize {
        self.ops.len()
    }

    /// Number of unitary gate operations (excludes barriers/measurements).
    pub fn gate_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, Op::Gate { .. }))
            .count()
    }

    /// Count of each gate mnemonic, sorted by name.
    pub fn gate_counts(&self) -> Vec<(&'static str, usize)> {
        let mut counts: std::collections::BTreeMap<&'static str, usize> = Default::default();
        for op in &self.ops {
            if let Op::Gate { gate, .. } = op {
                *counts.entry(gate.name()).or_insert(0) += 1;
            }
        }
        counts.into_iter().collect()
    }

    /// Circuit depth: the longest chain of dependent gates (barriers and
    /// measurements included, as in Qiskit).
    pub fn depth(&self) -> usize {
        let mut level = vec![0usize; self.num_qubits + self.num_clbits];
        let mut max = 0;
        for op in &self.ops {
            let touched: Vec<usize> = match op {
                Op::Gate { qubits, .. } => qubits.clone(),
                Op::Barrier(qs) => qs.clone(),
                Op::Measure { qubit, clbit } => {
                    vec![*qubit, self.num_qubits + *clbit]
                }
            };
            if matches!(op, Op::Barrier(_)) {
                continue; // Qiskit's depth() skips barriers.
            }
            let new_level = touched.iter().map(|&i| level[i]).max().unwrap_or(0) + 1;
            for &i in &touched {
                level[i] = new_level;
            }
            max = max.max(new_level);
        }
        max
    }

    fn check_qubit(&self, q: usize) -> Result<(), SimError> {
        if q >= self.num_qubits {
            Err(SimError::QubitOutOfRange {
                qubit: q,
                width: self.num_qubits,
            })
        } else {
            Ok(())
        }
    }

    /// Appends a gate, validating operand indices.
    ///
    /// # Errors
    ///
    /// Returns an error if an operand is out of range, duplicated, or the
    /// operand count does not match the gate arity.
    pub fn try_append(&mut self, gate: Gate, qubits: &[usize]) -> Result<&mut Self, SimError> {
        if qubits.len() != gate.num_qubits() {
            return Err(SimError::Unsupported(format!(
                "gate {} expects {} operands, got {}",
                gate.name(),
                gate.num_qubits(),
                qubits.len()
            )));
        }
        for (i, &q) in qubits.iter().enumerate() {
            self.check_qubit(q)?;
            if qubits[..i].contains(&q) {
                return Err(SimError::DuplicateQubit { qubit: q });
            }
        }
        self.ops.push(Op::Gate {
            gate,
            qubits: qubits.to_vec(),
        });
        Ok(self)
    }

    /// Appends a gate.
    ///
    /// # Panics
    ///
    /// Panics if operands are invalid; use [`QuantumCircuit::try_append`] for
    /// a fallible version.
    pub fn append(&mut self, gate: Gate, qubits: &[usize]) -> &mut Self {
        self.try_append(gate, qubits)
            .unwrap_or_else(|e| panic!("append {}: {e}", gate.name()));
        self
    }

    /// Inserts a gate at instruction position `index` (0 = before everything).
    ///
    /// This is the primitive the fault injector uses to splice the `U(θ,φ,0)`
    /// injector gate right after a target gate.
    ///
    /// # Panics
    ///
    /// Panics if `index > self.size()` or the operands are invalid.
    pub fn insert(&mut self, index: usize, gate: Gate, qubits: &[usize]) -> &mut Self {
        assert!(index <= self.ops.len(), "insert index out of bounds");
        for &q in qubits {
            self.check_qubit(q)
                .unwrap_or_else(|e| panic!("insert {}: {e}", gate.name()));
        }
        self.ops.insert(
            index,
            Op::Gate {
                gate,
                qubits: qubits.to_vec(),
            },
        );
        self
    }

    // ---- fluent builders for the gate set ----

    /// Identity gate on `q`.
    pub fn i(&mut self, q: usize) -> &mut Self {
        self.append(Gate::I, &[q])
    }
    /// Hadamard on `q`.
    pub fn h(&mut self, q: usize) -> &mut Self {
        self.append(Gate::H, &[q])
    }
    /// Pauli-X on `q`.
    pub fn x(&mut self, q: usize) -> &mut Self {
        self.append(Gate::X, &[q])
    }
    /// Pauli-Y on `q`.
    pub fn y(&mut self, q: usize) -> &mut Self {
        self.append(Gate::Y, &[q])
    }
    /// Pauli-Z on `q`.
    pub fn z(&mut self, q: usize) -> &mut Self {
        self.append(Gate::Z, &[q])
    }
    /// S gate on `q`.
    pub fn s(&mut self, q: usize) -> &mut Self {
        self.append(Gate::S, &[q])
    }
    /// S† on `q`.
    pub fn sdg(&mut self, q: usize) -> &mut Self {
        self.append(Gate::Sdg, &[q])
    }
    /// T gate on `q`.
    pub fn t(&mut self, q: usize) -> &mut Self {
        self.append(Gate::T, &[q])
    }
    /// T† on `q`.
    pub fn tdg(&mut self, q: usize) -> &mut Self {
        self.append(Gate::Tdg, &[q])
    }
    /// √X on `q`.
    pub fn sx(&mut self, q: usize) -> &mut Self {
        self.append(Gate::Sx, &[q])
    }
    /// RX(θ) on `q`.
    pub fn rx(&mut self, theta: f64, q: usize) -> &mut Self {
        self.append(Gate::Rx(theta), &[q])
    }
    /// RY(θ) on `q`.
    pub fn ry(&mut self, theta: f64, q: usize) -> &mut Self {
        self.append(Gate::Ry(theta), &[q])
    }
    /// RZ(λ) on `q`.
    pub fn rz(&mut self, lambda: f64, q: usize) -> &mut Self {
        self.append(Gate::Rz(lambda), &[q])
    }
    /// P(λ) on `q`.
    pub fn p(&mut self, lambda: f64, q: usize) -> &mut Self {
        self.append(Gate::P(lambda), &[q])
    }
    /// Generic `U(θ, φ, λ)` on `q`.
    pub fn u(&mut self, theta: f64, phi: f64, lambda: f64, q: usize) -> &mut Self {
        self.append(Gate::U(theta, phi, lambda), &[q])
    }
    /// CNOT with `control` and `target`.
    pub fn cx(&mut self, control: usize, target: usize) -> &mut Self {
        self.append(Gate::Cx, &[control, target])
    }
    /// CZ between `a` and `b`.
    pub fn cz(&mut self, a: usize, b: usize) -> &mut Self {
        self.append(Gate::Cz, &[a, b])
    }
    /// Controlled phase between `control` and `target`.
    pub fn cp(&mut self, lambda: f64, control: usize, target: usize) -> &mut Self {
        self.append(Gate::Cp(lambda), &[control, target])
    }
    /// SWAP of `a` and `b`.
    pub fn swap(&mut self, a: usize, b: usize) -> &mut Self {
        self.append(Gate::Swap, &[a, b])
    }
    /// Toffoli with controls `c0`, `c1` and target `t`.
    pub fn ccx(&mut self, c0: usize, c1: usize, t: usize) -> &mut Self {
        self.append(Gate::Ccx, &[c0, c1, t])
    }

    /// Barrier across the listed qubits (or all when empty).
    pub fn barrier(&mut self, qubits: &[usize]) -> &mut Self {
        let qs = if qubits.is_empty() {
            (0..self.num_qubits).collect()
        } else {
            qubits.to_vec()
        };
        self.ops.push(Op::Barrier(qs));
        self
    }

    /// Measures `qubit` into `clbit`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn measure(&mut self, qubit: usize, clbit: usize) -> &mut Self {
        self.check_qubit(qubit)
            .unwrap_or_else(|e| panic!("measure: {e}"));
        assert!(
            clbit < self.num_clbits,
            "measure: {}",
            SimError::ClbitOutOfRange {
                clbit,
                width: self.num_clbits
            }
        );
        self.ops.push(Op::Measure { qubit, clbit });
        self
    }

    /// Measures qubit `i` into classical bit `i` for every qubit.
    ///
    /// # Panics
    ///
    /// Panics if there are fewer classical bits than qubits.
    pub fn measure_all(&mut self) -> &mut Self {
        assert!(
            self.num_clbits >= self.num_qubits,
            "measure_all needs at least as many clbits as qubits"
        );
        for q in 0..self.num_qubits {
            self.measure(q, q);
        }
        self
    }

    /// The `(qubit → clbit)` measurement map, in program order.
    pub fn measurement_map(&self) -> Vec<(usize, usize)> {
        self.ops
            .iter()
            .filter_map(|op| match op {
                Op::Measure { qubit, clbit } => Some((*qubit, *clbit)),
                _ => None,
            })
            .collect()
    }

    /// `true` if the circuit contains at least one measurement.
    pub fn has_measurements(&self) -> bool {
        self.ops.iter().any(|op| matches!(op, Op::Measure { .. }))
    }

    /// Returns a copy with all measurements (and barriers) stripped —
    /// the unitary part of the circuit.
    pub fn without_measurements(&self) -> QuantumCircuit {
        let mut qc = QuantumCircuit::with_name(self.num_qubits, self.num_clbits, &self.name);
        for op in &self.ops {
            if let Op::Gate { gate, qubits } = op {
                qc.append(*gate, qubits);
            }
        }
        qc
    }

    /// Appends all operations of `other` to `self` (registers must be at
    /// least as wide).
    ///
    /// # Panics
    ///
    /// Panics if `other` uses more qubits or clbits than `self` has.
    pub fn compose(&mut self, other: &QuantumCircuit) -> &mut Self {
        assert!(
            other.num_qubits <= self.num_qubits,
            "compose: width mismatch"
        );
        assert!(
            other.num_clbits <= self.num_clbits,
            "compose: clbit mismatch"
        );
        self.ops.extend(other.ops.iter().cloned());
        self
    }

    /// The inverse of the unitary part (measurements dropped, gates reversed
    /// and inverted).
    pub fn inverse(&self) -> QuantumCircuit {
        let mut qc = QuantumCircuit::with_name(
            self.num_qubits,
            self.num_clbits,
            &format!("{}_dg", self.name),
        );
        for op in self.ops.iter().rev() {
            if let Op::Gate { gate, qubits } = op {
                qc.append(gate.inverse(), qubits);
            }
        }
        qc
    }

    /// Indices (into [`QuantumCircuit::ops`]) of all unitary gate
    /// instructions — the candidate fault locations.
    pub fn gate_positions(&self) -> Vec<usize> {
        self.ops
            .iter()
            .enumerate()
            .filter_map(|(i, op)| matches!(op, Op::Gate { .. }).then_some(i))
            .collect()
    }
}

impl fmt::Display for QuantumCircuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "QuantumCircuit '{}' ({} qubits, {} clbits, depth {})",
            self.name,
            self.num_qubits,
            self.num_clbits,
            self.depth()
        )?;
        for op in &self.ops {
            match op {
                Op::Gate { gate, qubits } => writeln!(f, "  {gate} {qubits:?}")?,
                Op::Barrier(qs) => writeln!(f, "  barrier {qs:?}")?,
                Op::Measure { qubit, clbit } => writeln!(f, "  measure q{qubit} -> c{clbit}")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let mut qc = QuantumCircuit::new(2, 2);
        qc.h(0).cx(0, 1).measure_all();
        assert_eq!(qc.size(), 4);
        assert_eq!(qc.gate_count(), 2);
        assert!(qc.has_measurements());
    }

    #[test]
    fn depth_counts_dependencies_not_ops() {
        let mut qc = QuantumCircuit::new(3, 0);
        qc.h(0).h(1).h(2); // parallel -> depth 1
        assert_eq!(qc.depth(), 1);
        qc.cx(0, 1); // depends on both -> depth 2
        assert_eq!(qc.depth(), 2);
        qc.h(2); // still parallel on q2 -> depth stays 2
        assert_eq!(qc.depth(), 2);
        qc.cx(1, 2); // chains -> 3
        assert_eq!(qc.depth(), 3);
    }

    #[test]
    fn barrier_does_not_add_depth() {
        let mut qc = QuantumCircuit::new(2, 0);
        qc.h(0).barrier(&[]).h(0);
        assert_eq!(qc.depth(), 2);
    }

    #[test]
    fn try_append_validates() {
        let mut qc = QuantumCircuit::new(2, 0);
        assert!(matches!(
            qc.try_append(Gate::H, &[5]),
            Err(SimError::QubitOutOfRange { qubit: 5, width: 2 })
        ));
        assert!(matches!(
            qc.try_append(Gate::Cx, &[1, 1]),
            Err(SimError::DuplicateQubit { qubit: 1 })
        ));
        assert!(qc.try_append(Gate::Cx, &[0]).is_err());
        assert!(qc.try_append(Gate::Cx, &[0, 1]).is_ok());
    }

    #[test]
    fn insert_places_gate_at_index() {
        let mut qc = QuantumCircuit::new(1, 0);
        qc.h(0).x(0);
        qc.insert(1, Gate::Z, &[0]);
        let names: Vec<&str> = qc
            .ops()
            .iter()
            .map(|op| match op {
                Op::Gate { gate, .. } => gate.name(),
                _ => "?",
            })
            .collect();
        assert_eq!(names, vec!["h", "z", "x"]);
    }

    #[test]
    fn gate_counts_sorted_by_name() {
        let mut qc = QuantumCircuit::new(2, 0);
        qc.h(0).h(1).cx(0, 1).h(0);
        assert_eq!(qc.gate_counts(), vec![("cx", 1), ("h", 3)]);
    }

    #[test]
    fn inverse_reverses_and_inverts() {
        let mut qc = QuantumCircuit::new(1, 1);
        qc.h(0).s(0).measure(0, 0);
        let inv = qc.inverse();
        assert!(!inv.has_measurements());
        let names: Vec<&str> = inv
            .ops()
            .iter()
            .map(|op| match op {
                Op::Gate { gate, .. } => gate.name(),
                _ => "?",
            })
            .collect();
        assert_eq!(names, vec!["sdg", "h"]);
    }

    #[test]
    fn measurement_map_preserves_order() {
        let mut qc = QuantumCircuit::new(3, 2);
        qc.measure(2, 0).measure(0, 1);
        assert_eq!(qc.measurement_map(), vec![(2, 0), (0, 1)]);
    }

    #[test]
    fn compose_concatenates() {
        let mut a = QuantumCircuit::new(2, 0);
        a.h(0);
        let mut b = QuantumCircuit::new(2, 0);
        b.cx(0, 1);
        a.compose(&b);
        assert_eq!(a.gate_count(), 2);
    }

    #[test]
    #[should_panic(expected = "measure_all")]
    fn measure_all_requires_clbits() {
        let mut qc = QuantumCircuit::new(3, 1);
        qc.measure_all();
    }

    #[test]
    fn gate_positions_skip_nonunitary() {
        let mut qc = QuantumCircuit::new(2, 2);
        qc.h(0).barrier(&[]).cx(0, 1).measure_all();
        assert_eq!(qc.gate_positions(), vec![0, 2]);
    }

    #[test]
    fn without_measurements_strips() {
        let mut qc = QuantumCircuit::new(2, 2);
        qc.h(0).measure_all();
        let u = qc.without_measurements();
        assert_eq!(u.size(), 1);
        assert!(!u.has_measurements());
    }
}
