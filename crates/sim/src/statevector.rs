//! Exact pure-state (statevector) simulation.
//!
//! This engine implements the paper's scenario (1): "simulation without
//! external noise, which is ideal but not realistic". The fault injector uses
//! it to compute the fault-free *golden* output that defines `P(A)` in the
//! QVF, and the tests use it as an independent oracle against the
//! density-matrix engine.

use crate::circuit::{Op, QuantumCircuit};
use crate::counts::ProbDist;
use crate::error::SimError;
use crate::gate::Gate;
use crate::kernel::apply_matrix_on_bits;
use qufi_math::{CMatrix, Complex};

/// Maximum register width this engine accepts (2^24 amplitudes ≈ 256 MiB).
pub const MAX_QUBITS: usize = 24;

/// A pure quantum state over `n` qubits.
///
/// # Example
///
/// ```
/// use qufi_sim::{QuantumCircuit, Statevector};
///
/// let mut qc = QuantumCircuit::new(1, 0);
/// qc.h(0);
/// let sv = Statevector::from_circuit(&qc).unwrap();
/// let p = sv.probabilities();
/// assert!((p.prob(0) - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Statevector {
    amps: Vec<Complex>,
    n: usize,
}

impl Statevector {
    /// The all-zeros state `|0…0⟩`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::TooManyQubits`] above [`MAX_QUBITS`].
    pub fn new(n: usize) -> Result<Self, SimError> {
        if n > MAX_QUBITS {
            return Err(SimError::TooManyQubits {
                requested: n,
                max: MAX_QUBITS,
            });
        }
        let mut amps = vec![Complex::ZERO; 1 << n];
        amps[0] = Complex::ONE;
        Ok(Statevector { amps, n })
    }

    /// Builds a state from raw amplitudes (normalized by the caller).
    ///
    /// # Panics
    ///
    /// Panics if the length is not a power of two.
    pub fn from_amplitudes(amps: Vec<Complex>) -> Self {
        let n = amps.len().trailing_zeros() as usize;
        assert_eq!(1usize << n, amps.len(), "length must be a power of two");
        Statevector { amps, n }
    }

    /// Runs the unitary part of a circuit on `|0…0⟩` (barriers and
    /// measurements are ignored — use
    /// [`Statevector::measurement_distribution`] to read out).
    ///
    /// # Errors
    ///
    /// Returns an error if the register is too wide.
    pub fn from_circuit(qc: &QuantumCircuit) -> Result<Self, SimError> {
        let mut sv = Statevector::new(qc.num_qubits())?;
        for op in qc.instructions() {
            if let Op::Gate { gate, qubits } = op {
                sv.apply_gate(*gate, qubits);
            }
        }
        Ok(sv)
    }

    /// Number of qubits.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// The amplitude of basis state `index`.
    #[inline]
    pub fn amp(&self, index: usize) -> Complex {
        self.amps[index]
    }

    /// All amplitudes, indexed by basis state.
    #[inline]
    pub fn amplitudes(&self) -> &[Complex] {
        &self.amps
    }

    /// Applies a gate in place.
    ///
    /// # Panics
    ///
    /// Panics if operands are out of range or of the wrong arity.
    pub fn apply_gate(&mut self, gate: Gate, qubits: &[usize]) {
        assert_eq!(qubits.len(), gate.num_qubits(), "operand arity mismatch");
        self.apply_matrix(&gate.matrix(), qubits);
    }

    /// Applies an arbitrary `2^k × 2^k` unitary to the listed qubits.
    ///
    /// # Panics
    ///
    /// Panics if a qubit index is out of range.
    pub fn apply_matrix(&mut self, u: &CMatrix, qubits: &[usize]) {
        for &q in qubits {
            assert!(q < self.n, "qubit {q} out of range for width {}", self.n);
        }
        apply_matrix_on_bits(&mut self.amps, u.as_slice(), qubits, self.n, false);
    }

    /// Born-rule probabilities over all qubits.
    pub fn probabilities(&self) -> ProbDist {
        ProbDist::from_probs(self.amps.iter().map(|a| a.norm_sqr()).collect(), self.n)
    }

    /// The distribution over *classical bits* after the circuit's
    /// measurements, obtained by marginalizing through the measurement map.
    ///
    /// Falls back to the full qubit distribution if the circuit has no
    /// measurements.
    pub fn measurement_distribution(&self, qc: &QuantumCircuit) -> ProbDist {
        let map = qc.measurement_map();
        if map.is_empty() {
            return self.probabilities();
        }
        self.probabilities().marginalize(&map, qc.num_clbits())
    }

    /// Inner product `⟨self|other⟩`.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn inner(&self, other: &Statevector) -> Complex {
        assert_eq!(self.n, other.n, "width mismatch");
        self.amps
            .iter()
            .zip(&other.amps)
            .map(|(&a, &b)| a.conj() * b)
            .sum()
    }

    /// State fidelity `|⟨self|other⟩|²`.
    pub fn fidelity(&self, other: &Statevector) -> f64 {
        self.inner(other).norm_sqr()
    }

    /// Euclidean norm (1 for a normalized state).
    pub fn norm(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt()
    }

    /// An independent copy of the state — one `memcpy` of the `2^n`
    /// amplitude buffer. The sweep engine snapshots a prefix evolution
    /// once and replays many fault suffixes from the copies; mutating a
    /// snapshot never affects the original.
    pub fn snapshot(&self) -> Statevector {
        self.clone()
    }

    /// Overwrites this state with a copy of `src`, reusing the existing
    /// amplitude buffer when it is large enough — the allocation-free
    /// counterpart of [`Statevector::snapshot`] for replay loops that
    /// restore a parked prefix state into per-thread scratch.
    pub fn copy_from(&mut self, src: &Statevector) {
        qufi_obs::add("sim.state_copies", 1);
        self.n = src.n;
        self.amps.clone_from(&src.amps);
    }

    /// Multiplies every amplitude by a real factor in place — the
    /// renormalization primitive of the trajectory engine, which scales a
    /// post-Kraus state by `1/√w` after sampling a branch of weight `w`.
    pub fn scale(&mut self, factor: f64) {
        for a in &mut self.amps {
            *a = *a * factor;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn bell_state_has_half_half() {
        let mut qc = QuantumCircuit::new(2, 0);
        qc.h(0).cx(0, 1);
        let sv = Statevector::from_circuit(&qc).unwrap();
        let p = sv.probabilities();
        assert!((p.prob(0b00) - 0.5).abs() < 1e-12);
        assert!((p.prob(0b11) - 0.5).abs() < 1e-12);
        assert!(p.prob(0b01) < 1e-12);
    }

    #[test]
    fn ghz_three_qubits() {
        let mut qc = QuantumCircuit::new(3, 0);
        qc.h(0).cx(0, 1).cx(1, 2);
        let p = Statevector::from_circuit(&qc).unwrap().probabilities();
        assert!((p.prob(0) - 0.5).abs() < 1e-12);
        assert!((p.prob(7) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn x_flips_correct_qubit() {
        let mut qc = QuantumCircuit::new(3, 0);
        qc.x(1);
        let p = Statevector::from_circuit(&qc).unwrap().probabilities();
        assert!((p.prob(0b010) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn swap_exchanges_amplitudes() {
        let mut qc = QuantumCircuit::new(2, 0);
        qc.x(0).swap(0, 1);
        let p = Statevector::from_circuit(&qc).unwrap().probabilities();
        assert!((p.prob(0b10) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn measurement_marginalizes_ancilla() {
        // BV-style: q2 is an ancilla in |−⟩; only q0,q1 are measured.
        let mut qc = QuantumCircuit::new(3, 2);
        qc.x(2).h(2).x(0);
        qc.measure(0, 0).measure(1, 1);
        let sv = Statevector::from_circuit(&qc).unwrap();
        let d = sv.measurement_distribution(&qc);
        assert_eq!(d.num_bits(), 2);
        assert!((d.prob_of("01") - 1.0).abs() < 1e-12);
    }

    #[test]
    fn u_gate_theta_pi_acts_as_x() {
        let mut a = QuantumCircuit::new(1, 0);
        a.u(PI, 0.0, 0.0, 0);
        let mut b = QuantumCircuit::new(1, 0);
        b.x(0);
        let pa = Statevector::from_circuit(&a).unwrap().probabilities();
        let pb = Statevector::from_circuit(&b).unwrap().probabilities();
        assert!(pa.tv_distance(&pb) < 1e-12);
    }

    #[test]
    fn phase_shift_invisible_without_interference() {
        // A φ-shift alone does not change probabilities...
        let mut qc = QuantumCircuit::new(1, 0);
        qc.h(0).u(0.0, FRAC_PI_2, 0.0, 0);
        let p = Statevector::from_circuit(&qc).unwrap().probabilities();
        assert!((p.prob(0) - 0.5).abs() < 1e-12);
        // ...but becomes visible after a second Hadamard (interference).
        let mut qc2 = QuantumCircuit::new(1, 0);
        qc2.h(0).u(0.0, PI, 0.0, 0).h(0);
        let p2 = Statevector::from_circuit(&qc2).unwrap().probabilities();
        assert!((p2.prob(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn norm_preserved_by_long_random_circuit() {
        let mut qc = QuantumCircuit::new(4, 0);
        for i in 0..4 {
            qc.h(i);
        }
        for i in 0..3 {
            qc.cx(i, i + 1);
            qc.t(i);
            qc.ry(0.3 * (i as f64 + 1.0), i + 1);
        }
        qc.ccx(0, 1, 2).cp(0.9, 2, 3);
        let sv = Statevector::from_circuit(&qc).unwrap();
        assert!((sv.norm() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn fidelity_of_orthogonal_states_is_zero() {
        let mut a = QuantumCircuit::new(1, 0);
        a.x(0);
        let sva = Statevector::from_circuit(&a).unwrap();
        let svb = Statevector::new(1).unwrap();
        assert!(sva.fidelity(&svb) < 1e-15);
        assert!((sva.fidelity(&sva) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn too_many_qubits_is_an_error() {
        assert!(matches!(
            Statevector::new(MAX_QUBITS + 1),
            Err(SimError::TooManyQubits { .. })
        ));
    }

    #[test]
    fn matrix_and_gate_application_agree() {
        let mut a = Statevector::new(2).unwrap();
        let mut b = Statevector::new(2).unwrap();
        a.apply_gate(Gate::Cx, &[1, 0]);
        b.apply_matrix(&Gate::Cx.matrix(), &[1, 0]);
        assert_eq!(a, b);
    }
}
