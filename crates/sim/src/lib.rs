//! Quantum circuit representation and simulation.
//!
//! This crate is the substrate the QuFI fault injector runs on — the role
//! Qiskit + Aer play in the original paper. It provides:
//!
//! * [`Gate`] — the gate set (Hadamard, Paulis, phases, rotations, the
//!   generic `U(θ,φ,λ)` injector gate of the paper, CX/CZ/SWAP/CP, Toffoli).
//! * [`QuantumCircuit`] — an instruction-list circuit IR with builder
//!   methods, composition, inversion and depth/size queries.
//! * [`Statevector`] — exact pure-state simulation (the "ideal" scenario).
//! * [`DensityMatrix`] — exact mixed-state simulation supporting Kraus
//!   channels, over which noise models and faults are applied (the
//!   "simulation of a physical machine" scenario).
//! * [`CircuitCursor`] — resumable evolution for both engines: run a prefix
//!   once, snapshot, and replay many suffixes bit-identically (the substrate
//!   of the forked-state fault-sweep engine in `qufi-core`).
//! * [`ProbDist`] / [`Counts`] — output probability distributions and
//!   finite-shot sampling (the paper uses 1024 shots per circuit).
//! * [`qasm`] — OpenQASM 2.0 export/import so faulty circuits can be run on
//!   other systems, mirroring QuFI's QASM export capability.
//!
//! # Conventions
//!
//! Qubit 0 is the **least-significant bit** of a basis-state index, matching
//! Qiskit. Bitstrings are printed most-significant-qubit first, so state
//! `|q2 q1 q0⟩ = |101⟩` on a 3-qubit register has index `0b101 = 5` and
//! prints as `"101"`.
//!
//! # Example
//!
//! ```
//! use qufi_sim::{QuantumCircuit, Statevector};
//!
//! // Bell pair.
//! let mut qc = QuantumCircuit::new(2, 2);
//! qc.h(0).cx(0, 1).measure_all();
//! let sv = Statevector::from_circuit(&qc).unwrap();
//! let dist = sv.measurement_distribution(&qc);
//! assert!((dist.prob_of("00") - 0.5).abs() < 1e-12);
//! assert!((dist.prob_of("11") - 0.5).abs() < 1e-12);
//! ```

pub mod batch;
pub mod circuit;
pub mod counts;
pub mod cursor;
pub mod density;
pub mod diagram;
pub mod error;
pub mod gate;
mod kernel;
pub mod observable;
pub mod qasm;
pub mod statevector;
pub mod unitary;
pub mod workspace;

pub use batch::{BatchWorkspace, BatchedDensity, BatchedStatevector, MAX_BATCH_CELLS};
pub use circuit::{Instruction, Op, QuantumCircuit};
pub use counts::{Counts, ProbDist};
pub use cursor::{CircuitCursor, EvolvableState};
pub use density::DensityMatrix;
pub use error::SimError;
pub use gate::Gate;
pub use statevector::Statevector;
pub use workspace::EvolutionWorkspace;
