//! Exact mixed-state (density-matrix) simulation.
//!
//! This engine implements the paper's scenario (2): "simulation of a physical
//! machine, tuning the noise over which the fault is injected". Noise enters
//! as Kraus channels (built by `qufi-noise`); unitary gates and the fault
//! injector's `U(θ,φ,0)` gate evolve the state as `ρ ↦ UρU†`.
//!
//! For the paper's circuit sizes (4–7 qubits) the density matrix is at most
//! `128 × 128`, so one evolution yields the **exact** output distribution —
//! equivalent to the 1024-shot Qiskit estimate in expectation, with zero
//! sampling variance.

use crate::circuit::{Op, QuantumCircuit};
use crate::counts::ProbDist;
use crate::error::SimError;
use crate::gate::Gate;
use crate::kernel::{apply_matrix_on_bits, MAX_KERNEL_QUBITS};
use crate::statevector::Statevector;
use crate::workspace::EvolutionWorkspace;
use qufi_math::{CMatrix, Complex};

/// Maximum register width for the density-matrix engine (2^12 × 2^12
/// entries ≈ 256 MiB).
pub const MAX_QUBITS: usize = 12;

/// A density matrix over `n` qubits, stored row-major with dimension `2^n`.
///
/// # Example
///
/// ```
/// use qufi_sim::{DensityMatrix, QuantumCircuit};
///
/// let mut qc = QuantumCircuit::new(2, 2);
/// qc.h(0).cx(0, 1).measure_all();
/// let mut rho = DensityMatrix::new(2).unwrap();
/// rho.run_circuit(&qc);
/// let d = rho.measurement_distribution(&qc);
/// assert!((d.prob_of("11") - 0.5).abs() < 1e-12);
/// assert!((rho.purity() - 1.0).abs() < 1e-12); // no noise applied
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DensityMatrix {
    data: Vec<Complex>,
    n: usize,
    dim: usize,
}

impl DensityMatrix {
    /// The pure state `|0…0⟩⟨0…0|`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::TooManyQubits`] above [`MAX_QUBITS`].
    pub fn new(n: usize) -> Result<Self, SimError> {
        if n > MAX_QUBITS {
            return Err(SimError::TooManyQubits {
                requested: n,
                max: MAX_QUBITS,
            });
        }
        let dim = 1usize << n;
        let mut data = vec![Complex::ZERO; dim * dim];
        data[0] = Complex::ONE;
        Ok(DensityMatrix { data, n, dim })
    }

    /// The projector onto a pure state.
    pub fn from_statevector(sv: &Statevector) -> Self {
        let n = sv.num_qubits();
        let dim = 1usize << n;
        let mut data = vec![Complex::ZERO; dim * dim];
        for i in 0..dim {
            for j in 0..dim {
                data[i * dim + j] = sv.amp(i) * sv.amp(j).conj();
            }
        }
        DensityMatrix { data, n, dim }
    }

    /// Number of qubits.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// Matrix dimension (`2^n`).
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Entry `ρ[i][j]`.
    #[inline]
    pub fn entry(&self, i: usize, j: usize) -> Complex {
        self.data[i * self.dim + j]
    }

    /// Applies a unitary gate: `ρ ↦ UρU†`.
    ///
    /// # Panics
    ///
    /// Panics on operand arity mismatch or out-of-range qubits.
    pub fn apply_gate(&mut self, gate: Gate, qubits: &[usize]) {
        assert_eq!(qubits.len(), gate.num_qubits(), "operand arity mismatch");
        self.apply_unitary(&gate.matrix(), qubits);
    }

    /// Applies an arbitrary unitary matrix over the listed qubits.
    ///
    /// Allocation-free: ρ (row-major) is treated as a statevector over `2n`
    /// flat bits — row bit `q` is flat bit `n + q`, column bit `q` is flat
    /// bit `q` — and the two sides of `ρ ↦ UρU†` become two in-place kernel
    /// passes.
    ///
    /// # Panics
    ///
    /// Panics if a qubit index is out of range.
    pub fn apply_unitary(&mut self, u: &CMatrix, qubits: &[usize]) {
        Self::unitary_passes(&mut self.data, self.n, u, qubits);
    }

    /// The two kernel passes of `ρ ↦ UρU†` over a raw `4^n` buffer (shared
    /// by [`DensityMatrix::apply_unitary`] and the Kraus accumulator, which
    /// transforms a scratch buffer instead of `self.data`).
    fn unitary_passes(data: &mut [Complex], n: usize, u: &CMatrix, qubits: &[usize]) {
        let k = qubits.len();
        let mut row_positions = [0usize; MAX_KERNEL_QUBITS];
        for (slot, &q) in row_positions.iter_mut().zip(qubits) {
            assert!(q < n, "qubit {q} out of range for width {n}");
            *slot = n + q;
        }
        // Row pass: ρ ← U ρ.
        apply_matrix_on_bits(data, u.as_slice(), &row_positions[..k], 2 * n, false);
        // Column pass: ρ ← ρ U† (conjugated entries on the column bits).
        apply_matrix_on_bits(data, u.as_slice(), qubits, 2 * n, true);
    }

    /// Applies a completely-positive map given by Kraus operators:
    /// `ρ ↦ Σₖ Kₖ ρ Kₖ†`.
    ///
    /// # Panics
    ///
    /// Panics if the operators are not square over `2^|qubits|` dimensions or
    /// the channel is empty.
    pub fn apply_kraus(&mut self, kraus: &[CMatrix], qubits: &[usize]) {
        let mut ws = EvolutionWorkspace::new();
        self.apply_kraus_with(kraus, qubits, &mut ws);
    }

    /// [`DensityMatrix::apply_kraus`] with caller-owned scratch buffers:
    /// each Kraus term is evolved in the workspace's term buffer and
    /// accumulated into its accumulator, so a reused workspace makes
    /// repeated channel application free of steady-state allocations.
    /// Results are bit-identical to [`DensityMatrix::apply_kraus`].
    ///
    /// # Panics
    ///
    /// Panics if the operators are not square over `2^|qubits|` dimensions
    /// or the channel is empty.
    pub fn apply_kraus_with(
        &mut self,
        kraus: &[CMatrix],
        qubits: &[usize],
        ws: &mut EvolutionWorkspace,
    ) {
        assert!(!kraus.is_empty(), "empty Kraus channel");
        let k_dim = 1usize << qubits.len();
        for k in kraus {
            assert_eq!(
                (k.rows(), k.cols()),
                (k_dim, k_dim),
                "Kraus operator shape mismatch"
            );
        }
        let len = self.data.len();
        ws.ensure(len);
        let (term, acc) = (&mut ws.term[..len], &mut ws.acc[..len]);
        acc.fill(Complex::ZERO);
        for k in kraus {
            term.copy_from_slice(&self.data);
            Self::unitary_passes(term, self.n, k, qubits);
            for (a, t) in acc.iter_mut().zip(term.iter()) {
                *a += *t;
            }
        }
        self.data.copy_from_slice(acc);
    }

    /// Applies a channel given as a **superoperator** — a `4^k × 4^k` matrix
    /// `S[(a,b),(c,d)] = Σₖ Kₖ[a,c]·K̄ₖ[b,d]` acting on vectorized density
    /// matrices — in a single strided pass.
    ///
    /// This is algebraically identical to [`DensityMatrix::apply_kraus`] but
    /// roughly `2·|Kraus set|` times cheaper, which matters in
    /// fault-injection campaigns running hundreds of thousands of noisy
    /// evolutions.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not `4^k × 4^k` for `k = qubits.len()` or a
    /// qubit is out of range.
    pub fn apply_superoperator(&mut self, s: &CMatrix, qubits: &[usize]) {
        let k = qubits.len();
        assert_eq!(s.rows(), 1 << (2 * k), "superoperator size mismatch");
        // Treat ρ (row-major) as a statevector over 2n "qubits": row bit q of
        // ρ is flat bit n+q, column bit q is flat bit q. The superoperator
        // index convention (a = row bits as the most significant group)
        // matches the kernel's first-operand-most-significant rule when the
        // combined operand list is [row qubits..., column qubits...].
        let mut combined = [0usize; MAX_KERNEL_QUBITS];
        for (i, &q) in qubits.iter().enumerate() {
            assert!(q < self.n, "qubit {q} out of range for width {}", self.n);
            combined[i] = self.n + q;
            combined[k + i] = q;
        }
        apply_matrix_on_bits(
            &mut self.data,
            s.as_slice(),
            &combined[..2 * k],
            2 * self.n,
            false,
        );
    }

    /// Runs the unitary part of a circuit (barriers/measurements skipped).
    pub fn run_circuit(&mut self, qc: &QuantumCircuit) {
        for op in qc.instructions() {
            if let Op::Gate { gate, qubits } = op {
                self.apply_gate(*gate, qubits);
            }
        }
    }

    /// Born-rule probabilities over all qubits: the diagonal of `ρ`.
    pub fn probabilities(&self) -> ProbDist {
        ProbDist::from_probs((0..self.dim).map(|i| self.entry(i, i).re).collect(), self.n)
    }

    /// Distribution over classical bits after measurement (marginalized
    /// through the circuit's measurement map; full qubit distribution when
    /// the circuit has no measurements).
    pub fn measurement_distribution(&self, qc: &QuantumCircuit) -> ProbDist {
        let map = qc.measurement_map();
        if map.is_empty() {
            return self.probabilities();
        }
        self.probabilities().marginalize(&map, qc.num_clbits())
    }

    /// Trace `Tr ρ` (1 for a trace-preserving evolution).
    pub fn trace(&self) -> Complex {
        (0..self.dim).map(|i| self.entry(i, i)).sum()
    }

    /// Purity `Tr ρ²` — 1 for pure states, `1/2^n` for the maximally mixed
    /// state. Noise strictly decreases it.
    pub fn purity(&self) -> f64 {
        // Tr ρ² = Σ_{ij} ρ_ij ρ_ji = Σ_{ij} |ρ_ij|² for Hermitian ρ.
        self.data.iter().map(|z| z.norm_sqr()).sum()
    }

    /// Fidelity `⟨ψ|ρ|ψ⟩` with a pure reference state.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn fidelity_pure(&self, psi: &Statevector) -> f64 {
        assert_eq!(psi.num_qubits(), self.n, "width mismatch");
        let mut acc = Complex::ZERO;
        for i in 0..self.dim {
            for j in 0..self.dim {
                acc += psi.amp(i).conj() * self.entry(i, j) * psi.amp(j);
            }
        }
        acc.re
    }

    /// An independent copy of the state — one `memcpy` of the `4^n`-entry
    /// density buffer. The sweep engine snapshots a prefix evolution once
    /// and replays many fault suffixes from the copies; mutating a
    /// snapshot never affects the original.
    pub fn snapshot(&self) -> DensityMatrix {
        self.clone()
    }

    /// Overwrites this state with a copy of `src`, reusing the existing
    /// buffer when it is large enough — the allocation-free counterpart of
    /// [`DensityMatrix::snapshot`] that replay loops use to restore a
    /// parked prefix state into a per-thread scratch matrix.
    pub fn copy_from(&mut self, src: &DensityMatrix) {
        qufi_obs::add("sim.state_copies", 1);
        self.n = src.n;
        self.dim = src.dim;
        self.data.clone_from(&src.data);
    }

    /// Raw row-major buffer — the batched replay engine broadcasts it into
    /// a cell-major block.
    pub(crate) fn raw(&self) -> &[Complex] {
        &self.data
    }

    /// `true` when `ρ ≈ ρ†` within `tol`.
    pub fn is_hermitian(&self, tol: f64) -> bool {
        for i in 0..self.dim {
            for j in 0..=i {
                if !self.entry(i, j).approx_eq(self.entry(j, i).conj(), tol) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn bell() -> QuantumCircuit {
        let mut qc = QuantumCircuit::new(2, 2);
        qc.h(0).cx(0, 1).measure_all();
        qc
    }

    #[test]
    fn pure_evolution_matches_statevector() {
        let mut qc = QuantumCircuit::new(3, 0);
        qc.h(0)
            .cx(0, 1)
            .t(1)
            .ry(0.7, 2)
            .cx(1, 2)
            .u(0.3, 1.1, 2.2, 0);
        let sv = Statevector::from_circuit(&qc).unwrap();
        let mut rho = DensityMatrix::new(3).unwrap();
        rho.run_circuit(&qc);
        assert!(rho.probabilities().tv_distance(&sv.probabilities()) < 1e-10);
        assert!((rho.fidelity_pure(&sv) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn from_statevector_is_projector() {
        let mut qc = QuantumCircuit::new(2, 0);
        qc.h(0).cx(0, 1);
        let sv = Statevector::from_circuit(&qc).unwrap();
        let rho = DensityMatrix::from_statevector(&sv);
        assert!((rho.purity() - 1.0).abs() < 1e-12);
        assert!((rho.trace().re - 1.0).abs() < 1e-12);
        assert!(rho.is_hermitian(1e-12));
    }

    #[test]
    fn bell_distribution() {
        let qc = bell();
        let mut rho = DensityMatrix::new(2).unwrap();
        rho.run_circuit(&qc);
        let d = rho.measurement_distribution(&qc);
        assert!((d.prob_of("00") - 0.5).abs() < 1e-12);
        assert!((d.prob_of("11") - 0.5).abs() < 1e-12);
    }

    #[test]
    fn depolarizing_kraus_mixes_state() {
        // Full depolarizing on 1 qubit: ρ -> I/2.
        let p: f64 = 1.0;
        let k = vec![
            CMatrix::identity(2).scale_real((1.0 - 3.0 * p / 4.0).sqrt()),
            CMatrix::pauli_x().scale_real((p / 4.0).sqrt()),
            CMatrix::pauli_y().scale_real((p / 4.0).sqrt()),
            CMatrix::pauli_z().scale_real((p / 4.0).sqrt()),
        ];
        let mut rho = DensityMatrix::new(1).unwrap();
        rho.apply_kraus(&k, &[0]);
        assert!((rho.entry(0, 0).re - 0.5).abs() < 1e-12);
        assert!((rho.entry(1, 1).re - 0.5).abs() < 1e-12);
        assert!((rho.purity() - 0.5).abs() < 1e-12);
        assert!((rho.trace().re - 1.0).abs() < 1e-12);
    }

    #[test]
    fn kraus_preserves_trace_on_entangled_state() {
        let qc = bell();
        let mut rho = DensityMatrix::new(2).unwrap();
        rho.run_circuit(&qc);
        // Amplitude damping on qubit 1.
        let g: f64 = 0.3;
        let k = vec![
            CMatrix::from_2x2(
                Complex::ONE,
                Complex::ZERO,
                Complex::ZERO,
                Complex::real((1.0 - g).sqrt()),
            ),
            CMatrix::from_2x2(
                Complex::ZERO,
                Complex::real(g.sqrt()),
                Complex::ZERO,
                Complex::ZERO,
            ),
        ];
        rho.apply_kraus(&k, &[1]);
        assert!((rho.trace().re - 1.0).abs() < 1e-12);
        assert!(rho.is_hermitian(1e-12));
        assert!(rho.purity() < 1.0);
        // Damping moves mass from |11> toward |01>.
        let p = rho.probabilities();
        assert!(p.prob(0b01) > 0.0);
        assert!(p.prob(0b11) < 0.5);
    }

    #[test]
    fn unitary_preserves_purity_kraus_decreases_it() {
        let mut rho = DensityMatrix::new(2).unwrap();
        rho.apply_gate(Gate::H, &[0]);
        rho.apply_gate(Gate::Cx, &[0, 1]);
        assert!((rho.purity() - 1.0).abs() < 1e-12);
        let p: f64 = 0.2;
        let k = vec![
            CMatrix::identity(2).scale_real((1.0 - p).sqrt()),
            CMatrix::pauli_z().scale_real(p.sqrt()),
        ];
        rho.apply_kraus(&k, &[0]);
        assert!(rho.purity() < 1.0 - 1e-6);
    }

    #[test]
    fn fault_injection_as_u_gate_changes_distribution() {
        // The Fig. 4 scenario in miniature: a θ=π/4 shift alters output
        // probabilities of an H-H identity.
        let mut clean = QuantumCircuit::new(1, 1);
        clean.h(0).h(0).measure(0, 0);
        let mut faulty = QuantumCircuit::new(1, 1);
        faulty.h(0).u(PI / 4.0, 0.0, 0.0, 0).h(0).measure(0, 0);

        let mut r1 = DensityMatrix::new(1).unwrap();
        r1.run_circuit(&clean);
        let mut r2 = DensityMatrix::new(1).unwrap();
        r2.run_circuit(&faulty);
        let d1 = r1.measurement_distribution(&clean);
        let d2 = r2.measurement_distribution(&faulty);
        assert!((d1.prob_of("0") - 1.0).abs() < 1e-12);
        assert!(d2.prob_of("0") < 1.0 - 1e-3);
        assert!(d2.prob_of("0") > 0.5);
    }

    #[test]
    fn superoperator_matches_kraus() {
        // Amplitude damping as explicit Kraus set and as a superoperator.
        let g: f64 = 0.35;
        let kraus = vec![
            CMatrix::from_2x2(
                Complex::ONE,
                Complex::ZERO,
                Complex::ZERO,
                Complex::real((1.0 - g).sqrt()),
            ),
            CMatrix::from_2x2(
                Complex::ZERO,
                Complex::real(g.sqrt()),
                Complex::ZERO,
                Complex::ZERO,
            ),
        ];
        let mut s = CMatrix::zeros(4, 4);
        for k in &kraus {
            for a in 0..2 {
                for b in 0..2 {
                    for c in 0..2 {
                        for d in 0..2 {
                            s[(a * 2 + b, c * 2 + d)] += k[(a, c)] * k[(b, d)].conj();
                        }
                    }
                }
            }
        }
        let mut qc = QuantumCircuit::new(3, 0);
        qc.h(0).cx(0, 1).t(1).ry(0.4, 2).cx(1, 2);
        let mut r1 = DensityMatrix::new(3).unwrap();
        r1.run_circuit(&qc);
        let mut r2 = r1.clone();
        for q in [0usize, 1, 2] {
            r1.apply_kraus(&kraus, &[q]);
            r2.apply_superoperator(&s, &[q]);
        }
        for i in 0..8 {
            for j in 0..8 {
                assert!(
                    r1.entry(i, j).approx_eq(r2.entry(i, j), 1e-12),
                    "mismatch at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn too_many_qubits_rejected() {
        assert!(DensityMatrix::new(MAX_QUBITS + 1).is_err());
    }

    #[test]
    fn marginalized_measurement_with_partial_map() {
        let mut qc = QuantumCircuit::new(3, 2);
        qc.x(2).h(0);
        qc.measure(2, 1).measure(0, 0);
        let mut rho = DensityMatrix::new(3).unwrap();
        rho.run_circuit(&qc);
        let d = rho.measurement_distribution(&qc);
        // clbit1 (qubit2) always 1; clbit0 (qubit0) is 50/50.
        assert!((d.prob_of("10") - 0.5).abs() < 1e-12);
        assert!((d.prob_of("11") - 0.5).abs() < 1e-12);
    }
}
