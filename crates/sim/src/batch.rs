//! Batched (cell-major) state containers for the grid replay engine.
//!
//! A fault-grid sweep replays the same suffix gate sequence over many forked
//! copies of one parked prefix state — one copy per (θ, φ) cell. This module
//! lays `width ≤` [`MAX_BATCH_CELLS`] such copies out as columns of a single
//! split-complex matrix (flat index `amp · width + cell`, real and imaginary
//! parts in separate `f64` buffers) so each suffix gate's index arithmetic is
//! computed once and its arithmetic runs in stride-1 loops *across cells*.
//!
//! **Bit compatibility is the load-bearing invariant**: a cell evolved inside
//! a batch goes through exactly the per-cell operation sequence of the scalar
//! [`Statevector`] / [`DensityMatrix`] engines (see `kernel.rs`), so
//! extracting any cell's distribution is bit-identical to replaying that cell
//! alone. The engine layer relies on this to keep batched campaign exports
//! byte-identical to the scalar path at any batch width.

use crate::circuit::QuantumCircuit;
use crate::counts::ProbDist;
use crate::density::DensityMatrix;
use crate::gate::Gate;
use crate::kernel::{batch_apply_1q_per_cell, batch_apply_matrix_on_bits, MAX_KERNEL_QUBITS};
use crate::statevector::Statevector;
use qufi_math::{CMatrix, Complex};

/// Largest supported batch width (cells per block).
pub const MAX_BATCH_CELLS: usize = crate::kernel::MAX_BATCH_CELLS;

/// The shared cell-major split-complex buffer: `width` states of `1 << m`
/// amplitudes each, amplitude-major × cell-minor.
#[derive(Debug, Clone)]
struct CellBlock {
    re: Vec<f64>,
    im: Vec<f64>,
    width: usize,
}

impl CellBlock {
    fn broadcast(amps: &[Complex], width: usize) -> Self {
        assert!(
            (1..=MAX_BATCH_CELLS).contains(&width),
            "batch width must be 1..={MAX_BATCH_CELLS}"
        );
        let mut re = vec![0.0f64; amps.len() * width];
        let mut im = vec![0.0f64; amps.len() * width];
        for (a, z) in amps.iter().enumerate() {
            re[a * width..(a + 1) * width].fill(z.re);
            im[a * width..(a + 1) * width].fill(z.im);
        }
        CellBlock { re, im, width }
    }

    #[inline]
    fn at(&self, amp: usize, cell: usize) -> (f64, f64) {
        let i = amp * self.width + cell;
        (self.re[i], self.im[i])
    }
}

/// Packs one 2×2 matrix per cell into the element-major split layout the
/// per-cell kernel consumes (entry `e` of cell `c` at `e · width + c`).
fn pack_per_cell_1q(us: &[CMatrix], width: usize) -> (Vec<f64>, Vec<f64>) {
    assert_eq!(us.len(), width, "one matrix per cell");
    let mut u_re = vec![0.0f64; 4 * width];
    let mut u_im = vec![0.0f64; 4 * width];
    for (c, u) in us.iter().enumerate() {
        let s = u.as_slice();
        assert_eq!(s.len(), 4, "per-cell matrices must be 2×2");
        for (e, z) in s.iter().enumerate() {
            u_re[e * width + c] = z.re;
            u_im[e * width + c] = z.im;
        }
    }
    (u_re, u_im)
}

/// `width` forked pure states evolving in lockstep.
#[derive(Debug, Clone)]
pub struct BatchedStatevector {
    block: CellBlock,
    n: usize,
}

impl BatchedStatevector {
    /// Broadcasts one parked state into all `width` cells.
    ///
    /// # Panics
    ///
    /// Panics when `width` is 0 or exceeds [`MAX_BATCH_CELLS`].
    pub fn broadcast(sv: &Statevector, width: usize) -> Self {
        BatchedStatevector {
            block: CellBlock::broadcast(sv.amplitudes(), width),
            n: sv.num_qubits(),
        }
    }

    /// Number of cells.
    #[inline]
    pub fn width(&self) -> usize {
        self.block.width
    }

    /// Register width.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// Applies one shared gate to every cell.
    ///
    /// # Panics
    ///
    /// Panics on operand arity mismatch or out-of-range qubits.
    pub fn apply_gate(&mut self, gate: Gate, qubits: &[usize]) {
        assert_eq!(qubits.len(), gate.num_qubits(), "operand arity mismatch");
        self.apply_matrix(&gate.matrix(), qubits);
    }

    /// Applies one shared `2^k × 2^k` unitary to every cell.
    ///
    /// # Panics
    ///
    /// Panics if a qubit index is out of range.
    pub fn apply_matrix(&mut self, u: &CMatrix, qubits: &[usize]) {
        for &q in qubits {
            assert!(q < self.n, "qubit {q} out of range for width {}", self.n);
        }
        batch_apply_matrix_on_bits(
            &mut self.block.re,
            &mut self.block.im,
            self.block.width,
            u.as_slice(),
            qubits,
            self.n,
            false,
        );
    }

    /// Applies one single-qubit unitary **per cell** (the grid's per-cell
    /// fault injector) on the shared target qubit.
    ///
    /// # Panics
    ///
    /// Panics unless exactly `width` 2×2 matrices are given and the qubit is
    /// in range.
    pub fn apply_matrix_per_cell(&mut self, us: &[CMatrix], qubit: usize) {
        assert!(qubit < self.n, "qubit {qubit} out of range");
        let (u_re, u_im) = pack_per_cell_1q(us, self.block.width);
        batch_apply_1q_per_cell(
            &mut self.block.re,
            &mut self.block.im,
            self.block.width,
            &u_re,
            &u_im,
            qubit,
            false,
        );
    }

    /// Born-rule probabilities of one cell.
    pub fn probabilities(&self, cell: usize) -> ProbDist {
        ProbDist::from_probs(
            (0..1usize << self.n)
                .map(|a| {
                    let (re, im) = self.block.at(a, cell);
                    re * re + im * im
                })
                .collect(),
            self.n,
        )
    }

    /// One cell's distribution over classical bits (marginalized through the
    /// circuit's measurement map, like the scalar engine).
    pub fn measurement_distribution(&self, cell: usize, qc: &QuantumCircuit) -> ProbDist {
        let map = qc.measurement_map();
        if map.is_empty() {
            return self.probabilities(cell);
        }
        self.probabilities(cell).marginalize(&map, qc.num_clbits())
    }
}

/// Reusable scratch for [`BatchedDensity::apply_kraus_with`] — the batched
/// counterpart of `EvolutionWorkspace`.
#[derive(Debug, Default)]
pub struct BatchWorkspace {
    term_re: Vec<f64>,
    term_im: Vec<f64>,
    acc_re: Vec<f64>,
    acc_im: Vec<f64>,
}

impl BatchWorkspace {
    /// An empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    fn ensure(&mut self, len: usize) {
        if self.term_re.len() < len {
            self.term_re.resize(len, 0.0);
            self.term_im.resize(len, 0.0);
            self.acc_re.resize(len, 0.0);
            self.acc_im.resize(len, 0.0);
        }
    }
}

/// `width` forked mixed states evolving in lockstep. ρ (row-major) is
/// treated exactly as the scalar engine treats it: a statevector over `2n`
/// flat bits, row bit `q` at flat bit `n + q`, column bit `q` at flat bit
/// `q`.
#[derive(Debug, Clone)]
pub struct BatchedDensity {
    block: CellBlock,
    n: usize,
    dim: usize,
}

impl BatchedDensity {
    /// Broadcasts one parked density matrix into all `width` cells.
    ///
    /// # Panics
    ///
    /// Panics when `width` is 0 or exceeds [`MAX_BATCH_CELLS`].
    pub fn broadcast(rho: &DensityMatrix, width: usize) -> Self {
        BatchedDensity {
            block: CellBlock::broadcast(rho.raw(), width),
            n: rho.num_qubits(),
            dim: rho.dim(),
        }
    }

    /// Number of cells.
    #[inline]
    pub fn width(&self) -> usize {
        self.block.width
    }

    /// Register width.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// Applies one shared unitary to every cell: `ρ ↦ UρU†` as a row pass
    /// plus a conjugated column pass, exactly like the scalar engine.
    ///
    /// # Panics
    ///
    /// Panics if a qubit index is out of range.
    pub fn apply_unitary(&mut self, u: &CMatrix, qubits: &[usize]) {
        let k = qubits.len();
        let mut row_positions = [0usize; MAX_KERNEL_QUBITS];
        for (slot, &q) in row_positions.iter_mut().zip(qubits) {
            assert!(q < self.n, "qubit {q} out of range for width {}", self.n);
            *slot = self.n + q;
        }
        batch_apply_matrix_on_bits(
            &mut self.block.re,
            &mut self.block.im,
            self.block.width,
            u.as_slice(),
            &row_positions[..k],
            2 * self.n,
            false,
        );
        batch_apply_matrix_on_bits(
            &mut self.block.re,
            &mut self.block.im,
            self.block.width,
            u.as_slice(),
            qubits,
            2 * self.n,
            true,
        );
    }

    /// Applies one single-qubit unitary **per cell** (the grid's per-cell
    /// fault injector) on the shared target qubit.
    ///
    /// # Panics
    ///
    /// Panics unless exactly `width` 2×2 matrices are given and the qubit is
    /// in range.
    pub fn apply_unitary_per_cell(&mut self, us: &[CMatrix], qubit: usize) {
        assert!(qubit < self.n, "qubit {qubit} out of range");
        let (u_re, u_im) = pack_per_cell_1q(us, self.block.width);
        batch_apply_1q_per_cell(
            &mut self.block.re,
            &mut self.block.im,
            self.block.width,
            &u_re,
            &u_im,
            self.n + qubit,
            false,
        );
        batch_apply_1q_per_cell(
            &mut self.block.re,
            &mut self.block.im,
            self.block.width,
            &u_re,
            &u_im,
            qubit,
            true,
        );
    }

    /// Applies one shared channel superoperator (`4^k × 4^k` over the
    /// combined row/column bits) to every cell.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not `4^k × 4^k` or a qubit is out of range.
    pub fn apply_superoperator(&mut self, s: &CMatrix, qubits: &[usize]) {
        let k = qubits.len();
        assert_eq!(s.rows(), 1 << (2 * k), "superoperator size mismatch");
        let mut combined = [0usize; MAX_KERNEL_QUBITS];
        for (i, &q) in qubits.iter().enumerate() {
            assert!(q < self.n, "qubit {q} out of range for width {}", self.n);
            combined[i] = self.n + q;
            combined[k + i] = q;
        }
        batch_apply_matrix_on_bits(
            &mut self.block.re,
            &mut self.block.im,
            self.block.width,
            s.as_slice(),
            &combined[..2 * k],
            2 * self.n,
            false,
        );
    }

    /// Applies a Kraus channel `ρ ↦ Σₖ Kₖ ρ Kₖ†` to every cell, mirroring
    /// the scalar accumulate-from-zero term structure so each cell stays
    /// bit-identical to `DensityMatrix::apply_kraus_with`.
    ///
    /// # Panics
    ///
    /// Panics if the operators are not square over `2^|qubits|` dimensions
    /// or the channel is empty.
    pub fn apply_kraus_with(
        &mut self,
        kraus: &[CMatrix],
        qubits: &[usize],
        ws: &mut BatchWorkspace,
    ) {
        assert!(!kraus.is_empty(), "empty Kraus channel");
        let k_dim = 1usize << qubits.len();
        for k in kraus {
            assert_eq!(
                (k.rows(), k.cols()),
                (k_dim, k_dim),
                "Kraus operator shape mismatch"
            );
        }
        let len = self.block.re.len();
        ws.ensure(len);
        ws.acc_re[..len].fill(0.0);
        ws.acc_im[..len].fill(0.0);
        let k_count = qubits.len();
        let mut row_positions = [0usize; MAX_KERNEL_QUBITS];
        for (slot, &q) in row_positions.iter_mut().zip(qubits) {
            assert!(q < self.n, "qubit {q} out of range for width {}", self.n);
            *slot = self.n + q;
        }
        for op in kraus {
            ws.term_re[..len].copy_from_slice(&self.block.re);
            ws.term_im[..len].copy_from_slice(&self.block.im);
            batch_apply_matrix_on_bits(
                &mut ws.term_re[..len],
                &mut ws.term_im[..len],
                self.block.width,
                op.as_slice(),
                &row_positions[..k_count],
                2 * self.n,
                false,
            );
            batch_apply_matrix_on_bits(
                &mut ws.term_re[..len],
                &mut ws.term_im[..len],
                self.block.width,
                op.as_slice(),
                qubits,
                2 * self.n,
                true,
            );
            for (a, t) in ws.acc_re[..len].iter_mut().zip(&ws.term_re[..len]) {
                *a += *t;
            }
            for (a, t) in ws.acc_im[..len].iter_mut().zip(&ws.term_im[..len]) {
                *a += *t;
            }
        }
        self.block.re.copy_from_slice(&ws.acc_re[..len]);
        self.block.im.copy_from_slice(&ws.acc_im[..len]);
    }

    /// Born-rule probabilities of one cell: the diagonal of that cell's ρ.
    pub fn probabilities(&self, cell: usize) -> ProbDist {
        ProbDist::from_probs(
            (0..self.dim)
                .map(|i| self.block.at(i * self.dim + i, cell).0)
                .collect(),
            self.n,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace::EvolutionWorkspace;

    fn assert_dist_bitwise(a: &ProbDist, b: &ProbDist, what: &str) {
        assert_eq!(a.len(), b.len(), "{what}: length");
        for i in 0..a.len() {
            assert_eq!(
                a.prob(i).to_bits(),
                b.prob(i).to_bits(),
                "{what}: index {i}: {} vs {}",
                a.prob(i),
                b.prob(i)
            );
        }
    }

    fn suffix_circuit() -> QuantumCircuit {
        let mut qc = QuantumCircuit::new(3, 3);
        qc.h(0).cx(0, 1).t(1).ry(0.7, 2).cx(1, 2).h(0);
        qc.measure(0, 0).measure(1, 1).measure(2, 2);
        qc
    }

    #[test]
    fn batched_statevector_cells_match_scalar_bitwise() {
        let mut prep = QuantumCircuit::new(3, 0);
        prep.h(0).cx(0, 1).ry(0.4, 2);
        let parked = Statevector::from_circuit(&prep).unwrap();
        let suffix = suffix_circuit();
        for width in [1usize, 3, 8] {
            let injectors: Vec<CMatrix> = (0..width)
                .map(|c| CMatrix::u_gate(0.2 + 0.3 * c as f64, 0.1 * c as f64, 0.0))
                .collect();
            let mut batch = BatchedStatevector::broadcast(&parked, width);
            batch.apply_matrix_per_cell(&injectors, 1);
            for op in suffix.instructions() {
                if let crate::circuit::Op::Gate { gate, qubits } = op {
                    batch.apply_gate(*gate, qubits);
                }
            }
            for (c, u) in injectors.iter().enumerate() {
                let mut sv = parked.clone();
                sv.apply_matrix(u, &[1]);
                for op in suffix.instructions() {
                    if let crate::circuit::Op::Gate { gate, qubits } = op {
                        sv.apply_gate(*gate, qubits);
                    }
                }
                assert_dist_bitwise(
                    &batch.measurement_distribution(c, &suffix),
                    &sv.measurement_distribution(&suffix),
                    &format!("sv width={width} cell={c}"),
                );
            }
        }
    }

    #[test]
    fn batched_density_cells_match_scalar_bitwise() {
        let mut prep = QuantumCircuit::new(2, 0);
        prep.h(0).cx(0, 1);
        let mut parked = DensityMatrix::new(2).unwrap();
        parked.run_circuit(&prep);
        // A non-trivial channel: amplitude damping as a superoperator.
        let g: f64 = 0.3;
        let kraus = vec![
            CMatrix::from_2x2(
                Complex::ONE,
                Complex::ZERO,
                Complex::ZERO,
                Complex::real((1.0 - g).sqrt()),
            ),
            CMatrix::from_2x2(
                Complex::ZERO,
                Complex::real(g.sqrt()),
                Complex::ZERO,
                Complex::ZERO,
            ),
        ];
        let mut sup = CMatrix::zeros(4, 4);
        for k in &kraus {
            for a in 0..2 {
                for b in 0..2 {
                    for c in 0..2 {
                        for d in 0..2 {
                            sup[(a * 2 + b, c * 2 + d)] += k[(a, c)] * k[(b, d)].conj();
                        }
                    }
                }
            }
        }
        for width in [1usize, 5, MAX_BATCH_CELLS] {
            let injectors: Vec<CMatrix> = (0..width)
                .map(|c| CMatrix::u_gate(0.25 * c as f64, 0.4, 0.0))
                .collect();
            let mut batch = BatchedDensity::broadcast(&parked, width);
            batch.apply_unitary_per_cell(&injectors, 0);
            batch.apply_superoperator(&sup, &[0]);
            batch.apply_unitary(&CMatrix::cnot(), &[0, 1]);
            batch.apply_superoperator(&sup, &[1]);
            for (c, u) in injectors.iter().enumerate() {
                let mut rho = parked.clone();
                rho.apply_unitary(u, &[0]);
                rho.apply_superoperator(&sup, &[0]);
                rho.apply_unitary(&CMatrix::cnot(), &[0, 1]);
                rho.apply_superoperator(&sup, &[1]);
                assert_dist_bitwise(
                    &batch.probabilities(c),
                    &rho.probabilities(),
                    &format!("rho width={width} cell={c}"),
                );
            }
        }
    }

    #[test]
    fn batched_kraus_matches_scalar_bitwise() {
        let mut prep = QuantumCircuit::new(2, 0);
        prep.h(0).t(0).cx(0, 1);
        let mut parked = DensityMatrix::new(2).unwrap();
        parked.run_circuit(&prep);
        let p: f64 = 0.2;
        let kraus = vec![
            CMatrix::identity(2).scale_real((1.0 - p).sqrt()),
            CMatrix::pauli_z().scale_real(p.sqrt()),
        ];
        let width = 4usize;
        let mut batch = BatchedDensity::broadcast(&parked, width);
        let mut ws = BatchWorkspace::new();
        batch.apply_kraus_with(&kraus, &[1], &mut ws);
        let mut rho = parked.clone();
        let mut sws = EvolutionWorkspace::new();
        rho.apply_kraus_with(&kraus, &[1], &mut sws);
        for c in 0..width {
            assert_dist_bitwise(
                &batch.probabilities(c),
                &rho.probabilities(),
                &format!("kraus cell={c}"),
            );
        }
    }
}
