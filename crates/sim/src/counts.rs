//! Output probability distributions and finite-shot sampling.
//!
//! The paper runs every (faulty) circuit 1024 times on Qiskit/IBM-Q and
//! derives the QVF from the resulting histogram. Our density-matrix engine
//! produces the *exact* distribution, which equals the expectation of that
//! histogram; [`ProbDist::sample`] reproduces the finite-shot behaviour when
//! hardware realism is wanted (e.g. the Fig. 11 experiment).

use rand::Rng;

/// An exact probability distribution over `2^n_bits` classical outcomes.
///
/// Bit `i` of an outcome index is classical bit `i`; rendered bitstrings are
/// most-significant-bit first (Qiskit convention).
///
/// # Example
///
/// ```
/// use qufi_sim::ProbDist;
///
/// let d = ProbDist::from_probs(vec![0.25, 0.75], 1);
/// assert_eq!(d.prob_of("1"), 0.75);
/// assert_eq!(d.most_probable().0, 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ProbDist {
    probs: Vec<f64>,
    n_bits: usize,
}

impl ProbDist {
    /// Builds a distribution from raw probabilities.
    ///
    /// # Panics
    ///
    /// Panics if `probs.len() != 2^n_bits` or any probability is negative
    /// beyond numerical noise.
    pub fn from_probs(probs: Vec<f64>, n_bits: usize) -> Self {
        assert_eq!(probs.len(), 1 << n_bits, "length must be 2^n_bits");
        assert!(
            probs.iter().all(|&p| p >= -1e-9),
            "negative probability in distribution"
        );
        ProbDist {
            probs: probs.iter().map(|&p| p.max(0.0)).collect(),
            n_bits,
        }
    }

    /// The uniform distribution.
    pub fn uniform(n_bits: usize) -> Self {
        let n = 1usize << n_bits;
        ProbDist::from_probs(vec![1.0 / n as f64; n], n_bits)
    }

    /// A point mass on `index`.
    pub fn delta(index: usize, n_bits: usize) -> Self {
        let mut probs = vec![0.0; 1 << n_bits];
        probs[index] = 1.0;
        ProbDist::from_probs(probs, n_bits)
    }

    /// Number of classical bits.
    #[inline]
    pub fn num_bits(&self) -> usize {
        self.n_bits
    }

    /// Number of outcomes (`2^n_bits`).
    #[inline]
    pub fn len(&self) -> usize {
        self.probs.len()
    }

    /// `true` when the distribution has zero bits (single trivial outcome).
    pub fn is_empty(&self) -> bool {
        self.n_bits == 0
    }

    /// Probability of outcome `index`.
    #[inline]
    pub fn prob(&self, index: usize) -> f64 {
        self.probs[index]
    }

    /// Probabilities slice, indexed by outcome.
    #[inline]
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// Probability of the outcome written as a bitstring (MSB first).
    ///
    /// # Panics
    ///
    /// Panics if the string length differs from `num_bits` or contains
    /// characters other than `0`/`1`.
    pub fn prob_of(&self, bits: &str) -> f64 {
        self.probs[Self::index_of(bits, self.n_bits)]
    }

    /// Parses a MSB-first bitstring into an outcome index.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch or non-binary characters.
    pub fn index_of(bits: &str, n_bits: usize) -> usize {
        assert_eq!(bits.len(), n_bits, "bitstring length mismatch");
        bits.chars().fold(0usize, |acc, c| match c {
            '0' => acc << 1,
            '1' => (acc << 1) | 1,
            other => panic!("invalid bit character {other:?}"),
        })
    }

    /// Renders an outcome index as a MSB-first bitstring.
    pub fn bitstring(&self, index: usize) -> String {
        render_bits(index, self.n_bits)
    }

    /// Sum of all probabilities (≈1 for a trace-preserving simulation).
    pub fn total(&self) -> f64 {
        self.probs.iter().sum()
    }

    /// Rescales so probabilities sum to one.
    ///
    /// # Panics
    ///
    /// Panics if the total is zero.
    pub fn normalize(&mut self) {
        let t = self.total();
        assert!(t > 0.0, "cannot normalize zero distribution");
        for p in &mut self.probs {
            *p /= t;
        }
    }

    /// The most probable outcome `(index, probability)`; ties resolve to the
    /// lowest index.
    pub fn most_probable(&self) -> (usize, f64) {
        let mut best = (0usize, f64::NEG_INFINITY);
        for (i, &p) in self.probs.iter().enumerate() {
            if p > best.1 {
                best = (i, p);
            }
        }
        best
    }

    /// The most probable outcome **excluding** the given set of indices;
    /// this is `P(B)` of the QVF: the strongest *incorrect* state.
    /// Returns `None` when every outcome is excluded.
    pub fn most_probable_excluding(&self, excluded: &[usize]) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64)> = None;
        for (i, &p) in self.probs.iter().enumerate() {
            if excluded.contains(&i) {
                continue;
            }
            if best.is_none_or(|(_, bp)| p > bp) {
                best = Some((i, p));
            }
        }
        best
    }

    /// Outcomes sorted by descending probability.
    pub fn top_k(&self, k: usize) -> Vec<(usize, f64)> {
        let mut v: Vec<(usize, f64)> = self.probs.iter().copied().enumerate().collect();
        v.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        v.truncate(k);
        v
    }

    /// Total-variation distance `½ Σ |p−q|`.
    ///
    /// # Panics
    ///
    /// Panics if the distributions have different widths.
    pub fn tv_distance(&self, other: &ProbDist) -> f64 {
        assert_eq!(self.n_bits, other.n_bits, "width mismatch");
        0.5 * self
            .probs
            .iter()
            .zip(&other.probs)
            .map(|(&p, &q)| (p - q).abs())
            .sum::<f64>()
    }

    /// Marginalizes a distribution over *qubits* into one over *classical
    /// bits* through a measurement map `(qubit → clbit)`.
    ///
    /// Unmeasured qubits are traced out. This matches Qiskit, where e.g. the
    /// Bernstein-Vazirani circuit measures only the input qubits and not the
    /// ancilla.
    ///
    /// # Panics
    ///
    /// Panics if a map entry is out of range.
    pub fn marginalize(&self, map: &[(usize, usize)], n_clbits: usize) -> ProbDist {
        let mut out = vec![0.0f64; 1 << n_clbits];
        for (idx, &p) in self.probs.iter().enumerate() {
            if p == 0.0 {
                continue;
            }
            let mut c = 0usize;
            for &(q, cb) in map {
                assert!(q < self.n_bits, "qubit {q} out of range");
                assert!(cb < n_clbits, "clbit {cb} out of range");
                if (idx >> q) & 1 == 1 {
                    c |= 1 << cb;
                }
            }
            out[c] += p;
        }
        ProbDist::from_probs(out, n_clbits)
    }

    /// Samples `shots` outcomes, returning a histogram.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, shots: u64) -> Counts {
        // Build the CDF once.
        let mut cdf = Vec::with_capacity(self.probs.len());
        let mut acc = 0.0;
        for &p in &self.probs {
            acc += p;
            cdf.push(acc);
        }
        let total = acc.max(f64::MIN_POSITIVE);
        let mut counts = vec![0u64; self.probs.len()];
        for _ in 0..shots {
            let x: f64 = rng.gen::<f64>() * total;
            // Binary search for the first cdf entry >= x.
            let idx = cdf.partition_point(|&c| c < x).min(self.probs.len() - 1);
            counts[idx] += 1;
        }
        Counts {
            counts,
            n_bits: self.n_bits,
            shots,
        }
    }

    /// Iterates `(bitstring, probability)` pairs for nonzero outcomes.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (String, f64)> + '_ {
        self.probs
            .iter()
            .enumerate()
            .filter(|(_, &p)| p > 1e-15)
            .map(|(i, &p)| (self.bitstring(i), p))
    }
}

/// A finite-shot measurement histogram (the Qiskit `Counts` analogue).
///
/// # Example
///
/// ```
/// use qufi_sim::ProbDist;
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let d = ProbDist::from_probs(vec![0.5, 0.5], 1);
/// let mut rng = SmallRng::seed_from_u64(7);
/// let counts = d.sample(&mut rng, 1024);
/// assert_eq!(counts.shots(), 1024);
/// assert_eq!(counts.get("0") + counts.get("1"), 1024);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Counts {
    counts: Vec<u64>,
    n_bits: usize,
    shots: u64,
}

impl Counts {
    /// Builds counts from a raw histogram.
    ///
    /// # Panics
    ///
    /// Panics if `counts.len() != 2^n_bits`.
    pub fn from_vec(counts: Vec<u64>, n_bits: usize) -> Self {
        assert_eq!(counts.len(), 1 << n_bits, "length must be 2^n_bits");
        let shots = counts.iter().sum();
        Counts {
            counts,
            n_bits,
            shots,
        }
    }

    /// Total number of shots.
    #[inline]
    pub fn shots(&self) -> u64 {
        self.shots
    }

    /// Number of classical bits.
    #[inline]
    pub fn num_bits(&self) -> usize {
        self.n_bits
    }

    /// Count for a bitstring outcome.
    ///
    /// # Panics
    ///
    /// Panics on malformed bitstrings.
    pub fn get(&self, bits: &str) -> u64 {
        self.counts[ProbDist::index_of(bits, self.n_bits)]
    }

    /// Count by outcome index.
    #[inline]
    pub fn get_index(&self, index: usize) -> u64 {
        self.counts[index]
    }

    /// Converts to an empirical probability distribution.
    ///
    /// # Panics
    ///
    /// Panics if there are zero shots.
    pub fn to_prob_dist(&self) -> ProbDist {
        assert!(self.shots > 0, "no shots recorded");
        ProbDist::from_probs(
            self.counts
                .iter()
                .map(|&c| c as f64 / self.shots as f64)
                .collect(),
            self.n_bits,
        )
    }

    /// Iterates `(bitstring, count)` for nonzero outcomes.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (String, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (render_bits(i, self.n_bits), c))
    }
}

/// Renders `index` as a MSB-first bitstring of width `n_bits`.
pub fn render_bits(index: usize, n_bits: usize) -> String {
    (0..n_bits)
        .rev()
        .map(|b| if (index >> b) & 1 == 1 { '1' } else { '0' })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn bitstring_roundtrip() {
        let d = ProbDist::uniform(3);
        for i in 0..8 {
            let s = d.bitstring(i);
            assert_eq!(ProbDist::index_of(&s, 3), i);
        }
        assert_eq!(d.bitstring(5), "101");
    }

    #[test]
    fn marginalize_traces_out_ancilla() {
        // 2-qubit state: P(|10>) = 1 (qubit1=1, qubit0=0). Measure only
        // qubit 1 into clbit 0.
        let d = ProbDist::delta(0b10, 2);
        let m = d.marginalize(&[(1, 0)], 1);
        assert_eq!(m.prob_of("1"), 1.0);
        // Measure only qubit 0:
        let m0 = d.marginalize(&[(0, 0)], 1);
        assert_eq!(m0.prob_of("0"), 1.0);
    }

    #[test]
    fn marginalize_preserves_total() {
        let d = ProbDist::from_probs(vec![0.1, 0.2, 0.3, 0.4], 2);
        let m = d.marginalize(&[(0, 0), (1, 1)], 2);
        assert!((m.total() - 1.0).abs() < 1e-12);
        // Identity map keeps the distribution.
        assert!(m.tv_distance(&d) < 1e-12);
    }

    #[test]
    fn most_probable_excluding_skips_correct_states() {
        let d = ProbDist::from_probs(vec![0.7, 0.2, 0.08, 0.02], 2);
        let (idx, p) = d.most_probable_excluding(&[0]).unwrap();
        assert_eq!(idx, 1);
        assert!((p - 0.2).abs() < 1e-12);
        assert!(d.most_probable_excluding(&[0, 1, 2, 3]).is_none());
    }

    #[test]
    fn sampling_concentrates_on_mass() {
        let d = ProbDist::from_probs(vec![0.9, 0.1], 1);
        let mut rng = SmallRng::seed_from_u64(42);
        let counts = d.sample(&mut rng, 10_000);
        let p0 = counts.get("0") as f64 / 10_000.0;
        assert!((p0 - 0.9).abs() < 0.02, "sampled {p0}");
    }

    #[test]
    fn sample_handles_delta() {
        let d = ProbDist::delta(2, 2);
        let mut rng = SmallRng::seed_from_u64(1);
        let c = d.sample(&mut rng, 100);
        assert_eq!(c.get("10"), 100);
    }

    #[test]
    fn counts_to_dist_roundtrip() {
        let c = Counts::from_vec(vec![256, 768], 1);
        let d = c.to_prob_dist();
        assert!((d.prob_of("1") - 0.75).abs() < 1e-12);
        assert_eq!(c.shots(), 1024);
    }

    #[test]
    fn tv_distance_bounds() {
        let a = ProbDist::delta(0, 1);
        let b = ProbDist::delta(1, 1);
        assert!((a.tv_distance(&b) - 1.0).abs() < 1e-12);
        assert!(a.tv_distance(&a) < 1e-15);
    }

    #[test]
    fn top_k_sorted() {
        let d = ProbDist::from_probs(vec![0.1, 0.4, 0.15, 0.35], 2);
        let top = d.top_k(2);
        assert_eq!(top[0].0, 1);
        assert_eq!(top[1].0, 3);
    }

    #[test]
    #[should_panic(expected = "length must be 2^n_bits")]
    fn wrong_length_panics() {
        let _ = ProbDist::from_probs(vec![1.0; 3], 2);
    }

    #[test]
    fn iter_nonzero_skips_zeros() {
        let d = ProbDist::delta(1, 2);
        let items: Vec<_> = d.iter_nonzero().collect();
        assert_eq!(items, vec![("01".to_string(), 1.0)]);
    }
}
