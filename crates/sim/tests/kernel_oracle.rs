//! Kernel-vs-dense-oracle property tests.
//!
//! The in-place index-arithmetic kernels (`crates/sim/src/kernel.rs`) are
//! the arithmetic underneath every statevector gate, density-matrix
//! unitary, Kraus channel, and channel superoperator in the stack. These
//! tests pin them against an *independent* dense oracle: the operator is
//! embedded entry-by-entry into the full `2^n × 2^n` matrix and applied by
//! plain matrix multiplication (`qufi_math::CMatrix`), with no shared index
//! arithmetic. Random circuits and channels must agree with the oracle to
//! `< 1e-12` per application, and unitary application must be **bitwise**
//! invariant under kernel dispatch: padding a gate with an identity operand
//! (which reroutes it through the wider specialized/generic kernel paths)
//! must not change a single bit of the state.

use proptest::prelude::*;
use qufi_math::{CMatrix, Complex};
use qufi_sim::{DensityMatrix, EvolutionWorkspace, Gate, Statevector};

/// Embeds a `2^k × 2^k` operator over `qubits` of an `n`-qubit register
/// into the full `2^n × 2^n` matrix, entry by entry. Matches the kernel's
/// operand convention (first operand = most significant matrix bit) but
/// shares none of its index arithmetic.
fn embed(u: &CMatrix, qubits: &[usize], n: usize) -> CMatrix {
    let k = qubits.len();
    let dim = 1usize << n;
    let sub = |i: usize| -> usize {
        let mut m = 0usize;
        for (t, &q) in qubits.iter().enumerate() {
            m |= ((i >> q) & 1) << (k - 1 - t);
        }
        m
    };
    let rest_mask = {
        let mut mask = dim - 1;
        for &q in qubits {
            mask &= !(1usize << q);
        }
        mask
    };
    let mut full = CMatrix::zeros(dim, dim);
    for i in 0..dim {
        for j in 0..dim {
            if i & rest_mask == j & rest_mask {
                full[(i, j)] = u[(sub(i), sub(j))];
            }
        }
    }
    full
}

/// The density matrix as a dense `CMatrix` (oracle side).
fn to_matrix(rho: &DensityMatrix) -> CMatrix {
    let dim = rho.dim();
    let mut m = CMatrix::zeros(dim, dim);
    for i in 0..dim {
        for j in 0..dim {
            m[(i, j)] = rho.entry(i, j);
        }
    }
    m
}

fn max_entry_diff(rho: &DensityMatrix, oracle: &CMatrix) -> f64 {
    let dim = rho.dim();
    let mut worst: f64 = 0.0;
    for i in 0..dim {
        for j in 0..dim {
            let d = rho.entry(i, j) - oracle[(i, j)];
            worst = worst.max(d.norm());
        }
    }
    worst
}

fn assert_bitwise_state(a: &Statevector, b: &Statevector, what: &str) {
    for (i, (x, y)) in a.amplitudes().iter().zip(b.amplitudes()).enumerate() {
        assert!(
            x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits(),
            "{what}: amplitude {i}: {x:?} vs {y:?}"
        );
    }
}

fn assert_bitwise_density(a: &DensityMatrix, b: &DensityMatrix, what: &str) {
    for i in 0..a.dim() {
        for j in 0..a.dim() {
            let (x, y) = (a.entry(i, j), b.entry(i, j));
            assert!(
                x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits(),
                "{what}: entry ({i},{j}): {x:?} vs {y:?}"
            );
        }
    }
}

/// A random gate over `n` qubits, as (matrix, operands).
fn arb_gate(n: usize) -> impl Strategy<Value = (CMatrix, Vec<usize>)> {
    let q = 0..n;
    let angle = -std::f64::consts::PI..std::f64::consts::PI;
    prop_oneof![
        (angle.clone(), angle.clone(), angle.clone(), q.clone())
            .prop_map(|(t, p, l, a)| (CMatrix::u_gate(t, p, l), vec![a])),
        q.clone().prop_map(|a| (CMatrix::hadamard(), vec![a])),
        (q.clone(), q.clone())
            .prop_filter("distinct", |(a, b)| a != b)
            .prop_map(|(a, b)| (CMatrix::cnot(), vec![a, b])),
        (angle.clone(), angle.clone(), q.clone(), q)
            .prop_filter("distinct", |(_, _, a, b)| a != b)
            .prop_map(|(t, p, a, b)| {
                // An entangling random 2q unitary: CX · (U(t,p,0) ⊗ U(p,t,0)).
                let u = CMatrix::cnot()
                    .matmul(&CMatrix::u_gate(t, p, 0.0).kron(&CMatrix::u_gate(p, t, 0.0)));
                (u, vec![a, b])
            }),
    ]
}

/// A random CPTP channel `{√(1-p)·I, √p·V}` with V unitary over k qubits,
/// as its Kraus operators.
fn arb_channel(n: usize) -> impl Strategy<Value = (Vec<CMatrix>, Vec<usize>)> {
    let p = 0.05f64..0.95;
    let angle = -std::f64::consts::PI..std::f64::consts::PI;
    prop_oneof![
        (p.clone(), angle.clone(), angle.clone(), 0..n).prop_map(|(p, t, l, q)| {
            let v = CMatrix::u_gate(t, l, 0.0);
            (
                vec![
                    CMatrix::identity(2).scale_real((1.0 - p).sqrt()),
                    v.scale_real(p.sqrt()),
                ],
                vec![q],
            )
        }),
        (p, angle.clone(), angle, 0..n, 0..n)
            .prop_filter("distinct", |(_, _, _, a, b)| a != b)
            .prop_map(|(p, t, l, a, b)| {
                let v = CMatrix::cnot()
                    .matmul(&CMatrix::u_gate(t, l, 0.0).kron(&CMatrix::u_gate(l, t, 0.0)));
                (
                    vec![
                        CMatrix::identity(4).scale_real((1.0 - p).sqrt()),
                        v.scale_real(p.sqrt()),
                    ],
                    vec![a, b],
                )
            }),
    ]
}

/// The channel superoperator `S[(a,b),(c,d)] = Σₖ Kₖ[a,c]·K̄ₖ[b,d]`, built
/// densely from the Kraus set (oracle-side construction).
fn superop_of(kraus: &[CMatrix]) -> CMatrix {
    let d = kraus[0].rows();
    let mut s = CMatrix::zeros(d * d, d * d);
    for k in kraus {
        for a in 0..d {
            for b in 0..d {
                for c in 0..d {
                    for e in 0..d {
                        s[(a * d + b, c * d + e)] += k[(a, c)] * k[(b, e)].conj();
                    }
                }
            }
        }
    }
    s
}

const N: usize = 3;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Statevector kernels vs dense matvec: every gate of a random circuit
    /// agrees with the embedded full-matrix product to < 1e-12.
    #[test]
    fn statevector_gates_match_dense_matvec(gates in prop::collection::vec(arb_gate(N), 1..12)) {
        let mut sv = Statevector::new(N).expect("fits");
        // Leave |0…0⟩ with a couple of fixed gates so later gates act on a
        // non-trivial state.
        sv.apply_gate(Gate::H, &[0]);
        sv.apply_gate(Gate::Cx, &[0, 1]);
        for (u, qs) in gates {
            let before: Vec<Complex> = sv.amplitudes().to_vec();
            sv.apply_matrix(&u, &qs);
            let oracle = embed(&u, &qs, N).matvec(&before);
            for (i, (got, want)) in sv.amplitudes().iter().zip(&oracle).enumerate() {
                let d = *got - *want;
                prop_assert!(d.norm() < 1e-12, "amplitude {i}: {got:?} vs {want:?}");
            }
        }
    }

    /// Density-matrix unitary kernels vs dense `UρU†`, plus the per-gate
    /// distribution distance the sweep engine's guarantees quote.
    #[test]
    fn density_unitaries_match_dense_matmul(gates in prop::collection::vec(arb_gate(N), 1..10)) {
        let mut rho = DensityMatrix::new(N).expect("fits");
        rho.apply_gate(Gate::H, &[0]);
        rho.apply_gate(Gate::Cx, &[0, 1]);
        for (u, qs) in gates {
            let full = embed(&u, &qs, N);
            let oracle = full.matmul(&to_matrix(&rho)).matmul(&full.adjoint());
            rho.apply_unitary(&u, &qs);
            prop_assert!(max_entry_diff(&rho, &oracle) < 1e-12);
            // tv distance of the Born distributions: a strictly weaker view
            // of the same bound, stated because it is what replay
            // equivalence is measured in.
            let mut dense = Vec::with_capacity(rho.dim());
            for i in 0..rho.dim() {
                dense.push(oracle[(i, i)].re);
            }
            let tv: f64 = rho
                .probabilities()
                .probs()
                .iter()
                .zip(&dense)
                .map(|(a, b)| (a - b).abs())
                .sum::<f64>()
                / 2.0;
            prop_assert!(tv < 1e-12, "per-gate tv {tv}");
        }
    }

    /// Unitary application is **bitwise** invariant under kernel dispatch:
    /// padding the operand list with an identity qubit reroutes a 1q gate
    /// through the 2q kernel and a 2q gate through the generic kernel, and
    /// must not change one bit of the state.
    #[test]
    fn padded_dispatch_is_bitwise_identical(
        gates in prop::collection::vec(arb_gate(N), 1..10),
        pad_seed in 0usize..1024,
    ) {
        let mut sv = Statevector::new(N).expect("fits");
        let mut sv_padded = Statevector::new(N).expect("fits");
        let mut rho = DensityMatrix::new(N).expect("fits");
        let mut rho_padded = DensityMatrix::new(N).expect("fits");
        for (i, (u, qs)) in gates.iter().enumerate() {
            let pad = (0..N)
                .find(|q| (q + pad_seed + i) % N == 0 && !qs.contains(q))
                .or_else(|| (0..N).find(|q| !qs.contains(q)))
                .expect("a free qubit exists");
            let padded_u = CMatrix::identity(2).kron(u);
            let mut padded_qs = vec![pad];
            padded_qs.extend_from_slice(qs);

            sv.apply_matrix(u, qs);
            sv_padded.apply_matrix(&padded_u, &padded_qs);
            assert_bitwise_state(&sv, &sv_padded, "statevector dispatch");

            rho.apply_unitary(u, qs);
            rho_padded.apply_unitary(&padded_u, &padded_qs);
            assert_bitwise_density(&rho, &rho_padded, "density dispatch");
        }
    }

    /// Kraus kernels vs dense `Σₖ KₖρKₖ†`, the superoperator path against
    /// both, and workspace reuse against fresh workspaces (bitwise).
    #[test]
    fn channels_match_dense_oracle(channels in prop::collection::vec(arb_channel(N), 1..6)) {
        let mut rho = DensityMatrix::new(N).expect("fits");
        rho.apply_gate(Gate::H, &[0]);
        rho.apply_gate(Gate::Cx, &[0, 1]);
        rho.apply_gate(Gate::Cx, &[1, 2]);
        let mut via_superop = rho.clone();
        let mut via_fresh = rho.clone();
        let mut ws = EvolutionWorkspace::new();
        for (kraus, qs) in channels {
            // Dense oracle: embed each Kraus operator and matmul.
            let mut oracle = CMatrix::zeros(rho.dim(), rho.dim());
            for k in &kraus {
                let full = embed(k, &qs, N);
                oracle = oracle.add(&full.matmul(&to_matrix(&rho)).matmul(&full.adjoint()));
            }
            rho.apply_kraus_with(&kraus, &qs, &mut ws);
            prop_assert!(max_entry_diff(&rho, &oracle) < 1e-12, "kraus vs dense");

            // Superoperator path: same channel compiled to a superop.
            via_superop.apply_superoperator(&superop_of(&kraus), &qs);
            prop_assert!(max_entry_diff(&via_superop, &oracle) < 1e-12, "superop vs dense");

            // Workspace reuse never changes bits vs a fresh workspace.
            via_fresh.apply_kraus(&kraus, &qs);
            assert_bitwise_density(&rho, &via_fresh, "workspace reuse");

            // Keep the two kernel evolutions aligned for the next round
            // (they agree to 1e-12, not bitwise — different arithmetic).
            via_superop = rho.clone();
        }
        // The evolved state is still a density matrix.
        prop_assert!((rho.trace().re - 1.0).abs() < 1e-9);
        prop_assert!(rho.is_hermitian(1e-9));
    }
}
