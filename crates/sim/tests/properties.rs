//! Property tests for resumable evolution: random circuits, random split
//! points — "evolve prefix, snapshot, evolve suffix" must equal "evolve the
//! whole circuit" on both engines, and replays from one snapshot must never
//! mutate it. These are the substrate guarantees the campaign layer's
//! fork-sweep differential suite builds on.

use proptest::prelude::*;
use qufi_sim::{CircuitCursor, DensityMatrix, Gate, QuantumCircuit, Statevector};

/// A random gate over `n` qubits (1- and 2-qubit, parametrized included).
fn arb_gate(n: usize) -> impl Strategy<Value = (Gate, Vec<usize>)> {
    let q = 0..n;
    let angle = -std::f64::consts::PI..std::f64::consts::PI;
    prop_oneof![
        q.clone().prop_map(|a| (Gate::H, vec![a])),
        q.clone().prop_map(|a| (Gate::X, vec![a])),
        q.clone().prop_map(|a| (Gate::S, vec![a])),
        q.clone().prop_map(|a| (Gate::T, vec![a])),
        q.clone().prop_map(|a| (Gate::Sx, vec![a])),
        (angle.clone(), q.clone()).prop_map(|(t, a)| (Gate::Ry(t), vec![a])),
        (angle.clone(), q.clone()).prop_map(|(t, a)| (Gate::Rz(t), vec![a])),
        (angle.clone(), angle.clone(), angle.clone(), q.clone())
            .prop_map(|(t, p, l, a)| (Gate::U(t, p, l), vec![a])),
        (q.clone(), q.clone())
            .prop_filter("distinct", |(a, b)| a != b)
            .prop_map(|(a, b)| (Gate::Cx, vec![a, b])),
        (angle, q.clone(), q)
            .prop_filter("distinct", |(_, a, b)| a != b)
            .prop_map(|(l, a, b)| (Gate::Cp(l), vec![a, b])),
    ]
}

/// A random measured circuit (with occasional barriers, which cursors must
/// skip exactly like the straight-line entry points do).
fn arb_circuit(n: usize, max_gates: usize) -> impl Strategy<Value = QuantumCircuit> {
    prop::collection::vec((arb_gate(n), any::<bool>()), 1..max_gates).prop_map(move |gates| {
        let mut qc = QuantumCircuit::new(n, n);
        for (i, ((g, qs), barrier)) in gates.into_iter().enumerate() {
            qc.append(g, &qs);
            if barrier && i % 3 == 0 {
                qc.barrier(&[]);
            }
        }
        qc.measure_all();
        qc
    })
}

fn assert_states_equal(a: &Statevector, b: &Statevector, what: &str) {
    for i in 0..a.amplitudes().len() {
        let (x, y) = (a.amp(i), b.amp(i));
        assert!(
            x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits(),
            "{what}: amplitude {i} differs: {x:?} vs {y:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Statevector: prefix + suffix from a snapshot is bit-identical to a
    /// straight run, for a random split index.
    #[test]
    fn split_statevector_matches_whole(qc in arb_circuit(4, 24), split in 0usize..64) {
        let whole = Statevector::from_circuit(&qc).expect("fits");
        let k = split % (qc.size() + 1);
        let mut cursor = CircuitCursor::<Statevector>::start(&qc).expect("fits");
        cursor.advance_to(&qc, k);
        let mut fork = cursor.fork();
        fork.advance_to_end(&qc);
        assert_states_equal(fork.state(), &whole, "split run");
    }

    /// Density matrix: same property, checked entry-by-entry bitwise.
    #[test]
    fn split_density_matrix_matches_whole(qc in arb_circuit(3, 16), split in 0usize..64) {
        let mut whole = DensityMatrix::new(3).expect("fits");
        whole.run_circuit(&qc);
        let k = split % (qc.size() + 1);
        let mut cursor = CircuitCursor::<DensityMatrix>::start(&qc).expect("fits");
        cursor.advance_to(&qc, k);
        let mut fork = cursor.fork();
        fork.advance_to_end(&qc);
        let dim = whole.dim();
        for i in 0..dim {
            for j in 0..dim {
                let (x, y) = (fork.state().entry(i, j), whole.entry(i, j));
                prop_assert!(
                    x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits(),
                    "entry ({i},{j}) differs after split at {k}: {x:?} vs {y:?}"
                );
            }
        }
    }

    /// Replaying two different faults from one cursor leaves the snapshot
    /// unmutated, and each replay matches its own from-scratch run.
    #[test]
    fn snapshot_survives_two_fault_replays(
        qc in arb_circuit(3, 16),
        split in 0usize..64,
        theta in 0.0..std::f64::consts::PI,
        phi in 0.0..(2.0 * std::f64::consts::PI),
    ) {
        let k = split % (qc.size() + 1);
        let site = {
            // Splice on the qubit of the last gate before the split (or 0).
            qc.ops()[..k]
                .iter()
                .rev()
                .find_map(|op| match op {
                    qufi_sim::Op::Gate { qubits, .. } => Some(qubits[0]),
                    _ => None,
                })
                .unwrap_or(0)
        };
        let mut cursor = CircuitCursor::<Statevector>::start(&qc).expect("fits");
        cursor.advance_to(&qc, k);
        let parked = cursor.state().snapshot();

        for fault in [Gate::U(theta, phi, 0.0), Gate::U(phi / 2.0, theta, 0.0)] {
            // Replay from the shared cursor...
            let mut fork = cursor.fork();
            fork.apply_gate(fault, &[site]);
            fork.advance_to_end(&qc);
            // ...and independently from scratch.
            let mut scratch = CircuitCursor::<Statevector>::start(&qc).expect("fits");
            scratch.advance_to(&qc, k);
            scratch.apply_gate(fault, &[site]);
            scratch.advance_to_end(&qc);
            assert_states_equal(fork.state(), scratch.state(), "replay vs scratch");
            // The parked snapshot never moves.
            assert_states_equal(cursor.state(), &parked, "snapshot mutated");
            prop_assert_eq!(cursor.position(), k);
        }
    }

    /// `measurement_distribution` after a cursor run equals the one from
    /// the monolithic entry point — readout bookkeeping is split-agnostic.
    #[test]
    fn cursor_distribution_matches_from_circuit(qc in arb_circuit(4, 20), split in 0usize..64) {
        let k = split % (qc.size() + 1);
        let mut cursor = CircuitCursor::<Statevector>::start(&qc).expect("fits");
        cursor.advance_to(&qc, k);
        cursor.advance_to_end(&qc);
        let via_cursor = cursor.state().measurement_distribution(&qc);
        let direct = Statevector::from_circuit(&qc)
            .expect("fits")
            .measurement_distribution(&qc);
        prop_assert!(via_cursor.tv_distance(&direct) < 1e-15);
    }
}
