//! Mathematical foundations for the QuFI quantum fault-injection stack.
//!
//! The QuFI reproduction deliberately avoids external linear-algebra
//! dependencies; everything the simulator needs lives here:
//!
//! * [`Complex`] — a `f64`-based complex scalar (`c64` alias) with the usual
//!   arithmetic, polar form and `e^{iθ}` helpers.
//! * [`CMatrix`] — a small dense complex matrix used for gate unitaries,
//!   Kraus operators and density matrices, with multiplication, adjoint,
//!   Kronecker product and unitarity checks.
//! * [`decompose`] — ZYZ (Euler-angle) decomposition of arbitrary 2×2
//!   unitaries, used by the transpiler's basis-translation pass.
//! * [`angles`] — the φ/θ grids of the QuFI fault model (15° steps) and
//!   pretty-printing of angles as fractions of π for figure axes.
//!
//! # Example
//!
//! ```
//! use qufi_math::{c64, CMatrix};
//!
//! let h = CMatrix::hadamard();
//! assert!(h.is_unitary(1e-12));
//! let hh = h.matmul(&h);
//! assert!(hh.approx_eq(&CMatrix::identity(2), 1e-12));
//! let _amp = c64::new(0.5, -0.5);
//! ```

pub mod angles;
pub mod complex;
pub mod decompose;
pub mod matrix;

pub use angles::{deg, AngleGrid, PiFraction};
pub use complex::Complex;
pub use decompose::{zyz_decompose, ZyzAngles};
pub use matrix::CMatrix;

/// Convenience alias mirroring the `num_complex::Complex64` spelling.
#[allow(non_camel_case_types)]
pub type c64 = Complex;

/// Tolerance used across the workspace when comparing floating-point
/// quantum amplitudes and probabilities.
pub const EPS: f64 = 1e-9;
