//! A minimal `f64` complex scalar.
//!
//! The allowed dependency set for this reproduction does not include
//! `num-complex`, so we provide exactly the operations the simulator and
//! transpiler need. The type is `Copy` and all arithmetic is implemented for
//! values and for mixed `Complex`/`f64` operands.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number `re + i·im` over `f64`.
///
/// # Example
///
/// ```
/// use qufi_math::Complex;
///
/// let z = Complex::from_polar(2.0, std::f64::consts::FRAC_PI_2);
/// assert!((z.re).abs() < 1e-12);
/// assert!((z.im - 2.0).abs() < 1e-12);
/// assert!((z.norm() - 2.0).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// `0 + 0i`.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// `1 + 0i`.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit `i`.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from Cartesian parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Creates a complex number from polar coordinates `r·e^{iθ}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex::new(r * theta.cos(), r * theta.sin())
    }

    /// `e^{iθ}` — the unit phasor used everywhere in gate matrices.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Complex::from_polar(1.0, theta)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }

    /// Squared modulus `|z|²`; this is the Born-rule probability of an
    /// amplitude.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Argument (phase) in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `z == 0`.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        debug_assert!(d > 0.0, "reciprocal of zero complex number");
        Complex::new(self.re / d, -self.im / d)
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Complex::new(self.re * k, self.im * k)
    }

    /// Returns `true` when both parts differ by at most `tol`.
    #[inline]
    pub fn approx_eq(self, other: Complex, tol: f64) -> bool {
        (self.re - other.re).abs() <= tol && (self.im - other.im).abs() <= tol
    }

    /// Returns `true` when either part is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::real(re)
    }
}

impl fmt::Debug for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{:.6}+{:.6}i", self.re, self.im)
        } else {
            write!(f, "{:.6}-{:.6}i", self.re, -self.im)
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex {
    type Output = Complex;
    // Division *is* multiplication by the reciprocal here.
    #[allow(clippy::suspicious_arithmetic_impl)]
    #[inline]
    fn div(self, rhs: Complex) -> Complex {
        self * rhs.recip()
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl Add<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: f64) -> Complex {
        Complex::new(self.re + rhs, self.im)
    }
}

impl Sub<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: f64) -> Complex {
        Complex::new(self.re - rhs, self.im)
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: f64) -> Complex {
        self.scale(1.0 / rhs)
    }
}

impl Mul<Complex> for f64 {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        rhs.scale(self)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex {
    #[inline]
    fn div_assign(&mut self, rhs: Complex) {
        *self = *self / rhs;
    }
}

impl Sum for Complex {
    fn sum<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, |acc, z| acc + z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn arithmetic_identities() {
        let a = Complex::new(1.5, -2.0);
        let b = Complex::new(-0.5, 3.0);
        assert!((a + b - a - b).approx_eq(Complex::ZERO, 1e-15));
        assert!((a * b / b).approx_eq(a, 1e-12));
        assert!((-a + a).approx_eq(Complex::ZERO, 1e-15));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert!((Complex::I * Complex::I).approx_eq(-Complex::ONE, 1e-15));
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex::from_polar(3.0, 0.7);
        assert!((z.norm() - 3.0).abs() < 1e-12);
        assert!((z.arg() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn cis_period() {
        assert!(Complex::cis(2.0 * PI).approx_eq(Complex::ONE, 1e-12));
        assert!(Complex::cis(PI).approx_eq(-Complex::ONE, 1e-12));
    }

    #[test]
    fn conj_multiplication_gives_norm_sqr() {
        let z = Complex::new(2.0, -5.0);
        let n = z * z.conj();
        assert!((n.re - z.norm_sqr()).abs() < 1e-12);
        assert!(n.im.abs() < 1e-12);
    }

    #[test]
    fn mixed_real_ops() {
        let z = Complex::new(1.0, 1.0);
        assert!((z * 2.0).approx_eq(Complex::new(2.0, 2.0), 1e-15));
        assert!((2.0 * z).approx_eq(Complex::new(2.0, 2.0), 1e-15));
        assert!((z / 2.0).approx_eq(Complex::new(0.5, 0.5), 1e-15));
        assert!((z + 1.0).approx_eq(Complex::new(2.0, 1.0), 1e-15));
        assert!((z - 1.0).approx_eq(Complex::new(0.0, 1.0), 1e-15));
    }

    #[test]
    fn sum_iterator() {
        let total: Complex = (0..4).map(|k| Complex::new(k as f64, 1.0)).sum();
        assert!(total.approx_eq(Complex::new(6.0, 4.0), 1e-15));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(format!("{}", Complex::new(1.0, -1.0)), "1.000000-1.000000i");
        assert_eq!(format!("{}", Complex::new(0.0, 2.0)), "0.000000+2.000000i");
    }
}
