//! Euler-angle (ZYZ) decomposition of 2×2 unitaries.
//!
//! Any single-qubit unitary `U` can be written as
//! `U = e^{iα} · RZ(φ) · RY(θ) · RZ(λ)`.
//! The transpiler uses this to collapse runs of single-qubit gates into one
//! `U(θ, φ, λ)` gate and to translate into the IBM native basis
//! `{rz, sx, x, cx}` (via `U(θ,φ,λ) = e^{iγ} RZ(φ+π)·SX·RZ(θ+π)·SX·RZ(λ)`).

use crate::complex::Complex;
use crate::matrix::CMatrix;
use std::f64::consts::PI;

/// The result of a ZYZ decomposition: `U = e^{iα}·RZ(φ)·RY(θ)·RZ(λ)`.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ZyzAngles {
    /// Global phase α.
    pub alpha: f64,
    /// Middle RY rotation angle θ ∈ [0, π].
    pub theta: f64,
    /// Leading RZ angle φ.
    pub phi: f64,
    /// Trailing RZ angle λ.
    pub lambda: f64,
}

impl ZyzAngles {
    /// Reconstructs the unitary `e^{iα}·RZ(φ)·RY(θ)·RZ(λ)`.
    pub fn to_matrix(self) -> CMatrix {
        CMatrix::rz(self.phi)
            .matmul(&CMatrix::ry(self.theta))
            .matmul(&CMatrix::rz(self.lambda))
            .scale(Complex::cis(self.alpha))
    }

    /// The same unitary expressed as a `U(θ, φ, λ)` gate plus a global phase.
    ///
    /// `U(θ,φ,λ) = e^{i(φ+λ)/2} RZ(φ) RY(θ) RZ(λ)`, so the U-gate global
    /// phase is `α − (φ+λ)/2`.
    pub fn u_gate_phase(self) -> f64 {
        self.alpha - (self.phi + self.lambda) / 2.0
    }
}

/// Decomposes an arbitrary 2×2 unitary into ZYZ Euler angles.
///
/// # Panics
///
/// Panics if `u` is not 2×2 or deviates from unitarity by more than `1e-6`.
///
/// # Example
///
/// ```
/// use qufi_math::{zyz_decompose, CMatrix};
///
/// let u = CMatrix::u_gate(0.7, 1.1, 2.3);
/// let angles = zyz_decompose(&u);
/// assert!(angles.to_matrix().approx_eq(&u, 1e-10));
/// ```
pub fn zyz_decompose(u: &CMatrix) -> ZyzAngles {
    assert_eq!(
        (u.rows(), u.cols()),
        (2, 2),
        "zyz_decompose needs 2x2 input"
    );
    assert!(u.is_unitary(1e-6), "zyz_decompose needs a unitary matrix");

    // Remove the global phase: det(U) = e^{2iα} for U = e^{iα}·SU(2).
    let det = u[(0, 0)] * u[(1, 1)] - u[(0, 1)] * u[(1, 0)];
    let alpha = det.arg() / 2.0;
    let su = u.scale(Complex::cis(-alpha));

    // SU(2) form:
    //   [  cos(θ/2) e^{-i(φ+λ)/2}   -sin(θ/2) e^{-i(φ-λ)/2} ]
    //   [  sin(θ/2) e^{ i(φ-λ)/2}    cos(θ/2) e^{ i(φ+λ)/2} ]
    let c = su[(0, 0)].norm().clamp(0.0, 1.0);
    let s = su[(1, 0)].norm().clamp(0.0, 1.0);
    let theta = 2.0 * s.atan2(c);

    let (phi, lambda) = if s < 1e-12 {
        // θ ≈ 0: only φ+λ is defined; put everything in λ.
        let sum = 2.0 * su[(1, 1)].arg();
        (0.0, sum)
    } else if c < 1e-12 {
        // θ ≈ π: only φ−λ is defined; put everything in φ.
        let diff = 2.0 * su[(1, 0)].arg();
        (diff, 0.0)
    } else {
        let sum = 2.0 * su[(1, 1)].arg(); // φ + λ
        let diff = 2.0 * su[(1, 0)].arg(); // φ − λ
        ((sum + diff) / 2.0, (sum - diff) / 2.0)
    };

    let angles = ZyzAngles {
        alpha,
        theta,
        phi,
        lambda,
    };
    debug_assert!(
        angles.to_matrix().approx_eq(u, 1e-8),
        "zyz reconstruction failed for {u:?} -> {angles:?}"
    );
    angles
}

/// Normalizes an angle into `(-π, π]`.
pub fn normalize_angle(a: f64) -> f64 {
    let mut a = a % (2.0 * PI);
    if a <= -PI {
        a += 2.0 * PI;
    } else if a > PI {
        a -= 2.0 * PI;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, FRAC_PI_4};

    fn check_roundtrip(u: &CMatrix) {
        let a = zyz_decompose(u);
        assert!(
            a.to_matrix().approx_eq(u, 1e-9),
            "roundtrip failed: {u:?} vs {:?}",
            a.to_matrix()
        );
        assert!((0.0..=PI + 1e-9).contains(&a.theta), "theta out of range");
    }

    #[test]
    fn decomposes_named_gates() {
        for u in [
            CMatrix::identity(2),
            CMatrix::hadamard(),
            CMatrix::pauli_x(),
            CMatrix::pauli_y(),
            CMatrix::pauli_z(),
            CMatrix::sx(),
            CMatrix::phase(FRAC_PI_4),
            CMatrix::phase(FRAC_PI_2),
        ] {
            check_roundtrip(&u);
        }
    }

    #[test]
    fn decomposes_u_gate_grid() {
        for i in 0..8 {
            for j in 0..8 {
                for k in 0..4 {
                    let u = CMatrix::u_gate(
                        PI * i as f64 / 7.0,
                        2.0 * PI * j as f64 / 8.0,
                        PI * k as f64 / 4.0,
                    );
                    check_roundtrip(&u);
                }
            }
        }
    }

    #[test]
    fn u_gate_phase_relation_holds() {
        let u = CMatrix::u_gate(1.2, 0.4, 2.7);
        let a = zyz_decompose(&u);
        let rebuilt =
            CMatrix::u_gate(a.theta, a.phi, a.lambda).scale(Complex::cis(a.u_gate_phase()));
        assert!(rebuilt.approx_eq(&u, 1e-9));
    }

    #[test]
    fn normalize_angle_wraps() {
        assert!((normalize_angle(3.0 * PI) - PI).abs() < 1e-12);
        assert!((normalize_angle(-3.0 * PI) - PI).abs() < 1e-12);
        assert!((normalize_angle(FRAC_PI_2) - FRAC_PI_2).abs() < 1e-15);
        assert!(normalize_angle(2.0 * PI).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "unitary")]
    fn rejects_non_unitary() {
        let m = CMatrix::from_real(2, 2, &[1.0, 1.0, 1.0, 1.0]);
        let _ = zyz_decompose(&m);
    }
}
