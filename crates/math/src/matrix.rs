//! Small dense complex matrices.
//!
//! Gate unitaries are 2×2 or 4×4; density matrices for the circuits in this
//! reproduction are at most 256×256 (8 qubits). A row-major `Vec<Complex>`
//! with straightforward O(n³) multiplication is both simple and fast enough:
//! the simulators never multiply full-system matrices in hot paths (they apply
//! local gates index-wise), so this type is used for construction, validation
//! and testing.

use crate::complex::Complex;
use core::fmt;
use core::ops::{Index, IndexMut};
use std::f64::consts::FRAC_1_SQRT_2;

/// A dense, row-major complex matrix.
///
/// # Example
///
/// ```
/// use qufi_math::CMatrix;
///
/// let x = CMatrix::pauli_x();
/// let z = CMatrix::pauli_z();
/// // XZ = -ZX  (anticommutation)
/// let xz = x.matmul(&z);
/// let zx = z.matmul(&x);
/// assert!(xz.approx_eq(&zx.scale_real(-1.0), 1e-12));
/// ```
#[derive(Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CMatrix {
    rows: usize,
    cols: usize,
    data: Vec<Complex>,
}

impl CMatrix {
    /// Creates a `rows × cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CMatrix {
            rows,
            cols,
            data: vec![Complex::ZERO; rows * cols],
        }
    }

    /// Creates an `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = CMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Complex::ONE;
        }
        m
    }

    /// Builds a matrix from a row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<Complex>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "matrix data length {} does not match {rows}x{cols}",
            data.len()
        );
        CMatrix { rows, cols, data }
    }

    /// Builds a 2×2 matrix from row-major entries.
    pub fn from_2x2(a: Complex, b: Complex, c: Complex, d: Complex) -> Self {
        CMatrix::from_vec(2, 2, vec![a, b, c, d])
    }

    /// Builds a matrix from row-major real entries.
    pub fn from_real(rows: usize, cols: usize, data: &[f64]) -> Self {
        CMatrix::from_vec(rows, cols, data.iter().map(|&x| Complex::real(x)).collect())
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row-major backing slice.
    #[inline]
    pub fn as_slice(&self) -> &[Complex] {
        &self.data
    }

    /// Matrix product `self · rhs`.
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions do not match.
    pub fn matmul(&self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul dimension mismatch: {}x{} . {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = CMatrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == Complex::ZERO {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += a * rhs[(k, j)];
                }
            }
        }
        out
    }

    /// Matrix-vector product.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[Complex]) -> Vec<Complex> {
        assert_eq!(v.len(), self.cols, "matvec dimension mismatch");
        let mut out = vec![Complex::ZERO; self.rows];
        for i in 0..self.rows {
            let mut acc = Complex::ZERO;
            for j in 0..self.cols {
                acc += self[(i, j)] * v[j];
            }
            out[i] = acc;
        }
        out
    }

    /// Conjugate transpose `A†`.
    pub fn adjoint(&self) -> CMatrix {
        let mut out = CMatrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)].conj();
            }
        }
        out
    }

    /// Transpose without conjugation.
    pub fn transpose(&self) -> CMatrix {
        let mut out = CMatrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Element-wise sum.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, rhs: &CMatrix) -> CMatrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(&a, &b)| a + b)
            .collect();
        CMatrix::from_vec(self.rows, self.cols, data)
    }

    /// Element-wise difference.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn sub(&self, rhs: &CMatrix) -> CMatrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(&a, &b)| a - b)
            .collect();
        CMatrix::from_vec(self.rows, self.cols, data)
    }

    /// Scales every entry by a complex factor.
    pub fn scale(&self, k: Complex) -> CMatrix {
        CMatrix::from_vec(
            self.rows,
            self.cols,
            self.data.iter().map(|&z| z * k).collect(),
        )
    }

    /// Scales every entry by a real factor.
    pub fn scale_real(&self, k: f64) -> CMatrix {
        self.scale(Complex::real(k))
    }

    /// Kronecker (tensor) product `self ⊗ rhs`.
    pub fn kron(&self, rhs: &CMatrix) -> CMatrix {
        let mut out = CMatrix::zeros(self.rows * rhs.rows, self.cols * rhs.cols);
        for i in 0..self.rows {
            for j in 0..self.cols {
                let a = self[(i, j)];
                if a == Complex::ZERO {
                    continue;
                }
                for k in 0..rhs.rows {
                    for l in 0..rhs.cols {
                        out[(i * rhs.rows + k, j * rhs.cols + l)] = a * rhs[(k, l)];
                    }
                }
            }
        }
        out
    }

    /// Trace `Σ aᵢᵢ`.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> Complex {
        assert_eq!(self.rows, self.cols, "trace of non-square matrix");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// `true` when `A†A ≈ I` within `tol`.
    pub fn is_unitary(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        self.adjoint()
            .matmul(self)
            .approx_eq(&CMatrix::identity(self.rows), tol)
    }

    /// `true` when `A ≈ A†` within `tol`.
    pub fn is_hermitian(&self, tol: f64) -> bool {
        self.rows == self.cols && self.approx_eq(&self.adjoint(), tol)
    }

    /// Element-wise approximate equality.
    pub fn approx_eq(&self, rhs: &CMatrix, tol: f64) -> bool {
        self.rows == rhs.rows
            && self.cols == rhs.cols
            && self
                .data
                .iter()
                .zip(&rhs.data)
                .all(|(&a, &b)| a.approx_eq(b, tol))
    }

    /// Equality up to a global phase: `true` when there exists a unit phasor
    /// `e^{iα}` with `self ≈ e^{iα}·rhs`.
    ///
    /// This is the right notion of equality for quantum gate matrices, where
    /// the global phase is unobservable.
    pub fn approx_eq_up_to_phase(&self, rhs: &CMatrix, tol: f64) -> bool {
        if self.rows != rhs.rows || self.cols != rhs.cols {
            return false;
        }
        // Find the largest entry of rhs to fix the phase reference.
        let mut best = 0usize;
        let mut best_norm = 0.0f64;
        for (idx, z) in rhs.data.iter().enumerate() {
            let n = z.norm_sqr();
            if n > best_norm {
                best_norm = n;
                best = idx;
            }
        }
        if best_norm < tol * tol {
            // rhs is (numerically) zero: compare directly.
            return self.approx_eq(rhs, tol);
        }
        if self.data[best].norm_sqr() < tol * tol {
            return false;
        }
        let phase = self.data[best] / rhs.data[best];
        // The ratio must be a unit phasor.
        if (phase.norm() - 1.0).abs() > 10.0 * tol {
            return false;
        }
        self.approx_eq(&rhs.scale(phase), tol)
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
    }

    // ---- Common quantum gate matrices (2×2 and 4×4) ----

    /// Hadamard gate.
    pub fn hadamard() -> CMatrix {
        let s = FRAC_1_SQRT_2;
        CMatrix::from_real(2, 2, &[s, s, s, -s])
    }

    /// Pauli-X (bit-flip) gate.
    pub fn pauli_x() -> CMatrix {
        CMatrix::from_real(2, 2, &[0.0, 1.0, 1.0, 0.0])
    }

    /// Pauli-Y gate.
    pub fn pauli_y() -> CMatrix {
        CMatrix::from_2x2(Complex::ZERO, -Complex::I, Complex::I, Complex::ZERO)
    }

    /// Pauli-Z (phase-flip) gate.
    pub fn pauli_z() -> CMatrix {
        CMatrix::from_real(2, 2, &[1.0, 0.0, 0.0, -1.0])
    }

    /// The generic IBM `U(θ, φ, λ)` gate — Eq. (3) of the QuFI paper:
    ///
    /// ```text
    /// U = [ cos(θ/2)            -e^{iλ}   sin(θ/2) ]
    ///     [ e^{iφ} sin(θ/2)      e^{i(φ+λ)} cos(θ/2) ]
    /// ```
    pub fn u_gate(theta: f64, phi: f64, lambda: f64) -> CMatrix {
        let (s, c) = ((theta / 2.0).sin(), (theta / 2.0).cos());
        CMatrix::u_gate_from_trig(s, c, phi, lambda)
    }

    /// [`CMatrix::u_gate`] with `sin(θ/2)`/`cos(θ/2)` supplied by the
    /// caller. The batched grid-replay engine hoists the trig pair out of
    /// runs of θ-identical grid cells; because `u_gate` delegates here, a
    /// hoisted matrix is bit-identical to a freshly constructed one.
    pub fn u_gate_from_trig(s: f64, c: f64, phi: f64, lambda: f64) -> CMatrix {
        CMatrix::from_2x2(
            Complex::real(c),
            -Complex::cis(lambda) * s,
            Complex::cis(phi) * s,
            Complex::cis(phi + lambda) * c,
        )
    }

    /// `RZ(λ) = diag(e^{-iλ/2}, e^{iλ/2})`.
    pub fn rz(lambda: f64) -> CMatrix {
        CMatrix::from_2x2(
            Complex::cis(-lambda / 2.0),
            Complex::ZERO,
            Complex::ZERO,
            Complex::cis(lambda / 2.0),
        )
    }

    /// `RY(θ)` rotation about the Y axis.
    pub fn ry(theta: f64) -> CMatrix {
        let (s, c) = ((theta / 2.0).sin(), (theta / 2.0).cos());
        CMatrix::from_real(2, 2, &[c, -s, s, c])
    }

    /// `RX(θ)` rotation about the X axis.
    pub fn rx(theta: f64) -> CMatrix {
        let (s, c) = ((theta / 2.0).sin(), (theta / 2.0).cos());
        CMatrix::from_2x2(
            Complex::real(c),
            Complex::new(0.0, -s),
            Complex::new(0.0, -s),
            Complex::real(c),
        )
    }

    /// Square root of X (the IBM native `sx` gate).
    pub fn sx() -> CMatrix {
        let half = 0.5;
        CMatrix::from_2x2(
            Complex::new(half, half),
            Complex::new(half, -half),
            Complex::new(half, -half),
            Complex::new(half, half),
        )
    }

    /// Phase gate `P(λ) = diag(1, e^{iλ})`.
    pub fn phase(lambda: f64) -> CMatrix {
        CMatrix::from_2x2(
            Complex::ONE,
            Complex::ZERO,
            Complex::ZERO,
            Complex::cis(lambda),
        )
    }

    /// CNOT with control on the *first* tensor factor.
    pub fn cnot() -> CMatrix {
        CMatrix::from_real(
            4,
            4,
            &[
                1.0, 0.0, 0.0, 0.0, //
                0.0, 1.0, 0.0, 0.0, //
                0.0, 0.0, 0.0, 1.0, //
                0.0, 0.0, 1.0, 0.0,
            ],
        )
    }

    /// Controlled-Z.
    pub fn cz() -> CMatrix {
        CMatrix::from_real(
            4,
            4,
            &[
                1.0, 0.0, 0.0, 0.0, //
                0.0, 1.0, 0.0, 0.0, //
                0.0, 0.0, 1.0, 0.0, //
                0.0, 0.0, 0.0, -1.0,
            ],
        )
    }

    /// SWAP gate.
    pub fn swap() -> CMatrix {
        CMatrix::from_real(
            4,
            4,
            &[
                1.0, 0.0, 0.0, 0.0, //
                0.0, 0.0, 1.0, 0.0, //
                0.0, 1.0, 0.0, 0.0, //
                0.0, 0.0, 0.0, 1.0,
            ],
        )
    }

    /// Controlled-phase gate `CP(λ)`.
    pub fn cphase(lambda: f64) -> CMatrix {
        let mut m = CMatrix::identity(4);
        m[(3, 3)] = Complex::cis(lambda);
        m
    }
}

impl Index<(usize, usize)> for CMatrix {
    type Output = Complex;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &Complex {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for CMatrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut Complex {
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for CMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "CMatrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  ")?;
            for j in 0..self.cols {
                write!(f, "{} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, FRAC_PI_4, PI};

    #[test]
    fn identity_is_multiplicative_unit() {
        let h = CMatrix::hadamard();
        assert!(h.matmul(&CMatrix::identity(2)).approx_eq(&h, 1e-14));
        assert!(CMatrix::identity(2).matmul(&h).approx_eq(&h, 1e-14));
    }

    #[test]
    fn standard_gates_are_unitary() {
        for m in [
            CMatrix::hadamard(),
            CMatrix::pauli_x(),
            CMatrix::pauli_y(),
            CMatrix::pauli_z(),
            CMatrix::sx(),
            CMatrix::phase(0.3),
            CMatrix::rz(1.1),
            CMatrix::ry(2.2),
            CMatrix::rx(0.4),
            CMatrix::u_gate(0.7, 1.9, 0.2),
            CMatrix::cnot(),
            CMatrix::cz(),
            CMatrix::swap(),
            CMatrix::cphase(0.9),
        ] {
            assert!(m.is_unitary(1e-12), "not unitary: {m:?}");
        }
    }

    #[test]
    fn u_gate_recovers_named_gates() {
        // U(π, 0, π) = X
        assert!(CMatrix::u_gate(PI, 0.0, PI).approx_eq(&CMatrix::pauli_x(), 1e-12));
        // U(π, π/2, π/2) = Y
        assert!(CMatrix::u_gate(PI, FRAC_PI_2, FRAC_PI_2).approx_eq(&CMatrix::pauli_y(), 1e-12));
        // U(0, 0, λ) = P(λ)
        assert!(CMatrix::u_gate(0.0, 0.0, 0.7).approx_eq(&CMatrix::phase(0.7), 1e-12));
        // U(π/2, 0, π) = H
        assert!(CMatrix::u_gate(FRAC_PI_2, 0.0, PI).approx_eq(&CMatrix::hadamard(), 1e-12));
    }

    #[test]
    fn phase_vs_rz_differ_by_global_phase() {
        let p = CMatrix::phase(0.8);
        let rz = CMatrix::rz(0.8);
        assert!(!p.approx_eq(&rz, 1e-12));
        assert!(p.approx_eq_up_to_phase(&rz, 1e-12));
    }

    #[test]
    fn sx_squared_is_x() {
        let sx = CMatrix::sx();
        assert!(sx.matmul(&sx).approx_eq(&CMatrix::pauli_x(), 1e-12));
    }

    #[test]
    fn kron_shapes_and_values() {
        let id2 = CMatrix::identity(2);
        let x = CMatrix::pauli_x();
        let ix = id2.kron(&x);
        assert_eq!(ix.rows(), 4);
        // I ⊗ X swaps within each 2-block.
        assert!(ix[(0, 1)].approx_eq(Complex::ONE, 1e-15));
        assert!(ix[(2, 3)].approx_eq(Complex::ONE, 1e-15));
        assert!(ix[(0, 2)].approx_eq(Complex::ZERO, 1e-15));
    }

    #[test]
    fn trace_of_pauli_is_zero() {
        for m in [CMatrix::pauli_x(), CMatrix::pauli_y(), CMatrix::pauli_z()] {
            assert!(m.trace().approx_eq(Complex::ZERO, 1e-15));
        }
        assert!(CMatrix::identity(4)
            .trace()
            .approx_eq(Complex::real(4.0), 1e-15));
    }

    #[test]
    fn matvec_matches_matmul() {
        let u = CMatrix::u_gate(0.3, 0.9, 1.2);
        let v = vec![Complex::new(0.6, 0.1), Complex::new(-0.3, 0.7)];
        let as_mat = CMatrix::from_vec(2, 1, v.clone());
        let prod = u.matmul(&as_mat);
        let direct = u.matvec(&v);
        assert!(prod[(0, 0)].approx_eq(direct[0], 1e-13));
        assert!(prod[(1, 0)].approx_eq(direct[1], 1e-13));
    }

    #[test]
    fn hermitian_check() {
        assert!(CMatrix::pauli_y().is_hermitian(1e-15));
        assert!(!CMatrix::phase(FRAC_PI_4).is_hermitian(1e-15));
    }

    #[test]
    #[should_panic(expected = "matmul dimension mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = CMatrix::zeros(2, 3);
        let b = CMatrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn cnot_action_on_basis() {
        let cx = CMatrix::cnot();
        // |10> -> |11>
        let v = vec![Complex::ZERO, Complex::ZERO, Complex::ONE, Complex::ZERO];
        let out = cx.matvec(&v);
        assert!(out[3].approx_eq(Complex::ONE, 1e-15));
    }
}
