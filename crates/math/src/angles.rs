//! Angle grids and pretty-printing for the QuFI fault model.
//!
//! The paper sweeps the injector gate parameters over
//! `φ ∈ [0, 2π)` and `θ ∈ [0, π]` in 15° steps with `λ = 0`, giving
//! 24 × 13 = 312 configurations per injection point (§IV-B). [`AngleGrid`]
//! generates those sequences; [`PiFraction`] renders axis labels like `3π/4`
//! exactly as they appear on the paper's figures.

use core::fmt;
use std::f64::consts::PI;

/// Converts degrees to radians.
///
/// # Example
///
/// ```
/// use qufi_math::deg;
/// assert!((deg(180.0) - std::f64::consts::PI).abs() < 1e-12);
/// ```
#[inline]
pub fn deg(degrees: f64) -> f64 {
    degrees * PI / 180.0
}

/// An inclusive/exclusive sweep over an angle range with a fixed step.
///
/// # Example
///
/// ```
/// use qufi_math::AngleGrid;
///
/// // The QuFI paper's θ grid: [0, π] every 15° → 13 points.
/// assert_eq!(AngleGrid::qufi_theta().values().len(), 13);
/// // The φ grid: [0, 2π) every 15° → 24 points.
/// assert_eq!(AngleGrid::qufi_phi().values().len(), 24);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AngleGrid {
    start: f64,
    end: f64,
    step: f64,
    inclusive: bool,
}

impl AngleGrid {
    /// Creates a grid from `start` to `end` with the given `step`.
    /// When `inclusive` is true the endpoint is part of the grid.
    ///
    /// # Panics
    ///
    /// Panics if `step <= 0` or `end < start`.
    pub fn new(start: f64, end: f64, step: f64, inclusive: bool) -> Self {
        assert!(step > 0.0, "step must be positive");
        assert!(end >= start, "empty angle range");
        AngleGrid {
            start,
            end,
            step,
            inclusive,
        }
    }

    /// The paper's θ grid: `[0, π]` every 15°, inclusive (13 values).
    pub fn qufi_theta() -> Self {
        AngleGrid::new(0.0, PI, deg(15.0), true)
    }

    /// The paper's φ grid: `[0, 2π)` every 15°, endpoint excluded (24 values).
    pub fn qufi_phi() -> Self {
        AngleGrid::new(0.0, 2.0 * PI, deg(15.0), false)
    }

    /// Half-range φ grid `[0, π]` used by the double-fault study (§V-D),
    /// exploiting the φ-symmetry of Bernstein-Vazirani around π.
    pub fn qufi_phi_half() -> Self {
        AngleGrid::new(0.0, PI, deg(15.0), true)
    }

    /// A coarse grid (45° steps) used by benches to bound wall-clock time.
    pub fn coarse(end: f64, inclusive: bool) -> Self {
        AngleGrid::new(0.0, end, deg(45.0), inclusive)
    }

    /// Step size in radians.
    pub fn step(&self) -> f64 {
        self.step
    }

    /// Materializes the grid values.
    pub fn values(&self) -> Vec<f64> {
        let mut out = Vec::new();
        let n = ((self.end - self.start) / self.step).round() as i64;
        for k in 0..=n {
            let v = self.start + self.step * k as f64;
            if v > self.end + 1e-12 {
                break;
            }
            if !self.inclusive && (v - self.end).abs() < 1e-12 {
                break;
            }
            out.push(v);
        }
        out
    }

    /// Values ≤ `limit` (used for the second fault of a double injection,
    /// which must have magnitude at most that of the first: θ1 ≤ θ0, φ1 ≤ φ0).
    pub fn values_up_to(&self, limit: f64) -> Vec<f64> {
        self.values()
            .into_iter()
            .filter(|&v| v <= limit + 1e-12)
            .collect()
    }
}

/// Renders an angle as the nearest simple fraction of π (`0`, `π/4`, `3π/2`, …)
/// or falls back to radians with two decimals.
///
/// # Example
///
/// ```
/// use qufi_math::PiFraction;
/// use std::f64::consts::PI;
///
/// assert_eq!(PiFraction(PI / 2.0).to_string(), "π/2");
/// assert_eq!(PiFraction(3.0 * PI / 4.0).to_string(), "3π/4");
/// assert_eq!(PiFraction(0.0).to_string(), "0");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PiFraction(pub f64);

impl fmt::Display for PiFraction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let x = self.0 / PI;
        if x.abs() < 1e-9 {
            return write!(f, "0");
        }
        for den in [1u32, 2, 3, 4, 6, 12] {
            let num = x * den as f64;
            if (num - num.round()).abs() < 1e-9 {
                let num = num.round() as i64;
                return match (num, den) {
                    (1, 1) => write!(f, "π"),
                    (-1, 1) => write!(f, "-π"),
                    (n, 1) => write!(f, "{n}π"),
                    (1, d) => write!(f, "π/{d}"),
                    (-1, d) => write!(f, "-π/{d}"),
                    (n, d) => write!(f, "{n}π/{d}"),
                };
            }
        }
        write!(f, "{:.2}rad", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qufi_grids_match_paper_counts() {
        let theta = AngleGrid::qufi_theta().values();
        let phi = AngleGrid::qufi_phi().values();
        assert_eq!(theta.len(), 13);
        assert_eq!(phi.len(), 24);
        // 312 configurations per injection point (§IV-B).
        assert_eq!(theta.len() * phi.len(), 312);
        assert!((theta[0]).abs() < 1e-15);
        assert!((theta[12] - PI).abs() < 1e-12);
        assert!((phi[23] - deg(345.0)).abs() < 1e-12);
    }

    #[test]
    fn inclusive_flag_controls_endpoint() {
        let inc = AngleGrid::new(0.0, PI, PI / 2.0, true).values();
        let exc = AngleGrid::new(0.0, PI, PI / 2.0, false).values();
        assert_eq!(inc.len(), 3);
        assert_eq!(exc.len(), 2);
    }

    #[test]
    fn values_up_to_filters() {
        let g = AngleGrid::qufi_theta();
        let vals = g.values_up_to(deg(45.0));
        assert_eq!(vals.len(), 4); // 0, 15, 30, 45 degrees
                                   // Limit exactly on a grid point is included.
        assert!((vals[3] - deg(45.0)).abs() < 1e-12);
    }

    #[test]
    fn pi_fraction_rendering() {
        assert_eq!(PiFraction(PI).to_string(), "π");
        assert_eq!(PiFraction(PI / 4.0).to_string(), "π/4");
        assert_eq!(PiFraction(7.0 * PI / 4.0).to_string(), "7π/4");
        assert_eq!(PiFraction(-PI / 2.0).to_string(), "-π/2");
        assert_eq!(PiFraction(2.0 * PI).to_string(), "2π");
        assert_eq!(PiFraction(deg(15.0)).to_string(), "π/12");
        // 0.5 rad is not a nice fraction of π.
        assert_eq!(PiFraction(0.5).to_string(), "0.50rad");
    }

    #[test]
    #[should_panic(expected = "step must be positive")]
    fn zero_step_panics() {
        let _ = AngleGrid::new(0.0, 1.0, 0.0, true);
    }

    #[test]
    fn coarse_grid() {
        assert_eq!(AngleGrid::coarse(PI, true).values().len(), 5);
        assert_eq!(AngleGrid::coarse(2.0 * PI, false).values().len(), 8);
    }
}
