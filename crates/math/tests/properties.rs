//! Property-based tests of the math foundations: field axioms of the
//! complex type (within floating-point tolerance), unitarity preservation
//! under composition, and totality of the ZYZ decomposition over random
//! unitaries.

use proptest::prelude::*;
use qufi_math::{zyz_decompose, CMatrix, Complex};

fn arb_complex() -> impl Strategy<Value = Complex> {
    ((-10.0f64..10.0), (-10.0f64..10.0)).prop_map(|(re, im)| Complex::new(re, im))
}

/// A random single-qubit unitary via three Euler angles.
fn arb_unitary() -> impl Strategy<Value = CMatrix> {
    (
        (0.0f64..std::f64::consts::PI),
        (-std::f64::consts::PI..std::f64::consts::PI),
        (-std::f64::consts::PI..std::f64::consts::PI),
        (-std::f64::consts::PI..std::f64::consts::PI),
    )
        .prop_map(|(t, p, l, g)| CMatrix::u_gate(t, p, l).scale(Complex::cis(g)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn complex_multiplication_commutes_and_distributes(
        a in arb_complex(), b in arb_complex(), c in arb_complex()
    ) {
        prop_assert!((a * b).approx_eq(b * a, 1e-9));
        prop_assert!(((a + b) * c).approx_eq(a * c + b * c, 1e-7));
    }

    #[test]
    fn conjugation_is_an_involution_and_ring_morphism(a in arb_complex(), b in arb_complex()) {
        prop_assert!(a.conj().conj().approx_eq(a, 0.0));
        prop_assert!((a * b).conj().approx_eq(a.conj() * b.conj(), 1e-8));
        prop_assert!((a + b).conj().approx_eq(a.conj() + b.conj(), 1e-12));
    }

    #[test]
    fn norm_is_multiplicative(a in arb_complex(), b in arb_complex()) {
        prop_assert!(((a * b).norm() - a.norm() * b.norm()).abs() < 1e-7);
    }

    #[test]
    fn nonzero_reciprocal_is_inverse(a in arb_complex()) {
        prop_assume!(a.norm() > 1e-3);
        prop_assert!((a * a.recip()).approx_eq(Complex::ONE, 1e-9));
    }

    #[test]
    fn unitary_products_stay_unitary(u in arb_unitary(), v in arb_unitary()) {
        prop_assert!(u.is_unitary(1e-9));
        prop_assert!(u.matmul(&v).is_unitary(1e-8));
        prop_assert!(u.kron(&v).is_unitary(1e-8));
    }

    #[test]
    fn adjoint_reverses_products(u in arb_unitary(), v in arb_unitary()) {
        let lhs = u.matmul(&v).adjoint();
        let rhs = v.adjoint().matmul(&u.adjoint());
        prop_assert!(lhs.approx_eq(&rhs, 1e-9));
    }

    #[test]
    fn zyz_reconstructs_any_unitary(u in arb_unitary()) {
        let a = zyz_decompose(&u);
        prop_assert!(a.to_matrix().approx_eq(&u, 1e-8));
        prop_assert!((0.0..=std::f64::consts::PI + 1e-9).contains(&a.theta));
    }

    #[test]
    fn phase_equality_ignores_global_phase(u in arb_unitary(), g in -3.0f64..3.0) {
        let v = u.scale(Complex::cis(g));
        prop_assert!(u.approx_eq_up_to_phase(&v, 1e-9));
    }

    #[test]
    fn trace_is_linear(u in arb_unitary(), v in arb_unitary(), k in -5.0f64..5.0) {
        let lhs = u.add(&v.scale_real(k)).trace();
        let rhs = u.trace() + v.trace() * k;
        prop_assert!(lhs.approx_eq(rhs, 1e-8));
    }
}
