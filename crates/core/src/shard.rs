//! Shard planning: partition a campaign's (job × injection-point) task
//! matrix into work units and allocate them across N shards by measured
//! cost.
//!
//! A **work unit** is one (job, injection point) — the same granularity
//! the single-node scheduler uses, so a unit's records are produced by
//! one deterministic [`run_point_sweep_parallel`] call and two workers
//! that accidentally both execute a unit produce bit-identical records
//! (which the merge layer deduplicates). Units are enumerated in
//! canonical order (jobs in matrix order, points in enumeration order),
//! so unit ids are stable across replans of the same manifest.
//!
//! Allocation is **cost-aware**: when a measured cost profile (the
//! `costs.csv` the telemetry layer records — `prepare_ns + replay_ns`
//! per point) is available, units are spread with the classic
//! longest-processing-time greedy rule; otherwise every unit weighs its
//! grid-cell count, which degrades to round-robin for a uniform grid.
//! Both paths are fully deterministic: ties break on unit index, never
//! on iteration order of a hash map or on wall-clock anything.
//!
//! [`run_point_sweep_parallel`]: crate::campaign::run_point_sweep_parallel

use crate::fault::InjectionPoint;

/// One schedulable unit of campaign work: the full fault grid at one
/// injection point of one job.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkUnit {
    /// Stable unit id (`u` + zero-padded enumeration index).
    pub id: String,
    /// Job identifier the unit belongs to.
    pub job: String,
    /// The injection point.
    pub point: InjectionPoint,
    /// Allocation weight (nanoseconds when measured, grid cells when
    /// estimated). Never zero — zero-cost units would all pile onto one
    /// shard without affecting its load.
    pub cost: u64,
    /// Shard index the planner assigned this unit to.
    pub shard: usize,
}

/// A partitioned campaign: every unit of the job × point matrix with
/// its shard assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardPlan {
    /// Campaign name the plan was derived from.
    pub campaign: String,
    /// Number of shards the units are spread across.
    pub shards: usize,
    /// Grid cells per unit (informational; the fallback cost basis).
    pub cells_per_unit: usize,
    /// Every unit, in canonical enumeration order.
    pub units: Vec<WorkUnit>,
}

impl ShardPlan {
    /// Builds a plan from the enumerated matrix.
    ///
    /// `matrix` lists `(job_id, point)` in canonical order; `cost_of`
    /// returns the measured cost for a `(job_id, point)` pair, or `None`
    /// when no measurement exists (the unit then weighs
    /// `cells_per_unit`). `shards` is clamped to at least 1.
    pub fn build(
        campaign: impl Into<String>,
        matrix: &[(String, InjectionPoint)],
        cells_per_unit: usize,
        shards: usize,
        mut cost_of: impl FnMut(&str, InjectionPoint) -> Option<u64>,
    ) -> ShardPlan {
        let shards = shards.max(1);
        let fallback = (cells_per_unit as u64).max(1);
        let mut units: Vec<WorkUnit> = matrix
            .iter()
            .enumerate()
            .map(|(idx, (job, point))| WorkUnit {
                id: unit_id(idx),
                job: job.clone(),
                point: *point,
                cost: cost_of(job, *point).unwrap_or(fallback).max(1),
                shard: 0,
            })
            .collect();
        assign_lpt(&mut units, shards);
        ShardPlan {
            campaign: campaign.into(),
            shards,
            cells_per_unit,
            units,
        }
    }

    /// Total assigned cost per shard, indexed by shard number.
    pub fn shard_loads(&self) -> Vec<u64> {
        let mut loads = vec![0u64; self.shards];
        for u in &self.units {
            loads[u.shard] += u.cost;
        }
        loads
    }

    /// Units assigned to one shard, in enumeration order.
    pub fn shard_units(&self, shard: usize) -> Vec<&WorkUnit> {
        self.units.iter().filter(|u| u.shard == shard).collect()
    }

    /// The worst-shard / mean-shard load ratio — 1.0 is a perfect split.
    /// Meaningless (returns 1.0) for an empty plan.
    pub fn imbalance(&self) -> f64 {
        let loads = self.shard_loads();
        let total: u64 = loads.iter().sum();
        let max = loads.iter().copied().max().unwrap_or(0);
        if total == 0 {
            return 1.0;
        }
        max as f64 * self.shards as f64 / total as f64
    }
}

/// The stable unit id for enumeration index `idx`.
pub fn unit_id(idx: usize) -> String {
    format!("u{idx:05}")
}

/// Longest-processing-time greedy assignment: visit units by descending
/// cost (ties: ascending enumeration index, so the order is total) and
/// put each on the least-loaded shard (ties: lowest shard index).
fn assign_lpt(units: &mut [WorkUnit], shards: usize) {
    let mut order: Vec<usize> = (0..units.len()).collect();
    order.sort_by(|&a, &b| units[b].cost.cmp(&units[a].cost).then(a.cmp(&b)));
    let mut loads = vec![0u64; shards];
    for idx in order {
        let target = loads
            .iter()
            .enumerate()
            .min_by_key(|&(shard, &load)| (load, shard))
            .map(|(shard, _)| shard)
            .expect("at least one shard");
        units[idx].shard = target;
        loads[target] += units[idx].cost;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix(jobs: &[&str], points: usize) -> Vec<(String, InjectionPoint)> {
        let mut m = Vec::new();
        for job in jobs {
            for op in 0..points {
                m.push((
                    job.to_string(),
                    InjectionPoint {
                        op_index: op,
                        qubit: 0,
                    },
                ));
            }
        }
        m
    }

    #[test]
    fn plan_is_deterministic_and_covers_the_matrix() {
        let m = matrix(&["a", "b"], 5);
        let a = ShardPlan::build("c", &m, 312, 3, |_, _| None);
        let b = ShardPlan::build("c", &m, 312, 3, |_, _| None);
        assert_eq!(a, b);
        assert_eq!(a.units.len(), 10);
        assert_eq!(a.units[0].id, "u00000");
        assert_eq!(a.units[9].id, "u00009");
        assert!(a.units.iter().all(|u| u.shard < 3));
        // Uniform costs across 10 units and 3 shards: loads 4/3/3.
        let mut loads = a.shard_loads();
        loads.sort_unstable();
        assert_eq!(loads, vec![3 * 312, 3 * 312, 4 * 312]);
    }

    #[test]
    fn measured_costs_drive_the_split() {
        let m = matrix(&["a"], 4);
        // One giant unit and three small ones on two shards: LPT puts the
        // giant alone and the three small together.
        let plan = ShardPlan::build("c", &m, 10, 2, |_, p| {
            Some(if p.op_index == 2 { 900 } else { 100 })
        });
        let giant_shard = plan.units[2].shard;
        for (i, u) in plan.units.iter().enumerate() {
            if i != 2 {
                assert_ne!(u.shard, giant_shard, "unit {i} shares the giant's shard");
            }
        }
        let mut loads = plan.shard_loads();
        loads.sort_unstable();
        assert_eq!(loads, vec![300, 900]);
        assert!(plan.imbalance() > 1.0);
    }

    #[test]
    fn missing_costs_fall_back_to_cells() {
        let m = matrix(&["a"], 3);
        let plan = ShardPlan::build("c", &m, 312, 2, |_, p| {
            (p.op_index == 0).then_some(1_000_000)
        });
        assert_eq!(plan.units[0].cost, 1_000_000);
        assert_eq!(plan.units[1].cost, 312);
        assert_eq!(plan.units[2].cost, 312);
    }

    #[test]
    fn degenerate_shapes_are_safe() {
        // Zero shards clamps to one; empty matrix yields an empty plan.
        let plan = ShardPlan::build("c", &[], 0, 0, |_, _| None);
        assert_eq!(plan.shards, 1);
        assert!(plan.units.is_empty());
        assert_eq!(plan.imbalance(), 1.0);
        // More shards than units leaves trailing shards empty but valid.
        let m = matrix(&["a"], 2);
        let plan = ShardPlan::build("c", &m, 1, 5, |_, _| None);
        assert_eq!(plan.shard_loads().iter().sum::<u64>(), 2);
    }
}
