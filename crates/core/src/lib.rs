//! # QuFI — the Quantum Fault Injector
//!
//! A Rust reproduction of the fault-injection framework from *"QuFI: a
//! Quantum Fault Injector to Measure the Reliability of Qubits and Quantum
//! Circuits"* (DSN 2022). Radiation-induced transient faults in
//! superconducting qubits are modeled as **parametrized phase shifts**: an
//! extra [`Gate::U`](qufi_sim::Gate)`(θ, φ, 0)` gate spliced into the
//! circuit after a gate of the original program (§III–IV of the paper). The
//! impact on the output distribution is quantified by the **Quantum
//! Vulnerability Factor** ([`metrics::qvf`]), a Michelson-contrast metric.
//!
//! The crate provides:
//!
//! * [`fault`] — the fault model: injection points, the 15°-step φ/θ sweep
//!   (312 configurations per point), single- and double-fault splicing.
//! * [`metrics`] — QVF, fault-severity classification (masked / dubious /
//!   silent-data-corruption), and distribution statistics.
//! * [`executor`] — the three execution scenarios of §IV-B: ideal
//!   simulation, noisy simulation of a physical machine, and a simulated
//!   hardware backend with calibration drift and 1024-shot sampling — plus
//!   a Monte-Carlo trajectory backend that extends the noisy scenario past
//!   the density-matrix width wall (10–14 qubits and beyond).
//! * [`campaign`] — parallel single-fault campaigns over all injection
//!   points × phase shifts.
//! * [`double`] — multi-qubit fault campaigns on physically-adjacent qubit
//!   pairs identified through transpilation (§IV-C).
//! * [`report`] — heatmaps (Fig. 5/6/8), histograms (Fig. 7/10), ΔQVF
//!   (Fig. 9), CSV export and ASCII rendering.
//!
//! # Example
//!
//! ```
//! use qufi_core::prelude::*;
//! use qufi_noise::BackendCalibration;
//! use qufi_sim::QuantumCircuit;
//!
//! // The paper's Fig. 4: Bernstein-Vazirani with a θ=π/4 fault on q0
//! // after the first Hadamard.
//! let mut qc = QuantumCircuit::new(4, 3);
//! qc.x(3).h(3).h(0).h(1).h(2);
//! qc.cx(0, 3).cx(2, 3);
//! qc.h(0).h(1).h(2);
//! qc.measure(0, 0).measure(1, 1).measure(2, 2);
//!
//! let executor = NoisyExecutor::new(BackendCalibration::jakarta());
//! let golden = golden_outputs(&qc).unwrap();
//! assert_eq!(golden, vec![0b101]);
//!
//! let point = InjectionPoint { op_index: 2, qubit: 0 }; // after h(0)
//! let fault = FaultParams::shift(std::f64::consts::FRAC_PI_4, 0.0);
//! let faulty = inject_fault(&qc, point, fault).unwrap();
//! let dist = executor.execute(&faulty).unwrap();
//! let qvf = qufi_core::metrics::qvf_from_dist(&dist, &golden);
//! assert!(qvf > 0.0 && qvf < 1.0);
//! ```

pub mod campaign;
pub mod double;
pub mod engine;
pub mod error;
pub mod executor;
pub mod fault;
pub mod mapping;
pub mod metrics;
pub mod prepare_cache;
pub mod report;
pub mod retry;
pub mod serialize;
pub mod shard;
pub mod sweep;

pub use campaign::{
    golden_outputs, run_point_sweep, run_point_sweep_parallel, run_single_campaign,
    split_thread_budget, CampaignOptions, CampaignResult, InjectionRecord,
};
pub use double::{DoubleCampaignResult, DoubleInjectionRecord, DoubleOptions};
pub use engine::{PreparedDoubleSweep, PreparedSweep, ReplayScratch, SweepExecutor};
pub use error::ExecError;
pub use executor::{Executor, HardwareExecutor, IdealExecutor, NoisyExecutor, TrajectoryExecutor};
pub use fault::{
    enumerate_injection_points, inject_double_fault, inject_fault, FaultGrid, FaultParams,
    InjectionPoint,
};
pub use mapping::{qubit_reliability, reliability_aware_layout, QubitReliability};
pub use metrics::{michelson_contrast, qvf, qvf_from_dist, Severity};
pub use prepare_cache::{CacheCounters, CacheStats, PrepareCache};
pub use retry::Backoff;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::campaign::{
        golden_outputs, run_point_sweep, run_point_sweep_parallel, run_single_campaign,
        split_thread_budget, CampaignOptions,
    };
    pub use crate::double::{run_double_campaign, DoubleOptions};
    pub use crate::engine::{PreparedDoubleSweep, PreparedSweep, SweepExecutor};
    pub use crate::executor::{
        Executor, HardwareExecutor, IdealExecutor, NoisyExecutor, TrajectoryExecutor,
    };
    pub use crate::fault::{
        enumerate_injection_points, inject_fault, FaultGrid, FaultParams, InjectionPoint,
    };
    pub use crate::metrics::{qvf_from_dist, Severity};
    pub use crate::report::{Heatmap, Histogram};
}
