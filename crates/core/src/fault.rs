//! The radiation-induced transient fault model (paper §III–IV).
//!
//! A particle strike deposits charge that phase-shifts the qubit state; the
//! shift magnitude depends on the deposited charge, so — unlike the binary
//! CMOS bit-flip — faults of *every* magnitude must be injected. QuFI models
//! a fault as an extra `U(θ, φ, λ=0)` gate spliced in right after a gate of
//! the original circuit, and sweeps `φ ∈ [0, 2π)`, `θ ∈ [0, π]` in 15°
//! steps: 312 configurations per injection point (§IV-B).

use crate::error::ExecError;
use qufi_math::AngleGrid;
use qufi_sim::circuit::Op;
use qufi_sim::{Gate, QuantumCircuit};

/// The parameters of one injected fault: a `U(θ, φ, λ)` phase shift.
/// The paper fixes `λ = 0`.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FaultParams {
    /// θ shift — rotation toward/away from |1⟩ (the more critical axis).
    pub theta: f64,
    /// φ shift — rotation about Z.
    pub phi: f64,
    /// λ parameter of the injector gate; 0 in the paper's model.
    pub lambda: f64,
}

impl FaultParams {
    /// A fault with the paper's `λ = 0` convention.
    pub fn shift(theta: f64, phi: f64) -> Self {
        FaultParams {
            theta,
            phi,
            lambda: 0.0,
        }
    }

    /// The injector gate realizing this fault.
    pub fn injector_gate(&self) -> Gate {
        Gate::U(self.theta, self.phi, self.lambda)
    }

    /// `true` for the (0, 0) no-op fault.
    pub fn is_null(&self) -> bool {
        self.theta.abs() < 1e-15 && self.phi.abs() < 1e-15 && self.lambda.abs() < 1e-15
    }
}

/// Where a fault strikes: right **after** instruction `op_index`, on `qubit`
/// (which must be an operand of that instruction when enumerated by
/// [`enumerate_injection_points`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct InjectionPoint {
    /// Index into the circuit's operation list.
    pub op_index: usize,
    /// The struck qubit.
    pub qubit: usize,
}

/// The φ/θ sweep of a campaign.
///
/// # Example
///
/// ```
/// use qufi_core::fault::FaultGrid;
///
/// let g = FaultGrid::paper();
/// assert_eq!(g.len(), 312); // 24 φ × 13 θ, §IV-B
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultGrid {
    /// θ values (radians).
    pub thetas: Vec<f64>,
    /// φ values (radians).
    pub phis: Vec<f64>,
}

impl FaultGrid {
    /// The paper's grid: θ ∈ [0, π] and φ ∈ [0, 2π), both in 15° steps.
    pub fn paper() -> Self {
        FaultGrid {
            thetas: AngleGrid::qufi_theta().values(),
            phis: AngleGrid::qufi_phi().values(),
        }
    }

    /// Half-φ grid (φ ∈ [0, π]) used by the double-fault study, which
    /// exploits the φ-symmetry of Bernstein-Vazirani around π (§V-D).
    pub fn paper_half_phi() -> Self {
        FaultGrid {
            thetas: AngleGrid::qufi_theta().values(),
            phis: AngleGrid::qufi_phi_half().values(),
        }
    }

    /// A 45°-step grid for fast benches; the coverage shape is preserved.
    pub fn coarse() -> Self {
        FaultGrid {
            thetas: AngleGrid::coarse(std::f64::consts::PI, true).values(),
            phis: AngleGrid::coarse(2.0 * std::f64::consts::PI, false).values(),
        }
    }

    /// Explicit grids.
    pub fn custom(thetas: Vec<f64>, phis: Vec<f64>) -> Self {
        FaultGrid { thetas, phis }
    }

    /// Number of (θ, φ) configurations.
    pub fn len(&self) -> usize {
        self.thetas.len() * self.phis.len()
    }

    /// `true` when either axis is empty.
    pub fn is_empty(&self) -> bool {
        self.thetas.is_empty() || self.phis.is_empty()
    }

    /// Iterates all `(θ, φ)` pairs, θ-major.
    pub fn iter(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.phis
            .iter()
            .flat_map(move |&p| self.thetas.iter().map(move |&t| (t, p)))
    }
}

/// Enumerates every fault location of a circuit: one point per (gate,
/// operand-qubit) pair, "after each gate of the original circuit" (§IV-B).
/// Barriers and measurements are not fault sites.
pub fn enumerate_injection_points(qc: &QuantumCircuit) -> Vec<InjectionPoint> {
    let mut points = Vec::new();
    for (i, op) in qc.instructions().enumerate() {
        if let Op::Gate { qubits, .. } = op {
            for &q in qubits {
                points.push(InjectionPoint {
                    op_index: i,
                    qubit: q,
                });
            }
        }
    }
    points
}

/// Validates that `point` names an existing instruction and qubit of `qc`.
///
/// # Errors
///
/// [`ExecError::InjectionOutOfRange`] when either index is out of range.
pub fn check_injection_point(qc: &QuantumCircuit, point: InjectionPoint) -> Result<(), ExecError> {
    if point.op_index >= qc.size() || point.qubit >= qc.num_qubits() {
        return Err(ExecError::InjectionOutOfRange {
            op_index: point.op_index,
            qubit: point.qubit,
            size: qc.size(),
            width: qc.num_qubits(),
        });
    }
    Ok(())
}

/// Validates the location part of a double fault: `point` exists and
/// `neighbor` is a distinct in-range qubit.
///
/// # Errors
///
/// [`ExecError::InjectionOutOfRange`] or [`ExecError::InvalidFault`].
pub fn check_double_site(
    qc: &QuantumCircuit,
    point: InjectionPoint,
    neighbor: usize,
) -> Result<(), ExecError> {
    check_injection_point(qc, point)?;
    if neighbor >= qc.num_qubits() {
        return Err(ExecError::InjectionOutOfRange {
            op_index: point.op_index,
            qubit: neighbor,
            size: qc.size(),
            width: qc.num_qubits(),
        });
    }
    if point.qubit == neighbor {
        return Err(ExecError::InvalidFault(
            "double fault needs two distinct qubits".into(),
        ));
    }
    Ok(())
}

/// Validates the double-fault constraints of §III-C: the neighbor is a
/// distinct in-range qubit, and the second shift never exceeds the first
/// in either angle.
///
/// # Errors
///
/// [`ExecError::InjectionOutOfRange`] or [`ExecError::InvalidFault`].
pub fn check_double_fault(
    qc: &QuantumCircuit,
    point: InjectionPoint,
    first: FaultParams,
    neighbor: usize,
    second: FaultParams,
) -> Result<(), ExecError> {
    check_double_site(qc, point, neighbor)?;
    check_fault_order(first, second)
}

/// Validates the §III-C magnitude ordering of a double fault: the second
/// (neighbor) shift never exceeds the first in either angle.
///
/// # Errors
///
/// [`ExecError::InvalidFault`] when `θ1 > θ0` or `φ1 > φ0`.
pub fn check_fault_order(first: FaultParams, second: FaultParams) -> Result<(), ExecError> {
    if second.theta > first.theta + 1e-12 || second.phi > first.phi + 1e-12 {
        return Err(ExecError::InvalidFault(
            "second fault must not exceed the first (θ1 ≤ θ0, φ1 ≤ φ0)".into(),
        ));
    }
    Ok(())
}

/// Builds the faulty circuit: a copy of `qc` with the injector gate spliced
/// in right after `point.op_index`.
///
/// # Errors
///
/// [`ExecError::InjectionOutOfRange`] when the point names an instruction
/// or qubit the circuit does not have.
pub fn inject_fault(
    qc: &QuantumCircuit,
    point: InjectionPoint,
    fault: FaultParams,
) -> Result<QuantumCircuit, ExecError> {
    check_injection_point(qc, point)?;
    let mut faulty = qc.clone();
    faulty.insert(point.op_index + 1, fault.injector_gate(), &[point.qubit]);
    faulty.name = format!("{}+fault", qc.name);
    Ok(faulty)
}

/// Builds a double-faulty circuit: the first fault on `point`, and a second
/// (weaker) fault on `neighbor` at the same position — the qubit physically
/// adjacent to the strike location receives the smaller shift (§III-C).
///
/// # Errors
///
/// [`ExecError::InjectionOutOfRange`] when an index is out of range and
/// [`ExecError::InvalidFault`] when the neighbor equals the struck qubit or
/// the second fault exceeds the first in either angle.
pub fn inject_double_fault(
    qc: &QuantumCircuit,
    point: InjectionPoint,
    first: FaultParams,
    neighbor: usize,
    second: FaultParams,
) -> Result<QuantumCircuit, ExecError> {
    check_double_fault(qc, point, first, neighbor, second)?;
    let mut faulty = inject_fault(qc, point, first)?;
    faulty.insert(point.op_index + 2, second.injector_gate(), &[neighbor]);
    Ok(faulty)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qufi_sim::Statevector;
    use std::f64::consts::{FRAC_PI_2, FRAC_PI_4, PI};

    fn bell() -> QuantumCircuit {
        let mut qc = QuantumCircuit::new(2, 2);
        qc.h(0).cx(0, 1).measure_all();
        qc
    }

    #[test]
    fn grid_sizes_match_paper() {
        assert_eq!(FaultGrid::paper().len(), 312);
        assert_eq!(FaultGrid::paper_half_phi().len(), 13 * 13);
        assert!(FaultGrid::coarse().len() < 64);
        assert_eq!(FaultGrid::paper().iter().count(), 312);
    }

    #[test]
    fn enumerate_points_covers_all_operands() {
        let qc = bell();
        let points = enumerate_injection_points(&qc);
        // h(0) -> 1 point, cx(0,1) -> 2 points; measures are not sites.
        assert_eq!(points.len(), 3);
        assert_eq!(
            points[0],
            InjectionPoint {
                op_index: 0,
                qubit: 0
            }
        );
        assert_eq!(
            points[1],
            InjectionPoint {
                op_index: 1,
                qubit: 0
            }
        );
        assert_eq!(
            points[2],
            InjectionPoint {
                op_index: 1,
                qubit: 1
            }
        );
    }

    #[test]
    fn null_fault_preserves_distribution() {
        let qc = bell();
        let faulty = inject_fault(
            &qc,
            InjectionPoint {
                op_index: 0,
                qubit: 0,
            },
            FaultParams::shift(0.0, 0.0),
        )
        .unwrap();
        assert_eq!(faulty.gate_count(), qc.gate_count() + 1);
        let a = Statevector::from_circuit(&qc)
            .unwrap()
            .measurement_distribution(&qc);
        let b = Statevector::from_circuit(&faulty)
            .unwrap()
            .measurement_distribution(&faulty);
        assert!(a.tv_distance(&b) < 1e-12);
    }

    #[test]
    fn theta_pi_fault_flips_qubit() {
        // X-equivalent fault on a fresh qubit: |0> -> |1> (up to phase).
        let mut qc = QuantumCircuit::new(1, 1);
        qc.i(0).measure(0, 0);
        let faulty = inject_fault(
            &qc,
            InjectionPoint {
                op_index: 0,
                qubit: 0,
            },
            FaultParams::shift(PI, 0.0),
        )
        .unwrap();
        let d = Statevector::from_circuit(&faulty)
            .unwrap()
            .measurement_distribution(&faulty);
        assert!((d.prob(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn phi_fault_invisible_without_downstream_interference() {
        // A pure φ shift right before measurement cannot change outcomes.
        let qc = bell();
        let faulty = inject_fault(
            &qc,
            InjectionPoint {
                op_index: 1,
                qubit: 1,
            },
            FaultParams::shift(0.0, FRAC_PI_2),
        )
        .unwrap();
        let a = Statevector::from_circuit(&qc)
            .unwrap()
            .measurement_distribution(&qc);
        let b = Statevector::from_circuit(&faulty)
            .unwrap()
            .measurement_distribution(&faulty);
        assert!(a.tv_distance(&b) < 1e-12);
    }

    #[test]
    fn injector_gate_is_the_paper_u_gate() {
        let f = FaultParams::shift(FRAC_PI_4, PI);
        assert_eq!(f.injector_gate(), Gate::U(FRAC_PI_4, PI, 0.0));
        assert!(FaultParams::shift(0.0, 0.0).is_null());
        assert!(!f.is_null());
    }

    #[test]
    fn double_fault_inserts_two_gates_in_order() {
        let qc = bell();
        let faulty = inject_double_fault(
            &qc,
            InjectionPoint {
                op_index: 1,
                qubit: 0,
            },
            FaultParams::shift(PI, PI),
            1,
            FaultParams::shift(FRAC_PI_2, FRAC_PI_4),
        )
        .unwrap();
        assert_eq!(faulty.gate_count(), qc.gate_count() + 2);
        // Ops: h, cx, U(q0), U(q1), measures.
        match (&faulty.ops()[2], &faulty.ops()[3]) {
            (
                Op::Gate {
                    gate: Gate::U(t0, ..),
                    qubits: q0,
                },
                Op::Gate {
                    gate: Gate::U(t1, ..),
                    qubits: q1,
                },
            ) => {
                assert!((t0 - PI).abs() < 1e-12);
                assert!((t1 - FRAC_PI_2).abs() < 1e-12);
                assert_eq!(q0, &vec![0]);
                assert_eq!(q1, &vec![1]);
            }
            other => panic!("unexpected ops {other:?}"),
        }
    }

    #[test]
    fn second_fault_magnitude_bounded_by_first() {
        let qc = bell();
        let err = inject_double_fault(
            &qc,
            InjectionPoint {
                op_index: 0,
                qubit: 0,
            },
            FaultParams::shift(FRAC_PI_4, 0.0),
            1,
            FaultParams::shift(PI, 0.0),
        )
        .unwrap_err();
        assert!(matches!(err, crate::error::ExecError::InvalidFault(_)));
        assert!(err.to_string().contains("must not exceed"));
    }

    #[test]
    fn double_fault_requires_distinct_qubits() {
        let qc = bell();
        let err = inject_double_fault(
            &qc,
            InjectionPoint {
                op_index: 0,
                qubit: 0,
            },
            FaultParams::shift(PI, 0.0),
            0,
            FaultParams::shift(0.0, 0.0),
        )
        .unwrap_err();
        assert!(matches!(err, crate::error::ExecError::InvalidFault(_)));
        assert!(err.to_string().contains("distinct qubits"));
    }

    #[test]
    fn out_of_range_points_are_errors_not_panics() {
        let qc = bell();
        // Instruction index past the end.
        let err = inject_fault(
            &qc,
            InjectionPoint {
                op_index: qc.size(),
                qubit: 0,
            },
            FaultParams::shift(PI, 0.0),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            crate::error::ExecError::InjectionOutOfRange { .. }
        ));
        // Qubit outside the register.
        let err = inject_fault(
            &qc,
            InjectionPoint {
                op_index: 0,
                qubit: 7,
            },
            FaultParams::shift(PI, 0.0),
        )
        .unwrap_err();
        assert!(err.to_string().contains("qubit 7"));
        // Out-of-range neighbor on the double-fault path.
        let err = inject_double_fault(
            &qc,
            InjectionPoint {
                op_index: 0,
                qubit: 0,
            },
            FaultParams::shift(PI, 0.0),
            9,
            FaultParams::shift(0.0, 0.0),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            crate::error::ExecError::InjectionOutOfRange { qubit: 9, .. }
        ));
    }
}
