//! The forked-state sweep engine.
//!
//! The paper's sweep varies only the injected `U(θ, φ, 0)` gate: all 312
//! configurations of one injection point (§IV-B) share everything before
//! the injector. The naive pipeline nevertheless rebuilt, re-transpiled and
//! re-simulated the whole faulty circuit per configuration. This module
//! splits that work:
//!
//! 1. [`SweepExecutor::prepare`] runs **once per injection point**: it
//!    carries the logical site through transpilation with a splice marker
//!    ([`crate::mapping`]), compacts the physical circuit, evolves the
//!    prefix up to the splice boundary, and parks the simulator state.
//! 2. [`PreparedSweep::replay`] runs **once per configuration**: it forks
//!    the parked state, applies the injector gate (which suffers gate noise
//!    like any physical gate), finishes the suffix, and reads out.
//!
//! Because the prefix/suffix evolution applies exactly the same operation
//! sequence as a straight run (see [`qufi_noise::simulate::NoisyCursor`]),
//! a replay is **bit-identical** to the naive rebuild — a guarantee pinned
//! by `tests/fork_equivalence.rs`, which diffs every replay against
//! [`PreparedSweep::replay_naive`], the retained per-configuration oracle
//! path.
//!
//! Faults are spliced into the **transpiled physical circuit**, matching
//! the paper's methodology ("QuFI keeps track of the logical and physical
//! qubits throughout the transpiling process", §IV-C): a radiation strike
//! is a runtime event, so the injector must not be fused away or merged
//! with neighboring gates by the circuit optimizer.

use crate::error::ExecError;
use crate::executor::{
    compact_circuit, Executor, HardwareExecutor, IdealExecutor, NoisyExecutor, TrajectoryExecutor,
};
use crate::fault::{
    check_double_site, check_fault_order, check_injection_point, FaultGrid, FaultParams,
    InjectionPoint,
};
use crate::mapping::{
    extract_splice_sites, mark_double_injection_site, mark_injection_site, SpliceSite,
};
use parking_lot::Mutex;
use qufi_math::CMatrix;
use qufi_noise::readout::apply_readout_errors;
use qufi_noise::simulate::{NoisePlan, NoisyCursor};
use qufi_noise::trajectory::{
    finish_trajectory_dist, ShotAccumulator, TrajPlan, TrajWorkspace, TrajectoryCursor, SHOT_BLOCK,
};
use qufi_noise::NoiseModel;
use qufi_sim::{
    BatchedDensity, BatchedStatevector, CircuitCursor, DensityMatrix, EvolvableState, Op, ProbDist,
    QuantumCircuit, Statevector,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// An [`Executor`] that can split a fault sweep into per-point preparation
/// and per-configuration replay.
pub trait SweepExecutor: Executor {
    /// Prepares a single-fault sweep at `point`: transpile once, evolve
    /// the shared prefix once, park the state.
    ///
    /// # Errors
    ///
    /// Out-of-range points, transpilation and simulation failures.
    fn prepare<'a>(
        &'a self,
        qc: &QuantumCircuit,
        point: InjectionPoint,
    ) -> Result<Box<dyn PreparedSweep + 'a>, ExecError>;

    /// Prepares a double-fault sweep: the first fault at `point`, the
    /// second on `neighbor` at the same position (§III-C).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`SweepExecutor::prepare`], plus an invalid
    /// neighbor.
    fn prepare_double<'a>(
        &'a self,
        qc: &QuantumCircuit,
        point: InjectionPoint,
        neighbor: usize,
    ) -> Result<Box<dyn PreparedDoubleSweep + 'a>, ExecError>;
}

impl<E: SweepExecutor + ?Sized> SweepExecutor for &E {
    fn prepare<'a>(
        &'a self,
        qc: &QuantumCircuit,
        point: InjectionPoint,
    ) -> Result<Box<dyn PreparedSweep + 'a>, ExecError> {
        (**self).prepare(qc, point)
    }

    fn prepare_double<'a>(
        &'a self,
        qc: &QuantumCircuit,
        point: InjectionPoint,
        neighbor: usize,
    ) -> Result<Box<dyn PreparedDoubleSweep + 'a>, ExecError> {
        (**self).prepare_double(qc, point, neighbor)
    }
}

/// Per-thread reusable buffers for replaying against a parked snapshot:
/// the simulator state a replay evolves in, restored from the borrowed
/// snapshot by a buffer-reusing copy instead of a fresh clone per replay.
///
/// A scratch carries no results between replays — only capacity — so one
/// scratch per worker thread is the entire threading discipline, and a
/// replay through a reused scratch is bit-identical to one through a fresh
/// scratch.
#[derive(Default)]
pub struct ReplayScratch {
    /// Density-matrix buffer for the noisy/hardware replay paths.
    pub(crate) rho: Option<DensityMatrix>,
    /// Statevector buffer for the ideal replay path.
    pub(crate) sv: Option<Statevector>,
    /// Statevector buffer for the trajectory replay path (one shot's
    /// evolving state).
    pub(crate) traj_sv: Option<Statevector>,
    /// Kraus branch-sampling workspace for the trajectory replay path.
    pub(crate) traj_ws: TrajWorkspace,
}

impl ReplayScratch {
    /// An empty scratch; buffers are allocated on first replay.
    pub fn new() -> Self {
        ReplayScratch::default()
    }
}

/// A parked single-fault sweep: replay any `(θ, φ)` against the snapshot.
///
/// Implementations are `Sync`: replays only *borrow* the parked snapshot
/// (each one copies it into caller-owned [`ReplayScratch`] buffers), so any
/// number of threads may replay concurrently against one prepared sweep —
/// the foundation of [`PreparedSweep::replay_grid`].
pub trait PreparedSweep: Sync {
    /// Fast path: fork the parked prefix state and finish the suffix with
    /// the injector spliced in.
    ///
    /// # Errors
    ///
    /// Simulation failures.
    fn replay(&self, fault: FaultParams) -> Result<ProbDist, ExecError> {
        self.replay_with(fault, &mut ReplayScratch::new())
    }

    /// [`PreparedSweep::replay`] through caller-owned scratch buffers: the
    /// parked snapshot is copied into the scratch state (reusing its
    /// allocation) and the suffix evolves there, so a replay loop performs
    /// zero steady-state allocations for state buffers. Bit-identical to
    /// [`PreparedSweep::replay`].
    ///
    /// # Errors
    ///
    /// Simulation failures.
    fn replay_with(
        &self,
        fault: FaultParams,
        scratch: &mut ReplayScratch,
    ) -> Result<ProbDist, ExecError>;

    /// Oracle path: rebuild, re-transpile and re-simulate the entire
    /// faulty circuit from scratch — the pre-engine per-configuration
    /// pipeline. Kept as the ground truth the differential suite diffs
    /// [`PreparedSweep::replay`] against.
    ///
    /// # Errors
    ///
    /// Simulation and transpilation failures.
    fn replay_naive(&self, fault: FaultParams) -> Result<ProbDist, ExecError>;

    /// Replays the entire `(θ, φ)` grid, chunked deterministically across
    /// `threads` worker threads, returning one distribution per cell **in
    /// grid order** ([`FaultGrid::iter`] order).
    ///
    /// Determinism contract: cells are assigned to workers by contiguous
    /// index ranges fixed by `grid.len()` and `threads` alone, each worker
    /// replays through its own [`ReplayScratch`], and every replay depends
    /// only on `(self, fault)` — so the returned cells are bit-identical
    /// for every thread count and scheduling order, including `threads =
    /// 1`. Sampling scenarios keep this property because their seeds
    /// derive from the fault angles, never from replay order.
    ///
    /// # Errors
    ///
    /// Any replay failure fails the whole grid (remaining workers cancel);
    /// the reported error is from the lowest-indexed chunk that failed
    /// before cancellation took effect.
    fn replay_grid(&self, grid: &FaultGrid, threads: usize) -> Result<Vec<ProbDist>, ExecError> {
        replay_grid_chunked(self, grid, threads)
    }

    /// Batched counterpart of [`PreparedSweep::replay_grid`]: evolves whole
    /// blocks of grid cells in lockstep through the cell-major kernels of
    /// [`qufi_sim::batch`], so each suffix gate's index arithmetic is
    /// computed once per block and its inner loops run stride-1 across
    /// cells. Cells are grouped by θ first, letting every θ-identical run
    /// share one `sin/cos(θ/2)` evaluation of the injector.
    ///
    /// **Bit-identical** to [`PreparedSweep::replay_grid`] for every batch
    /// width and thread count: a batched cell goes through exactly the
    /// scalar per-cell operation sequence, and grouping only reorders which
    /// cells evolve together — never the arithmetic inside one cell.
    ///
    /// The width is read from `QUFI_BATCH_CELLS` per call (default 16,
    /// clamped to `1..=`[`qufi_sim::MAX_BATCH_CELLS`]). Width 1 — the CLI's
    /// `--no-batch` — grids too small to batch, multi-site sweeps, and
    /// scenarios without a batched path (trajectory) all take the scalar
    /// per-cell fan-out instead.
    ///
    /// # Errors
    ///
    /// Same contract as [`PreparedSweep::replay_grid`].
    fn replay_grid_batched(
        &self,
        grid: &FaultGrid,
        threads: usize,
    ) -> Result<Vec<ProbDist>, ExecError> {
        replay_grid_scalar_fallback(self, grid, threads)
    }

    /// Gates evolved once at preparation time (the shared prefix).
    fn prefix_gates(&self) -> usize;

    /// Gates evolved per replay (the suffix, excluding the injector).
    fn suffix_gates(&self) -> usize;
}

/// The deterministic fan-out behind [`PreparedSweep::replay_grid`].
fn replay_grid_chunked<S: PreparedSweep + ?Sized>(
    sweep: &S,
    grid: &FaultGrid,
    threads: usize,
) -> Result<Vec<ProbDist>, ExecError> {
    let cells: Vec<FaultParams> = grid
        .iter()
        .map(|(theta, phi)| FaultParams::shift(theta, phi))
        .collect();
    if cells.is_empty() {
        return Ok(Vec::new());
    }
    // One span per grid, one counter add per chunk: the per-cell loop
    // below stays telemetry-free.
    let _grid_span = qufi_obs::span("replay.grid_ns");
    let workers = threads.max(1).min(cells.len());
    if workers == 1 {
        let mut scratch = ReplayScratch::new();
        let dists: Result<Vec<ProbDist>, ExecError> = cells
            .iter()
            .map(|&fault| sweep.replay_with(fault, &mut scratch))
            .collect();
        if dists.is_ok() {
            qufi_obs::add("replay.cells", cells.len() as u64);
        }
        return dists;
    }
    // Contiguous chunks of fixed size: the (cell → worker) assignment is a
    // pure function of (grid.len(), threads), never of scheduling.
    let chunk = cells.len().div_ceil(workers);
    let mut out: Vec<Option<ProbDist>> = vec![None; cells.len()];
    let first_error: Mutex<Option<(usize, ExecError)>> = Mutex::new(None);
    let failed = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|scope| {
        for (chunk_idx, (slots, faults)) in
            out.chunks_mut(chunk).zip(cells.chunks(chunk)).enumerate()
        {
            let first_error = &first_error;
            let failed = &failed;
            scope.spawn(move || {
                let mut scratch = ReplayScratch::new();
                let mut completed: u64 = 0;
                for (slot, &fault) in slots.iter_mut().zip(faults) {
                    // A failure anywhere aborts the whole grid; stop
                    // burning replays whose results would be discarded.
                    if failed.load(std::sync::atomic::Ordering::Relaxed) {
                        break;
                    }
                    match sweep.replay_with(fault, &mut scratch) {
                        Ok(dist) => {
                            *slot = Some(dist);
                            completed += 1;
                        }
                        Err(e) => {
                            failed.store(true, std::sync::atomic::Ordering::Relaxed);
                            let mut guard = first_error.lock();
                            // Keep the error of the lowest-indexed chunk
                            // among those observed before cancellation.
                            if guard.as_ref().is_none_or(|(i, _)| chunk_idx < *i) {
                                *guard = Some((chunk_idx, e));
                            }
                            break;
                        }
                    }
                }
                qufi_obs::add("replay.cells", completed);
                // Merge before the closure returns: the scope's exit
                // synchronizes with closure completion, not with TLS
                // destructors, so relying on the sink's at-exit Drop
                // would race the caller's snapshot.
                qufi_obs::flush();
            });
        }
    });
    if let Some((_, e)) = first_error.into_inner() {
        return Err(e);
    }
    Ok(out
        .into_iter()
        .map(|slot| slot.expect("every cell was replayed"))
        .collect())
}

/// Default number of grid cells evolved per batched block. 16 keeps the
/// single-operand kernels (the bulk of a transpiled suffix) on their widest,
/// fastest monomorphization; the 2q/generic kernels tile the cell axis
/// internally, so a wide block never hurts them.
const DEFAULT_BATCH_CELLS: usize = 16;

/// Ceiling on `flat state length × batch width`: a batched block holds at
/// most this many split-complex amplitudes (~64 MiB), shrinking the width
/// for wide registers instead of ballooning memory.
const MAX_BATCH_AMPS: usize = 1 << 22;

/// Batch width for [`PreparedSweep::replay_grid_batched`], read per call
/// so the CLI and tests can vary it (`QUFI_BATCH_CELLS`, clamped to
/// `1..=`[`qufi_sim::MAX_BATCH_CELLS`]). Width 1 disables batching.
fn batch_width() -> usize {
    std::env::var("QUFI_BATCH_CELLS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .map(|w| w.clamp(1, qufi_sim::MAX_BATCH_CELLS))
        .unwrap_or(DEFAULT_BATCH_CELLS)
}

/// The effective width for a grid over states of `flat_len` amplitudes:
/// the configured width, shrunk to the grid size and the amplitude
/// budget. `None` means batching is off or pointless (width ≤ 1) — take
/// the scalar path.
fn effective_batch_width(flat_len: usize, grid_len: usize) -> Option<usize> {
    let w = batch_width()
        .min(grid_len)
        .min(MAX_BATCH_AMPS / flat_len.max(1));
    (w > 1).then_some(w)
}

/// The scalar fallback behind [`PreparedSweep::replay_grid_batched`]:
/// counts the cells that bypassed batching, then runs the per-cell path.
fn replay_grid_scalar_fallback<S: PreparedSweep + ?Sized>(
    sweep: &S,
    grid: &FaultGrid,
    threads: usize,
) -> Result<Vec<ProbDist>, ExecError> {
    qufi_obs::add("replay.batch.scalar_fallback", grid.len() as u64);
    sweep.replay_grid(grid, threads)
}

/// One injector matrix per cell of a θ-sorted block, hoisting the
/// `sin/cos(θ/2)` pair across runs of θ-identical cells. Bit-identical to
/// per-cell [`CMatrix::u_gate`] construction because `u_gate` delegates to
/// [`CMatrix::u_gate_from_trig`].
fn injector_matrices(faults: &[FaultParams]) -> Vec<CMatrix> {
    let mut mats = Vec::with_capacity(faults.len());
    let mut run: Option<(u64, (f64, f64))> = None;
    for f in faults {
        let bits = f.theta.to_bits();
        let (s, c) = match run {
            Some((b, sc)) if b == bits => sc,
            _ => {
                let sc = ((f.theta / 2.0).sin(), (f.theta / 2.0).cos());
                run = Some((bits, sc));
                sc
            }
        };
        mats.push(CMatrix::u_gate_from_trig(s, c, f.phi, f.lambda));
    }
    mats
}

/// The deterministic fan-out behind the batched grid replays: cells are
/// stably sorted by θ bit pattern (θ-identical cells share one trig
/// evaluation and blocks stay maximally uniform), chunked into
/// `width`-sized blocks — the ragged tail simply forms a narrower block —
/// and blocks are handed to workers in contiguous ranges. Results scatter
/// back to **grid order** by original cell index; the sort is invisible in
/// the output because every replay depends only on `(self, fault)`.
///
/// Block replays are infallible (the fallible work — transpilation,
/// planning, prefix evolution — happened at prepare time), so unlike
/// [`replay_grid_chunked`] there is no cancellation protocol.
fn replay_grid_batched_blocks<F>(
    grid: &FaultGrid,
    threads: usize,
    width: usize,
    replay_block: F,
) -> Vec<ProbDist>
where
    F: Fn(&[FaultParams]) -> Vec<ProbDist> + Sync,
{
    let mut sorted: Vec<(usize, FaultParams)> = grid
        .iter()
        .map(|(theta, phi)| FaultParams::shift(theta, phi))
        .enumerate()
        .collect();
    sorted.sort_by_key(|(_, f)| f.theta.to_bits());
    let _grid_span = qufi_obs::span("replay.grid_ns");
    let theta_groups = 1 + sorted
        .windows(2)
        .filter(|w| w[0].1.theta.to_bits() != w[1].1.theta.to_bits())
        .count();
    let block_count = sorted.len().div_ceil(width);
    let run_blocks = |blocks: std::ops::Range<usize>| -> Vec<(usize, ProbDist)> {
        let mut results = Vec::with_capacity(blocks.len() * width);
        let mut faults = Vec::with_capacity(width);
        for b in blocks {
            let cells = &sorted[b * width..((b + 1) * width).min(sorted.len())];
            faults.clear();
            faults.extend(cells.iter().map(|&(_, f)| f));
            let dists = replay_block(&faults);
            debug_assert_eq!(dists.len(), cells.len());
            results.extend(cells.iter().map(|&(i, _)| i).zip(dists));
        }
        results
    };
    let workers = threads.max(1).min(block_count);
    let mut out: Vec<Option<ProbDist>> = vec![None; sorted.len()];
    if workers == 1 {
        for (i, dist) in run_blocks(0..block_count) {
            out[i] = Some(dist);
        }
    } else {
        // Contiguous block ranges: the (block → worker) assignment is a
        // pure function of (grid.len(), width, threads), never scheduling.
        let per_worker = block_count.div_ceil(workers);
        let parts = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let run_blocks = &run_blocks;
                    scope.spawn(move || {
                        let part =
                            run_blocks(w * per_worker..((w + 1) * per_worker).min(block_count));
                        qufi_obs::flush();
                        part
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("batched replay worker panicked"))
                .collect::<Vec<_>>()
        });
        for part in parts {
            for (i, dist) in part {
                out[i] = Some(dist);
            }
        }
    }
    qufi_obs::add("replay.cells", sorted.len() as u64);
    qufi_obs::add("replay.batch.cells", sorted.len() as u64);
    qufi_obs::add("replay.batch.blocks", block_count as u64);
    qufi_obs::add("replay.batch.theta_groups", theta_groups as u64);
    out.into_iter()
        .map(|slot| slot.expect("every cell was replayed"))
        .collect()
}

/// A parked double-fault sweep.
pub trait PreparedDoubleSweep {
    /// Fast path for a `(first, second)` fault pair.
    ///
    /// # Errors
    ///
    /// [`ExecError::InvalidFault`] when the second fault exceeds the
    /// first; simulation failures otherwise.
    fn replay(&self, first: FaultParams, second: FaultParams) -> Result<ProbDist, ExecError>;

    /// Oracle path: full rebuild per fault pair.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`PreparedDoubleSweep::replay`].
    fn replay_naive(&self, first: FaultParams, second: FaultParams) -> Result<ProbDist, ExecError>;
}

/// Splices injector gates into a circuit at the given sites (ascending
/// index order, equal indices keep fault order).
fn splice_faults(
    qc: &QuantumCircuit,
    sites: &[SpliceSite],
    faults: &[FaultParams],
) -> QuantumCircuit {
    debug_assert_eq!(sites.len(), faults.len());
    let mut out = qc.clone();
    for (site, fault) in sites.iter().zip(faults).rev() {
        out.insert(site.index, fault.injector_gate(), &[site.qubit]);
    }
    out.name = format!("{}+fault", qc.name);
    out
}

/// Gate count of instructions `[0, upto)` / `[upto, len)` of a circuit.
fn gates_in(qc: &QuantumCircuit, range: std::ops::Range<usize>) -> usize {
    qc.ops()[range]
        .iter()
        .filter(|op| matches!(op, Op::Gate { .. }))
        .count()
}

/// Applies instructions `[from, upto)` of `qc` to a borrowed state — the
/// cursor-advance loop without cursor ownership, so replays can evolve a
/// scratch state restored from a parked snapshot. Bit-identical to
/// [`CircuitCursor::advance_to`] by construction (same loop).
fn advance_state<S: EvolvableState>(state: &mut S, qc: &QuantumCircuit, from: usize, upto: usize) {
    for op in &qc.ops()[from..upto] {
        if let Op::Gate { gate, qubits } = op {
            state.apply_gate(*gate, qubits);
        }
    }
}

/// [`advance_state`] for a batched block: the same instruction walk, each
/// gate shared by every cell of the block.
fn advance_batched(batch: &mut BatchedStatevector, qc: &QuantumCircuit, from: usize, upto: usize) {
    for op in &qc.ops()[from..upto] {
        if let Op::Gate { gate, qubits } = op {
            batch.apply_gate(*gate, qubits);
        }
    }
}

// ---------------------------------------------------------------------------
// Ideal executor: no transpilation, statevector prefix forking.

struct IdealPrepared {
    circuit: QuantumCircuit,
    sites: Vec<SpliceSite>,
    prefix: CircuitCursor<Statevector>,
}

impl IdealPrepared {
    fn new(qc: &QuantumCircuit, sites: Vec<SpliceSite>) -> Result<Self, ExecError> {
        let prefix_span = qufi_obs::span("prepare.prefix_ns");
        let mut prefix = CircuitCursor::<Statevector>::start(qc).map_err(ExecError::Sim)?;
        prefix.advance_to(qc, sites[0].index);
        prefix_span.finish();
        Ok(IdealPrepared {
            circuit: qc.clone(),
            sites,
            prefix,
        })
    }

    fn replay_faults(&self, faults: &[FaultParams], scratch: &mut ReplayScratch) -> ProbDist {
        // Borrow the parked snapshot: restore it into the scratch
        // statevector (reusing its buffer) instead of cloning per replay.
        let sv = match scratch.sv.as_mut() {
            Some(sv) => {
                sv.copy_from(self.prefix.state());
                sv
            }
            None => scratch.sv.insert(self.prefix.state().clone()),
        };
        let mut pos = self.prefix.position();
        for (site, fault) in self.sites.iter().zip(faults) {
            advance_state(sv, &self.circuit, pos, site.index);
            pos = site.index;
            sv.apply_gate(fault.injector_gate(), &[site.qubit]);
        }
        advance_state(sv, &self.circuit, pos, self.circuit.size());
        sv.measurement_distribution(&self.circuit)
    }

    fn replay_faults_naive(&self, faults: &[FaultParams]) -> Result<ProbDist, ExecError> {
        let faulty = splice_faults(&self.circuit, &self.sites, faults);
        let sv = Statevector::from_circuit(&faulty).map_err(ExecError::Sim)?;
        Ok(sv.measurement_distribution(&faulty))
    }

    /// One θ-sorted block of the batched grid replay: broadcast the parked
    /// prefix into the block, apply each cell's injector, evolve the shared
    /// suffix once across all cells.
    fn replay_block(&self, faults: &[FaultParams]) -> Vec<ProbDist> {
        let site = &self.sites[0];
        let mats = injector_matrices(faults);
        let mut batch = BatchedStatevector::broadcast(self.prefix.state(), faults.len());
        batch.apply_matrix_per_cell(&mats, site.qubit);
        advance_batched(&mut batch, &self.circuit, site.index, self.circuit.size());
        (0..faults.len())
            .map(|c| batch.measurement_distribution(c, &self.circuit))
            .collect()
    }
}

impl PreparedSweep for IdealPrepared {
    fn replay_with(
        &self,
        fault: FaultParams,
        scratch: &mut ReplayScratch,
    ) -> Result<ProbDist, ExecError> {
        Ok(self.replay_faults(&[fault], scratch))
    }

    fn replay_naive(&self, fault: FaultParams) -> Result<ProbDist, ExecError> {
        self.replay_faults_naive(&[fault])
    }

    fn replay_grid_batched(
        &self,
        grid: &FaultGrid,
        threads: usize,
    ) -> Result<Vec<ProbDist>, ExecError> {
        let batchable = self.sites.len() == 1 && self.prefix.position() == self.sites[0].index;
        match effective_batch_width(self.prefix.state().amplitudes().len(), grid.len()) {
            Some(width) if batchable => {
                Ok(replay_grid_batched_blocks(grid, threads, width, |faults| {
                    self.replay_block(faults)
                }))
            }
            _ => replay_grid_scalar_fallback(self, grid, threads),
        }
    }

    fn prefix_gates(&self) -> usize {
        gates_in(&self.circuit, 0..self.sites[0].index)
    }

    fn suffix_gates(&self) -> usize {
        gates_in(&self.circuit, self.sites[0].index..self.circuit.size())
    }
}

impl PreparedDoubleSweep for IdealPrepared {
    fn replay(&self, first: FaultParams, second: FaultParams) -> Result<ProbDist, ExecError> {
        check_fault_order(first, second)?;
        Ok(self.replay_faults(&[first, second], &mut ReplayScratch::new()))
    }

    fn replay_naive(&self, first: FaultParams, second: FaultParams) -> Result<ProbDist, ExecError> {
        check_fault_order(first, second)?;
        self.replay_faults_naive(&[first, second])
    }
}

impl SweepExecutor for IdealExecutor {
    fn prepare<'a>(
        &'a self,
        qc: &QuantumCircuit,
        point: InjectionPoint,
    ) -> Result<Box<dyn PreparedSweep + 'a>, ExecError> {
        check_injection_point(qc, point)?;
        let sites = vec![SpliceSite {
            index: point.op_index + 1,
            qubit: point.qubit,
        }];
        Ok(Box::new(IdealPrepared::new(qc, sites)?))
    }

    fn prepare_double<'a>(
        &'a self,
        qc: &QuantumCircuit,
        point: InjectionPoint,
        neighbor: usize,
    ) -> Result<Box<dyn PreparedDoubleSweep + 'a>, ExecError> {
        check_double_site(qc, point, neighbor)?;
        let sites = vec![
            SpliceSite {
                index: point.op_index + 1,
                qubit: point.qubit,
            },
            SpliceSite {
                index: point.op_index + 1,
                qubit: neighbor,
            },
        ];
        Ok(Box::new(IdealPrepared::new(qc, sites)?))
    }
}

// ---------------------------------------------------------------------------
// Transpiling executors: marker through the pipeline, density-matrix
// prefix forking under the noise model.

/// Everything the noisy/hardware replay paths share for one point: the
/// stripped compact physical circuit, its splice sites, the noise model,
/// and the parked prefix state.
struct PhysicalSweep {
    /// Marked logical circuit — `replay_naive` re-transpiles it per call.
    marked: QuantumCircuit,
    /// Stripped compact physical circuit the replays run on.
    physical: QuantumCircuit,
    /// Splice sites in compact physical coordinates, program order.
    sites: Vec<SpliceSite>,
    model: NoiseModel,
    /// The physical circuit compiled against the model: gate matrices and
    /// channel superoperators resolved once per point, reused per replay.
    plan: NoisePlan,
    prefix: DensityMatrix,
    prefix_pos: usize,
}

impl PhysicalSweep {
    /// Transpiles a marked circuit, recovers the physical splice sites and
    /// parks the prefix evolution under `model_for(active)`.
    fn prepare(
        transpiler: &qufi_transpile::Transpiler,
        marked: QuantumCircuit,
        n_sites: usize,
        model_for: impl FnOnce(&[usize]) -> NoiseModel,
    ) -> Result<Self, ExecError> {
        let transpile_span = qufi_obs::span("prepare.transpile_ns");
        let result = transpiler.run(&marked)?;
        transpile_span.finish();
        let compact_span = qufi_obs::span("prepare.compact_ns");
        let active = result.active_physical_qubits();
        let compact = compact_circuit(result.circuit(), &active);
        let (physical, sites) = extract_splice_sites(&compact);
        compact_span.finish();
        if sites.len() != n_sites {
            return Err(ExecError::Engine(format!(
                "expected {n_sites} splice markers after transpilation, found {}",
                sites.len()
            )));
        }
        let plan_span = qufi_obs::span("prepare.plan_ns");
        let model = model_for(&active);
        let plan = NoisePlan::compile(&physical, &model);
        plan_span.finish();
        let prefix_span = qufi_obs::span("prepare.prefix_ns");
        let mut cursor = NoisyCursor::start(&physical, &model).map_err(ExecError::Sim)?;
        cursor.advance_planned(&plan, sites[0].index);
        let prefix_pos = cursor.position();
        let prefix = cursor.into_state();
        prefix_span.finish();
        Ok(PhysicalSweep {
            marked,
            physical,
            sites,
            model,
            plan,
            prefix,
            prefix_pos,
        })
    }

    /// Fast path: borrow the parked state into the scratch density matrix,
    /// splice the injectors, finish the suffix through the compiled plan.
    fn replay(&self, faults: &[FaultParams], scratch: &mut ReplayScratch) -> ProbDist {
        let rho = match scratch.rho.take() {
            Some(mut rho) => {
                rho.copy_from(&self.prefix);
                rho
            }
            None => self.prefix.clone(),
        };
        let mut cur = NoisyCursor::resume(rho, &self.model, self.prefix_pos);
        for (site, fault) in self.sites.iter().zip(faults) {
            cur.advance_planned(&self.plan, site.index);
            cur.apply_planned_injector(&self.plan, fault.injector_gate(), site.qubit);
        }
        cur.advance_planned(&self.plan, self.physical.size());
        let dist = cur.finish_dist(&self.physical);
        scratch.rho = Some(cur.into_state());
        dist
    }

    /// Oracle path: the full pre-engine pipeline — re-transpile the marked
    /// circuit, splice, and simulate the whole faulty circuit from `|0…0⟩`.
    fn replay_naive(
        &self,
        transpiler: &qufi_transpile::Transpiler,
        faults: &[FaultParams],
    ) -> Result<ProbDist, ExecError> {
        let result = transpiler.run(&self.marked)?;
        let active = result.active_physical_qubits();
        let compact = compact_circuit(result.circuit(), &active);
        let (physical, sites) = extract_splice_sites(&compact);
        if sites.len() != faults.len() {
            return Err(ExecError::Engine(format!(
                "expected {} splice markers after re-transpilation, found {}",
                faults.len(),
                sites.len()
            )));
        }
        let faulty = splice_faults(&physical, &sites, faults);
        qufi_noise::simulate::run_noisy(&faulty, &self.model).map_err(ExecError::Sim)
    }

    fn prefix_gates(&self) -> usize {
        gates_in(&self.physical, 0..self.prefix_pos)
    }

    fn suffix_gates(&self) -> usize {
        gates_in(&self.physical, self.prefix_pos..self.physical.size())
    }

    /// Whether the batched single-fault path applies: exactly one splice
    /// site, with the parked prefix advanced exactly to it.
    fn batchable(&self) -> bool {
        self.sites.len() == 1 && self.prefix_pos == self.sites[0].index
    }

    /// Flat amplitude count of one cell's ρ — the batched width budget is
    /// expressed in these.
    fn flat_len(&self) -> usize {
        self.prefix.dim() * self.prefix.dim()
    }

    /// One θ-sorted block of the batched grid replay: broadcast the parked
    /// prefix into the block, apply each cell's noisy injector, run the
    /// planned suffix once across all cells, and finish each cell exactly
    /// like [`NoisyCursor::finish_dist`].
    fn replay_block(&self, faults: &[FaultParams]) -> Vec<ProbDist> {
        let site = &self.sites[0];
        let mats = injector_matrices(faults);
        let mut batch = BatchedDensity::broadcast(&self.prefix, faults.len());
        batch.apply_unitary_per_cell(&mats, site.qubit);
        for (superop, targets) in self.plan.injector_channels(site.qubit) {
            batch.apply_superoperator(superop, targets);
        }
        for (matrix, qubits, channels) in self
            .plan
            .planned_steps(self.prefix_pos, self.physical.size())
        {
            batch.apply_unitary(matrix, qubits);
            for (superop, targets) in channels {
                batch.apply_superoperator(superop, targets);
            }
        }
        let map = self.physical.measurement_map();
        (0..faults.len())
            .map(|c| {
                let dist =
                    apply_readout_errors(&batch.probabilities(c), self.model.readout_errors());
                if map.is_empty() {
                    dist
                } else {
                    dist.marginalize(&map, self.physical.num_clbits())
                }
            })
            .collect()
    }
}

struct NoisyPrepared<'a> {
    executor: &'a NoisyExecutor,
    sweep: PhysicalSweep,
}

impl PreparedSweep for NoisyPrepared<'_> {
    fn replay_with(
        &self,
        fault: FaultParams,
        scratch: &mut ReplayScratch,
    ) -> Result<ProbDist, ExecError> {
        Ok(self.sweep.replay(&[fault], scratch))
    }

    fn replay_naive(&self, fault: FaultParams) -> Result<ProbDist, ExecError> {
        self.sweep
            .replay_naive(self.executor.transpiler(), &[fault])
    }

    fn replay_grid_batched(
        &self,
        grid: &FaultGrid,
        threads: usize,
    ) -> Result<Vec<ProbDist>, ExecError> {
        match effective_batch_width(self.sweep.flat_len(), grid.len()) {
            Some(width) if self.sweep.batchable() => {
                Ok(replay_grid_batched_blocks(grid, threads, width, |faults| {
                    self.sweep.replay_block(faults)
                }))
            }
            _ => replay_grid_scalar_fallback(self, grid, threads),
        }
    }

    fn prefix_gates(&self) -> usize {
        self.sweep.prefix_gates()
    }

    fn suffix_gates(&self) -> usize {
        self.sweep.suffix_gates()
    }
}

impl PreparedDoubleSweep for NoisyPrepared<'_> {
    fn replay(&self, first: FaultParams, second: FaultParams) -> Result<ProbDist, ExecError> {
        check_fault_order(first, second)?;
        Ok(self
            .sweep
            .replay(&[first, second], &mut ReplayScratch::new()))
    }

    fn replay_naive(&self, first: FaultParams, second: FaultParams) -> Result<ProbDist, ExecError> {
        check_fault_order(first, second)?;
        self.sweep
            .replay_naive(self.executor.transpiler(), &[first, second])
    }
}

impl SweepExecutor for NoisyExecutor {
    fn prepare<'a>(
        &'a self,
        qc: &QuantumCircuit,
        point: InjectionPoint,
    ) -> Result<Box<dyn PreparedSweep + 'a>, ExecError> {
        let marked = mark_injection_site(qc, point)?;
        let sweep = PhysicalSweep::prepare(self.transpiler(), marked, 1, |a| self.model_for(a))?;
        Ok(Box::new(NoisyPrepared {
            executor: self,
            sweep,
        }))
    }

    fn prepare_double<'a>(
        &'a self,
        qc: &QuantumCircuit,
        point: InjectionPoint,
        neighbor: usize,
    ) -> Result<Box<dyn PreparedDoubleSweep + 'a>, ExecError> {
        let marked = mark_double_injection_site(qc, point, neighbor)?;
        let sweep = PhysicalSweep::prepare(self.transpiler(), marked, 2, |a| self.model_for(a))?;
        Ok(Box::new(NoisyPrepared {
            executor: self,
            sweep,
        }))
    }
}

// ---------------------------------------------------------------------------
// Hardware executor: per-point calibration drift, per-configuration shot
// sampling, both derived deterministically so results are independent of
// scheduling order.

/// Incremental FNV-1a hasher for deriving deterministic RNG streams.
///
/// The single implementation behind every schedule-independence guarantee
/// in the stack: hardware sweeps derive per-point drift and per-fault
/// sampling seeds here, and the `qufi` CLI derives per-(job, point)
/// executor seeds from the same construction — so results never depend on
/// thread interleaving, replay order, or interrupt/resume splits.
#[derive(Debug, Clone)]
pub struct SeedHasher(u64);

impl SeedHasher {
    /// A hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        SeedHasher(0xcbf2_9ce4_8422_2325)
    }

    /// Mixes raw bytes.
    pub fn mix_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x1000_0000_01b3);
        }
        self
    }

    /// Mixes one word (little-endian bytes).
    pub fn mix_u64(&mut self, w: u64) -> &mut Self {
        self.mix_bytes(&w.to_le_bytes())
    }

    /// The derived seed.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for SeedHasher {
    fn default() -> Self {
        SeedHasher::new()
    }
}

/// FNV-1a mix of arbitrary words — the seed-derivation shorthand for
/// hardware and trajectory sweeps.
pub(crate) fn derive_seed(words: &[u64]) -> u64 {
    let mut h = SeedHasher::new();
    for &w in words {
        h.mix_u64(w);
    }
    h.finish()
}

struct HardwarePrepared<'a> {
    executor: &'a HardwareExecutor,
    sweep: PhysicalSweep,
    /// Base for per-configuration sampling seeds.
    sample_base: u64,
}

impl HardwarePrepared<'_> {
    /// One calibration batch per injection point: the drifted device and
    /// the sampling-seed base derive from (executor seed, point identity),
    /// never from the executor's shared stream.
    fn prepare<'a>(
        executor: &'a HardwareExecutor,
        marked: QuantumCircuit,
        n_sites: usize,
        point: InjectionPoint,
        neighbor: Option<usize>,
    ) -> Result<HardwarePrepared<'a>, ExecError> {
        let mut rng = SmallRng::seed_from_u64(derive_seed(&[
            executor.seed(),
            point.op_index as u64,
            point.qubit as u64,
            neighbor.map_or(u64::MAX, |n| n as u64),
        ]));
        let cal = executor
            .calibration()
            .with_drift(&mut rng, executor.drift_sigma());
        let sample_base: u64 = rng.gen();
        let sweep = PhysicalSweep::prepare(executor.transpiler(), marked, n_sites, |active| {
            cal.restrict(active).noise_model()
        })?;
        Ok(HardwarePrepared {
            executor,
            sweep,
            sample_base,
        })
    }

    /// The finite-shot view of an exact distribution, seeded by the fault
    /// angles so replay order never matters.
    fn sample(&self, exact: ProbDist, faults: &[FaultParams]) -> ProbDist {
        let mut words = vec![self.sample_base];
        for f in faults {
            words.push(f.theta.to_bits());
            words.push(f.phi.to_bits());
        }
        let mut rng = SmallRng::seed_from_u64(derive_seed(&words));
        exact.sample(&mut rng, self.executor.shots()).to_prob_dist()
    }
}

impl PreparedSweep for HardwarePrepared<'_> {
    fn replay_with(
        &self,
        fault: FaultParams,
        scratch: &mut ReplayScratch,
    ) -> Result<ProbDist, ExecError> {
        Ok(self.sample(self.sweep.replay(&[fault], scratch), &[fault]))
    }

    fn replay_naive(&self, fault: FaultParams) -> Result<ProbDist, ExecError> {
        let exact = self
            .sweep
            .replay_naive(self.executor.transpiler(), &[fault])?;
        Ok(self.sample(exact, &[fault]))
    }

    fn replay_grid_batched(
        &self,
        grid: &FaultGrid,
        threads: usize,
    ) -> Result<Vec<ProbDist>, ExecError> {
        match effective_batch_width(self.sweep.flat_len(), grid.len()) {
            // Sampling seeds derive from the fault angles, so drawing the
            // finite-shot view per cell of a batched block changes nothing.
            Some(width) if self.sweep.batchable() => {
                Ok(replay_grid_batched_blocks(grid, threads, width, |faults| {
                    self.sweep
                        .replay_block(faults)
                        .into_iter()
                        .zip(faults)
                        .map(|(exact, &fault)| self.sample(exact, &[fault]))
                        .collect()
                }))
            }
            _ => replay_grid_scalar_fallback(self, grid, threads),
        }
    }

    fn prefix_gates(&self) -> usize {
        self.sweep.prefix_gates()
    }

    fn suffix_gates(&self) -> usize {
        self.sweep.suffix_gates()
    }
}

impl PreparedDoubleSweep for HardwarePrepared<'_> {
    fn replay(&self, first: FaultParams, second: FaultParams) -> Result<ProbDist, ExecError> {
        check_fault_order(first, second)?;
        let faults = [first, second];
        Ok(self.sample(
            self.sweep.replay(&faults, &mut ReplayScratch::new()),
            &faults,
        ))
    }

    fn replay_naive(&self, first: FaultParams, second: FaultParams) -> Result<ProbDist, ExecError> {
        check_fault_order(first, second)?;
        let faults = [first, second];
        let exact = self
            .sweep
            .replay_naive(self.executor.transpiler(), &faults)?;
        Ok(self.sample(exact, &faults))
    }
}

impl SweepExecutor for HardwareExecutor {
    fn prepare<'a>(
        &'a self,
        qc: &QuantumCircuit,
        point: InjectionPoint,
    ) -> Result<Box<dyn PreparedSweep + 'a>, ExecError> {
        let marked = mark_injection_site(qc, point)?;
        Ok(Box::new(HardwarePrepared::prepare(
            self, marked, 1, point, None,
        )?))
    }

    fn prepare_double<'a>(
        &'a self,
        qc: &QuantumCircuit,
        point: InjectionPoint,
        neighbor: usize,
    ) -> Result<Box<dyn PreparedDoubleSweep + 'a>, ExecError> {
        let marked = mark_double_injection_site(qc, point, neighbor)?;
        Ok(Box::new(HardwarePrepared::prepare(
            self,
            marked,
            2,
            point,
            Some(neighbor),
        )?))
    }
}

// ---------------------------------------------------------------------------
// Trajectory executor: per-shot statevector prefixes, Kraus-branch sampling
// through the suffix, seeds derived per (point, fault angles, shot) so the
// Monte-Carlo estimate is as schedule-invariant as the exact paths.

/// Stream tag separating per-shot *prefix* seeds from per-(cell, shot)
/// *suffix* seeds: suffix seeds mix fault-angle bit patterns in this slot,
/// and no valid angle has the all-ones (NaN) pattern.
const PREFIX_STREAM_TAG: u64 = u64::MAX;

/// Default ceiling on parked prefix-bank memory (amplitude bytes). Above
/// it the sweep recomputes the prefix per (cell, shot) from the same seed
/// stream — bit-identical, just slower. Override with
/// `QUFI_TRAJ_BANK_BYTES`.
const DEFAULT_BANK_BYTES: u64 = 256 << 20;

/// Where a replay gets shot `s`'s prefix state from.
enum PrefixBank {
    /// One parked statevector per shot, computed once at prepare time and
    /// shared (borrowed) by every grid cell.
    Banked(Vec<Statevector>),
    /// The bank would exceed the memory budget: replays re-evolve the
    /// prefix from `|0…0⟩` under the same per-shot seed, which yields the
    /// identical state.
    Recompute,
}

/// Everything the trajectory replay path shares for one injection point.
struct TrajectorySweep {
    /// Marked logical circuit — `replay_naive` re-transpiles it per call.
    marked: QuantumCircuit,
    /// Stripped compact physical circuit the replays run on.
    physical: QuantumCircuit,
    /// Splice sites in compact physical coordinates, program order.
    sites: Vec<SpliceSite>,
    model: NoiseModel,
    /// Kraus-operator plan compiled once per point, reused per shot.
    plan: TrajPlan,
    prefix_pos: usize,
    /// `|0…0⟩` template restored into scratch when recomputing prefixes.
    zero: Statevector,
    bank: PrefixBank,
    /// Base for the per-shot prefix and per-(cell, shot) suffix streams.
    point_base: u64,
    shots: u64,
}

/// Worker count for the optional shot-level parallel split, read per call
/// so tests can vary it; shots are handed out in whole accumulator blocks
/// to keep the fold bit-identical to serial.
fn shot_workers() -> usize {
    std::env::var("QUFI_TRAJ_SHOT_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(1)
}

fn bank_byte_limit() -> u64 {
    std::env::var("QUFI_TRAJ_BANK_BYTES")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .unwrap_or(DEFAULT_BANK_BYTES)
}

impl TrajectorySweep {
    /// Transpiles a marked circuit, compiles the Kraus plan, and parks one
    /// prefix statevector per shot (or arranges seed-identical recompute
    /// when the bank would exceed `bank_limit` bytes of amplitudes).
    fn prepare(
        executor: &TrajectoryExecutor,
        marked: QuantumCircuit,
        n_sites: usize,
        point: InjectionPoint,
        neighbor: Option<usize>,
        bank_limit: u64,
    ) -> Result<Self, ExecError> {
        let transpile_span = qufi_obs::span("prepare.transpile_ns");
        let result = executor.transpiler().run(&marked)?;
        transpile_span.finish();
        let compact_span = qufi_obs::span("prepare.compact_ns");
        let active = result.active_physical_qubits();
        let compact = compact_circuit(result.circuit(), &active);
        let (physical, sites) = extract_splice_sites(&compact);
        compact_span.finish();
        if sites.len() != n_sites {
            return Err(ExecError::Engine(format!(
                "expected {n_sites} splice markers after transpilation, found {}",
                sites.len()
            )));
        }
        let plan_span = qufi_obs::span("prepare.plan_ns");
        let model = executor.model_for(&active);
        let plan = TrajPlan::compile(&physical, &model);
        plan_span.finish();
        let point_base = derive_seed(&[
            executor.seed(),
            point.op_index as u64,
            point.qubit as u64,
            neighbor.map_or(u64::MAX, |n| n as u64),
        ]);
        let shots = executor.shots();
        let zero = Statevector::new(physical.num_qubits()).map_err(ExecError::Sim)?;
        let prefix_pos = sites[0].index;
        let mut sweep = TrajectorySweep {
            marked,
            physical,
            sites,
            model,
            plan,
            prefix_pos,
            zero,
            bank: PrefixBank::Recompute,
            point_base,
            shots,
        };
        let amp_bytes = (std::mem::size_of::<qufi_math::Complex>() as u64)
            .saturating_mul(1u64 << sweep.physical.num_qubits())
            .saturating_mul(shots);
        if amp_bytes <= bank_limit {
            let prefix_span = qufi_obs::span("prepare.prefix_ns");
            let mut ws = TrajWorkspace::new();
            // `bank` is still `Recompute` here, so this fills the bank
            // through the exact code path the fallback replays later.
            let bank = (0..shots)
                .map(|shot| sweep.prefix_into(sweep.zero.clone(), shot, &mut ws))
                .collect();
            sweep.bank = PrefixBank::Banked(bank);
            prefix_span.finish();
        }
        Ok(sweep)
    }

    /// The per-shot prefix RNG stream; disjoint from every suffix stream
    /// by the [`PREFIX_STREAM_TAG`] slot.
    fn prefix_seed(&self, shot: u64) -> u64 {
        derive_seed(&[self.point_base, PREFIX_STREAM_TAG, shot])
    }

    /// The per-(cell, shot) suffix RNG stream, keyed by the fault angles
    /// so replay order and grid chunking never matter.
    fn suffix_seed(&self, faults: &[FaultParams], shot: u64) -> u64 {
        let mut words = Vec::with_capacity(2 + 2 * faults.len());
        words.push(self.point_base);
        for f in faults {
            words.push(f.theta.to_bits());
            words.push(f.phi.to_bits());
        }
        words.push(shot);
        derive_seed(&words)
    }

    /// Loads shot `shot`'s prefix state into `state` (buffer reused, no
    /// allocation): from the bank when parked, otherwise re-evolved from
    /// `|0…0⟩` under the same per-shot stream — the single code path the
    /// bank fill itself runs, which is what makes the two modes
    /// bit-identical.
    fn prefix_into(
        &self,
        mut state: Statevector,
        shot: u64,
        ws: &mut TrajWorkspace,
    ) -> Statevector {
        match &self.bank {
            PrefixBank::Banked(bank) => {
                state.copy_from(&bank[shot as usize]);
                state
            }
            PrefixBank::Recompute => {
                state.copy_from(&self.zero);
                let mut rng = SmallRng::seed_from_u64(self.prefix_seed(shot));
                let mut cursor = TrajectoryCursor::resume(state, 0);
                cursor.advance_planned(&self.plan, self.prefix_pos, &mut rng, ws);
                cursor.into_state()
            }
        }
    }

    /// Runs shots `[start, end)` of one cell into `acc` through the given
    /// plan (the parked one, or a freshly compiled one on the naive path).
    #[allow(clippy::too_many_arguments)]
    fn run_shot_range(
        &self,
        plan: &TrajPlan,
        sites: &[SpliceSite],
        faults: &[FaultParams],
        start: u64,
        end: u64,
        acc: &mut ShotAccumulator,
        sv_buf: &mut Option<Statevector>,
        ws: &mut TrajWorkspace,
    ) {
        for shot in start..end {
            let state = match sv_buf.take() {
                Some(s) => s,
                None => self.zero.clone(),
            };
            let state = self.prefix_into(state, shot, ws);
            let mut rng = SmallRng::seed_from_u64(self.suffix_seed(faults, shot));
            let mut cursor = TrajectoryCursor::resume(state, self.prefix_pos);
            for (site, fault) in sites.iter().zip(faults) {
                cursor.advance_planned(plan, site.index, &mut rng, ws);
                cursor.apply_planned_injector(
                    plan,
                    fault.injector_gate(),
                    site.qubit,
                    &mut rng,
                    ws,
                );
            }
            cursor.advance_planned(plan, plan.size(), &mut rng, ws);
            acc.add_shot(shot, cursor.state());
            *sv_buf = Some(cursor.into_state());
        }
    }

    /// Fast path: all shots of one `(θ, φ)` cell — prefix from the bank,
    /// suffix under the cell's seed stream — averaged, confused, and
    /// marginalized. `QUFI_TRAJ_SHOT_THREADS > 1` splits the shots across
    /// scoped threads in whole accumulator blocks; the absorb-in-worker-
    /// order merge keeps the result bit-identical to the serial fold.
    fn replay(&self, faults: &[FaultParams], scratch: &mut ReplayScratch) -> ProbDist {
        qufi_obs::add("traj.shots", self.shots);
        let n = self.physical.num_qubits();
        let mut acc = ShotAccumulator::new(n, self.shots);
        let blocks = self.shots.div_ceil(SHOT_BLOCK);
        let workers = (shot_workers() as u64).min(blocks).max(1);
        if workers == 1 {
            self.run_shot_range(
                &self.plan,
                &self.sites,
                faults,
                0,
                self.shots,
                &mut acc,
                &mut scratch.traj_sv,
                &mut scratch.traj_ws,
            );
        } else {
            let per_worker_blocks = blocks.div_ceil(workers);
            // Rounding blocks up may leave trailing workers with nothing to
            // do (4 blocks over 3 workers → 2 + 2 + 0); drop them.
            let workers = blocks.div_ceil(per_worker_blocks);
            let parts = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|w| {
                        let start = w * per_worker_blocks * SHOT_BLOCK;
                        let end = ((w + 1) * per_worker_blocks * SHOT_BLOCK).min(self.shots);
                        scope.spawn(move || {
                            let mut part =
                                ShotAccumulator::for_shot_range(n, self.shots, start, end);
                            let mut sv_buf = None;
                            let mut ws = TrajWorkspace::new();
                            self.run_shot_range(
                                &self.plan,
                                &self.sites,
                                faults,
                                start,
                                end,
                                &mut part,
                                &mut sv_buf,
                                &mut ws,
                            );
                            qufi_obs::flush();
                            part
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shot worker panicked"))
                    .collect::<Vec<_>>()
            });
            for part in &parts {
                acc.absorb(part);
            }
        }
        finish_trajectory_dist(acc.mean(), n, &self.model, &self.physical)
    }

    /// Oracle-flavored path: re-transpile the marked circuit and recompile
    /// the Kraus plan from scratch, then run every shot un-banked and
    /// un-split. The seed streams are the same pure functions of
    /// `(point, fault angles, shot)`, so this is **bit-identical** to
    /// [`TrajectorySweep::replay`] — it independently re-derives
    /// everything the prepare step amortizes (transpilation, plan, prefix
    /// bank, scratch reuse, shot chunking).
    fn replay_naive(
        &self,
        transpiler: &qufi_transpile::Transpiler,
        faults: &[FaultParams],
    ) -> Result<ProbDist, ExecError> {
        let result = transpiler.run(&self.marked)?;
        let active = result.active_physical_qubits();
        let compact = compact_circuit(result.circuit(), &active);
        let (physical, sites) = extract_splice_sites(&compact);
        if sites.len() != faults.len() {
            return Err(ExecError::Engine(format!(
                "expected {} splice markers after re-transpilation, found {}",
                faults.len(),
                sites.len()
            )));
        }
        let plan = TrajPlan::compile(&physical, &self.model);
        let n = physical.num_qubits();
        let prefix_pos = sites[0].index;
        let mut acc = ShotAccumulator::new(n, self.shots);
        let mut ws = TrajWorkspace::new();
        let mut sv_buf = None;
        let naive = TrajectorySweep {
            marked: self.marked.clone(),
            physical,
            sites,
            model: self.model.clone(),
            plan,
            prefix_pos,
            zero: Statevector::new(n).map_err(ExecError::Sim)?,
            bank: PrefixBank::Recompute,
            point_base: self.point_base,
            shots: self.shots,
        };
        naive.run_shot_range(
            &naive.plan,
            &naive.sites,
            faults,
            0,
            naive.shots,
            &mut acc,
            &mut sv_buf,
            &mut ws,
        );
        Ok(finish_trajectory_dist(
            acc.mean(),
            n,
            &naive.model,
            &naive.physical,
        ))
    }

    fn prefix_gates(&self) -> usize {
        gates_in(&self.physical, 0..self.prefix_pos)
    }

    fn suffix_gates(&self) -> usize {
        gates_in(&self.physical, self.prefix_pos..self.physical.size())
    }
}

struct TrajectoryPrepared<'a> {
    executor: &'a TrajectoryExecutor,
    sweep: TrajectorySweep,
}

impl PreparedSweep for TrajectoryPrepared<'_> {
    fn replay_with(
        &self,
        fault: FaultParams,
        scratch: &mut ReplayScratch,
    ) -> Result<ProbDist, ExecError> {
        Ok(self.sweep.replay(&[fault], scratch))
    }

    fn replay_naive(&self, fault: FaultParams) -> Result<ProbDist, ExecError> {
        self.sweep
            .replay_naive(self.executor.transpiler(), &[fault])
    }

    fn prefix_gates(&self) -> usize {
        self.sweep.prefix_gates()
    }

    fn suffix_gates(&self) -> usize {
        self.sweep.suffix_gates()
    }
}

impl PreparedDoubleSweep for TrajectoryPrepared<'_> {
    fn replay(&self, first: FaultParams, second: FaultParams) -> Result<ProbDist, ExecError> {
        check_fault_order(first, second)?;
        Ok(self
            .sweep
            .replay(&[first, second], &mut ReplayScratch::new()))
    }

    fn replay_naive(&self, first: FaultParams, second: FaultParams) -> Result<ProbDist, ExecError> {
        check_fault_order(first, second)?;
        self.sweep
            .replay_naive(self.executor.transpiler(), &[first, second])
    }
}

impl SweepExecutor for TrajectoryExecutor {
    fn prepare<'a>(
        &'a self,
        qc: &QuantumCircuit,
        point: InjectionPoint,
    ) -> Result<Box<dyn PreparedSweep + 'a>, ExecError> {
        let marked = mark_injection_site(qc, point)?;
        let sweep = TrajectorySweep::prepare(self, marked, 1, point, None, bank_byte_limit())?;
        Ok(Box::new(TrajectoryPrepared {
            executor: self,
            sweep,
        }))
    }

    fn prepare_double<'a>(
        &'a self,
        qc: &QuantumCircuit,
        point: InjectionPoint,
        neighbor: usize,
    ) -> Result<Box<dyn PreparedDoubleSweep + 'a>, ExecError> {
        let marked = mark_double_injection_site(qc, point, neighbor)?;
        let sweep =
            TrajectorySweep::prepare(self, marked, 2, point, Some(neighbor), bank_byte_limit())?;
        Ok(Box::new(TrajectoryPrepared {
            executor: self,
            sweep,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qufi_algos::bernstein_vazirani;
    use qufi_noise::BackendCalibration;
    use std::f64::consts::{FRAC_PI_2, PI};

    fn bv() -> QuantumCircuit {
        bernstein_vazirani(0b101, 3).circuit
    }

    fn some_point() -> InjectionPoint {
        InjectionPoint {
            op_index: 2,
            qubit: 0,
        }
    }

    fn assert_bit_identical(a: &ProbDist, b: &ProbDist, what: &str) {
        assert_eq!(a.len(), b.len(), "{what}: width mismatch");
        for i in 0..a.len() {
            assert_eq!(
                a.prob(i).to_bits(),
                b.prob(i).to_bits(),
                "{what}: outcome {i} differs ({} vs {})",
                a.prob(i),
                b.prob(i)
            );
        }
    }

    #[test]
    fn ideal_replay_matches_naive_bitwise() {
        let qc = bv();
        let prepared = IdealExecutor.prepare(&qc, some_point()).unwrap();
        for (theta, phi) in [(0.0, 0.0), (PI, 0.0), (FRAC_PI_2, PI), (0.3, 5.9)] {
            let fault = FaultParams::shift(theta, phi);
            let fast = prepared.replay(fault).unwrap();
            let slow = prepared.replay_naive(fault).unwrap();
            assert_bit_identical(&fast, &slow, "ideal");
        }
    }

    #[test]
    fn noisy_replay_matches_naive_bitwise() {
        let qc = bv();
        let ex = NoisyExecutor::new(BackendCalibration::jakarta());
        let prepared = ex.prepare(&qc, some_point()).unwrap();
        for (theta, phi) in [(0.0, 0.0), (PI, 0.0), (FRAC_PI_2, FRAC_PI_2)] {
            let fault = FaultParams::shift(theta, phi);
            let fast = prepared.replay(fault).unwrap();
            let slow = prepared.replay_naive(fault).unwrap();
            assert_bit_identical(&fast, &slow, "noisy");
        }
    }

    #[test]
    fn hardware_replay_matches_naive_bitwise_and_is_order_independent() {
        let qc = bv();
        let ex = HardwareExecutor::new(BackendCalibration::jakarta(), 42);
        let prepared = ex.prepare(&qc, some_point()).unwrap();
        let faults = [
            FaultParams::shift(PI, 0.0),
            FaultParams::shift(0.0, PI),
            FaultParams::shift(FRAC_PI_2, FRAC_PI_2),
        ];
        let forward: Vec<ProbDist> = faults
            .iter()
            .map(|&f| prepared.replay(f).unwrap())
            .collect();
        // Naive replays in reverse order must reproduce each distribution.
        for (i, &f) in faults.iter().enumerate().rev() {
            let slow = prepared.replay_naive(f).unwrap();
            assert_bit_identical(&forward[i], &slow, "hardware");
        }
        // A fresh prepare of the same point reproduces everything.
        let again = ex.prepare(&qc, some_point()).unwrap();
        for (i, &f) in faults.iter().enumerate() {
            assert_bit_identical(&forward[i], &again.replay(f).unwrap(), "re-prepare");
        }
    }

    #[test]
    fn hardware_preparation_ignores_the_shared_stream() {
        // Burning executions on the ad-hoc path must not change sweep
        // results: per-point streams derive from the seed, not the shared
        // RNG state.
        let qc = bv();
        let ex = HardwareExecutor::new(BackendCalibration::jakarta(), 7);
        let before = ex
            .prepare(&qc, some_point())
            .unwrap()
            .replay(FaultParams::shift(PI, 0.0))
            .unwrap();
        let _ = ex.execute(&qc).unwrap();
        let _ = ex.execute(&qc).unwrap();
        let after = ex
            .prepare(&qc, some_point())
            .unwrap()
            .replay(FaultParams::shift(PI, 0.0))
            .unwrap();
        assert_bit_identical(&before, &after, "shared-stream independence");
    }

    #[test]
    fn double_replay_matches_naive_across_executors() {
        let qc = bv();
        let point = some_point();
        let first = FaultParams::shift(PI, PI);
        let second = FaultParams::shift(FRAC_PI_2, FRAC_PI_2);
        let noisy = NoisyExecutor::new(BackendCalibration::lima());
        let hw = HardwareExecutor::new(BackendCalibration::jakarta(), 5);

        let p = IdealExecutor.prepare_double(&qc, point, 1).unwrap();
        assert_bit_identical(
            &p.replay(first, second).unwrap(),
            &p.replay_naive(first, second).unwrap(),
            "ideal double",
        );
        let p = noisy.prepare_double(&qc, point, 1).unwrap();
        assert_bit_identical(
            &p.replay(first, second).unwrap(),
            &p.replay_naive(first, second).unwrap(),
            "noisy double",
        );
        let p = hw.prepare_double(&qc, point, 1).unwrap();
        assert_bit_identical(
            &p.replay(first, second).unwrap(),
            &p.replay_naive(first, second).unwrap(),
            "hardware double",
        );
        let traj = TrajectoryExecutor::with_shots(BackendCalibration::jakarta(), 5, 130);
        let p = traj.prepare_double(&qc, point, 1).unwrap();
        assert_bit_identical(
            &p.replay(first, second).unwrap(),
            &p.replay_naive(first, second).unwrap(),
            "trajectory double",
        );
    }

    #[test]
    fn trajectory_replay_matches_naive_bitwise() {
        // 130 shots = two full blocks plus a partial tail, so the naive
        // path exercises the same block-folding edge cases as the fast one.
        let qc = bv();
        let ex = TrajectoryExecutor::with_shots(BackendCalibration::jakarta(), 42, 130);
        let prepared = ex.prepare(&qc, some_point()).unwrap();
        for (theta, phi) in [(0.0, 0.0), (PI, 0.0), (FRAC_PI_2, FRAC_PI_2), (0.3, 5.9)] {
            let fault = FaultParams::shift(theta, phi);
            let fast = prepared.replay(fault).unwrap();
            let slow = prepared.replay_naive(fault).unwrap();
            assert_bit_identical(&fast, &slow, "trajectory");
        }
    }

    #[test]
    fn trajectory_bank_modes_are_bit_identical() {
        // The parked prefix bank is a cache, not a semantic switch: forcing
        // recompute (limit 0) must reproduce the banked path bit for bit.
        let qc = bv();
        let ex = TrajectoryExecutor::with_shots(BackendCalibration::lima(), 9, 96);
        let point = some_point();
        let faults = [
            FaultParams::shift(PI, 0.0),
            FaultParams::shift(FRAC_PI_2, PI),
        ];
        let marked = mark_injection_site(&qc, point).unwrap();
        let banked =
            TrajectorySweep::prepare(&ex, marked.clone(), 1, point, None, u64::MAX).unwrap();
        let recomputed = TrajectorySweep::prepare(&ex, marked, 1, point, None, 0).unwrap();
        assert!(matches!(banked.bank, PrefixBank::Banked(_)));
        assert!(matches!(recomputed.bank, PrefixBank::Recompute));
        let mut scratch = ReplayScratch::new();
        for &fault in &faults {
            assert_bit_identical(
                &banked.replay(&[fault], &mut scratch),
                &recomputed.replay(&[fault], &mut scratch),
                "bank mode",
            );
        }
    }

    #[test]
    fn trajectory_shot_parallelism_is_bit_identical() {
        // Shot workers only change scheduling: block-partial accumulators
        // are absorbed in block order, so every worker count agrees bitwise.
        // (Other tests may race on this env var; they assert bit-identity
        // regardless of worker count, so the race is benign by design.)
        let qc = bv();
        let ex = TrajectoryExecutor::with_shots(BackendCalibration::jakarta(), 13, 256);
        let prepared = ex.prepare(&qc, some_point()).unwrap();
        let fault = FaultParams::shift(FRAC_PI_2, 0.3);
        std::env::set_var("QUFI_TRAJ_SHOT_THREADS", "1");
        let serial = prepared.replay(fault).unwrap();
        for workers in ["2", "3", "7"] {
            std::env::set_var("QUFI_TRAJ_SHOT_THREADS", workers);
            assert_bit_identical(
                &prepared.replay(fault).unwrap(),
                &serial,
                &format!("{workers} shot workers"),
            );
        }
        std::env::remove_var("QUFI_TRAJ_SHOT_THREADS");
    }

    #[test]
    fn double_replay_enforces_fault_ordering() {
        let qc = bv();
        let p = IdealExecutor.prepare_double(&qc, some_point(), 1).unwrap();
        let weak = FaultParams::shift(FRAC_PI_2, 0.0);
        let strong = FaultParams::shift(PI, 0.0);
        assert!(matches!(
            p.replay(weak, strong),
            Err(ExecError::InvalidFault(_))
        ));
    }

    #[test]
    fn prepare_rejects_bad_sites() {
        let qc = bv();
        let bad = InjectionPoint {
            op_index: qc.size() + 3,
            qubit: 0,
        };
        assert!(matches!(
            IdealExecutor.prepare(&qc, bad),
            Err(ExecError::InjectionOutOfRange { .. })
        ));
        let noisy = NoisyExecutor::new(BackendCalibration::lima());
        assert!(noisy.prepare(&qc, bad).is_err());
        assert!(matches!(
            noisy.prepare_double(&qc, some_point(), 0),
            Err(ExecError::InvalidFault(_))
        ));
    }

    #[test]
    fn forked_path_skips_prefix_work() {
        // The whole point of the engine: replays only evolve the suffix.
        let qc = bv();
        let ex = NoisyExecutor::new(BackendCalibration::jakarta());
        let late_point = {
            // Choose the last gate so the prefix dominates.
            let points = crate::fault::enumerate_injection_points(&qc);
            *points.last().unwrap()
        };
        let prepared = ex.prepare(&qc, late_point).unwrap();
        assert!(
            prepared.prefix_gates() > prepared.suffix_gates(),
            "late-point sweep should park most gates in the prefix \
             ({} prefix vs {} suffix)",
            prepared.prefix_gates(),
            prepared.suffix_gates()
        );
    }

    #[test]
    fn replay_grid_is_grid_ordered_and_thread_count_invariant() {
        let qc = bv();
        let grid = FaultGrid::coarse();
        for prepared in [
            IdealExecutor.prepare(&qc, some_point()).unwrap(),
            NoisyExecutor::new(BackendCalibration::lima())
                .prepare(&qc, some_point())
                .unwrap(),
            HardwareExecutor::new(BackendCalibration::jakarta(), 3)
                .prepare(&qc, some_point())
                .unwrap(),
            TrajectoryExecutor::with_shots(BackendCalibration::jakarta(), 11, 128)
                .prepare(&qc, some_point())
                .unwrap(),
        ] {
            // Serial reference, one replay per cell in grid order.
            let reference: Vec<ProbDist> = grid
                .iter()
                .map(|(t, p)| prepared.replay(FaultParams::shift(t, p)).unwrap())
                .collect();
            for threads in [1, 2, 4, 7] {
                let cells = prepared.replay_grid(&grid, threads).unwrap();
                assert_eq!(cells.len(), grid.len());
                for (i, (cell, want)) in cells.iter().zip(&reference).enumerate() {
                    assert_bit_identical(cell, want, &format!("grid cell {i} at {threads}t"));
                }
            }
        }
    }

    /// The parked snapshot is only borrowed: hammering one prepared sweep
    /// from several threads at once — replay_grid against replay_grid
    /// against single replays — must leave every later replay bit-identical
    /// to the pre-concurrency reference.
    #[test]
    fn concurrent_replay_grid_leaves_the_parked_snapshot_unmutated() {
        let qc = bv();
        let ex = NoisyExecutor::new(BackendCalibration::jakarta());
        let prepared = ex.prepare(&qc, some_point()).unwrap();
        let grid = FaultGrid::coarse();
        let probe = FaultParams::shift(FRAC_PI_2, PI);
        let before = prepared.replay(probe).unwrap();
        let grid_before = prepared.replay_grid(&grid, 1).unwrap();

        let prepared = &*prepared;
        std::thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(|| {
                    let cells = prepared.replay_grid(&grid, 2).unwrap();
                    for (cell, want) in cells.iter().zip(&grid_before) {
                        assert_bit_identical(cell, want, "concurrent grid");
                    }
                });
            }
            scope.spawn(|| {
                for _ in 0..5 {
                    assert_bit_identical(
                        &prepared.replay(probe).unwrap(),
                        &before,
                        "concurrent single replay",
                    );
                }
            });
        });
        assert_bit_identical(
            &prepared.replay(probe).unwrap(),
            &before,
            "post-concurrency replay",
        );
    }

    #[test]
    fn reused_scratch_is_bit_identical_to_fresh_scratch() {
        let qc = bv();
        let ex = NoisyExecutor::new(BackendCalibration::jakarta());
        let prepared = ex.prepare(&qc, some_point()).unwrap();
        let faults = [
            FaultParams::shift(PI, 0.0),
            FaultParams::shift(0.3, 5.9),
            FaultParams::shift(FRAC_PI_2, FRAC_PI_2),
        ];
        let mut scratch = ReplayScratch::new();
        for &fault in &faults {
            let reused = prepared.replay_with(fault, &mut scratch).unwrap();
            let fresh = prepared.replay(fault).unwrap();
            assert_bit_identical(&reused, &fresh, "scratch reuse");
        }
        // The trajectory path keeps its own statevector + workspace in the
        // scratch; reuse across faults must not leak state between replays.
        let traj = TrajectoryExecutor::with_shots(BackendCalibration::jakarta(), 21, 96);
        let prepared = traj.prepare(&qc, some_point()).unwrap();
        for &fault in &faults {
            let reused = prepared.replay_with(fault, &mut scratch).unwrap();
            let fresh = prepared.replay(fault).unwrap();
            assert_bit_identical(&reused, &fresh, "trajectory scratch reuse");
        }
    }

    #[test]
    fn replay_grid_batched_matches_scalar_bitwise() {
        // Bit-identity must hold for every batch width, thread count and
        // grid shape — including a grid with θ-duplicate cells (hoisted
        // trig run), a ragged grid (len not a multiple of the width) and a
        // single-cell grid (which takes the scalar path). (Other tests may
        // race on the env var; every assertion here holds for any width,
        // so the race is benign by design.)
        let qc = bv();
        let grids = [
            FaultGrid::coarse(),
            FaultGrid::custom(vec![0.0, 0.7, 0.7, 2.1, PI], vec![0.0, 1.3, 5.0]),
            FaultGrid::custom(vec![FRAC_PI_2], vec![PI]),
        ];
        for prepared in [
            IdealExecutor.prepare(&qc, some_point()).unwrap(),
            NoisyExecutor::new(BackendCalibration::lima())
                .prepare(&qc, some_point())
                .unwrap(),
            HardwareExecutor::new(BackendCalibration::jakarta(), 3)
                .prepare(&qc, some_point())
                .unwrap(),
        ] {
            for grid in &grids {
                let reference = prepared.replay_grid(grid, 1).unwrap();
                for width in ["1", "3", "8", "16"] {
                    std::env::set_var("QUFI_BATCH_CELLS", width);
                    for threads in [1, 2, 4] {
                        let cells = prepared.replay_grid_batched(grid, threads).unwrap();
                        assert_eq!(cells.len(), grid.len());
                        for (i, (cell, want)) in cells.iter().zip(&reference).enumerate() {
                            assert_bit_identical(
                                cell,
                                want,
                                &format!("batched cell {i} w={width} t={threads}"),
                            );
                        }
                    }
                }
                std::env::remove_var("QUFI_BATCH_CELLS");
            }
        }
    }

    #[test]
    fn trajectory_replay_grid_batched_falls_back_to_scalar() {
        // The trajectory scenario has no batched path: the batched entry
        // point must transparently produce the scalar grid result.
        let qc = bv();
        let ex = TrajectoryExecutor::with_shots(BackendCalibration::jakarta(), 11, 64);
        let prepared = ex.prepare(&qc, some_point()).unwrap();
        let grid = FaultGrid::custom(vec![0.0, PI], vec![0.3]);
        let batched = prepared.replay_grid_batched(&grid, 2).unwrap();
        let scalar = prepared.replay_grid(&grid, 1).unwrap();
        assert_eq!(batched.len(), scalar.len());
        for (cell, want) in batched.iter().zip(&scalar) {
            assert_bit_identical(cell, want, "trajectory fallback");
        }
    }

    #[test]
    fn replay_grid_on_empty_grid_is_empty() {
        let qc = bv();
        let prepared = IdealExecutor.prepare(&qc, some_point()).unwrap();
        let empty = FaultGrid::custom(vec![], vec![0.0]);
        assert!(prepared.replay_grid(&empty, 4).unwrap().is_empty());
    }

    #[test]
    fn null_fault_replay_still_carries_injector_noise() {
        // The injector is a physical runtime gate: even (0,0) adds one
        // noisy gate relative to the clean execution.
        let qc = bv();
        let ex = NoisyExecutor::new(BackendCalibration::jakarta());
        let clean = ex.execute(&qc).unwrap();
        let prepared = ex.prepare(&qc, some_point()).unwrap();
        let null = prepared.replay(FaultParams::shift(0.0, 0.0)).unwrap();
        let tv = clean.tv_distance(&null);
        assert!(tv > 0.0, "injector should cost one gate of noise");
        assert!(tv < 5e-3, "a null fault must stay nearly invisible: {tv}");
    }
}
