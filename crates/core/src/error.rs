//! Execution errors.

use core::fmt;
use qufi_sim::SimError;
use qufi_transpile::TranspileError;

/// Errors surfaced while executing (possibly faulty) circuits.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// The underlying simulator rejected the circuit.
    Sim(SimError),
    /// Transpilation onto the target device failed.
    Transpile(TranspileError),
    /// The fault-free execution produced no usable golden state.
    NoGoldenState,
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Sim(e) => write!(f, "simulation failed: {e}"),
            ExecError::Transpile(e) => write!(f, "transpilation failed: {e}"),
            ExecError::NoGoldenState => write!(f, "no golden state identifiable"),
        }
    }
}

impl std::error::Error for ExecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExecError::Sim(e) => Some(e),
            ExecError::Transpile(e) => Some(e),
            ExecError::NoGoldenState => None,
        }
    }
}

impl From<SimError> for ExecError {
    fn from(e: SimError) -> Self {
        ExecError::Sim(e)
    }
}

impl From<TranspileError> for ExecError {
    fn from(e: TranspileError) -> Self {
        ExecError::Transpile(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_and_displays_sources() {
        let e: ExecError = SimError::NoMeasurements.into();
        assert!(e.to_string().contains("simulation failed"));
        let e: ExecError = TranspileError::DisconnectedTopology.into();
        assert!(e.to_string().contains("transpilation failed"));
        use std::error::Error;
        assert!(e.source().is_some());
    }
}
