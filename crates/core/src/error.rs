//! Execution errors.

use core::fmt;
use qufi_sim::SimError;
use qufi_transpile::TranspileError;

/// Errors surfaced while executing (possibly faulty) circuits.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// The underlying simulator rejected the circuit.
    Sim(SimError),
    /// Transpilation onto the target device failed.
    Transpile(TranspileError),
    /// The fault-free execution produced no usable golden state.
    NoGoldenState,
    /// An injection point does not exist in the target circuit.
    InjectionOutOfRange {
        /// The requested instruction index.
        op_index: usize,
        /// The struck qubit.
        qubit: usize,
        /// Instruction count of the circuit.
        size: usize,
        /// Register width of the circuit.
        width: usize,
    },
    /// A fault specification violates the fault model (e.g. a second fault
    /// exceeding the first, or striking the same qubit twice).
    InvalidFault(String),
    /// The sweep engine lost track of its splice site — a transpiler pass
    /// dropped or duplicated the injection marker.
    Engine(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Sim(e) => write!(f, "simulation failed: {e}"),
            ExecError::Transpile(e) => write!(f, "transpilation failed: {e}"),
            ExecError::NoGoldenState => write!(f, "no golden state identifiable"),
            ExecError::InjectionOutOfRange {
                op_index,
                qubit,
                size,
                width,
            } => write!(
                f,
                "injection point (op {op_index}, qubit {qubit}) outside circuit \
                 of {size} instructions over {width} qubits"
            ),
            ExecError::InvalidFault(why) => write!(f, "invalid fault: {why}"),
            ExecError::Engine(why) => write!(f, "sweep engine failure: {why}"),
        }
    }
}

impl std::error::Error for ExecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExecError::Sim(e) => Some(e),
            ExecError::Transpile(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for ExecError {
    fn from(e: SimError) -> Self {
        ExecError::Sim(e)
    }
}

impl From<TranspileError> for ExecError {
    fn from(e: TranspileError) -> Self {
        ExecError::Transpile(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_and_displays_sources() {
        let e: ExecError = SimError::NoMeasurements.into();
        assert!(e.to_string().contains("simulation failed"));
        let e: ExecError = TranspileError::DisconnectedTopology.into();
        assert!(e.to_string().contains("transpilation failed"));
        use std::error::Error;
        assert!(e.source().is_some());
    }

    #[test]
    fn fault_model_errors_describe_themselves() {
        let e = ExecError::InjectionOutOfRange {
            op_index: 9,
            qubit: 3,
            size: 4,
            width: 2,
        };
        let msg = e.to_string();
        assert!(msg.contains("op 9") && msg.contains("qubit 3"));
        assert!(ExecError::InvalidFault("why".into())
            .to_string()
            .contains("why"));
        assert!(ExecError::Engine("lost marker".into())
            .to_string()
            .contains("lost marker"));
        use std::error::Error;
        assert!(ExecError::InvalidFault("x".into()).source().is_none());
    }
}
