//! Aggregation and rendering of campaign results: the heatmaps, histograms
//! and Δ-maps of the paper's Figures 5–10, plus CSV export for external
//! plotting.

use crate::campaign::{CampaignResult, InjectionRecord};
use crate::double::DoubleCampaignResult;
use crate::fault::FaultGrid;
use crate::metrics::Severity;
use qufi_math::PiFraction;
use std::fmt::Write as _;

/// A mean-QVF map over the (φ, θ) fault lattice — one cell per injected
/// phase-shift configuration, averaged over all injection points that
/// received it (the paper's Fig. 5/6/8 heatmaps).
#[derive(Debug, Clone, PartialEq)]
pub struct Heatmap {
    thetas: Vec<f64>,
    phis: Vec<f64>,
    /// Row-major [phi][theta] mean values; NaN for empty cells.
    values: Vec<f64>,
    counts: Vec<usize>,
}

impl Heatmap {
    /// Builds a heatmap from `(θ, φ, qvf)` samples on the given grid.
    /// Samples not matching a lattice point (within 1e-6 — loose enough to
    /// absorb CSV round-tripping) are ignored.
    pub fn from_samples<I: IntoIterator<Item = (f64, f64, f64)>>(
        grid: &FaultGrid,
        samples: I,
    ) -> Self {
        let thetas = grid.thetas.clone();
        let phis = grid.phis.clone();
        let mut sums = vec![0.0; thetas.len() * phis.len()];
        let mut counts = vec![0usize; sums.len()];
        for (t, p, v) in samples {
            let ti = thetas.iter().position(|&x| (x - t).abs() < 1e-6);
            let pi = phis.iter().position(|&x| (x - p).abs() < 1e-6);
            if let (Some(ti), Some(pi)) = (ti, pi) {
                sums[pi * thetas.len() + ti] += v;
                counts[pi * thetas.len() + ti] += 1;
            }
        }
        let values = sums
            .iter()
            .zip(&counts)
            .map(|(&s, &c)| if c > 0 { s / c as f64 } else { f64::NAN })
            .collect();
        Heatmap {
            thetas,
            phis,
            values,
            counts,
        }
    }

    /// Heatmap of a whole single-fault campaign (Fig. 5).
    pub fn from_campaign(result: &CampaignResult) -> Self {
        Heatmap::from_samples(
            &result.grid,
            result.records.iter().map(|r| (r.theta, r.phi, r.qvf)),
        )
    }

    /// Heatmap restricted to faults on one qubit (Fig. 6).
    pub fn from_campaign_qubit(result: &CampaignResult, qubit: usize) -> Self {
        Heatmap::from_samples(
            &result.grid,
            result
                .records_for_qubit(qubit)
                .iter()
                .map(|r| (r.theta, r.phi, r.qvf)),
        )
    }

    /// First-fault heatmap of a double campaign: each (θ0, φ0) cell averages
    /// over every second-fault configuration (Fig. 8b).
    pub fn from_double_campaign(result: &DoubleCampaignResult) -> Self {
        Heatmap::from_samples(
            &result.grid,
            result.records.iter().map(|r| (r.theta0, r.phi0, r.qvf)),
        )
    }

    /// θ axis values.
    pub fn thetas(&self) -> &[f64] {
        &self.thetas
    }

    /// φ axis values.
    pub fn phis(&self) -> &[f64] {
        &self.phis
    }

    /// Mean QVF at lattice indices (`phi_idx`, `theta_idx`); NaN when empty.
    pub fn value(&self, phi_idx: usize, theta_idx: usize) -> f64 {
        self.values[phi_idx * self.thetas.len() + theta_idx]
    }

    /// Sample count behind a cell.
    pub fn count(&self, phi_idx: usize, theta_idx: usize) -> usize {
        self.counts[phi_idx * self.thetas.len() + theta_idx]
    }

    /// Mean over all non-empty cells.
    pub fn mean(&self) -> f64 {
        let vals: Vec<f64> = self
            .values
            .iter()
            .copied()
            .filter(|v| !v.is_nan())
            .collect();
        crate::metrics::mean(&vals)
    }

    /// Cell-wise difference `self − other` (the ΔQVF map of Fig. 9).
    ///
    /// # Panics
    ///
    /// Panics when the lattices differ.
    pub fn delta(&self, other: &Heatmap) -> Heatmap {
        assert_eq!(self.thetas, other.thetas, "θ lattice mismatch");
        assert_eq!(self.phis, other.phis, "φ lattice mismatch");
        let values = self
            .values
            .iter()
            .zip(&other.values)
            .map(|(&a, &b)| a - b)
            .collect();
        Heatmap {
            thetas: self.thetas.clone(),
            phis: self.phis.clone(),
            values,
            counts: self.counts.clone(),
        }
    }

    /// ASCII rendering in the paper's orientation (φ decreasing downward…
    /// actually φ increases upward, θ rightward). Severity glyphs:
    /// `.` masked (green), `o` dubious (white), `#` SDC (red),
    /// space for empty cells.
    pub fn ascii(&self) -> String {
        let mut out = String::new();
        for (pi, &phi) in self.phis.iter().enumerate().rev() {
            let _ = write!(out, "{:>6} |", PiFraction(phi).to_string());
            for ti in 0..self.thetas.len() {
                let v = self.value(pi, ti);
                let c = if v.is_nan() {
                    ' '
                } else {
                    match Severity::classify(v) {
                        Severity::Masked => '.',
                        Severity::Dubious => 'o',
                        Severity::Sdc => '#',
                    }
                };
                let _ = write!(out, " {c}");
            }
            out.push('\n');
        }
        let _ = write!(out, "{:>6} +", "φ/θ");
        for _ in 0..self.thetas.len() {
            out.push_str("--");
        }
        out.push('\n');
        if let (Some(&first), Some(&last)) = (self.thetas.first(), self.thetas.last()) {
            let _ = writeln!(
                out,
                "{:>8}θ: {} … {} ({} steps)",
                "",
                PiFraction(first),
                PiFraction(last),
                self.thetas.len()
            );
        }
        out
    }

    /// CSV rows `phi,theta,mean_qvf,count` (radians, 6 decimals).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("phi,theta,mean_qvf,count\n");
        for (pi, &phi) in self.phis.iter().enumerate() {
            for (ti, &theta) in self.thetas.iter().enumerate() {
                let v = self.value(pi, ti);
                let _ = writeln!(
                    out,
                    "{phi:.6},{theta:.6},{},{}",
                    if v.is_nan() {
                        "".to_string()
                    } else {
                        format!("{v:.6}")
                    },
                    self.count(pi, ti)
                );
            }
        }
        out
    }
}

/// A fixed-range histogram over `[0, 1]` QVF values (Fig. 7 / Fig. 10).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    edges: Vec<f64>,
    counts: Vec<usize>,
    total: usize,
}

impl Histogram {
    /// Bins `values` into `bins` equal-width buckets over `[0, 1]`; values
    /// outside the range clamp to the boundary bins.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0`.
    pub fn new(values: &[f64], bins: usize) -> Self {
        assert!(bins > 0, "need at least one bin");
        let mut counts = vec![0usize; bins];
        for &v in values {
            let idx = ((v * bins as f64).floor() as isize).clamp(0, bins as isize - 1) as usize;
            counts[idx] += 1;
        }
        let edges = (0..=bins).map(|i| i as f64 / bins as f64).collect();
        Histogram {
            edges,
            counts,
            total: values.len(),
        }
    }

    /// Bin edges (length `bins + 1`).
    pub fn edges(&self) -> &[f64] {
        &self.edges
    }

    /// Raw counts per bin.
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// Probability-density values per bin (integrates to 1), as plotted on
    /// the paper's density axes.
    pub fn density(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        let width = 1.0 / self.counts.len() as f64;
        self.counts
            .iter()
            .map(|&c| c as f64 / self.total as f64 / width)
            .collect()
    }

    /// A rough terminal rendering: one row per bin with a `#` bar.
    pub fn ascii(&self) -> String {
        let max = self.counts.iter().copied().max().unwrap_or(1).max(1);
        let mut out = String::new();
        for (i, &c) in self.counts.iter().enumerate() {
            let bar = "#".repeat(c * 50 / max);
            let _ = writeln!(
                out,
                "[{:.2},{:.2}) {:>7} |{bar}",
                self.edges[i],
                self.edges[i + 1],
                c
            );
        }
        out
    }

    /// CSV rows `bin_low,bin_high,count,density`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("bin_low,bin_high,count,density\n");
        let dens = self.density();
        for (i, &den) in dens.iter().enumerate() {
            let _ = writeln!(
                out,
                "{:.4},{:.4},{},{:.6}",
                self.edges[i],
                self.edges[i + 1],
                self.counts[i],
                den
            );
        }
        out
    }
}

/// CSV export of raw single-fault records:
/// `op_index,qubit,theta,phi,qvf,severity`.
pub fn records_to_csv(records: &[InjectionRecord]) -> String {
    let mut out = String::from("op_index,qubit,theta,phi,qvf,severity\n");
    for r in records {
        let _ = writeln!(
            out,
            "{},{},{:.9},{:.9},{:.6},{}",
            r.point.op_index,
            r.point.qubit,
            r.theta,
            r.phi,
            r.qvf,
            match Severity::classify(r.qvf) {
                Severity::Masked => "masked",
                Severity::Dubious => "dubious",
                Severity::Sdc => "sdc",
            }
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::InjectionPoint;
    use std::f64::consts::PI;

    fn sample_grid() -> FaultGrid {
        FaultGrid::custom(vec![0.0, PI], vec![0.0, PI])
    }

    fn rec(theta: f64, phi: f64, qvf: f64, qubit: usize) -> InjectionRecord {
        InjectionRecord {
            point: InjectionPoint { op_index: 0, qubit },
            theta,
            phi,
            qvf,
        }
    }

    #[test]
    fn heatmap_averages_cells() {
        let grid = sample_grid();
        let samples = vec![(0.0, 0.0, 0.2), (0.0, 0.0, 0.4), (PI, PI, 1.0)];
        let hm = Heatmap::from_samples(&grid, samples);
        assert!((hm.value(0, 0) - 0.3).abs() < 1e-12);
        assert_eq!(hm.count(0, 0), 2);
        assert!((hm.value(1, 1) - 1.0).abs() < 1e-12);
        assert!(hm.value(0, 1).is_nan());
    }

    #[test]
    fn heatmap_from_campaign_filters_by_qubit() {
        let grid = sample_grid();
        let result = CampaignResult {
            circuit_name: "t".into(),
            golden: vec![0],
            baseline_qvf: 0.1,
            records: vec![rec(0.0, 0.0, 0.0, 0), rec(0.0, 0.0, 1.0, 1)],
            grid: grid.clone(),
        };
        let all = Heatmap::from_campaign(&result);
        assert!((all.value(0, 0) - 0.5).abs() < 1e-12);
        let q0 = Heatmap::from_campaign_qubit(&result, 0);
        assert!((q0.value(0, 0) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn delta_subtracts_cellwise() {
        let grid = sample_grid();
        let a = Heatmap::from_samples(&grid, vec![(0.0, 0.0, 0.8)]);
        let b = Heatmap::from_samples(&grid, vec![(0.0, 0.0, 0.3)]);
        let d = a.delta(&b);
        assert!((d.value(0, 0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ascii_uses_severity_glyphs() {
        let grid = sample_grid();
        let hm =
            Heatmap::from_samples(&grid, vec![(0.0, 0.0, 0.1), (PI, 0.0, 0.5), (0.0, PI, 0.9)]);
        let art = hm.ascii();
        assert!(art.contains('.'), "masked glyph missing:\n{art}");
        assert!(art.contains('o'), "dubious glyph missing:\n{art}");
        assert!(art.contains('#'), "sdc glyph missing:\n{art}");
    }

    #[test]
    fn histogram_bins_and_density() {
        let h = Histogram::new(&[0.05, 0.05, 0.95, 0.5], 10);
        assert_eq!(h.counts()[0], 2);
        assert_eq!(h.counts()[9], 1);
        assert_eq!(h.counts()[5], 1);
        // Density integrates to 1.
        let integral: f64 = h.density().iter().map(|d| d * 0.1).sum();
        assert!((integral - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_clamps_out_of_range() {
        let h = Histogram::new(&[-0.1, 1.5, 1.0], 4);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[3], 2);
    }

    #[test]
    fn csv_outputs_have_headers_and_rows() {
        let grid = sample_grid();
        let hm = Heatmap::from_samples(&grid, vec![(0.0, 0.0, 0.25)]);
        let csv = hm.to_csv();
        assert!(csv.starts_with("phi,theta,mean_qvf,count\n"));
        assert_eq!(csv.lines().count(), 1 + 4);
        let rcsv = records_to_csv(&[rec(0.0, 0.0, 0.7, 2)]);
        assert!(rcsv.contains("sdc"));
        let h = Histogram::new(&[0.5], 2);
        assert!(h.to_csv().contains("bin_low"));
    }

    #[test]
    fn histogram_ascii_renders_bars() {
        let h = Histogram::new(&[0.1, 0.1, 0.1, 0.9], 2);
        let art = h.ascii();
        assert!(art.lines().count() == 2);
        assert!(art.contains('#'));
    }
}
