//! The Quantum Vulnerability Factor (paper §IV-A).
//!
//! Quantum outputs are probability distributions, so "did the fault corrupt
//! the output?" is a question about how confidently the correct state can
//! still be selected. The paper answers it with the Michelson contrast
//! between the correct state's probability `P(A)` and the strongest
//! incorrect state's probability `P(B)`:
//!
//! ```text
//! Contrast = (P(A) − P(B)) / (P(A) + P(B))       ∈ [−1, 1]
//! QVF      = 1 − (Contrast + 1) / 2              ∈ [0, 1]
//! ```
//!
//! `QVF < 0.45` → the fault is **masked**; `0.45–0.55` → the output is
//! **dubious** (a detectable error); `> 0.55` → a **silent data corruption**
//! (an incorrect state is now the most probable).

use qufi_sim::ProbDist;

/// Lower QVF bound of the "dubious" band (paper §V-B).
pub const DUBIOUS_LOW: f64 = 0.45;
/// Upper QVF bound of the "dubious" band.
pub const DUBIOUS_HIGH: f64 = 0.55;

/// Michelson contrast between the correct-state probability `pa` and the
/// strongest incorrect-state probability `pb`.
///
/// Returns 0 when both probabilities vanish (completely ambiguous output).
///
/// # Panics
///
/// Panics on negative inputs.
pub fn michelson_contrast(pa: f64, pb: f64) -> f64 {
    assert!(pa >= 0.0 && pb >= 0.0, "probabilities must be nonnegative");
    let denom = pa + pb;
    if denom <= 0.0 {
        0.0
    } else {
        (pa - pb) / denom
    }
}

/// QVF from the two contrast probabilities: `1 − (contrast + 1)/2`.
///
/// # Example
///
/// ```
/// use qufi_core::metrics::qvf;
///
/// assert_eq!(qvf(1.0, 0.0), 0.0); // perfectly correct
/// assert_eq!(qvf(0.0, 1.0), 1.0); // perfectly wrong
/// assert_eq!(qvf(0.3, 0.3), 0.5); // dubious
/// ```
pub fn qvf(pa: f64, pb: f64) -> f64 {
    1.0 - (michelson_contrast(pa, pb) + 1.0) / 2.0
}

/// QVF of a measured distribution given the set of correct outcome indices:
/// `P(A)` aggregates all golden states (multi-state circuits supported,
/// §IV-A), `P(B)` is the strongest non-golden state.
///
/// # Panics
///
/// Panics if `golden` is empty or covers every outcome.
pub fn qvf_from_dist(dist: &ProbDist, golden: &[usize]) -> f64 {
    assert!(!golden.is_empty(), "need at least one golden state");
    let pa: f64 = golden.iter().map(|&g| dist.prob(g)).sum();
    let (_, pb) = dist
        .most_probable_excluding(golden)
        .expect("golden states cover the whole outcome space");
    qvf(pa, pb)
}

/// Fault-severity classes derived from QVF (paper §V-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Severity {
    /// QVF < 0.45: the correct output still clearly wins — a masked fault.
    Masked,
    /// 0.45 ≤ QVF ≤ 0.55: correct and incorrect states are comparably
    /// probable — a detectable error.
    Dubious,
    /// QVF > 0.55: an incorrect state is the likely readout — a silent
    /// data corruption.
    Sdc,
}

impl Severity {
    /// Classifies a QVF value.
    pub fn classify(qvf: f64) -> Severity {
        if qvf < DUBIOUS_LOW {
            Severity::Masked
        } else if qvf <= DUBIOUS_HIGH {
            Severity::Dubious
        } else {
            Severity::Sdc
        }
    }

    /// The heatmap colour the paper assigns to this class.
    pub fn color_name(&self) -> &'static str {
        match self {
            Severity::Masked => "green",
            Severity::Dubious => "white",
            Severity::Sdc => "red",
        }
    }
}

/// Mean of a slice (0 for empty input).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population standard deviation.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contrast_extremes() {
        assert_eq!(michelson_contrast(1.0, 0.0), 1.0);
        assert_eq!(michelson_contrast(0.0, 1.0), -1.0);
        assert_eq!(michelson_contrast(0.5, 0.5), 0.0);
        assert_eq!(michelson_contrast(0.0, 0.0), 0.0);
    }

    #[test]
    fn qvf_range_and_monotonicity() {
        // QVF decreases as the correct state gains probability.
        let mut prev = f64::INFINITY;
        for i in 0..=10 {
            let pa = i as f64 / 10.0;
            let v = qvf(pa, 1.0 - pa);
            assert!((0.0..=1.0).contains(&v));
            assert!(v <= prev);
            prev = v;
        }
    }

    #[test]
    fn fig4_worked_example() {
        // Fig. 4 right panel: faulty P(101)=0.763 (A), strongest wrong
        // state P(100)=0.169 (B). Contrast = 0.637…, QVF ≈ 0.181.
        let c = michelson_contrast(0.763, 0.169);
        assert!((c - 0.637339).abs() < 1e-4);
        let v = qvf(0.763, 0.169);
        assert!((v - (1.0 - (c + 1.0) / 2.0)).abs() < 1e-12);
        assert_eq!(Severity::classify(v), Severity::Masked);
    }

    #[test]
    fn qvf_from_dist_single_golden() {
        let d = ProbDist::from_probs(vec![0.1, 0.7, 0.15, 0.05], 2);
        // golden = state 1; strongest wrong = state 2 (0.15).
        let v = qvf_from_dist(&d, &[1]);
        assert!((v - qvf(0.7, 0.15)).abs() < 1e-12);
    }

    #[test]
    fn qvf_from_dist_aggregates_multiple_golden() {
        // GHZ-like: both all-zeros and all-ones are correct.
        let d = ProbDist::from_probs(vec![0.45, 0.05, 0.05, 0.45], 2);
        let v = qvf_from_dist(&d, &[0, 3]);
        assert!((v - qvf(0.9, 0.05)).abs() < 1e-12);
        assert_eq!(Severity::classify(v), Severity::Masked);
    }

    #[test]
    fn severity_thresholds() {
        assert_eq!(Severity::classify(0.0), Severity::Masked);
        assert_eq!(Severity::classify(0.4499), Severity::Masked);
        assert_eq!(Severity::classify(0.45), Severity::Dubious);
        assert_eq!(Severity::classify(0.5), Severity::Dubious);
        assert_eq!(Severity::classify(0.55), Severity::Dubious);
        assert_eq!(Severity::classify(0.5501), Severity::Sdc);
        assert_eq!(Severity::classify(1.0), Severity::Sdc);
    }

    #[test]
    fn severity_colors_match_paper() {
        assert_eq!(Severity::Masked.color_name(), "green");
        assert_eq!(Severity::Dubious.color_name(), "white");
        assert_eq!(Severity::Sdc.color_name(), "red");
    }

    #[test]
    fn stats_helpers() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert!((stddev(&[1.0, 3.0]) - 1.0).abs() < 1e-12);
        assert_eq!(stddev(&[5.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "golden states cover")]
    fn all_golden_panics() {
        let d = ProbDist::uniform(1);
        let _ = qvf_from_dist(&d, &[0, 1]);
    }
}
