//! Deterministic retry scheduling, shared by the shard workers'
//! lease/claim retries and the campaign service's worker supervision.
//!
//! [`Backoff`] is capped exponential backoff whose jitter is *derived*,
//! not sampled: every delay comes from the attempt number and a
//! [`SeedHasher`] hash keyed on the caller-supplied string (worker,
//! unit, attempt), so a given caller replays the identical schedule
//! every run — no wall-clock RNG anywhere in the retry path.
//!
//! [`SeedHasher`]: crate::engine::SeedHasher

use crate::engine::SeedHasher;
use std::time::Duration;

/// Capped exponential backoff with a deterministic, derived jitter —
/// the retry schedule for transient failures.
#[derive(Debug, Clone)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    attempts_left: u32,
    attempt: u32,
    seed: u64,
}

impl Backoff {
    /// A schedule of `max_attempts` delays starting at `base`, doubling,
    /// capped at `cap`, jittered by a hash of (`seed_key`, attempt).
    pub fn new(base: Duration, cap: Duration, max_attempts: u32, seed_key: &str) -> Backoff {
        Backoff {
            base,
            cap,
            attempts_left: max_attempts,
            attempt: 0,
            seed: SeedHasher::new().mix_bytes(seed_key.as_bytes()).finish(),
        }
    }

    /// The next delay to sleep, or `None` when the budget is exhausted.
    pub fn next_delay(&mut self) -> Option<Duration> {
        if self.attempts_left == 0 {
            return None;
        }
        self.attempts_left -= 1;
        let exp = self
            .base
            .saturating_mul(1u32 << self.attempt.min(16))
            .min(self.cap);
        // Jitter in [0, base): derived from the key and attempt number,
        // so the schedule replays identically — never wall-clock RNG.
        let jitter_ns = SeedHasher::new()
            .mix_u64(self.seed)
            .mix_u64(self.attempt as u64)
            .finish()
            % self.base.as_nanos().max(1) as u64;
        self.attempt += 1;
        Some(exp + Duration::from_nanos(jitter_ns))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_deterministic_per_key_and_capped() {
        let collect = |key: &str| {
            let mut b = Backoff::new(Duration::from_millis(5), Duration::from_millis(40), 6, key);
            std::iter::from_fn(move || b.next_delay()).collect::<Vec<_>>()
        };
        let a = collect("w1/unit-3");
        assert_eq!(a, collect("w1/unit-3"), "same key replays identically");
        assert_ne!(a, collect("w2/unit-3"), "different keys de-synchronize");
        assert_eq!(a.len(), 6);
        // Capped: exponential part never exceeds cap (+ jitter < base).
        for d in &a {
            assert!(*d < Duration::from_millis(45), "{d:?}");
        }
        // Exhausted budget yields None forever.
        let mut b = Backoff::new(Duration::from_millis(1), Duration::from_millis(2), 1, "k");
        assert!(b.next_delay().is_some());
        assert!(b.next_delay().is_none());
        assert!(b.next_delay().is_none());
    }
}
