//! A shared, single-flight prepare cache — the precompute-once-serve-many
//! memoization extracted from the ad-hoc `Mutex<HashMap<…>>` caches that
//! grew inside [`crate::executor`] (noise models per active-qubit set)
//! and that the sweep engine's prepare pipeline (transpile →
//! [`qufi_noise::NoisePlan`] compile → prefix evolution, see
//! [`crate::engine`]) wants when many clients hit the same workload.
//!
//! Three properties matter to the multi-tenant campaign service built on
//! top of this:
//!
//! * **Single-flight.** When N threads ask for the same missing key at
//!   once, exactly one runs the builder; the rest block on a condvar and
//!   receive the same [`Arc`]. Prepare work (transpile + `NoisePlan` +
//!   prefix evolution) is seconds-scale, so duplicate computation — not
//!   lock contention — is the cost to kill.
//! * **Bounded.** The cache holds at most `capacity` ready entries and
//!   evicts in insertion order. Prepared sweeps park density matrices;
//!   an unbounded cache is an OOM with extra steps.
//! * **Failure is not cached.** A builder error clears the in-flight
//!   slot and wakes waiters so the next caller retries — a transient
//!   failure must not poison the key forever.
//!
//! Determinism: the cache only memoizes values that are pure functions
//! of their key (that is the caller's contract), so cache hits can never
//! change a computed byte — only when the work happens.

use std::collections::{HashMap, VecDeque};
use std::hash::Hash;
use std::sync::{Arc, Condvar, Mutex};

/// Telemetry counter names for one cache instance (all optional — a
/// cache without counters records nothing).
#[derive(Debug, Clone, Copy)]
pub struct CacheCounters {
    /// Incremented on every ready-entry hit.
    pub hits: &'static str,
    /// Incremented when a caller becomes the builder for a missing key.
    pub misses: &'static str,
    /// Incremented per entry evicted by the capacity bound.
    pub evictions: &'static str,
    /// Incremented when a caller blocks on another thread's build.
    pub waits: &'static str,
}

/// Point-in-time cache accounting, for tests and health reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Ready-entry hits served.
    pub hits: u64,
    /// Builds started (one per distinct missing key request).
    pub misses: u64,
    /// Entries evicted by the capacity bound.
    pub evictions: u64,
    /// Ready entries currently held.
    pub len: usize,
}

enum Slot<V> {
    /// A builder thread is computing this entry.
    Building,
    /// The entry is ready to share.
    Ready(Arc<V>),
}

/// Unwind insurance for the builder: if `build()` panics, the
/// `Building` slot must be cleared and waiters woken — otherwise every
/// thread parked on the condvar for that key blocks forever. Armed
/// between claiming the slot and `build()` returning; a normal return
/// (Ok *or* Err) disarms it and lets the caller's own cleanup run.
struct BuildGuard<'a, K: Eq + Hash + Clone, V> {
    cache: &'a PrepareCache<K, V>,
    key: Option<K>,
}

impl<K: Eq + Hash + Clone, V> BuildGuard<'_, K, V> {
    fn disarm(&mut self) {
        self.key = None;
    }
}

impl<K: Eq + Hash + Clone, V> Drop for BuildGuard<'_, K, V> {
    fn drop(&mut self) {
        if let Some(key) = self.key.take() {
            let mut inner = self.cache.inner.lock().unwrap_or_else(|e| e.into_inner());
            inner.map.remove(&key);
            drop(inner);
            self.cache.ready.notify_all();
        }
    }
}

struct Inner<K, V> {
    map: HashMap<K, Slot<V>>,
    /// Ready keys in insertion order — the eviction queue.
    order: VecDeque<K>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// A bounded, thread-safe, single-flight memo cache. See the module docs.
pub struct PrepareCache<K, V> {
    inner: Mutex<Inner<K, V>>,
    ready: Condvar,
    capacity: usize,
    counters: Option<CacheCounters>,
}

impl<K: Eq + Hash + Clone, V> PrepareCache<K, V> {
    /// A cache holding at most `capacity` ready entries (minimum 1).
    pub fn new(capacity: usize) -> Self {
        PrepareCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                order: VecDeque::new(),
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
            counters: None,
        }
    }

    /// Attaches telemetry counters (recorded through [`qufi_obs`]).
    #[must_use]
    pub fn instrumented(mut self, counters: CacheCounters) -> Self {
        self.counters = Some(counters);
        self
    }

    /// Returns the cached value for `key`, building it with `build` on a
    /// miss. Concurrent callers of the same missing key build once: one
    /// thread runs `build` (outside the lock), the rest wait and share
    /// the result. A `build` error is returned to the builder *and not
    /// cached* — waiters wake and the next one retries.
    ///
    /// # Errors
    ///
    /// Whatever `build` fails with.
    pub fn get_or_try_build<E>(
        &self,
        key: &K,
        build: impl FnOnce() -> Result<V, E>,
    ) -> Result<Arc<V>, E> {
        {
            let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                match inner.map.get(key) {
                    Some(Slot::Ready(v)) => {
                        let v = Arc::clone(v);
                        inner.hits += 1;
                        if let Some(c) = &self.counters {
                            qufi_obs::add(c.hits, 1);
                        }
                        return Ok(v);
                    }
                    Some(Slot::Building) => {
                        if let Some(c) = &self.counters {
                            qufi_obs::add(c.waits, 1);
                        }
                        inner = self.ready.wait(inner).unwrap_or_else(|e| e.into_inner());
                    }
                    None => {
                        inner.map.insert(key.clone(), Slot::Building);
                        inner.misses += 1;
                        if let Some(c) = &self.counters {
                            qufi_obs::add(c.misses, 1);
                        }
                        break;
                    }
                }
            }
        }
        // Build outside the lock: prepare work is seconds-scale and other
        // keys must stay servable meanwhile. The guard makes a builder
        // panic behave like a build error (slot cleared, waiters woken)
        // instead of wedging every waiter on the condvar.
        let mut guard = BuildGuard {
            cache: self,
            key: Some(key.clone()),
        };
        let built = build();
        guard.disarm();
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let result = match built {
            Ok(value) => {
                let value = Arc::new(value);
                inner
                    .map
                    .insert(key.clone(), Slot::Ready(Arc::clone(&value)));
                inner.order.push_back(key.clone());
                while inner.order.len() > self.capacity {
                    if let Some(old) = inner.order.pop_front() {
                        inner.map.remove(&old);
                        inner.evictions += 1;
                        if let Some(c) = &self.counters {
                            qufi_obs::add(c.evictions, 1);
                        }
                    }
                }
                Ok(value)
            }
            Err(e) => {
                inner.map.remove(key);
                Err(e)
            }
        };
        drop(inner);
        self.ready.notify_all();
        result
    }

    /// Infallible [`PrepareCache::get_or_try_build`].
    pub fn get_or_build(&self, key: &K, build: impl FnOnce() -> V) -> Arc<V> {
        match self.get_or_try_build(key, || Ok::<V, std::convert::Infallible>(build())) {
            Ok(v) => v,
            Err(never) => match never {},
        }
    }

    /// Current accounting.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            len: inner.order.len(),
        }
    }
}

impl<K, V> std::fmt::Debug for PrepareCache<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        f.debug_struct("PrepareCache")
            .field("capacity", &self.capacity)
            .field("len", &inner.order.len())
            .field("hits", &inner.hits)
            .field("misses", &inner.misses)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn hit_shares_the_same_arc_and_builds_once() {
        let cache: PrepareCache<u32, String> = PrepareCache::new(4);
        let builds = AtomicUsize::new(0);
        let a = cache.get_or_build(&7, || {
            builds.fetch_add(1, Ordering::SeqCst);
            "seven".to_string()
        });
        let b = cache.get_or_build(&7, || {
            builds.fetch_add(1, Ordering::SeqCst);
            "SEVEN".to_string()
        });
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(builds.load(Ordering::SeqCst), 1);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.len), (1, 1, 1));
    }

    #[test]
    fn capacity_evicts_in_insertion_order() {
        let cache: PrepareCache<u32, u32> = PrepareCache::new(2);
        for k in 0..3 {
            cache.get_or_build(&k, || k * 10);
        }
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.stats().len, 2);
        // Key 0 was evicted → rebuilding is a miss; key 2 is still a hit.
        let builds = AtomicUsize::new(0);
        cache.get_or_build(&0, || {
            builds.fetch_add(1, Ordering::SeqCst);
            0
        });
        cache.get_or_build(&2, || {
            builds.fetch_add(1, Ordering::SeqCst);
            99
        });
        assert_eq!(builds.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn build_failure_is_not_cached() {
        let cache: PrepareCache<u32, u32> = PrepareCache::new(2);
        let err = cache.get_or_try_build(&1, || Err::<u32, &str>("boom"));
        assert_eq!(err.unwrap_err(), "boom");
        // The slot cleared: the next caller builds (successfully) anew.
        let v = cache.get_or_try_build(&1, || Ok::<u32, &str>(5)).unwrap();
        assert_eq!(*v, 5);
    }

    #[test]
    fn builder_panic_clears_the_slot_and_wakes_waiters() {
        let cache: Arc<PrepareCache<u8, u32>> = Arc::new(PrepareCache::new(2));
        let entered = Arc::new(std::sync::Barrier::new(2));
        let panicker = {
            let cache = Arc::clone(&cache);
            let entered = Arc::clone(&entered);
            std::thread::spawn(move || {
                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    cache.get_or_build(&9, || {
                        entered.wait();
                        // Give the waiter time to park on the condvar.
                        std::thread::sleep(std::time::Duration::from_millis(30));
                        panic!("builder bug")
                    })
                }));
            })
        };
        let waiter = {
            let cache = Arc::clone(&cache);
            let entered = Arc::clone(&entered);
            std::thread::spawn(move || {
                entered.wait();
                // Must not hang: the panicked build clears the slot and
                // this caller becomes the (successful) builder.
                *cache.get_or_build(&9, || 7)
            })
        };
        panicker.join().unwrap();
        assert_eq!(waiter.join().unwrap(), 7);
        // The key stays fully serviceable afterwards.
        assert_eq!(*cache.get_or_build(&9, || 99), 7);
    }

    #[test]
    fn concurrent_same_key_single_flights() {
        let cache: Arc<PrepareCache<u8, u64>> = Arc::new(PrepareCache::new(4));
        let builds = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let cache = Arc::clone(&cache);
            let builds = Arc::clone(&builds);
            handles.push(std::thread::spawn(move || {
                *cache.get_or_build(&1, || {
                    builds.fetch_add(1, Ordering::SeqCst);
                    // Widen the race window: waiters must block, not build.
                    std::thread::sleep(std::time::Duration::from_millis(20));
                    42
                })
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), 42);
        }
        assert_eq!(builds.load(Ordering::SeqCst), 1);
    }
}
