//! Reliability-aware qubit mapping.
//!
//! The paper's §I motivation: QVF information "allows a reliability-aware
//! mapping of the circuit qubits to physical qubits, predicts the effects
//! of faults in the quantum computation, and focuses the eventual
//! additional fault tolerance solution to the most critical qubit(s)".
//!
//! This module closes that loop: it ranks **logical** qubits by their
//! measured fault sensitivity (from a campaign) and **physical** qubits by
//! their calibration quality, then assigns the most vulnerable logical
//! qubits to the best physical ones — within a dense connected subgraph so
//! routing stays cheap.
//!
//! It also provides the inverse direction used by the forked-state sweep
//! engine: carrying a **logical injection site** through the transpiler.
//! The engine plants a [splice marker](mark_injection_site) — a sentinel
//! barrier — right after the target instruction. Barriers ride through
//! routing (their qubits are remapped as SWAPs move the logical qubit),
//! basis translation and optimization untouched, so
//! [`extract_splice_sites`] can recover, in the *physical* circuit, both
//! the instruction boundary and the physical qubit where the injector gate
//! must be spliced — without re-transpiling per fault configuration.

use crate::campaign::CampaignResult;
use crate::error::ExecError;
use crate::fault::{check_double_site, check_injection_point, InjectionPoint};
use crate::metrics::{mean, Severity};
use qufi_noise::BackendCalibration;
use qufi_sim::circuit::Op;
use qufi_sim::QuantumCircuit;
use qufi_transpile::{CouplingMap, Layout};

/// Fault-sensitivity summary of one logical qubit.
#[derive(Debug, Clone, PartialEq)]
pub struct QubitReliability {
    /// The logical qubit.
    pub qubit: usize,
    /// Mean QVF over all faults injected on this qubit.
    pub mean_qvf: f64,
    /// Fraction of injections that were silent data corruptions.
    pub sdc_fraction: f64,
    /// Number of injections behind the estimate.
    pub samples: usize,
}

/// Per-qubit reliability profile of a campaign, sorted **most vulnerable
/// first** (descending mean QVF).
pub fn qubit_reliability(result: &CampaignResult) -> Vec<QubitReliability> {
    let mut out: Vec<QubitReliability> = result
        .injected_qubits()
        .into_iter()
        .map(|q| {
            let records = result.records_for_qubit(q);
            let qvfs: Vec<f64> = records.iter().map(|r| r.qvf).collect();
            let sdc = records
                .iter()
                .filter(|r| Severity::classify(r.qvf) == Severity::Sdc)
                .count();
            QubitReliability {
                qubit: q,
                mean_qvf: mean(&qvfs),
                sdc_fraction: sdc as f64 / records.len().max(1) as f64,
                samples: records.len(),
            }
        })
        .collect();
    out.sort_by(|a, b| {
        b.mean_qvf
            .partial_cmp(&a.mean_qvf)
            .expect("QVF is finite")
            .then(a.qubit.cmp(&b.qubit))
    });
    out
}

/// A calibration-quality score per physical qubit — higher is better.
/// Combines coherence (T1, T2), gate fidelity and readout fidelity on a
/// log scale so no single term dominates.
pub fn physical_quality(cal: &BackendCalibration) -> Vec<(usize, f64)> {
    cal.qubits
        .iter()
        .enumerate()
        .map(|(q, c)| {
            let coherence = (c.t1 * 1e6).ln() + (c.t2 * 1e6).ln();
            let gate = -(c.gate_error_1q.max(1e-9)).ln();
            let readout = -((c.readout_p01 + c.readout_p10).max(1e-9)).ln();
            (q, coherence + gate + readout)
        })
        .collect()
}

/// Builds a reliability-aware initial layout: the dense connected subgraph
/// hosts the circuit, and within it the most fault-sensitive logical qubits
/// (per `campaign`) take the highest-quality physical seats (per `cal`).
///
/// # Panics
///
/// Panics if the device is smaller than the campaign's qubit count.
pub fn reliability_aware_layout(campaign: &CampaignResult, cal: &BackendCalibration) -> Layout {
    let ranking = qubit_reliability(campaign);
    let n = ranking.len();
    let cm = CouplingMap::from_edges(cal.num_qubits(), cal.coupling());
    assert!(n <= cm.num_qubits(), "device too small for campaign");

    // Members of the dense subgraph (any assignment order).
    let dense = Layout::dense(&cm, n);
    let mut members: Vec<usize> = (0..n).map(|l| dense.physical(l)).collect();
    // Order members by calibration quality, best first.
    let quality = physical_quality(cal);
    members.sort_by(|&a, &b| {
        quality[b]
            .1
            .partial_cmp(&quality[a].1)
            .expect("scores are finite")
    });

    // Most vulnerable logical → best physical.
    let mut phys = vec![usize::MAX; n];
    for (rank, entry) in ranking.iter().enumerate() {
        phys[entry.qubit] = members[rank];
    }
    Layout::from_mapping(phys, cm.num_qubits())
}

/// Where an injector gate must be spliced into a circuit: right **before**
/// instruction `index`, on `qubit` (a *physical* qubit when the sites were
/// extracted from a transpiled circuit).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpliceSite {
    /// Instruction index the injector goes in front of.
    pub index: usize,
    /// The struck qubit, in the coordinates of the carrying circuit.
    pub qubit: usize,
}

/// A splice marker is a barrier whose operand list names the same qubit
/// twice — a shape no circuit builder produces (real barriers list distinct
/// qubits), so it is unambiguous in-band through every transpiler pass.
fn is_marker(op: &Op) -> bool {
    matches!(op, Op::Barrier(qs) if qs.len() == 2 && qs[0] == qs[1])
}

fn marker(qubit: usize) -> Op {
    Op::Barrier(vec![qubit, qubit])
}

fn with_markers(
    qc: &QuantumCircuit,
    point: InjectionPoint,
    qubits: &[usize],
) -> Result<QuantumCircuit, ExecError> {
    check_injection_point(qc, point)?;
    let mut marked = QuantumCircuit::with_name(qc.num_qubits(), qc.num_clbits(), &qc.name);
    for (i, op) in qc.instructions().enumerate() {
        if is_marker(op) {
            return Err(ExecError::Engine(format!(
                "circuit {:?} already carries a splice marker at instruction {i}",
                qc.name
            )));
        }
        push_op(&mut marked, op.clone());
        if i == point.op_index {
            for &q in qubits {
                push_op(&mut marked, marker(q));
            }
        }
    }
    Ok(marked)
}

fn push_op(qc: &mut QuantumCircuit, op: Op) {
    match op {
        Op::Gate { gate, qubits } => {
            qc.append(gate, &qubits);
        }
        Op::Barrier(qs) => {
            qc.barrier(&qs);
        }
        Op::Measure { qubit, clbit } => {
            qc.measure(qubit, clbit);
        }
    }
}

/// Returns a copy of `qc` carrying a splice marker right after
/// `point.op_index` on `point.qubit`. Transpile the marked circuit, then
/// recover the physical splice site with [`extract_splice_sites`].
///
/// # Errors
///
/// [`ExecError::InjectionOutOfRange`] for nonexistent points and
/// [`ExecError::Engine`] if the circuit already carries a marker.
pub fn mark_injection_site(
    qc: &QuantumCircuit,
    point: InjectionPoint,
) -> Result<QuantumCircuit, ExecError> {
    with_markers(qc, point, &[point.qubit])
}

/// Like [`mark_injection_site`], but plants two markers at the same
/// position: first the struck qubit, then the neighboring qubit that
/// receives the second (weaker) fault of a double injection (§III-C).
///
/// # Errors
///
/// Same failure modes as [`mark_injection_site`].
pub fn mark_double_injection_site(
    qc: &QuantumCircuit,
    point: InjectionPoint,
    neighbor: usize,
) -> Result<QuantumCircuit, ExecError> {
    check_double_site(qc, point, neighbor)?;
    with_markers(qc, point, &[point.qubit, neighbor])
}

/// Strips every splice marker out of `qc` (typically a transpiled marked
/// circuit) and reports where each one sat: the instruction boundary in the
/// *stripped* circuit and the qubit the marker tracked — remapped to
/// physical coordinates by routing, including any SWAP movement before the
/// injection site.
///
/// Sites come back in program order (for a double injection: struck qubit
/// first, neighbor second).
pub fn extract_splice_sites(qc: &QuantumCircuit) -> (QuantumCircuit, Vec<SpliceSite>) {
    let mut stripped = QuantumCircuit::with_name(qc.num_qubits(), qc.num_clbits(), &qc.name);
    let mut sites = Vec::new();
    for op in qc.instructions() {
        if let Op::Barrier(qs) = op {
            if qs.len() == 2 && qs[0] == qs[1] {
                sites.push(SpliceSite {
                    index: stripped.size(),
                    qubit: qs[0],
                });
                continue;
            }
        }
        push_op(&mut stripped, op.clone());
    }
    (stripped, sites)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{run_single_campaign, CampaignOptions};
    use crate::executor::IdealExecutor;
    use crate::fault::FaultGrid;
    use qufi_algos::bernstein_vazirani;

    fn small_campaign() -> CampaignResult {
        let w = bernstein_vazirani(0b101, 3);
        run_single_campaign(
            &w.circuit,
            &w.correct_outputs,
            &IdealExecutor,
            &CampaignOptions {
                grid: FaultGrid::coarse(),
                points: None,
                threads: 0,
                naive: false,
            },
        )
        .expect("campaign")
    }

    #[test]
    fn reliability_ranking_is_sorted_and_complete() {
        let res = small_campaign();
        let ranking = qubit_reliability(&res);
        assert_eq!(ranking.len(), 4);
        for w in ranking.windows(2) {
            assert!(w[0].mean_qvf >= w[1].mean_qvf);
        }
        let total: usize = ranking.iter().map(|r| r.samples).sum();
        assert_eq!(total, res.len());
        for r in &ranking {
            assert!((0.0..=1.0).contains(&r.sdc_fraction));
        }
    }

    #[test]
    fn bv_ancilla_is_less_vulnerable_than_secret_qubits() {
        // Faults on the BV ancilla (q3) mostly cancel through phase
        // kickback; the measured secret qubits carry the damage.
        let res = small_campaign();
        let ranking = qubit_reliability(&res);
        let pos = |q: usize| ranking.iter().position(|r| r.qubit == q).expect("ranked");
        // The ancilla must not be the most vulnerable qubit.
        assert!(pos(3) > 0, "ancilla ranked most vulnerable: {ranking:?}");
    }

    #[test]
    fn quality_scores_prefer_good_qubits() {
        let cal = BackendCalibration::lima();
        let q = physical_quality(&cal);
        // Lima's qubit 4 is deliberately the worst (short T1/T2, bad readout).
        let worst = q
            .iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .expect("nonempty");
        assert_eq!(worst.0, 4);
    }

    #[test]
    fn layout_is_bijective_and_uses_device_qubits() {
        let res = small_campaign();
        let cal = BackendCalibration::jakarta();
        let layout = reliability_aware_layout(&res, &cal);
        let mut seen = std::collections::HashSet::new();
        for l in 0..4 {
            let p = layout.physical(l);
            assert!(p < 7);
            assert!(seen.insert(p), "physical {p} used twice");
            assert_eq!(layout.logical_on(p), Some(l));
        }
    }

    #[test]
    fn marker_rides_through_level3_transpilation() {
        use qufi_transpile::{CouplingMap, OptimizationLevel, Transpiler};
        let w = bernstein_vazirani(0b101, 3);
        let t = Transpiler::new(CouplingMap::ibm_h7(), OptimizationLevel::Level3);
        for point in crate::fault::enumerate_injection_points(&w.circuit) {
            let marked = mark_injection_site(&w.circuit, point).unwrap();
            let result = t.run(&marked).unwrap();
            let (stripped, sites) = extract_splice_sites(result.circuit());
            assert_eq!(sites.len(), 1, "marker lost or duplicated at {point:?}");
            let site = sites[0];
            assert!(site.index <= stripped.size());
            // The tracked qubit is a real device qubit hosting a logical one.
            assert!(site.qubit < 7);
            // Stripping leaves a marker-free circuit.
            let (_, none) = extract_splice_sites(&stripped);
            assert!(none.is_empty());
        }
    }

    #[test]
    fn marker_follows_routing_swaps() {
        use qufi_transpile::{CouplingMap, OptimizationLevel, Transpiler};
        // cx(0,2) on a line forces a SWAP; a marker planted after that gate
        // must land on the *moved* physical seat of logical 0.
        let mut qc = QuantumCircuit::new(3, 0);
        qc.cx(0, 2);
        let point = InjectionPoint {
            op_index: 0,
            qubit: 0,
        };
        let marked = mark_injection_site(&qc, point).unwrap();
        let t = Transpiler::new(CouplingMap::line(3), OptimizationLevel::Level1);
        let result = t.run(&marked).unwrap();
        let (_, sites) = extract_splice_sites(result.circuit());
        assert_eq!(sites.len(), 1);
        // The marker is after the last gate, so its qubit is logical 0's
        // final physical position (which routing moved off seat 0).
        assert_eq!(sites[0].qubit, result.physical_qubit(0));
        assert_ne!(sites[0].qubit, 0, "routing should have moved logical 0");
    }

    #[test]
    fn double_markers_keep_program_order() {
        let w = bernstein_vazirani(0b11, 2);
        let point = InjectionPoint {
            op_index: 2,
            qubit: 0,
        };
        let marked = mark_double_injection_site(&w.circuit, point, 1).unwrap();
        let (stripped, sites) = extract_splice_sites(&marked);
        assert_eq!(stripped.ops(), w.circuit.ops());
        assert_eq!(sites.len(), 2);
        assert_eq!(sites[0].qubit, 0);
        assert_eq!(sites[1].qubit, 1);
        assert!(sites[0].index <= sites[1].index);
    }

    #[test]
    fn marking_rejects_bad_sites_and_double_marking() {
        let w = bernstein_vazirani(0b11, 2);
        let bad = InjectionPoint {
            op_index: 999,
            qubit: 0,
        };
        assert!(matches!(
            mark_injection_site(&w.circuit, bad),
            Err(ExecError::InjectionOutOfRange { .. })
        ));
        let point = InjectionPoint {
            op_index: 0,
            qubit: 0,
        };
        assert!(matches!(
            mark_double_injection_site(&w.circuit, point, 5),
            Err(ExecError::InjectionOutOfRange { qubit: 5, .. })
        ));
        let marked = mark_injection_site(&w.circuit, point).unwrap();
        assert!(matches!(
            mark_injection_site(&marked, point),
            Err(ExecError::Engine(_))
        ));
    }

    #[test]
    fn most_vulnerable_logical_gets_best_member_seat() {
        let res = small_campaign();
        let cal = BackendCalibration::jakarta();
        let layout = reliability_aware_layout(&res, &cal);
        let ranking = qubit_reliability(&res);
        let quality = physical_quality(&cal);
        let score = |l: usize| quality[layout.physical(l)].1;
        // Quality must be non-increasing along the vulnerability ranking.
        for pair in ranking.windows(2) {
            assert!(
                score(pair[0].qubit) >= score(pair[1].qubit) - 1e-12,
                "vulnerable qubit seated worse than a robust one"
            );
        }
    }
}
