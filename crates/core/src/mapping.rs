//! Reliability-aware qubit mapping.
//!
//! The paper's §I motivation: QVF information "allows a reliability-aware
//! mapping of the circuit qubits to physical qubits, predicts the effects
//! of faults in the quantum computation, and focuses the eventual
//! additional fault tolerance solution to the most critical qubit(s)".
//!
//! This module closes that loop: it ranks **logical** qubits by their
//! measured fault sensitivity (from a campaign) and **physical** qubits by
//! their calibration quality, then assigns the most vulnerable logical
//! qubits to the best physical ones — within a dense connected subgraph so
//! routing stays cheap.

use crate::campaign::CampaignResult;
use crate::metrics::{mean, Severity};
use qufi_noise::BackendCalibration;
use qufi_transpile::{CouplingMap, Layout};

/// Fault-sensitivity summary of one logical qubit.
#[derive(Debug, Clone, PartialEq)]
pub struct QubitReliability {
    /// The logical qubit.
    pub qubit: usize,
    /// Mean QVF over all faults injected on this qubit.
    pub mean_qvf: f64,
    /// Fraction of injections that were silent data corruptions.
    pub sdc_fraction: f64,
    /// Number of injections behind the estimate.
    pub samples: usize,
}

/// Per-qubit reliability profile of a campaign, sorted **most vulnerable
/// first** (descending mean QVF).
pub fn qubit_reliability(result: &CampaignResult) -> Vec<QubitReliability> {
    let mut out: Vec<QubitReliability> = result
        .injected_qubits()
        .into_iter()
        .map(|q| {
            let records = result.records_for_qubit(q);
            let qvfs: Vec<f64> = records.iter().map(|r| r.qvf).collect();
            let sdc = records
                .iter()
                .filter(|r| Severity::classify(r.qvf) == Severity::Sdc)
                .count();
            QubitReliability {
                qubit: q,
                mean_qvf: mean(&qvfs),
                sdc_fraction: sdc as f64 / records.len().max(1) as f64,
                samples: records.len(),
            }
        })
        .collect();
    out.sort_by(|a, b| {
        b.mean_qvf
            .partial_cmp(&a.mean_qvf)
            .expect("QVF is finite")
            .then(a.qubit.cmp(&b.qubit))
    });
    out
}

/// A calibration-quality score per physical qubit — higher is better.
/// Combines coherence (T1, T2), gate fidelity and readout fidelity on a
/// log scale so no single term dominates.
pub fn physical_quality(cal: &BackendCalibration) -> Vec<(usize, f64)> {
    cal.qubits
        .iter()
        .enumerate()
        .map(|(q, c)| {
            let coherence = (c.t1 * 1e6).ln() + (c.t2 * 1e6).ln();
            let gate = -(c.gate_error_1q.max(1e-9)).ln();
            let readout = -((c.readout_p01 + c.readout_p10).max(1e-9)).ln();
            (q, coherence + gate + readout)
        })
        .collect()
}

/// Builds a reliability-aware initial layout: the dense connected subgraph
/// hosts the circuit, and within it the most fault-sensitive logical qubits
/// (per `campaign`) take the highest-quality physical seats (per `cal`).
///
/// # Panics
///
/// Panics if the device is smaller than the campaign's qubit count.
pub fn reliability_aware_layout(campaign: &CampaignResult, cal: &BackendCalibration) -> Layout {
    let ranking = qubit_reliability(campaign);
    let n = ranking.len();
    let cm = CouplingMap::from_edges(cal.num_qubits(), cal.coupling());
    assert!(n <= cm.num_qubits(), "device too small for campaign");

    // Members of the dense subgraph (any assignment order).
    let dense = Layout::dense(&cm, n);
    let mut members: Vec<usize> = (0..n).map(|l| dense.physical(l)).collect();
    // Order members by calibration quality, best first.
    let quality = physical_quality(cal);
    members.sort_by(|&a, &b| {
        quality[b]
            .1
            .partial_cmp(&quality[a].1)
            .expect("scores are finite")
    });

    // Most vulnerable logical → best physical.
    let mut phys = vec![usize::MAX; n];
    for (rank, entry) in ranking.iter().enumerate() {
        phys[entry.qubit] = members[rank];
    }
    Layout::from_mapping(phys, cm.num_qubits())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{run_single_campaign, CampaignOptions};
    use crate::executor::IdealExecutor;
    use crate::fault::FaultGrid;
    use qufi_algos::bernstein_vazirani;

    fn small_campaign() -> CampaignResult {
        let w = bernstein_vazirani(0b101, 3);
        run_single_campaign(
            &w.circuit,
            &w.correct_outputs,
            &IdealExecutor,
            &CampaignOptions {
                grid: FaultGrid::coarse(),
                points: None,
                threads: 0,
            },
        )
        .expect("campaign")
    }

    #[test]
    fn reliability_ranking_is_sorted_and_complete() {
        let res = small_campaign();
        let ranking = qubit_reliability(&res);
        assert_eq!(ranking.len(), 4);
        for w in ranking.windows(2) {
            assert!(w[0].mean_qvf >= w[1].mean_qvf);
        }
        let total: usize = ranking.iter().map(|r| r.samples).sum();
        assert_eq!(total, res.len());
        for r in &ranking {
            assert!((0.0..=1.0).contains(&r.sdc_fraction));
        }
    }

    #[test]
    fn bv_ancilla_is_less_vulnerable_than_secret_qubits() {
        // Faults on the BV ancilla (q3) mostly cancel through phase
        // kickback; the measured secret qubits carry the damage.
        let res = small_campaign();
        let ranking = qubit_reliability(&res);
        let pos = |q: usize| ranking.iter().position(|r| r.qubit == q).expect("ranked");
        // The ancilla must not be the most vulnerable qubit.
        assert!(pos(3) > 0, "ancilla ranked most vulnerable: {ranking:?}");
    }

    #[test]
    fn quality_scores_prefer_good_qubits() {
        let cal = BackendCalibration::lima();
        let q = physical_quality(&cal);
        // Lima's qubit 4 is deliberately the worst (short T1/T2, bad readout).
        let worst = q
            .iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .expect("nonempty");
        assert_eq!(worst.0, 4);
    }

    #[test]
    fn layout_is_bijective_and_uses_device_qubits() {
        let res = small_campaign();
        let cal = BackendCalibration::jakarta();
        let layout = reliability_aware_layout(&res, &cal);
        let mut seen = std::collections::HashSet::new();
        for l in 0..4 {
            let p = layout.physical(l);
            assert!(p < 7);
            assert!(seen.insert(p), "physical {p} used twice");
            assert_eq!(layout.logical_on(p), Some(l));
        }
    }

    #[test]
    fn most_vulnerable_logical_gets_best_member_seat() {
        let res = small_campaign();
        let cal = BackendCalibration::jakarta();
        let layout = reliability_aware_layout(&res, &cal);
        let ranking = qubit_reliability(&res);
        let quality = physical_quality(&cal);
        let score = |l: usize| quality[layout.physical(l)].1;
        // Quality must be non-increasing along the vulnerability ranking.
        for pair in ranking.windows(2) {
            assert!(
                score(pair[0].qubit) >= score(pair[1].qubit) - 1e-12,
                "vulnerable qubit seated worse than a robust one"
            );
        }
    }
}
