//! CSV persistence for campaign data.
//!
//! Campaigns at paper scale take minutes to hours; persisting the raw
//! records lets analyses (heatmaps, histograms, qubit rankings) re-run
//! without re-executing circuits, and lets external tooling (the paper's
//! published data is CSV too) consume the results.

use crate::campaign::InjectionRecord;
use crate::double::DoubleInjectionRecord;
use crate::fault::InjectionPoint;
use core::fmt;

/// A CSV parsing failure with its 1-based line number.
#[derive(Debug, Clone, PartialEq)]
pub struct CsvError {
    /// Line where parsing failed.
    pub line: usize,
    /// Why.
    pub reason: String,
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "csv parse error at line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for CsvError {}

fn err(line: usize, reason: impl Into<String>) -> CsvError {
    CsvError {
        line,
        reason: reason.into(),
    }
}

fn parse_field<T: std::str::FromStr>(
    fields: &[&str],
    idx: usize,
    line: usize,
    name: &str,
) -> Result<T, CsvError> {
    fields
        .get(idx)
        .ok_or_else(|| err(line, format!("missing field {name}")))?
        .trim()
        .parse::<T>()
        .map_err(|_| err(line, format!("bad {name} value")))
}

/// Parses records written by [`crate::report::records_to_csv`]. The
/// trailing `severity` column is ignored (it is derivable from the QVF).
///
/// # Errors
///
/// Returns the first malformed line.
pub fn records_from_csv(text: &str) -> Result<Vec<InjectionRecord>, CsvError> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        if i == 0 {
            if !line.starts_with("op_index,") {
                return Err(err(lineno, "unexpected header"));
            }
            continue;
        }
        if line.trim().is_empty() {
            continue;
        }
        let f: Vec<&str> = line.split(',').collect();
        out.push(InjectionRecord {
            point: InjectionPoint {
                op_index: parse_field(&f, 0, lineno, "op_index")?,
                qubit: parse_field(&f, 1, lineno, "qubit")?,
            },
            theta: parse_field(&f, 2, lineno, "theta")?,
            phi: parse_field(&f, 3, lineno, "phi")?,
            qvf: parse_field(&f, 4, lineno, "qvf")?,
        });
    }
    Ok(out)
}

/// Serializes double-injection records as CSV.
pub fn double_records_to_csv(records: &[DoubleInjectionRecord]) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("op_index,qubit,neighbor,theta0,phi0,theta1,phi1,qvf\n");
    for r in records {
        let _ = writeln!(
            out,
            "{},{},{},{:.6},{:.6},{:.6},{:.6},{:.6}",
            r.point.op_index, r.point.qubit, r.neighbor, r.theta0, r.phi0, r.theta1, r.phi1, r.qvf
        );
    }
    out
}

/// Parses records written by [`double_records_to_csv`].
///
/// # Errors
///
/// Returns the first malformed line.
pub fn double_records_from_csv(text: &str) -> Result<Vec<DoubleInjectionRecord>, CsvError> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        if i == 0 {
            if !line.starts_with("op_index,") {
                return Err(err(lineno, "unexpected header"));
            }
            continue;
        }
        if line.trim().is_empty() {
            continue;
        }
        let f: Vec<&str> = line.split(',').collect();
        out.push(DoubleInjectionRecord {
            point: InjectionPoint {
                op_index: parse_field(&f, 0, lineno, "op_index")?,
                qubit: parse_field(&f, 1, lineno, "qubit")?,
            },
            neighbor: parse_field(&f, 2, lineno, "neighbor")?,
            theta0: parse_field(&f, 3, lineno, "theta0")?,
            phi0: parse_field(&f, 4, lineno, "phi0")?,
            theta1: parse_field(&f, 5, lineno, "theta1")?,
            phi1: parse_field(&f, 6, lineno, "phi1")?,
            qvf: parse_field(&f, 7, lineno, "qvf")?,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::records_to_csv;

    fn sample_records() -> Vec<InjectionRecord> {
        vec![
            InjectionRecord {
                point: InjectionPoint { op_index: 2, qubit: 0 },
                theta: 0.785398,
                phi: 3.141593,
                qvf: 0.42,
            },
            InjectionRecord {
                point: InjectionPoint { op_index: 5, qubit: 3 },
                theta: 0.0,
                phi: 0.261799,
                qvf: 0.91,
            },
        ]
    }

    #[test]
    fn single_records_roundtrip() {
        let records = sample_records();
        let csv = records_to_csv(&records);
        let back = records_from_csv(&csv).unwrap();
        assert_eq!(back.len(), 2);
        for (a, b) in records.iter().zip(&back) {
            assert_eq!(a.point, b.point);
            assert!((a.theta - b.theta).abs() < 1e-6);
            assert!((a.qvf - b.qvf).abs() < 1e-6);
        }
    }

    #[test]
    fn double_records_roundtrip() {
        let records = vec![DoubleInjectionRecord {
            point: InjectionPoint { op_index: 1, qubit: 2 },
            neighbor: 0,
            theta0: 3.141593,
            phi0: 3.141593,
            theta1: 1.570796,
            phi1: 0.785398,
            qvf: 0.63,
        }];
        let csv = double_records_to_csv(&records);
        let back = double_records_from_csv(&csv).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].neighbor, 0);
        assert!((back[0].phi1 - 0.785398).abs() < 1e-9);
    }

    #[test]
    fn bad_header_rejected_with_line() {
        let e = records_from_csv("nope\n1,2,3,4,5\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.to_string().contains("header"));
    }

    #[test]
    fn bad_value_reports_line_and_field() {
        let csv = "op_index,qubit,theta,phi,qvf,severity\n1,x,0.0,0.0,0.5,masked\n";
        let e = records_from_csv(csv).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.reason.contains("qubit"));
    }

    #[test]
    fn blank_lines_tolerated() {
        let csv = records_to_csv(&sample_records()) + "\n\n";
        assert_eq!(records_from_csv(&csv).unwrap().len(), 2);
    }
}
