//! CSV persistence for campaign data.
//!
//! Campaigns at paper scale take minutes to hours; persisting the raw
//! records lets analyses (heatmaps, histograms, qubit rankings) re-run
//! without re-executing circuits, and lets external tooling (the paper's
//! published data is CSV too) consume the results.

use crate::campaign::{CampaignResult, InjectionRecord};
use crate::double::DoubleInjectionRecord;
use crate::fault::InjectionPoint;
use crate::metrics::Severity;
use crate::report::Heatmap;
use core::fmt;

/// A CSV parsing failure with its 1-based line number.
#[derive(Debug, Clone, PartialEq)]
pub struct CsvError {
    /// Line where parsing failed.
    pub line: usize,
    /// Why.
    pub reason: String,
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "csv parse error at line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for CsvError {}

fn err(line: usize, reason: impl Into<String>) -> CsvError {
    CsvError {
        line,
        reason: reason.into(),
    }
}

fn parse_field<T: std::str::FromStr>(
    fields: &[&str],
    idx: usize,
    line: usize,
    name: &str,
) -> Result<T, CsvError> {
    fields
        .get(idx)
        .ok_or_else(|| err(line, format!("missing field {name}")))?
        .trim()
        .parse::<T>()
        .map_err(|_| err(line, format!("bad {name} value")))
}

/// Parses records written by [`crate::report::records_to_csv`]. The
/// trailing `severity` column is ignored (it is derivable from the QVF).
///
/// # Errors
///
/// Returns the first malformed line.
pub fn records_from_csv(text: &str) -> Result<Vec<InjectionRecord>, CsvError> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        if i == 0 {
            if !line.starts_with("op_index,") {
                return Err(err(lineno, "unexpected header"));
            }
            continue;
        }
        if line.trim().is_empty() {
            continue;
        }
        let f: Vec<&str> = line.split(',').collect();
        out.push(InjectionRecord {
            point: InjectionPoint {
                op_index: parse_field(&f, 0, lineno, "op_index")?,
                qubit: parse_field(&f, 1, lineno, "qubit")?,
            },
            theta: parse_field(&f, 2, lineno, "theta")?,
            phi: parse_field(&f, 3, lineno, "phi")?,
            qvf: parse_field(&f, 4, lineno, "qvf")?,
        });
    }
    Ok(out)
}

/// Serializes double-injection records as CSV.
pub fn double_records_to_csv(records: &[DoubleInjectionRecord]) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("op_index,qubit,neighbor,theta0,phi0,theta1,phi1,qvf\n");
    for r in records {
        let _ = writeln!(
            out,
            "{},{},{},{:.6},{:.6},{:.6},{:.6},{:.6}",
            r.point.op_index, r.point.qubit, r.neighbor, r.theta0, r.phi0, r.theta1, r.phi1, r.qvf
        );
    }
    out
}

/// Parses records written by [`double_records_to_csv`].
///
/// # Errors
///
/// Returns the first malformed line.
pub fn double_records_from_csv(text: &str) -> Result<Vec<DoubleInjectionRecord>, CsvError> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        if i == 0 {
            if !line.starts_with("op_index,") {
                return Err(err(lineno, "unexpected header"));
            }
            continue;
        }
        if line.trim().is_empty() {
            continue;
        }
        let f: Vec<&str> = line.split(',').collect();
        out.push(DoubleInjectionRecord {
            point: InjectionPoint {
                op_index: parse_field(&f, 0, lineno, "op_index")?,
                qubit: parse_field(&f, 1, lineno, "qubit")?,
            },
            neighbor: parse_field(&f, 2, lineno, "neighbor")?,
            theta0: parse_field(&f, 3, lineno, "theta0")?,
            phi0: parse_field(&f, 4, lineno, "phi0")?,
            theta1: parse_field(&f, 5, lineno, "theta1")?,
            phi1: parse_field(&f, 6, lineno, "phi1")?,
            qvf: parse_field(&f, 7, lineno, "qvf")?,
        });
    }
    Ok(out)
}

/// Minimal JSON writers. serde is not available offline (see
/// `vendor/README.md`), so machine-readable artifacts are emitted by
/// hand; the format is plain enough for any consumer.
pub mod json {
    use std::fmt::Write as _;

    /// Escapes and quotes a string per RFC 8259.
    pub fn string(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out.push('"');
        out
    }

    /// Renders a float: shortest round-trip form, `null` for NaN/∞
    /// (which JSON cannot represent).
    pub fn num(v: f64) -> String {
        if v.is_finite() {
            let mut s = format!("{v}");
            // Rust renders whole floats as "1"; keep them typed as floats.
            if !s.contains('.') && !s.contains('e') {
                s.push_str(".0");
            }
            s
        } else {
            "null".to_string()
        }
    }

    /// Renders `[a, b, …]` from rendered items.
    pub fn array<I: IntoIterator<Item = String>>(items: I) -> String {
        let mut out = String::from("[");
        for (i, item) in items.into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&item);
        }
        out.push(']');
        out
    }
}

/// One record as a JSON object.
fn record_to_json(r: &InjectionRecord) -> String {
    format!(
        "{{\"op_index\":{},\"qubit\":{},\"theta\":{},\"phi\":{},\"qvf\":{},\"severity\":{}}}",
        r.point.op_index,
        r.point.qubit,
        json::num(r.theta),
        json::num(r.phi),
        json::num(r.qvf),
        json::string(match Severity::classify(r.qvf) {
            Severity::Masked => "masked",
            Severity::Dubious => "dubious",
            Severity::Sdc => "sdc",
        })
    )
}

/// Serializes raw records as a JSON array (the JSON sibling of
/// [`crate::report::records_to_csv`]).
pub fn records_to_json(records: &[InjectionRecord]) -> String {
    json::array(records.iter().map(record_to_json))
}

/// Serializes a whole campaign — metadata, summary statistics and raw
/// records — as one JSON document.
pub fn campaign_to_json(result: &CampaignResult) -> String {
    let (masked, dubious, sdc) = result.severity_counts();
    format!(
        "{{\"circuit\":{},\"golden\":{},\"baseline_qvf\":{},\"mean_qvf\":{},\
         \"stddev_qvf\":{},\"severity\":{{\"masked\":{masked},\"dubious\":{dubious},\
         \"sdc\":{sdc}}},\"grid\":{{\"thetas\":{},\"phis\":{}}},\"records\":{}}}",
        json::string(&result.circuit_name),
        json::array(result.golden.iter().map(|g| g.to_string())),
        json::num(result.baseline_qvf),
        json::num(result.mean_qvf()),
        json::num(result.stddev_qvf()),
        json::array(result.grid.thetas.iter().map(|&t| json::num(t))),
        json::array(result.grid.phis.iter().map(|&p| json::num(p))),
        records_to_json(&result.records),
    )
}

/// Serializes a heatmap — axes plus row-major `[phi][theta]` means and
/// counts — as JSON (the JSON sibling of [`Heatmap::to_csv`]).
pub fn heatmap_to_json(hm: &Heatmap) -> String {
    let mut values = Vec::with_capacity(hm.phis().len() * hm.thetas().len());
    let mut counts = Vec::with_capacity(values.capacity());
    for pi in 0..hm.phis().len() {
        for ti in 0..hm.thetas().len() {
            values.push(json::num(hm.value(pi, ti)));
            counts.push(hm.count(pi, ti).to_string());
        }
    }
    format!(
        "{{\"thetas\":{},\"phis\":{},\"values\":{},\"counts\":{}}}",
        json::array(hm.thetas().iter().map(|&t| json::num(t))),
        json::array(hm.phis().iter().map(|&p| json::num(p))),
        json::array(values),
        json::array(counts),
    )
}

#[cfg(test)]
// Test fixtures intentionally use 6-decimal values that mimic the CSV
// output precision; they are not meant to be π.
#[allow(clippy::approx_constant)]
mod tests {
    use super::*;
    use crate::report::records_to_csv;

    fn sample_records() -> Vec<InjectionRecord> {
        vec![
            InjectionRecord {
                point: InjectionPoint {
                    op_index: 2,
                    qubit: 0,
                },
                theta: 0.785398,
                phi: 3.141593,
                qvf: 0.42,
            },
            InjectionRecord {
                point: InjectionPoint {
                    op_index: 5,
                    qubit: 3,
                },
                theta: 0.0,
                phi: 0.261799,
                qvf: 0.91,
            },
        ]
    }

    #[test]
    fn single_records_roundtrip() {
        let records = sample_records();
        let csv = records_to_csv(&records);
        let back = records_from_csv(&csv).unwrap();
        assert_eq!(back.len(), 2);
        for (a, b) in records.iter().zip(&back) {
            assert_eq!(a.point, b.point);
            assert!((a.theta - b.theta).abs() < 1e-6);
            assert!((a.qvf - b.qvf).abs() < 1e-6);
        }
    }

    #[test]
    fn double_records_roundtrip() {
        let records = vec![DoubleInjectionRecord {
            point: InjectionPoint {
                op_index: 1,
                qubit: 2,
            },
            neighbor: 0,
            theta0: 3.141593,
            phi0: 3.141593,
            theta1: 1.570796,
            phi1: 0.785398,
            qvf: 0.63,
        }];
        let csv = double_records_to_csv(&records);
        let back = double_records_from_csv(&csv).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].neighbor, 0);
        assert!((back[0].phi1 - 0.785398).abs() < 1e-9);
    }

    #[test]
    fn bad_header_rejected_with_line() {
        let e = records_from_csv("nope\n1,2,3,4,5\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.to_string().contains("header"));
    }

    #[test]
    fn bad_value_reports_line_and_field() {
        let csv = "op_index,qubit,theta,phi,qvf,severity\n1,x,0.0,0.0,0.5,masked\n";
        let e = records_from_csv(csv).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.reason.contains("qubit"));
    }

    #[test]
    fn blank_lines_tolerated() {
        let csv = records_to_csv(&sample_records()) + "\n\n";
        assert_eq!(records_from_csv(&csv).unwrap().len(), 2);
    }

    #[test]
    fn json_records_carry_all_fields() {
        let j = records_to_json(&sample_records());
        assert!(j.starts_with('[') && j.ends_with(']'));
        assert!(j.contains("\"op_index\":2"));
        assert!(j.contains("\"qvf\":0.42"));
        assert!(j.contains("\"severity\":\"masked\""));
        assert!(j.contains("\"severity\":\"sdc\""));
    }

    #[test]
    fn json_campaign_document_is_complete() {
        use crate::campaign::CampaignResult;
        use crate::fault::FaultGrid;
        let result = CampaignResult::from_parts(
            "bv-4",
            vec![5],
            0.1,
            FaultGrid::custom(vec![0.0], vec![0.0, 3.141593]),
            sample_records(),
        );
        let j = campaign_to_json(&result);
        for key in [
            "\"circuit\":\"bv-4\"",
            "\"golden\":[5]",
            "\"baseline_qvf\":0.1",
            "\"mean_qvf\":",
            "\"severity\":{\"masked\":1",
            "\"thetas\":[0.0]",
            "\"records\":[",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
    }

    #[test]
    fn json_heatmap_uses_null_for_empty_cells() {
        use crate::fault::FaultGrid;
        let grid = FaultGrid::custom(vec![0.0, 1.0], vec![0.0]);
        let hm = Heatmap::from_samples(&grid, vec![(0.0, 0.0, 0.5)]);
        let j = heatmap_to_json(&hm);
        assert!(j.contains("\"values\":[0.5,null]"), "{j}");
        assert!(j.contains("\"counts\":[1,0]"), "{j}");
    }

    #[test]
    fn json_strings_escape_control_characters() {
        assert_eq!(json::string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json::num(f64::NAN), "null");
        assert_eq!(json::num(2.0), "2.0");
    }
}
