//! Single-fault injection campaigns (paper §IV-B, results §V-B).
//!
//! A campaign sweeps every injection point of a circuit (after each gate,
//! on each operand qubit) across the φ/θ fault grid, executes each faulty
//! circuit, and records the QVF. Points are independent, so the work is
//! distributed over a thread pool fed by a `crossbeam` channel.
//!
//! Execution goes through the forked-state sweep engine
//! ([`crate::engine`]): each point transpiles and evolves its circuit
//! prefix **once**, then replays all grid configurations from a state
//! snapshot. The pre-engine per-configuration pipeline survives behind
//! [`CampaignOptions::naive`] as the oracle the differential test suite
//! compares against.

use crate::engine::SweepExecutor;
use crate::error::ExecError;
use crate::executor::{Executor, IdealExecutor};
use crate::fault::{enumerate_injection_points, FaultGrid, FaultParams, InjectionPoint};
use crate::metrics::{mean, qvf_from_dist, stddev, Severity};
use parking_lot::Mutex;
use qufi_sim::QuantumCircuit;

/// One executed injection and its measured QVF.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct InjectionRecord {
    /// Where the fault struck.
    pub point: InjectionPoint,
    /// θ shift injected.
    pub theta: f64,
    /// φ shift injected.
    pub phi: f64,
    /// Resulting Quantum Vulnerability Factor.
    pub qvf: f64,
}

/// Campaign configuration.
#[derive(Debug, Clone)]
pub struct CampaignOptions {
    /// The φ/θ sweep; defaults to the paper's 312-configuration grid.
    pub grid: FaultGrid,
    /// Explicit injection points (`None` = every gate/operand pair).
    pub points: Option<Vec<InjectionPoint>>,
    /// Worker threads (`0` = all available cores).
    pub threads: usize,
    /// Run every configuration through the naive per-configuration
    /// pipeline (full rebuild + re-transpile + re-simulate) instead of the
    /// forked-state fast path. Slow; kept as the test oracle — results are
    /// bit-identical either way.
    pub naive: bool,
}

impl Default for CampaignOptions {
    fn default() -> Self {
        CampaignOptions {
            grid: FaultGrid::paper(),
            points: None,
            threads: 0,
            naive: false,
        }
    }
}

impl CampaignOptions {
    /// The paper's full grid on all injection points.
    pub fn paper() -> Self {
        Self::default()
    }

    /// A coarse grid for quick runs and benches.
    pub fn coarse() -> Self {
        CampaignOptions {
            grid: FaultGrid::coarse(),
            ..Self::default()
        }
    }

    fn resolve_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// The outcome of a campaign.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// Name of the analyzed circuit.
    pub circuit_name: String,
    /// Golden outcome indices used for the QVF.
    pub golden: Vec<usize>,
    /// QVF of the fault-free (but still noisy) execution — the `(0, 0)`
    /// reference spot of the paper's heatmaps.
    pub baseline_qvf: f64,
    /// One record per (point, θ, φ), sorted by (point, φ, θ).
    pub records: Vec<InjectionRecord>,
    /// The grid that was swept.
    pub grid: FaultGrid,
}

/// The deterministic record order: (point, φ, θ).
fn record_key(r: &InjectionRecord) -> (InjectionPoint, f64, f64) {
    (r.point, r.phi, r.theta)
}

fn sort_records(records: &mut [InjectionRecord]) {
    records.sort_by(|a, b| {
        record_key(a)
            .partial_cmp(&record_key(b))
            .expect("angles are finite")
    });
}

impl CampaignResult {
    /// Assembles a result from independently-produced pieces (checkpoint
    /// shards, per-point jobs) — records are sorted into the canonical
    /// (point, φ, θ) order so the result is identical to what one
    /// uninterrupted [`run_single_campaign`] call would have returned.
    pub fn from_parts(
        circuit_name: impl Into<String>,
        golden: Vec<usize>,
        baseline_qvf: f64,
        grid: FaultGrid,
        mut records: Vec<InjectionRecord>,
    ) -> Self {
        sort_records(&mut records);
        CampaignResult {
            circuit_name: circuit_name.into(),
            golden,
            baseline_qvf,
            records,
            grid,
        }
    }

    /// Incrementally merges more records into this result (e.g. a resumed
    /// campaign folding fresh injections into a checkpoint). Duplicate
    /// (point, θ, φ) entries keep the already-present record, so replaying
    /// a checkpoint over itself is a no-op; ordering is restored.
    pub fn merge_records(&mut self, extra: Vec<InjectionRecord>) {
        if extra.is_empty() {
            return;
        }
        let mut seen: std::collections::HashSet<(usize, usize, u64, u64)> = self
            .records
            .iter()
            .map(|r| {
                (
                    r.point.op_index,
                    r.point.qubit,
                    r.theta.to_bits(),
                    r.phi.to_bits(),
                )
            })
            .collect();
        for r in extra {
            if seen.insert((
                r.point.op_index,
                r.point.qubit,
                r.theta.to_bits(),
                r.phi.to_bits(),
            )) {
                self.records.push(r);
            }
        }
        sort_records(&mut self.records);
    }

    /// All QVF values.
    pub fn qvfs(&self) -> Vec<f64> {
        self.records.iter().map(|r| r.qvf).collect()
    }

    /// Mean QVF over all injections.
    pub fn mean_qvf(&self) -> f64 {
        mean(&self.qvfs())
    }

    /// Population standard deviation of the QVF.
    pub fn stddev_qvf(&self) -> f64 {
        stddev(&self.qvfs())
    }

    /// `(masked, dubious, sdc)` counts (paper §V-B classification).
    pub fn severity_counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for r in &self.records {
            match Severity::classify(r.qvf) {
                Severity::Masked => c.0 += 1,
                Severity::Dubious => c.1 += 1,
                Severity::Sdc => c.2 += 1,
            }
        }
        c
    }

    /// Fraction of injections that *improved* the QVF relative to the
    /// fault-free baseline — the paper reports ~0.9% of injections
    /// compensating the intrinsic noise (§V-B).
    pub fn improved_fraction(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        let improved = self
            .records
            .iter()
            .filter(|r| r.qvf < self.baseline_qvf - 1e-12)
            .count();
        improved as f64 / self.records.len() as f64
    }

    /// Records restricted to faults on one qubit (per-qubit heatmaps,
    /// paper Fig. 6).
    pub fn records_for_qubit(&self, qubit: usize) -> Vec<InjectionRecord> {
        self.records
            .iter()
            .copied()
            .filter(|r| r.point.qubit == qubit)
            .collect()
    }

    /// The distinct qubits that received injections.
    pub fn injected_qubits(&self) -> Vec<usize> {
        let mut qs: Vec<usize> = self.records.iter().map(|r| r.point.qubit).collect();
        qs.sort_unstable();
        qs.dedup();
        qs
    }

    /// Total number of injections.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when no injection was performed.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// Determines the golden (expected) outputs of a circuit from its ideal,
/// fault-free execution: all outcomes within `1e-9` of the maximum
/// probability (multiple-winner circuits like GHZ yield several).
///
/// # Errors
///
/// [`ExecError::NoGoldenState`] when the ideal output is all-zero (cannot
/// happen for valid circuits) and simulation errors otherwise.
pub fn golden_outputs(qc: &QuantumCircuit) -> Result<Vec<usize>, ExecError> {
    let dist = IdealExecutor.execute(qc)?;
    let (_, max_p) = dist.most_probable();
    if max_p <= 0.0 {
        return Err(ExecError::NoGoldenState);
    }
    Ok((0..dist.len())
        .filter(|&i| dist.prob(i) >= max_p - 1e-9)
        .collect())
}

/// Executes one scheduling unit of a campaign: every (θ, φ) of `grid`
/// injected at a single `point`, serially, in grid order, through the
/// forked-state fast path — the point is prepared (transpile + prefix
/// evolution) once and each configuration replays from the snapshot.
/// Campaign drivers (the in-process thread pool here, the `qufi` CLI's
/// checkpointed scheduler) fan these out and merge the records with
/// [`CampaignResult::merge_records`].
///
/// # Errors
///
/// The first execution error aborts the sweep.
pub fn run_point_sweep<E: SweepExecutor + ?Sized>(
    qc: &QuantumCircuit,
    golden: &[usize],
    executor: &E,
    point: InjectionPoint,
    grid: &FaultGrid,
) -> Result<Vec<InjectionRecord>, ExecError> {
    run_point_sweep_parallel(qc, golden, executor, point, grid, 1)
}

/// [`run_point_sweep`] with the grid fanned across `grid_threads` worker
/// threads through the batched block engine
/// ([`crate::engine::PreparedSweep::replay_grid_batched`]): the point is
/// still prepared once; the 312 replays evolve in cell-major blocks (or
/// fall back to per-cell replay where batching does not apply). Records
/// are identical — bit-for-bit, including sampling scenarios — for every
/// `grid_threads` value and every batch width, `QUFI_BATCH_CELLS=1`
/// (the CLI's `--no-batch`) included.
///
/// # Errors
///
/// The first execution error aborts the sweep.
pub fn run_point_sweep_parallel<E: SweepExecutor + ?Sized>(
    qc: &QuantumCircuit,
    golden: &[usize],
    executor: &E,
    point: InjectionPoint,
    grid: &FaultGrid,
    grid_threads: usize,
) -> Result<Vec<InjectionRecord>, ExecError> {
    let prepare_span = qufi_obs::span("point.prepare_ns");
    let prepared = executor.prepare(qc, point)?;
    let prepare_ns = prepare_span.finish();
    let replay_span = qufi_obs::span("point.replay_ns");
    let dists = prepared.replay_grid_batched(grid, grid_threads)?;
    let replay_ns = replay_span.finish();
    qufi_obs::record_cost(
        point.op_index,
        point.qubit,
        prepare_ns,
        replay_ns,
        grid.len() as u64,
    );
    Ok(grid
        .iter()
        .zip(dists)
        .map(|((theta, phi), dist)| InjectionRecord {
            point,
            theta,
            phi,
            qvf: qvf_from_dist(&dist, golden),
        })
        .collect())
}

/// Splits a total thread budget between point-level workers and per-point
/// grid threads: `(point_workers, grid_threads)` with `point_workers ×
/// grid_threads ≤ total`. Point-level parallelism is preferred (points
/// amortize a transpile + prefix evolution each); leftover budget goes to
/// the per-point grid. The split affects scheduling only — results are
/// identical for any split.
pub fn split_thread_budget(total: usize, points: usize) -> (usize, usize) {
    let total = total.max(1);
    let workers = total.min(points.max(1));
    (workers, (total / workers).max(1))
}

/// The naive oracle variant of [`run_point_sweep`]: every configuration
/// rebuilds, re-transpiles and re-simulates the whole faulty circuit.
/// Bit-identical to the fast path (enforced by the differential suite)
/// but pays the per-config transpile and prefix evolution the engine
/// amortizes — ~2–3× slower on the paper's bv-4 baseline (BENCHMARKS.md).
/// Use it only to cross-check the engine.
///
/// # Errors
///
/// The first execution error aborts the sweep.
pub fn run_point_sweep_naive<E: SweepExecutor + ?Sized>(
    qc: &QuantumCircuit,
    golden: &[usize],
    executor: &E,
    point: InjectionPoint,
    grid: &FaultGrid,
) -> Result<Vec<InjectionRecord>, ExecError> {
    let prepared = executor.prepare(qc, point)?;
    let mut out = Vec::with_capacity(grid.len());
    for (theta, phi) in grid.iter() {
        let fault = FaultParams::shift(theta, phi);
        let dist = prepared.replay_naive(fault)?;
        out.push(InjectionRecord {
            point,
            theta,
            phi,
            qvf: qvf_from_dist(&dist, golden),
        });
    }
    Ok(out)
}

/// Runs a single-fault campaign of `qc` on `executor`.
///
/// Every injection builds the faulty circuit, executes it, and scores the
/// output against `golden` with the QVF. Records come back sorted by
/// (point, φ, θ) for reproducibility regardless of thread scheduling.
///
/// # Errors
///
/// The first execution error aborts the campaign.
pub fn run_single_campaign<E: SweepExecutor>(
    qc: &QuantumCircuit,
    golden: &[usize],
    executor: &E,
    options: &CampaignOptions,
) -> Result<CampaignResult, ExecError> {
    let points = options
        .points
        .clone()
        .unwrap_or_else(|| enumerate_injection_points(qc));
    let baseline_qvf = qvf_from_dist(&executor.execute(qc)?, golden);

    // One task per injection point; each task sweeps the whole grid, which
    // amortizes scheduling overhead over ~312 executions.
    let (tx, rx) = crossbeam::channel::unbounded::<InjectionPoint>();
    for &p in &points {
        tx.send(p).expect("queue open");
    }
    drop(tx);

    let records = Mutex::new(Vec::with_capacity(points.len() * options.grid.len()));
    let first_error: Mutex<Option<ExecError>> = Mutex::new(None);
    // Two-level split: point workers pull from the queue; each point fans
    // its grid across the leftover per-worker budget.
    let (n_threads, grid_threads) = split_thread_budget(options.resolve_threads(), points.len());

    std::thread::scope(|scope| {
        for _ in 0..n_threads {
            let rx = rx.clone();
            let records = &records;
            let first_error = &first_error;
            let grid = &options.grid;
            scope.spawn(move || {
                let mut local = Vec::new();
                while let Ok(point) = rx.recv() {
                    if first_error.lock().is_some() {
                        return;
                    }
                    let sweep = if options.naive {
                        run_point_sweep_naive(qc, golden, executor, point, grid)
                    } else {
                        run_point_sweep_parallel(qc, golden, executor, point, grid, grid_threads)
                    };
                    match sweep {
                        Ok(records) => local.extend(records),
                        Err(e) => {
                            first_error.lock().get_or_insert(e);
                            return;
                        }
                    }
                }
                records.lock().extend(local);
            });
        }
    });

    if let Some(e) = first_error.into_inner() {
        return Err(e);
    }
    Ok(CampaignResult::from_parts(
        qc.name.clone(),
        golden.to_vec(),
        baseline_qvf,
        options.grid.clone(),
        records.into_inner(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::NoisyExecutor;
    use qufi_algos::{bernstein_vazirani, ghz};
    use qufi_noise::BackendCalibration;
    use std::f64::consts::PI;

    #[test]
    fn golden_outputs_single_and_multi() {
        let bv = bernstein_vazirani(0b101, 3);
        assert_eq!(golden_outputs(&bv.circuit).unwrap(), vec![0b101]);
        let g = ghz(3);
        assert_eq!(golden_outputs(&g.circuit).unwrap(), vec![0, 0b111]);
    }

    #[test]
    fn ideal_campaign_null_fault_has_zero_qvf() {
        let w = bernstein_vazirani(0b11, 2);
        let opts = CampaignOptions {
            grid: FaultGrid::custom(vec![0.0], vec![0.0]),
            points: None,
            threads: 2,
            naive: false,
        };
        let res =
            run_single_campaign(&w.circuit, &w.correct_outputs, &IdealExecutor, &opts).unwrap();
        assert!(!res.is_empty());
        for r in &res.records {
            assert!(
                r.qvf < 1e-9,
                "null fault should be invisible, got {}",
                r.qvf
            );
        }
        assert_eq!(res.baseline_qvf, 0.0);
    }

    #[test]
    fn theta_pi_everywhere_is_harmful_somewhere() {
        let w = bernstein_vazirani(0b101, 3);
        let opts = CampaignOptions {
            grid: FaultGrid::custom(vec![PI], vec![0.0]),
            points: None,
            threads: 0,
            naive: false,
        };
        let res =
            run_single_campaign(&w.circuit, &w.correct_outputs, &IdealExecutor, &opts).unwrap();
        // A bit-flip-equivalent fault on a measured qubit must produce SDCs.
        let (_, _, sdc) = res.severity_counts();
        assert!(sdc > 0, "no SDC from θ=π faults: {res:?}");
    }

    #[test]
    fn records_are_sorted_and_complete() {
        let w = bernstein_vazirani(0b1, 1);
        let opts = CampaignOptions {
            grid: FaultGrid::coarse(),
            points: None,
            threads: 3,
            naive: false,
        };
        let res =
            run_single_campaign(&w.circuit, &w.correct_outputs, &IdealExecutor, &opts).unwrap();
        let n_points = enumerate_injection_points(&w.circuit).len();
        assert_eq!(res.len(), n_points * opts.grid.len());
        for w in res.records.windows(2) {
            assert!(
                (w[0].point, w[0].phi, w[0].theta) <= (w[1].point, w[1].phi, w[1].theta),
                "records unsorted"
            );
        }
    }

    #[test]
    fn thread_budget_split_prefers_points_then_grid() {
        // More points than threads: all budget to point workers.
        assert_eq!(split_thread_budget(4, 12), (4, 1));
        // Fewer points than threads: leftover budget goes to the grid.
        assert_eq!(split_thread_budget(8, 3), (3, 2));
        assert_eq!(split_thread_budget(8, 1), (1, 8));
        // Degenerate inputs stay sane.
        assert_eq!(split_thread_budget(0, 0), (1, 1));
        assert_eq!(split_thread_budget(1, 100), (1, 1));
    }

    #[test]
    fn grid_parallel_point_sweep_matches_serial() {
        let w = bernstein_vazirani(0b101, 3);
        let golden = golden_outputs(&w.circuit).unwrap();
        let ex = NoisyExecutor::new(BackendCalibration::jakarta());
        let point = InjectionPoint {
            op_index: 2,
            qubit: 0,
        };
        let grid = FaultGrid::coarse();
        let serial = run_point_sweep(&w.circuit, &golden, &ex, point, &grid).unwrap();
        for threads in [2, 4] {
            let parallel =
                run_point_sweep_parallel(&w.circuit, &golden, &ex, point, &grid, threads).unwrap();
            assert_eq!(serial, parallel, "{threads}-thread grid sweep diverged");
        }
    }

    #[test]
    fn campaign_is_deterministic_across_thread_counts() {
        let w = bernstein_vazirani(0b10, 2);
        let mk = |threads| CampaignOptions {
            grid: FaultGrid::coarse(),
            points: None,
            threads,
            naive: false,
        };
        let a =
            run_single_campaign(&w.circuit, &w.correct_outputs, &IdealExecutor, &mk(1)).unwrap();
        let b =
            run_single_campaign(&w.circuit, &w.correct_outputs, &IdealExecutor, &mk(4)).unwrap();
        assert_eq!(a.records, b.records);
    }

    #[test]
    fn noisy_campaign_baseline_is_nonzero() {
        let w = bernstein_vazirani(0b101, 3);
        let ex = NoisyExecutor::new(BackendCalibration::jakarta());
        let opts = CampaignOptions {
            grid: FaultGrid::custom(vec![0.0, PI], vec![0.0]),
            points: Some(vec![InjectionPoint {
                op_index: 2,
                qubit: 0,
            }]),
            threads: 0,
            naive: false,
        };
        let res = run_single_campaign(&w.circuit, &w.correct_outputs, &ex, &opts).unwrap();
        // "A fault-free execution … its color is not solid green (QVF > 0)
        // due to noise" (§V-B).
        assert!(res.baseline_qvf > 0.0);
        assert!(res.baseline_qvf < 0.45, "baseline should still be masked");
        // The θ=0 injection behaves like the baseline; θ=π is much worse.
        let q0 = res.records.iter().find(|r| r.theta == 0.0).unwrap().qvf;
        let qpi = res.records.iter().find(|r| r.theta == PI).unwrap().qvf;
        assert!(qpi > q0 + 0.3, "θ=π ({qpi}) vs θ=0 ({q0})");
    }

    #[test]
    fn point_sweeps_merge_into_the_full_campaign() {
        // Fan the campaign out point-by-point through the public job unit
        // and reassemble with merge_records: must bit-match the one-shot
        // run, regardless of merge order or duplicated shards.
        let w = bernstein_vazirani(0b10, 2);
        let opts = CampaignOptions {
            grid: FaultGrid::coarse(),
            points: None,
            threads: 1,
            naive: false,
        };
        let whole =
            run_single_campaign(&w.circuit, &w.correct_outputs, &IdealExecutor, &opts).unwrap();

        let mut rebuilt = CampaignResult::from_parts(
            w.circuit.name.clone(),
            whole.golden.clone(),
            whole.baseline_qvf,
            opts.grid.clone(),
            Vec::new(),
        );
        let mut points = enumerate_injection_points(&w.circuit);
        points.reverse(); // out-of-order merges must not matter
        for p in points {
            let shard = run_point_sweep(
                &w.circuit,
                &w.correct_outputs,
                &IdealExecutor,
                p,
                &opts.grid,
            )
            .unwrap();
            rebuilt.merge_records(shard.clone());
            rebuilt.merge_records(shard); // replaying a shard is a no-op
        }
        assert_eq!(rebuilt.records, whole.records);
    }

    #[test]
    fn per_qubit_filter_partitions_records() {
        let w = bernstein_vazirani(0b11, 2);
        let opts = CampaignOptions {
            grid: FaultGrid::coarse(),
            points: None,
            threads: 0,
            naive: false,
        };
        let res =
            run_single_campaign(&w.circuit, &w.correct_outputs, &IdealExecutor, &opts).unwrap();
        let total: usize = res
            .injected_qubits()
            .iter()
            .map(|&q| res.records_for_qubit(q).len())
            .sum();
        assert_eq!(total, res.len());
    }
}
