//! Execution backends — the three scenarios of paper §IV-B.
//!
//! 1. [`IdealExecutor`] — "simulation without external noise, which is ideal
//!    but not realistic"; used to derive golden outputs.
//! 2. [`NoisyExecutor`] — "simulation of a physical machine, tuning the
//!    noise over which the fault is injected using the IBM-Q noise model":
//!    transpile onto the device, then evolve the exact density matrix under
//!    the calibrated noise model.
//! 3. [`HardwareExecutor`] — stands in for "physical execution on the
//!    available IBM-Q machine": the noisy pipeline plus per-job calibration
//!    drift and finite-shot sampling (1024 shots, as the paper uses). See
//!    DESIGN.md §4 for the substitution rationale.
//!
//! A fourth backend, [`TrajectoryExecutor`], targets the widths the exact
//! density path cannot reach: it runs scenario 2's noise model through
//! Monte-Carlo statevector trajectories (`qufi_noise::trajectory`), paying
//! an `O(1/√shots)` statistical error instead of `4^n` memory.

use crate::error::ExecError;
use crate::prepare_cache::PrepareCache;
use parking_lot::Mutex;
use qufi_noise::{simulate, BackendCalibration, NoiseModel};
use qufi_sim::circuit::Op;
use qufi_sim::{ProbDist, QuantumCircuit, Statevector};
use qufi_transpile::{CouplingMap, OptimizationLevel, Transpiler};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Active-qubit subsets seen by one executor — small (one per distinct
/// transpiled footprint), so the restricted-model cache never needs to
/// evict in practice.
const MODEL_CACHE_CAP: usize = 32;

/// A backend able to run circuits and return output distributions.
///
/// Implementations must be shareable across campaign worker threads.
pub trait Executor: Sync {
    /// Runs the circuit and returns the distribution over its classical
    /// register.
    ///
    /// # Errors
    ///
    /// Implementation-specific; simulation or transpilation failures.
    fn execute(&self, qc: &QuantumCircuit) -> Result<ProbDist, ExecError>;

    /// Short backend label for reports.
    fn name(&self) -> &str;
}

impl<E: Executor + ?Sized> Executor for &E {
    fn execute(&self, qc: &QuantumCircuit) -> Result<ProbDist, ExecError> {
        (**self).execute(qc)
    }

    fn name(&self) -> &str {
        (**self).name()
    }
}

/// Scenario 1: exact noiseless statevector simulation of the logical
/// circuit.
#[derive(Debug, Clone, Copy, Default)]
pub struct IdealExecutor;

impl Executor for IdealExecutor {
    fn execute(&self, qc: &QuantumCircuit) -> Result<ProbDist, ExecError> {
        let sv = Statevector::from_circuit(qc)?;
        Ok(sv.measurement_distribution(qc))
    }

    fn name(&self) -> &str {
        "ideal"
    }
}

/// Remaps a physical circuit onto the compact register `0..active.len()`
/// (position of each physical qubit within `active`).
pub(crate) fn compact_circuit(qc: &QuantumCircuit, active: &[usize]) -> QuantumCircuit {
    let mut pos = vec![usize::MAX; qc.num_qubits()];
    for (i, &p) in active.iter().enumerate() {
        pos[p] = i;
    }
    let mut out = QuantumCircuit::with_name(active.len(), qc.num_clbits(), &qc.name);
    for op in qc.instructions() {
        match op {
            Op::Gate { gate, qubits } => {
                let mapped: Vec<usize> = qubits.iter().map(|&q| pos[q]).collect();
                out.append(*gate, &mapped);
            }
            Op::Barrier(qs) => {
                let mapped: Vec<usize> = qs
                    .iter()
                    .map(|&q| pos[q])
                    .filter(|&q| q != usize::MAX)
                    .collect();
                out.barrier(&mapped);
            }
            Op::Measure { qubit, clbit } => {
                out.measure(pos[*qubit], *clbit);
            }
        }
    }
    out
}

/// Scenario 2: noisy density-matrix simulation after transpilation onto a
/// calibrated device.
///
/// The density matrix is restricted to the physical qubits the transpiled
/// circuit actually occupies, which keeps 4-qubit campaigns on a 7-qubit
/// device 64× cheaper with bit-identical results (idle qubits stay in |0⟩
/// and factor out).
pub struct NoisyExecutor {
    calibration: BackendCalibration,
    transpiler: Transpiler,
    /// Noise models per active-qubit set, built lazily and shared
    /// single-flight across threads.
    model_cache: PrepareCache<Vec<usize>, NoiseModel>,
    label: String,
}

impl NoisyExecutor {
    /// Creates a noisy executor at the paper's `optimization_level=3`.
    pub fn new(calibration: BackendCalibration) -> Self {
        NoisyExecutor::with_level(calibration, OptimizationLevel::Level3)
    }

    /// Creates a noisy executor at an explicit optimization level.
    pub fn with_level(calibration: BackendCalibration, level: OptimizationLevel) -> Self {
        let coupling = CouplingMap::from_edges(calibration.num_qubits(), calibration.coupling());
        let label = format!("noisy-sim({})", calibration.name);
        NoisyExecutor {
            transpiler: Transpiler::new(coupling, level),
            calibration,
            model_cache: PrepareCache::new(MODEL_CACHE_CAP),
            label,
        }
    }

    /// The device calibration in use.
    pub fn calibration(&self) -> &BackendCalibration {
        &self.calibration
    }

    /// The transpiler in use.
    pub fn transpiler(&self) -> &Transpiler {
        &self.transpiler
    }

    pub(crate) fn model_for(&self, active: &[usize]) -> NoiseModel {
        (*self.model_cache.get_or_build(&active.to_vec(), || {
            self.calibration.restrict(active).noise_model()
        }))
        .clone()
    }
}

impl Executor for NoisyExecutor {
    fn execute(&self, qc: &QuantumCircuit) -> Result<ProbDist, ExecError> {
        let result = self.transpiler.run(qc)?;
        let active = result.active_physical_qubits();
        let compact = compact_circuit(result.circuit(), &active);
        let model = self.model_for(&active);
        Ok(simulate::run_noisy(&compact, &model)?)
    }

    fn name(&self) -> &str {
        &self.label
    }
}

/// Scenario 3: simulated hardware — noisy simulation with per-job
/// calibration drift and finite-shot sampling.
pub struct HardwareExecutor {
    base: BackendCalibration,
    transpiler: Transpiler,
    shots: u64,
    drift_sigma: f64,
    /// Construction seed; the shared stream below serves ad-hoc
    /// [`Executor::execute`] calls, while the sweep engine derives
    /// per-injection-point streams from this seed so campaign results do
    /// not depend on scheduling order.
    seed: u64,
    rng: Mutex<SmallRng>,
    label: String,
}

impl HardwareExecutor {
    /// Standard IBM-Q-like configuration: 1024 shots, 5% calibration drift.
    pub fn new(calibration: BackendCalibration, seed: u64) -> Self {
        HardwareExecutor::with_config(calibration, seed, 1024, 0.05)
    }

    /// Fully explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics if `shots == 0` or `drift_sigma < 0`.
    pub fn with_config(
        calibration: BackendCalibration,
        seed: u64,
        shots: u64,
        drift_sigma: f64,
    ) -> Self {
        assert!(shots > 0, "need at least one shot");
        assert!(drift_sigma >= 0.0, "negative drift");
        let coupling = CouplingMap::from_edges(calibration.num_qubits(), calibration.coupling());
        let label = format!("hardware({})", calibration.name);
        HardwareExecutor {
            transpiler: Transpiler::new(coupling, OptimizationLevel::Level3),
            base: calibration,
            shots,
            drift_sigma,
            seed,
            rng: Mutex::new(SmallRng::seed_from_u64(seed)),
            label,
        }
    }

    /// Shots per job.
    pub fn shots(&self) -> u64 {
        self.shots
    }

    /// The transpiler in use.
    pub fn transpiler(&self) -> &Transpiler {
        &self.transpiler
    }

    /// The undrifted base calibration.
    pub fn calibration(&self) -> &BackendCalibration {
        &self.base
    }

    pub(crate) fn seed(&self) -> u64 {
        self.seed
    }

    pub(crate) fn drift_sigma(&self) -> f64 {
        self.drift_sigma
    }
}

impl Executor for HardwareExecutor {
    fn execute(&self, qc: &QuantumCircuit) -> Result<ProbDist, ExecError> {
        let result = self.transpiler.run(qc)?;
        let active = result.active_physical_qubits();
        let compact = compact_circuit(result.circuit(), &active);
        // Each job sees a slightly different machine and its own shot noise.
        let (cal, mut sample_rng) = {
            let mut rng = self.rng.lock();
            let cal = self.base.with_drift(&mut *rng, self.drift_sigma);
            let sample_seed: u64 = rand::Rng::gen(&mut *rng);
            (cal, SmallRng::seed_from_u64(sample_seed))
        };
        let model = cal.restrict(&active).noise_model();
        let exact = simulate::run_noisy(&compact, &model)?;
        let counts = exact.sample(&mut sample_rng, self.shots);
        Ok(counts.to_prob_dist())
    }

    fn name(&self) -> &str {
        &self.label
    }
}

/// Scenario 2 at trajectory widths: Monte-Carlo statevector sampling of
/// the same calibrated noise model [`NoisyExecutor`] evolves exactly.
///
/// No calibration drift is applied — the model is shared verbatim with
/// the density path, which is what lets the statistical-equivalence suite
/// use [`NoisyExecutor`] as the oracle on overlap widths (≤ 7 qubits)
/// while this executor extends the same scenario to 10–14 qubits.
///
/// Determinism: every shot's RNG stream is derived from
/// `(seed, stream tag, shot)` through the campaign seed hasher, so the
/// result is a pure function of `(circuit, calibration, shots, seed)` —
/// independent of threading or chunking, like every other backend.
pub struct TrajectoryExecutor {
    calibration: BackendCalibration,
    transpiler: Transpiler,
    /// Noise models per active-qubit set, built lazily and shared
    /// single-flight across threads.
    model_cache: PrepareCache<Vec<usize>, NoiseModel>,
    shots: u64,
    seed: u64,
    label: String,
}

impl TrajectoryExecutor {
    /// Standard configuration: 1024 trajectories per execution.
    pub fn new(calibration: BackendCalibration, seed: u64) -> Self {
        TrajectoryExecutor::with_shots(calibration, seed, 1024)
    }

    /// Fully explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics if `shots == 0`.
    pub fn with_shots(calibration: BackendCalibration, seed: u64, shots: u64) -> Self {
        assert!(shots > 0, "need at least one shot");
        let coupling = CouplingMap::from_edges(calibration.num_qubits(), calibration.coupling());
        let label = format!("trajectory({})", calibration.name);
        TrajectoryExecutor {
            transpiler: Transpiler::new(coupling, OptimizationLevel::Level3),
            calibration,
            model_cache: PrepareCache::new(MODEL_CACHE_CAP),
            shots,
            seed,
            label,
        }
    }

    /// Trajectories per execution.
    pub fn shots(&self) -> u64 {
        self.shots
    }

    /// The transpiler in use.
    pub fn transpiler(&self) -> &Transpiler {
        &self.transpiler
    }

    /// The device calibration in use.
    pub fn calibration(&self) -> &BackendCalibration {
        &self.calibration
    }

    pub(crate) fn seed(&self) -> u64 {
        self.seed
    }

    pub(crate) fn model_for(&self, active: &[usize]) -> NoiseModel {
        (*self.model_cache.get_or_build(&active.to_vec(), || {
            self.calibration.restrict(active).noise_model()
        }))
        .clone()
    }
}

impl Executor for TrajectoryExecutor {
    fn execute(&self, qc: &QuantumCircuit) -> Result<ProbDist, ExecError> {
        let result = self.transpiler.run(qc)?;
        let active = result.active_physical_qubits();
        let compact = compact_circuit(result.circuit(), &active);
        let model = self.model_for(&active);
        // The u64::MAX tag separates the ad-hoc execute stream from the
        // sweep engine's per-point streams (which mix fault-angle bits in
        // that slot — never u64::MAX, see the engine's seed derivation).
        let seed = self.seed;
        let dist = qufi_noise::run_trajectories(&compact, &model, self.shots, |shot| {
            crate::engine::derive_seed(&[seed, u64::MAX, shot])
        })?;
        Ok(dist)
    }

    fn name(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qufi_algos::bernstein_vazirani;

    fn bv() -> QuantumCircuit {
        bernstein_vazirani(0b101, 3).circuit
    }

    #[test]
    fn ideal_executor_returns_golden() {
        let d = IdealExecutor.execute(&bv()).unwrap();
        assert!((d.prob(0b101) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn noisy_executor_keeps_winner_with_leakage() {
        let ex = NoisyExecutor::new(BackendCalibration::jakarta());
        let d = ex.execute(&bv()).unwrap();
        assert_eq!(d.most_probable().0, 0b101);
        assert!(d.prob(0b101) < 1.0 - 1e-4, "noise should leak probability");
        assert!(d.prob(0b101) > 0.7);
    }

    #[test]
    fn noisy_executor_is_deterministic() {
        let ex = NoisyExecutor::new(BackendCalibration::jakarta());
        let a = ex.execute(&bv()).unwrap();
        let b = ex.execute(&bv()).unwrap();
        assert!(a.tv_distance(&b) < 1e-15);
    }

    #[test]
    fn compaction_matches_full_width_simulation() {
        // Same circuit through lima (5q) vs jakarta (7q): distributions
        // differ by calibration, but compaction itself must not corrupt
        // anything — compare compact against manually-padded execution.
        let cal = BackendCalibration::jakarta();
        let ex = NoisyExecutor::new(cal.clone());
        let qc = bv();
        let result = ex.transpiler().run(&qc).unwrap();
        let active = result.active_physical_qubits();
        let compact = compact_circuit(result.circuit(), &active);
        let compact_dist =
            simulate::run_noisy(&compact, &cal.restrict(&active).noise_model()).unwrap();
        let full_dist = simulate::run_noisy(result.circuit(), &cal.noise_model()).unwrap();
        assert!(compact_dist.tv_distance(&full_dist) < 1e-9);
    }

    #[test]
    fn hardware_executor_samples_and_drifts() {
        let ex = HardwareExecutor::new(BackendCalibration::jakarta(), 11);
        let a = ex.execute(&bv()).unwrap();
        let b = ex.execute(&bv()).unwrap();
        // Finite-shot noise: distributions are close but not identical.
        assert!(a.tv_distance(&b) > 0.0);
        assert!(a.tv_distance(&b) < 0.2);
        // The answer still dominates.
        assert_eq!(a.most_probable().0, 0b101);
        // Probabilities are multiples of 1/shots.
        let p = a.prob(0b101);
        assert!((p * 1024.0 - (p * 1024.0).round()).abs() < 1e-9);
    }

    #[test]
    fn hardware_executor_is_reproducible_per_seed() {
        let a = HardwareExecutor::new(BackendCalibration::jakarta(), 42)
            .execute(&bv())
            .unwrap();
        let b = HardwareExecutor::new(BackendCalibration::jakarta(), 42)
            .execute(&bv())
            .unwrap();
        assert!(a.tv_distance(&b) < 1e-15);
    }

    #[test]
    fn trajectory_executor_is_reproducible_and_converges() {
        let a = TrajectoryExecutor::with_shots(BackendCalibration::jakarta(), 42, 512)
            .execute(&bv())
            .unwrap();
        let b = TrajectoryExecutor::with_shots(BackendCalibration::jakarta(), 42, 512)
            .execute(&bv())
            .unwrap();
        for i in 0..a.len() {
            assert_eq!(a.prob(i).to_bits(), b.prob(i).to_bits(), "outcome {i}");
        }
        // Statistically close to the exact density path on the same model.
        let oracle = NoisyExecutor::new(BackendCalibration::jakarta())
            .execute(&bv())
            .unwrap();
        assert!(a.tv_distance(&oracle) < 0.05);
        assert_eq!(a.most_probable().0, 0b101);
    }

    #[test]
    fn executor_names_are_meaningful() {
        assert_eq!(IdealExecutor.name(), "ideal");
        assert!(NoisyExecutor::new(BackendCalibration::lima())
            .name()
            .contains("lima"));
        assert!(HardwareExecutor::new(BackendCalibration::jakarta(), 0)
            .name()
            .contains("jakarta"));
        assert!(TrajectoryExecutor::new(BackendCalibration::guadalupe(), 0)
            .name()
            .contains("guadalupe"));
    }

    #[test]
    fn executors_are_sync() {
        fn assert_sync<T: Sync>() {}
        assert_sync::<IdealExecutor>();
        assert_sync::<NoisyExecutor>();
        assert_sync::<HardwareExecutor>();
        assert_sync::<TrajectoryExecutor>();
    }
}
