//! Double (multi-qubit) fault campaigns (paper §III-C, §IV-C, results §V-D).
//!
//! A particle strike can perturb several qubits at once; the qubit closer to
//! the impact suffers the larger shift. QuFI injects the first fault
//! `(θ0, φ0)` as usual and a second, weaker fault `(θ1 ≤ θ0, φ1 ≤ φ0)` on a
//! qubit **physically adjacent** to the first after transpilation — the
//! candidate pairs come from [`neighbor_pairs`].

use crate::engine::SweepExecutor;
use crate::error::ExecError;
use crate::fault::{enumerate_injection_points, FaultGrid, FaultParams, InjectionPoint};
use crate::metrics::{mean, qvf_from_dist, stddev};
use parking_lot::Mutex;
use qufi_sim::QuantumCircuit;
use qufi_transpile::Transpiler;

/// One executed double injection.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DoubleInjectionRecord {
    /// First (stronger) fault location.
    pub point: InjectionPoint,
    /// The neighbouring qubit hit by the second fault.
    pub neighbor: usize,
    /// First fault θ0.
    pub theta0: f64,
    /// First fault φ0.
    pub phi0: f64,
    /// Second fault θ1 ≤ θ0.
    pub theta1: f64,
    /// Second fault φ1 ≤ φ0.
    pub phi1: f64,
    /// Resulting QVF.
    pub qvf: f64,
}

/// Configuration of a double-fault campaign.
#[derive(Debug, Clone)]
pub struct DoubleOptions {
    /// Grid for the **first** fault; the second sweeps the same lattice
    /// restricted to `θ1 ≤ θ0`, `φ1 ≤ φ0`.
    pub grid: FaultGrid,
    /// Explicit first-fault points (`None` = all).
    pub points: Option<Vec<InjectionPoint>>,
    /// Physically-adjacent logical pairs eligible for the second fault.
    pub pairs: Vec<(usize, usize)>,
    /// Worker threads (`0` = all cores).
    pub threads: usize,
    /// Use the naive per-configuration oracle path instead of the
    /// forked-state fast path (see
    /// [`CampaignOptions::naive`](crate::campaign::CampaignOptions::naive)).
    pub naive: bool,
}

impl DoubleOptions {
    /// The paper's §V-D configuration: half-φ grid (exploiting BV's φ
    /// symmetry) over the given neighbour pairs.
    pub fn paper(pairs: Vec<(usize, usize)>) -> Self {
        DoubleOptions {
            grid: FaultGrid::paper_half_phi(),
            points: None,
            pairs,
            threads: 0,
            naive: false,
        }
    }

    /// Coarse variant for benches.
    pub fn coarse(pairs: Vec<(usize, usize)>) -> Self {
        DoubleOptions {
            grid: FaultGrid::coarse(),
            points: None,
            pairs,
            threads: 0,
            naive: false,
        }
    }
}

/// Results of a double-fault campaign.
#[derive(Debug, Clone)]
pub struct DoubleCampaignResult {
    /// Name of the analyzed circuit.
    pub circuit_name: String,
    /// Golden outcome indices.
    pub golden: Vec<usize>,
    /// One record per executed double injection, sorted.
    pub records: Vec<DoubleInjectionRecord>,
    /// First-fault grid.
    pub grid: FaultGrid,
}

impl DoubleCampaignResult {
    /// All QVF values.
    pub fn qvfs(&self) -> Vec<f64> {
        self.records.iter().map(|r| r.qvf).collect()
    }

    /// Mean QVF.
    pub fn mean_qvf(&self) -> f64 {
        mean(&self.qvfs())
    }

    /// Population standard deviation.
    pub fn stddev_qvf(&self) -> f64 {
        stddev(&self.qvfs())
    }

    /// Records with the first fault fixed to `(θ0, φ0)` — the paper's
    /// Fig. 8c "explosion plot" slice.
    pub fn slice_first_fault(&self, theta0: f64, phi0: f64) -> Vec<DoubleInjectionRecord> {
        self.records
            .iter()
            .copied()
            .filter(|r| (r.theta0 - theta0).abs() < 1e-9 && (r.phi0 - phi0).abs() < 1e-9)
            .collect()
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when nothing was injected.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// Identifies the logical qubit pairs that are physically adjacent after
/// transpiling `qc` — "QuFI … tags the qubits that are neighbors after the
/// transpiling process" (§IV-C).
///
/// # Errors
///
/// Propagates transpilation failures.
pub fn neighbor_pairs(
    qc: &QuantumCircuit,
    transpiler: &Transpiler,
) -> Result<Vec<(usize, usize)>, ExecError> {
    Ok(transpiler.run(qc)?.coupled_logical_pairs())
}

/// Runs a double-fault campaign: first fault on each injection point whose
/// qubit belongs to a pair, second fault on the paired neighbour, sweeping
/// `θ1 ≤ θ0`, `φ1 ≤ φ0` on the same angle lattice. Each (point, neighbor)
/// item is prepared once through the forked-state engine; the quadratic
/// fault lattice replays from the snapshot.
///
/// # Errors
///
/// The first execution error aborts the campaign.
pub fn run_double_campaign<E: SweepExecutor>(
    qc: &QuantumCircuit,
    golden: &[usize],
    executor: &E,
    options: &DoubleOptions,
) -> Result<DoubleCampaignResult, ExecError> {
    let points = options
        .points
        .clone()
        .unwrap_or_else(|| enumerate_injection_points(qc));

    // Expand (point, neighbor) work items from the pair list.
    let mut items: Vec<(InjectionPoint, usize)> = Vec::new();
    for &p in &points {
        for &(a, b) in &options.pairs {
            if p.qubit == a {
                items.push((p, b));
            } else if p.qubit == b {
                items.push((p, a));
            }
        }
    }

    let (tx, rx) = crossbeam::channel::unbounded::<(InjectionPoint, usize)>();
    for item in &items {
        tx.send(*item).expect("queue open");
    }
    drop(tx);

    let records = Mutex::new(Vec::new());
    let first_error: Mutex<Option<ExecError>> = Mutex::new(None);
    let n_threads = if options.threads > 0 {
        options.threads
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
    .min(items.len().max(1));

    std::thread::scope(|scope| {
        for _ in 0..n_threads {
            let rx = rx.clone();
            let records = &records;
            let first_error = &first_error;
            let grid = &options.grid;
            let naive = options.naive;
            scope.spawn(move || {
                let mut local = Vec::new();
                while let Ok((point, neighbor)) = rx.recv() {
                    if first_error.lock().is_some() {
                        return;
                    }
                    let prepared = match executor.prepare_double(qc, point, neighbor) {
                        Ok(p) => p,
                        Err(e) => {
                            first_error.lock().get_or_insert(e);
                            return;
                        }
                    };
                    for &phi0 in &grid.phis {
                        for &theta0 in &grid.thetas {
                            for &phi1 in grid.phis.iter().filter(|&&p| p <= phi0 + 1e-12) {
                                for &theta1 in grid.thetas.iter().filter(|&&t| t <= theta0 + 1e-12)
                                {
                                    let first = FaultParams::shift(theta0, phi0);
                                    let second = FaultParams::shift(theta1, phi1);
                                    let dist = if naive {
                                        prepared.replay_naive(first, second)
                                    } else {
                                        prepared.replay(first, second)
                                    };
                                    match dist {
                                        Ok(dist) => local.push(DoubleInjectionRecord {
                                            point,
                                            neighbor,
                                            theta0,
                                            phi0,
                                            theta1,
                                            phi1,
                                            qvf: qvf_from_dist(&dist, golden),
                                        }),
                                        Err(e) => {
                                            first_error.lock().get_or_insert(e);
                                            return;
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
                records.lock().extend(local);
            });
        }
    });

    if let Some(e) = first_error.into_inner() {
        return Err(e);
    }
    let mut records: Vec<DoubleInjectionRecord> = records.into_inner();
    records.sort_by(|a, b| {
        (a.point, a.neighbor, a.phi0, a.theta0, a.phi1, a.theta1)
            .partial_cmp(&(b.point, b.neighbor, b.phi0, b.theta0, b.phi1, b.theta1))
            .expect("angles are finite")
    });
    Ok(DoubleCampaignResult {
        circuit_name: qc.name.clone(),
        golden: golden.to_vec(),
        records,
        grid: options.grid.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{golden_outputs, run_single_campaign};
    use crate::executor::{Executor, IdealExecutor, NoisyExecutor};
    use qufi_algos::bernstein_vazirani;
    use qufi_noise::BackendCalibration;
    use qufi_transpile::{CouplingMap, OptimizationLevel};
    use std::f64::consts::PI;

    #[test]
    fn neighbor_pairs_on_jakarta() {
        let w = bernstein_vazirani(0b101, 3);
        let t = Transpiler::new(CouplingMap::ibm_h7(), OptimizationLevel::Level3);
        let pairs = neighbor_pairs(&w.circuit, &t).unwrap();
        assert!(!pairs.is_empty());
        for &(a, b) in &pairs {
            assert!(a < b && b < 4);
        }
    }

    #[test]
    fn second_fault_never_exceeds_first() {
        let w = bernstein_vazirani(0b1, 1);
        let opts = DoubleOptions::coarse(vec![(0, 1)]);
        let res =
            run_double_campaign(&w.circuit, &w.correct_outputs, &IdealExecutor, &opts).unwrap();
        assert!(!res.is_empty());
        for r in &res.records {
            assert!(r.theta1 <= r.theta0 + 1e-12);
            assert!(r.phi1 <= r.phi0 + 1e-12);
        }
    }

    #[test]
    fn double_fault_mean_qvf_exceeds_single_fault_mean() {
        // The paper's headline §V-D claim on BV: double faults are worse.
        let w = bernstein_vazirani(0b101, 3);
        let ex = NoisyExecutor::new(BackendCalibration::jakarta());
        let points = vec![
            crate::fault::InjectionPoint {
                op_index: 2,
                qubit: 0,
            },
            crate::fault::InjectionPoint {
                op_index: 5,
                qubit: 0,
            },
        ];
        let grid = FaultGrid::custom(vec![0.0, PI / 2.0, PI], vec![0.0, PI / 2.0, PI]);
        let single = run_single_campaign(
            &w.circuit,
            &w.correct_outputs,
            &ex,
            &crate::campaign::CampaignOptions {
                grid: grid.clone(),
                points: Some(points.clone()),
                threads: 0,
                naive: false,
            },
        )
        .unwrap();
        let t = ex.transpiler().clone();
        let pairs = neighbor_pairs(&w.circuit, &t).unwrap();
        let double = run_double_campaign(
            &w.circuit,
            &w.correct_outputs,
            &ex,
            &DoubleOptions {
                grid,
                points: Some(points),
                pairs,
                threads: 0,
                naive: false,
            },
        )
        .unwrap();
        assert!(
            double.mean_qvf() > single.mean_qvf(),
            "double {:.4} should exceed single {:.4}",
            double.mean_qvf(),
            single.mean_qvf()
        );
    }

    #[test]
    fn null_second_fault_reduces_to_single() {
        // θ1 = φ1 = 0: the double record must equal the single-fault QVF.
        let w = bernstein_vazirani(0b11, 2);
        let golden = golden_outputs(&w.circuit).unwrap();
        let point = crate::fault::InjectionPoint {
            op_index: 2,
            qubit: 0,
        };
        let opts = DoubleOptions {
            grid: FaultGrid::custom(vec![0.0, PI], vec![0.0]),
            points: Some(vec![point]),
            pairs: vec![(0, 1)],
            threads: 1,
            naive: false,
        };
        let res = run_double_campaign(&w.circuit, &golden, &IdealExecutor, &opts).unwrap();
        let zero_second: Vec<_> = res
            .records
            .iter()
            .filter(|r| r.theta0 == PI && r.theta1 == 0.0 && r.phi1 == 0.0)
            .collect();
        assert!(!zero_second.is_empty());
        let single =
            crate::fault::inject_fault(&w.circuit, point, FaultParams::shift(PI, 0.0)).unwrap();
        let single_qvf = qvf_from_dist(&IdealExecutor.execute(&single).unwrap(), &golden);
        for r in zero_second {
            assert!((r.qvf - single_qvf).abs() < 1e-9);
        }
    }

    #[test]
    fn slice_extracts_fixed_first_fault() {
        let w = bernstein_vazirani(0b1, 1);
        let opts = DoubleOptions::coarse(vec![(0, 1)]);
        let res =
            run_double_campaign(&w.circuit, &w.correct_outputs, &IdealExecutor, &opts).unwrap();
        let max_t = *opts.grid.thetas.last().unwrap();
        let max_p = *opts.grid.phis.last().unwrap();
        let slice = res.slice_first_fault(max_t, max_p);
        // The (max, max) slice sweeps the full second-fault lattice.
        assert_eq!(
            slice.len() * res.records.len() / res.records.len(),
            slice.len()
        );
        assert!(!slice.is_empty());
        for r in &slice {
            assert_eq!(r.theta0, max_t);
            assert_eq!(r.phi0, max_p);
        }
    }

    #[test]
    fn empty_pairs_yield_empty_campaign() {
        let w = bernstein_vazirani(0b1, 1);
        let opts = DoubleOptions::coarse(vec![]);
        let res =
            run_double_campaign(&w.circuit, &w.correct_outputs, &IdealExecutor, &opts).unwrap();
        assert!(res.is_empty());
    }
}
