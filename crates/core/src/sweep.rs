//! Noise-sensitivity sweeps.
//!
//! The paper injects faults over one fixed noise floor (the day's
//! calibration). A natural follow-up question — how does the QVF landscape
//! move as the device gets noisier or cleaner? — is answered here by
//! sweeping a scale factor over the calibration
//! ([`qufi_noise::BackendCalibration::scaled`]) and re-running a reduced
//! campaign at each point. The output separates the *baseline* degradation
//! (noise alone) from the *fault* degradation (injection on top of noise).

use crate::campaign::{run_single_campaign, CampaignOptions, CampaignResult};
use crate::error::ExecError;
use crate::executor::NoisyExecutor;
use qufi_noise::BackendCalibration;
use qufi_sim::QuantumCircuit;

/// One point of a noise sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Noise scale factor applied to the calibration (1.0 = nominal).
    pub scale: f64,
    /// QVF of the fault-free execution at this noise level.
    pub baseline_qvf: f64,
    /// Mean QVF over the injected faults at this noise level.
    pub mean_qvf: f64,
    /// Mean fault *contribution*: `mean_qvf − baseline_qvf`.
    pub fault_delta: f64,
    /// The underlying campaign (for deeper analysis).
    pub campaign: CampaignResult,
}

/// Runs the same single-fault campaign at every noise scale in `scales`.
///
/// # Errors
///
/// Propagates the first campaign failure.
///
/// # Panics
///
/// Panics if a scale factor is negative.
pub fn noise_sweep(
    qc: &QuantumCircuit,
    golden: &[usize],
    base: &BackendCalibration,
    scales: &[f64],
    options: &CampaignOptions,
) -> Result<Vec<SweepPoint>, ExecError> {
    let mut out = Vec::with_capacity(scales.len());
    for &scale in scales {
        assert!(scale >= 0.0, "negative noise scale");
        let ex = NoisyExecutor::new(base.scaled(scale));
        let campaign = run_single_campaign(qc, golden, &ex, options)?;
        let baseline_qvf = campaign.baseline_qvf;
        let mean_qvf = campaign.mean_qvf();
        out.push(SweepPoint {
            scale,
            baseline_qvf,
            mean_qvf,
            fault_delta: mean_qvf - baseline_qvf,
            campaign,
        });
    }
    Ok(out)
}

/// CSV rows `scale,baseline_qvf,mean_qvf,fault_delta` for a sweep.
pub fn sweep_to_csv(points: &[SweepPoint]) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("scale,baseline_qvf,mean_qvf,fault_delta\n");
    for p in points {
        let _ = writeln!(
            out,
            "{:.4},{:.6},{:.6},{:.6}",
            p.scale, p.baseline_qvf, p.mean_qvf, p.fault_delta
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultGrid, InjectionPoint};
    use qufi_algos::bernstein_vazirani;
    use std::f64::consts::PI;

    fn sweep_bv(scales: &[f64]) -> Vec<SweepPoint> {
        let w = bernstein_vazirani(0b11, 2);
        let opts = CampaignOptions {
            grid: FaultGrid::custom(vec![0.0, PI / 2.0, PI], vec![0.0, PI]),
            points: Some(vec![
                InjectionPoint {
                    op_index: 2,
                    qubit: 0,
                },
                InjectionPoint {
                    op_index: 3,
                    qubit: 1,
                },
            ]),
            threads: 0,
            naive: false,
        };
        noise_sweep(
            &w.circuit,
            &w.correct_outputs,
            &BackendCalibration::jakarta(),
            scales,
            &opts,
        )
        .expect("sweep")
    }

    #[test]
    fn baseline_degrades_monotonically_with_noise() {
        let points = sweep_bv(&[0.0, 1.0, 3.0, 6.0]);
        for w in points.windows(2) {
            assert!(
                w[1].baseline_qvf >= w[0].baseline_qvf - 1e-9,
                "baseline dropped when noise grew: {:.4} -> {:.4}",
                w[0].baseline_qvf,
                w[1].baseline_qvf
            );
        }
        // Zero noise → perfect baseline.
        assert!(points[0].baseline_qvf < 1e-9);
    }

    #[test]
    fn fault_delta_shrinks_as_noise_floods_the_signal() {
        // At extreme noise the output is garbage with or without the fault,
        // so the fault's marginal contribution collapses.
        let points = sweep_bv(&[0.0, 8.0]);
        assert!(
            points[1].fault_delta < points[0].fault_delta,
            "fault delta should shrink under heavy noise: {:.4} vs {:.4}",
            points[1].fault_delta,
            points[0].fault_delta
        );
        assert!(points[0].fault_delta > 0.1, "faults must matter when clean");
    }

    #[test]
    fn csv_has_one_row_per_scale() {
        let points = sweep_bv(&[0.5, 1.0]);
        let csv = sweep_to_csv(&points);
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("scale,"));
    }

    #[test]
    #[should_panic(expected = "negative noise scale")]
    fn negative_scale_rejected() {
        let _ = sweep_bv(&[-1.0]);
    }
}
