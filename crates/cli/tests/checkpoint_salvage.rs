//! Property tests for checkpoint salvage: however a crash tears a
//! record log — mid-line, mid-header, at any byte, across any number of
//! interleaved shard appends — the lenient loader must keep **every**
//! record whose line survived complete and must **never** fabricate a
//! record from a torn prefix (even one the column-tolerant CSV parser
//! would happily accept).

use proptest::prelude::*;
use qufi_cli::checkpoint::CheckpointStore;
use qufi_core::fault::InjectionPoint;
use qufi_core::InjectionRecord;
use std::fs;
use std::path::PathBuf;

fn temp_dir(tag: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "qufi-salvage-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn record(op: usize, qubit: usize, theta: f64, phi: f64, qvf: f64) -> InjectionRecord {
    InjectionRecord {
        point: InjectionPoint {
            op_index: op,
            qubit,
        },
        theta,
        phi,
        qvf,
    }
}

fn arb_record() -> impl Strategy<Value = InjectionRecord> {
    (0usize..50, 0usize..8, 0.0f64..6.3, 0.0f64..6.3, 0.0f64..1.0)
        .prop_map(|(op, qubit, theta, phi, qvf)| record(op, qubit, theta, phi, qvf))
}

/// Splits `records` into `shards` non-empty-ish chunks and appends each
/// separately — the on-disk shape a multi-pass (or sharded) campaign
/// leaves behind.
fn write_interleaved(store: &CheckpointStore, records: &[InjectionRecord], shards: usize) {
    let per = records.len().div_ceil(shards.max(1)).max(1);
    for chunk in records.chunks(per) {
        store.append_records("j", chunk).unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Truncating the log at ANY byte loses at most the records whose
    /// terminating newline fell past the cut — nothing less (no complete
    /// record dropped) and nothing more (no partial record resurrected).
    #[test]
    fn truncation_salvages_exactly_the_complete_lines(
        records in prop::collection::vec(arb_record(), 1..24),
        shards in 1usize..5,
        cut_frac in 0.0f64..=1.0,
        tag in 0u64..u64::MAX,
    ) {
        let dir = temp_dir(tag);
        let store = CheckpointStore::open(&dir).unwrap();
        write_interleaved(&store, &records, shards);
        let path = dir.join("checkpoints/j.records.csv");

        // What a clean load yields (post CSV round-trip) — the reference
        // the salvage result must be a prefix of.
        let full = store.load_records("j").unwrap();
        prop_assert_eq!(full.len(), records.len());

        let text = fs::read_to_string(&path).unwrap();
        let cut = (text.len() as f64 * cut_frac) as usize; // ASCII, any cut is a char boundary
        let torn = &text[..cut];
        fs::write(&path, torn).unwrap();

        // Expected survivors: complete ('\n'-terminated) lines, minus the
        // header — zero if the tear landed inside the header itself.
        let complete = match torn.ends_with('\n') {
            true => torn,
            false => &torn[..torn.rfind('\n').map(|i| i + 1).unwrap_or(0)],
        };
        let expected = complete.lines().count().saturating_sub(1);

        // Cut at byte `cut` of text.len(): exactly the `expected` complete
        // records must survive — no complete record dropped, no partial
        // record fabricated.
        let salvaged = store.load_records("j").unwrap();
        prop_assert_eq!(&salvaged[..], &full[..expected]);

        // The heal must leave the file appendable: later shards land after
        // a complete line and load cleanly alongside the survivors.
        store.append_records("j", &[record(99, 0, 0.5, 0.5, 0.5)]).unwrap();
        let after = store.load_records("j").unwrap();
        prop_assert_eq!(after.len(), expected + 1);
        prop_assert_eq!(&after[..expected], &full[..expected]);
        let _ = fs::remove_dir_all(dir);
    }

    /// An untorn log — no matter how many appends built it — loads every
    /// record in append order: salvage is a no-op on clean files.
    #[test]
    fn clean_interleaved_shards_lose_nothing(
        records in prop::collection::vec(arb_record(), 1..24),
        shards in 1usize..6,
        tag in 0u64..u64::MAX,
    ) {
        let dir = temp_dir(tag);
        let store = CheckpointStore::open(&dir).unwrap();
        write_interleaved(&store, &records, shards);
        let loaded = store.load_records("j").unwrap();
        prop_assert_eq!(loaded.len(), records.len());
        for (got, want) in loaded.iter().zip(&records) {
            prop_assert_eq!(got.point, want.point);
        }
        let _ = fs::remove_dir_all(dir);
    }
}
