//! End-to-end daemon smoke: the real `qufi serve` binary, killed
//! mid-campaign and restarted, must finish every submitted job with
//! `results/` bytes identical to a batch `qufi run` of the same
//! manifest — the service inherits the batch determinism contract.
//! Plus the failure-model surface: overload shedding under a flood,
//! health under load, and a clean drain.

use qufi_obs::json::Value;
use qufi_serve::client::Client;
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_qufi");
const IO_TIMEOUT: Duration = Duration::from_secs(5);

/// Two small campaigns with distinct shapes (and therefore distinct
/// content addresses). Enough injection points between them that a
/// `runner.append` chaos kill is guaranteed to land mid-run.
const CAMPAIGN_A: &str = r#"[campaign]
name = "svc-a"
executor = "ideal"
workloads = ["ghz-2"]

[grid]
thetas = [0.0, 0.7853981633974483, 1.5707963267948966]
phis = [0.0, 3.141592653589793]
"#;

const CAMPAIGN_B: &str = r#"[campaign]
name = "svc-b"
executor = "ideal"
workloads = ["bv-4"]

[grid]
thetas = [0.0, 1.5707963267948966]
phis = [0.0, 3.141592653589793]
"#;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "qufi-serve-e2e-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Every file under `root`, keyed by relative path.
fn tree(root: &Path) -> BTreeMap<String, Vec<u8>> {
    fn walk(root: &Path, dir: &Path, out: &mut BTreeMap<String, Vec<u8>>) {
        for entry in fs::read_dir(dir).unwrap() {
            let path = entry.unwrap().path();
            if path.is_dir() {
                walk(root, &path, out);
            } else {
                let rel = path
                    .strip_prefix(root)
                    .unwrap()
                    .to_string_lossy()
                    .replace('\\', "/");
                out.insert(rel, fs::read(&path).unwrap());
            }
        }
    }
    let mut out = BTreeMap::new();
    walk(root, root, &mut out);
    out
}

/// Batch-runs `manifest` into a fresh directory and returns the
/// directory — the byte-identity reference for the service run.
fn batch_golden(tag: &str, manifest: &str) -> PathBuf {
    let dir = temp_dir(&format!("golden-{tag}"));
    fs::create_dir_all(&dir).unwrap();
    let manifest_path = dir.join("campaign.toml");
    fs::write(&manifest_path, manifest).unwrap();
    let out_dir = dir.join("run");
    let out = Command::new(BIN)
        .arg("run")
        .arg(&manifest_path)
        .arg("--out")
        .arg(&out_dir)
        .arg("--quiet")
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "batch golden run failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    out_dir
}

fn spawn_daemon(dir: &Path, workers: &str, queue: &str, env: &[(&str, &str)]) -> Child {
    let mut cmd = Command::new(BIN);
    cmd.args(["serve", "--addr", "127.0.0.1:0", "--out"])
        .arg(dir)
        .args(["--workers", workers, "--queue", queue])
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    for (k, v) in env {
        cmd.env(k, v);
    }
    cmd.spawn().unwrap()
}

/// Polls `<dir>/serve.addr` until the daemon answers a health probe.
/// Tolerates the restart window where the file still names the dead
/// instance's port.
fn connect(dir: &Path, deadline: Duration) -> Client {
    let end = Instant::now() + deadline;
    loop {
        if let Ok(addr) = fs::read_to_string(dir.join("serve.addr")) {
            if let Ok(mut c) = Client::connect(addr.trim(), IO_TIMEOUT) {
                if c.health()
                    .is_ok_and(|v| v.get("ok") == Some(&Value::Bool(true)))
                {
                    return c;
                }
            }
        }
        assert!(
            Instant::now() < end,
            "daemon did not become healthy within {deadline:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn ok(reply: &Value) -> bool {
    reply.get("ok") == Some(&Value::Bool(true))
}

fn error_kind(reply: &Value) -> &str {
    reply
        .get("error")
        .and_then(|e| e.get("kind"))
        .and_then(Value::as_str)
        .unwrap_or("")
}

/// Submits and returns the job id, asserting admission.
fn submit_ok(c: &mut Client, manifest: &str) -> String {
    let reply = c.submit(manifest).unwrap();
    assert!(ok(&reply), "submit rejected: {reply:?}");
    reply.get("job").unwrap().as_str().unwrap().to_string()
}

/// The headline scenario: two concurrent campaigns, the daemon killed
/// deterministically mid-checkpoint-append, a clean restart that
/// recovers the durable queue (idempotent resubmission covers a job the
/// crash may have raced out of admission), and `results/` trees
/// byte-identical to batch goldens.
#[test]
fn crash_mid_run_recovers_to_batch_identical_exports() {
    let golden_a = batch_golden("a", CAMPAIGN_A);
    let golden_b = batch_golden("b", CAMPAIGN_B);

    let dir = temp_dir("crash");
    // Doomed instance: dies on the 6th checkpoint append, mid-campaign
    // by construction (the two jobs append 6 + 4 points).
    let mut doomed = spawn_daemon(&dir, "2", "16", &[("QUFI_CHAOS_KILL", "runner.append:6")]);
    {
        let mut c = connect(&dir, Duration::from_secs(20));
        // The daemon may crash concurrently with these round-trips, so
        // admission here is best-effort; the restart resubmits.
        let _ = c.submit(CAMPAIGN_A);
        let _ = c.submit(CAMPAIGN_B);
    }
    let status = doomed.wait().unwrap();
    assert!(
        !status.success(),
        "chaos kill at runner.append should have crashed the daemon"
    );

    // Clean restart on the same state directory: recovery re-admits the
    // persisted queue; resubmission is idempotent (`deduped` for any job
    // that survived) and re-admits anything the crash raced out.
    let mut daemon = spawn_daemon(&dir, "2", "16", &[]);
    let mut c = connect(&dir, Duration::from_secs(20));
    let id_a = submit_ok(&mut c, CAMPAIGN_A);
    let id_b = submit_ok(&mut c, CAMPAIGN_B);
    assert_ne!(id_a, id_b, "distinct campaigns must content-address apart");

    for id in [&id_a, &id_b] {
        let reply = c
            .wait_for(id, &["done", "failed", "poisoned"], Duration::from_secs(60))
            .unwrap();
        assert_eq!(
            reply.get("state").unwrap().as_str(),
            Some("done"),
            "job {id} did not finish cleanly: {reply:?}"
        );
    }

    // Byte-identity against the batch goldens.
    for (id, golden, tag) in [(&id_a, &golden_a, "A"), (&id_b, &golden_b, "B")] {
        let produced = tree(&dir.join("jobs").join(id).join("results"));
        let expected = tree(&golden.join("results"));
        assert_eq!(
            expected.keys().collect::<Vec<_>>(),
            produced.keys().collect::<Vec<_>>(),
            "campaign {tag}: artifact set diverged"
        );
        for (rel, bytes) in &expected {
            assert_eq!(
                bytes, &produced[rel],
                "campaign {tag}: {rel} diverged from the batch golden"
            );
        }
    }

    // Graceful drain: exit 0, metrics snapshot persisted.
    assert!(ok(&c.shutdown(true).unwrap()));
    let status = daemon.wait().unwrap();
    assert!(status.success(), "drained daemon must exit 0");
    assert!(dir.join("metrics.json").is_file());

    let _ = fs::remove_dir_all(dir);
    let _ = fs::remove_dir_all(golden_a.parent().unwrap());
    let _ = fs::remove_dir_all(golden_b.parent().unwrap());
}

/// Overload behavior under a submission flood: with one worker and a
/// 2-slot queue, a long-running blocker plus rapid distinct submissions
/// must shed at least one with a structured `overloaded` rejection —
/// while health stays responsive and shutdown still drains cleanly.
#[test]
fn flood_sheds_overloaded_and_drains_clean() {
    let dir = temp_dir("flood");
    let mut daemon = spawn_daemon(&dir, "1", "2", &[]);
    let mut c = connect(&dir, Duration::from_secs(20));

    // Occupies the single worker while the flood arrives: a noisy
    // 5-qubit sweep pays the full density-replay cost per point, so it
    // runs orders of magnitude longer than the sub-millisecond flood.
    let blocker = r#"[campaign]
name = "blocker"
executor = "noisy"
workloads = ["ghz-5"]
backends = ["lima"]

[grid]
thetas = [0.0, 0.5, 1.0, 1.5, 2.0, 2.5]
phis = [0.0, 0.5, 1.0, 1.5, 2.0, 2.5]
"#;
    submit_ok(&mut c, blocker);

    let mut admitted = 0usize;
    let mut shed = 0usize;
    for i in 0..9 {
        let manifest = format!(
            "[campaign]\nname = \"flood-{i}\"\nexecutor = \"ideal\"\n\
             workloads = [\"ghz-2\"]\n\n[grid]\nthetas = [0.{i}]\nphis = [0.0]\n"
        );
        let reply = c.submit(&manifest).unwrap();
        if ok(&reply) {
            admitted += 1;
        } else {
            assert_eq!(
                error_kind(&reply),
                "overloaded",
                "unexpected rejection: {reply:?}"
            );
            shed += 1;
        }
    }
    assert!(
        shed >= 1,
        "a 9-submission flood against queue_cap=2 must shed (admitted {admitted}; list: {:?})",
        c.list().unwrap()
    );

    // Health answers even at full load, with a structured snapshot.
    let health = c.health().unwrap();
    assert!(ok(&health), "{health:?}");
    assert!(health.get("queued").unwrap().as_u64().is_some());

    // Drain finishes the admitted jobs and exits 0.
    assert!(ok(&c.shutdown(true).unwrap()));
    let status = daemon.wait().unwrap();
    assert!(status.success(), "drained daemon must exit 0");

    let _ = fs::remove_dir_all(dir);
}
