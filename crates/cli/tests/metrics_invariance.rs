//! Telemetry must live strictly outside the determinism envelope: every
//! byte under `results/` is identical with metrics on or off, with or
//! without `--trace`, at any thread count — and the metrics a run *does*
//! record have to be internally consistent (Σ per-point replay counts =
//! points × grid size) and nest correctly as a span tree.
//!
//! The recorder is process-global, so every scenario runs inside one
//! `#[test]` (Rust runs tests in one binary concurrently); the `#[ignore]`d
//! overhead guard shares a lock with it for `--include-ignored` runs.

use qufi_cli::obs_artifacts::{COSTS_FILE, METRICS_FILE, TRACE_FILE};
use qufi_cli::{run_to_completion, Manifest, RunOptions, RunStatus};
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

static RECORDER_LOCK: Mutex<()> = Mutex::new(());

/// Noisy (exact density-matrix) scenario — same shape as the
/// thread-invariance suite, so a failure here isolates telemetry as the
/// cause rather than the scheduler.
const NOISY: &str = r#"
[campaign]
name = "metrics-noisy"
threads = 2
executor = "noisy"
workloads = ["bv-3"]
backends = ["jakarta"]

[grid]
thetas = [0.0, 1.5707963267948966, 3.141592653589793]
phis = [0.0, 3.141592653589793]
"#;

/// Hardware (finite-shot sampling) scenario: the RNG path is where a
/// stray telemetry call could most plausibly perturb results.
const HARDWARE: &str = r#"
[campaign]
name = "metrics-hardware"
seed = 23
shots = 256
executor = "hardware"
workloads = ["bv-3"]
backends = ["lima"]

[grid]
thetas = [0.0, 3.141592653589793]
phis = [0.0, 3.141592653589793]
"#;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "qufi-metrics-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Every file under `root`, keyed by relative path.
fn tree(root: &Path) -> BTreeMap<String, Vec<u8>> {
    fn walk(root: &Path, dir: &Path, out: &mut BTreeMap<String, Vec<u8>>) {
        for entry in fs::read_dir(dir).unwrap() {
            let path = entry.unwrap().path();
            if path.is_dir() {
                walk(root, &path, out);
            } else {
                let rel = path
                    .strip_prefix(root)
                    .unwrap()
                    .to_string_lossy()
                    .replace('\\', "/");
                out.insert(rel, fs::read(&path).unwrap());
            }
        }
    }
    let mut out = BTreeMap::new();
    walk(root, root, &mut out);
    out
}

struct Variant {
    metrics: bool,
    trace: bool,
    threads: usize,
}

/// Runs `manifest` under one telemetry/thread configuration and returns
/// the `results/` tree; when telemetry is on, checks the metric artifacts
/// for internal consistency before the directory is deleted.
fn run_variant(manifest: &Manifest, tag: &str, v: &Variant) -> BTreeMap<String, Vec<u8>> {
    let dir = temp_dir(&format!(
        "{tag}-m{}-tr{}-t{}",
        v.metrics as u8, v.trace as u8, v.threads
    ));
    let outcome = run_to_completion(
        manifest,
        &dir,
        &RunOptions {
            threads: Some(v.threads),
            quiet: true,
            metrics: v.metrics,
            trace: v.trace,
            ..RunOptions::default()
        },
    )
    .unwrap();
    assert_eq!(outcome.summary.status, RunStatus::Complete, "{tag}");

    let telemetry = v.metrics || v.trace;
    assert_eq!(
        dir.join(METRICS_FILE).is_file(),
        telemetry,
        "{tag}: metrics.json presence must follow the telemetry flags"
    );
    assert_eq!(
        dir.join(TRACE_FILE).is_file(),
        v.trace,
        "{tag}: trace.jsonl"
    );
    if telemetry {
        check_metrics_consistency(manifest, &dir, tag);
    }
    if v.trace {
        check_trace(&dir, tag);
    }

    let results = tree(&dir.join("results"));
    assert!(!results.is_empty(), "{tag}: campaign exported nothing");
    for artifact in [METRICS_FILE, COSTS_FILE, TRACE_FILE] {
        assert!(
            !results.contains_key(artifact),
            "{tag}: telemetry artifact {artifact} leaked into results/"
        );
    }
    let _ = fs::remove_dir_all(&dir);
    results
}

/// Totals in `metrics.json` and `costs.csv` must agree with each other
/// and with the campaign geometry: Σ per-point replay cells = points ×
/// grid size.
fn check_metrics_consistency(manifest: &Manifest, dir: &Path, tag: &str) {
    let snap = qufi_cli::obs_artifacts::load_metrics(dir).unwrap().unwrap();
    let costs = qufi_cli::obs_artifacts::load_costs(dir).unwrap().unwrap();
    let grid_len = manifest.grid.to_grid().unwrap().len() as u64;

    let points_run = snap
        .counters
        .get("campaign.points_run")
        .copied()
        .unwrap_or(0);
    assert!(points_run > 0, "{tag}: campaign ran no points");
    let cells = snap.counters.get("replay.cells").copied().unwrap_or(0);
    assert_eq!(
        cells,
        points_run * grid_len,
        "{tag}: replay.cells must equal points × grid configurations"
    );
    assert_eq!(
        costs.len() as u64,
        points_run,
        "{tag}: one costs.csv row per executed point"
    );
    assert_eq!(
        costs.iter().map(|c| c.cells).sum::<u64>(),
        cells,
        "{tag}: per-point cell counts must sum to replay.cells"
    );
    for c in &costs {
        assert!(!c.job.is_empty(), "{tag}: cost row without a job label");
    }

    // The per-point span histograms cover the same population as costs.csv.
    for hist in ["point.prepare_ns", "point.replay_ns"] {
        let h = snap
            .hists
            .get(hist)
            .unwrap_or_else(|| panic!("{tag}: missing {hist}"));
        assert_eq!(h.count, points_run, "{tag}: {hist} count");
    }
    let total = snap
        .hists
        .get("campaign.total_ns")
        .unwrap_or_else(|| panic!("{tag}: missing campaign.total_ns"));
    assert_eq!(total.count, 1, "{tag}: exactly one campaign.total_ns span");
}

fn check_trace(dir: &Path, tag: &str) {
    let events = qufi_cli::obs_artifacts::load_trace(dir).unwrap().unwrap();
    assert!(!events.is_empty(), "{tag}: trace recorded no spans");
    qufi_obs::trace::validate_nesting(&events)
        .unwrap_or_else(|e| panic!("{tag}: trace nesting broken: {e}"));
    assert!(
        events
            .iter()
            .any(|e| e.name == "campaign.total_ns" && e.depth == 0),
        "{tag}: no root campaign.total_ns span in the trace"
    );
}

/// Telemetry on/off × trace × thread count never changes a single
/// exported byte, and the recorded metrics are internally consistent.
#[test]
fn exports_are_byte_identical_with_metrics_on_off_and_any_thread_count() {
    let _guard = RECORDER_LOCK.lock().unwrap();
    let variants = [
        Variant {
            metrics: false,
            trace: false,
            threads: 1,
        },
        Variant {
            metrics: true,
            trace: false,
            threads: 1,
        },
        Variant {
            metrics: true,
            trace: true,
            threads: 4,
        },
        Variant {
            metrics: true,
            trace: false,
            threads: 4,
        },
    ];
    for (tag, text) in [("noisy", NOISY), ("hardware", HARDWARE)] {
        let manifest = Manifest::from_toml(text).unwrap();
        let reference = run_variant(&manifest, tag, &variants[0]);
        for v in &variants[1..] {
            let other = run_variant(&manifest, tag, v);
            assert_eq!(
                reference.keys().collect::<Vec<_>>(),
                other.keys().collect::<Vec<_>>(),
                "{tag}: artifact set changed under metrics={} trace={} threads={}",
                v.metrics,
                v.trace,
                v.threads
            );
            for (path, bytes) in &reference {
                assert_eq!(
                    bytes, &other[path],
                    "{tag}: {path} differs under metrics={} trace={} threads={}",
                    v.metrics, v.trace, v.threads
                );
            }
        }
    }

    // The committed golden snapshot is the cross-PR anchor: telemetry on
    // at several thread counts must still reproduce it byte-for-byte.
    let golden_dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    let manifest_text = fs::read_to_string(golden_dir.join("manifest.toml")).unwrap();
    let manifest = Manifest::from_toml(&manifest_text).unwrap();
    let expected = tree(&golden_dir.join("results"));
    for v in [
        Variant {
            metrics: true,
            trace: true,
            threads: 1,
        },
        Variant {
            metrics: true,
            trace: false,
            threads: 4,
        },
    ] {
        let produced = run_variant(&manifest, "golden", &v);
        assert_eq!(
            expected.keys().collect::<Vec<_>>(),
            produced.keys().collect::<Vec<_>>(),
            "golden: artifact set changed with telemetry on (threads={})",
            v.threads
        );
        for (path, bytes) in &expected {
            assert_eq!(
                bytes, &produced[path],
                "golden: {path} diverged from the committed snapshot with \
                 telemetry on (threads={})",
                v.threads
            );
        }
    }
}

/// The batched grid replay is a pure performance feature: every exported
/// byte must be identical with batching off (`--no-batch`, i.e.
/// `QUFI_BATCH_CELLS=1`) and on at any width, at any thread count. The
/// metrics consistency checks (`replay.cells` = points × grid) must hold
/// on both paths. Note the committed-golden check above already runs the
/// batched default; this pins the width axis explicitly.
#[test]
fn exports_are_byte_identical_with_batching_on_and_off() {
    let _guard = RECORDER_LOCK.lock().unwrap();
    for (tag, text) in [("noisy", NOISY), ("hardware", HARDWARE)] {
        let manifest = Manifest::from_toml(text).unwrap();
        std::env::set_var("QUFI_BATCH_CELLS", "1");
        let reference = run_variant(
            &manifest,
            &format!("{tag}-nobatch"),
            &Variant {
                metrics: true,
                trace: false,
                threads: 1,
            },
        );
        for (width, threads) in [("4", 1usize), ("8", 4), ("16", 2)] {
            std::env::set_var("QUFI_BATCH_CELLS", width);
            let other = run_variant(
                &manifest,
                &format!("{tag}-w{width}"),
                &Variant {
                    metrics: true,
                    trace: false,
                    threads,
                },
            );
            assert_eq!(
                reference.keys().collect::<Vec<_>>(),
                other.keys().collect::<Vec<_>>(),
                "{tag}: artifact set changed under batch width {width}"
            );
            for (path, bytes) in &reference {
                assert_eq!(
                    bytes, &other[path],
                    "{tag}: {path} differs between --no-batch and batch \
                     width {width} at {threads} thread(s)"
                );
            }
        }
        std::env::remove_var("QUFI_BATCH_CELLS");
    }
}

/// Timing guard for the zero-overhead claim: with the recorder disabled,
/// a counter bump plus a span open/close is one relaxed atomic load each
/// — it must stay in the low tens of nanoseconds even on a loaded CI
/// runner. Run explicitly (`-- --ignored`) by the CI telemetry job so an
/// unlucky scheduler stall never fails the default suite.
#[test]
#[ignore = "timing guard; run via the CI telemetry job with -- --ignored"]
fn disabled_telemetry_is_nearly_free() {
    let _guard = RECORDER_LOCK.lock().unwrap();
    qufi_obs::disable();
    const ITERS: u64 = 1_000_000;
    let start = std::time::Instant::now();
    for i in 0..ITERS {
        qufi_obs::add("guard.counter", i);
        qufi_obs::observe("guard.hist", i);
        qufi_obs::span("guard.span_ns").finish();
    }
    let per_iter = start.elapsed().as_nanos() as f64 / ITERS as f64;
    assert!(
        per_iter < 250.0,
        "disabled-path telemetry costs {per_iter:.1} ns per add+observe+span \
         triple; the disabled fast path should be a few relaxed atomic loads"
    );
    // Nothing may have been recorded while disabled.
    qufi_obs::flush();
    let snap = qufi_obs::snapshot();
    assert!(
        !snap.counters.contains_key("guard.counter")
            && !snap.hists.contains_key("guard.hist")
            && !snap.hists.contains_key("guard.span_ns"),
        "disabled recorder still captured data: {:?}",
        snap.counters.keys().collect::<Vec<_>>()
    );
}
