//! Golden-file test: the `export` output of a small committed manifest is
//! pinned byte-for-byte under `tests/golden/results/`. Any refactor of the
//! sweep engine (or the exporters) that silently changes campaign results
//! fails here instead of shipping.
//!
//! To re-bless the snapshot after an *intentional* result change:
//!
//! ```bash
//! QUFI_BLESS=1 cargo test -p qufi-cli --test golden_export
//! git add crates/cli/tests/golden
//! ```

use qufi_cli::{run_to_completion, Manifest, RunOptions, RunStatus};
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// Every file under `root`, keyed by relative path.
fn tree(root: &Path) -> BTreeMap<String, Vec<u8>> {
    fn walk(root: &Path, dir: &Path, out: &mut BTreeMap<String, Vec<u8>>) {
        for entry in fs::read_dir(dir).unwrap() {
            let path = entry.unwrap().path();
            if path.is_dir() {
                walk(root, &path, out);
            } else {
                let rel = path
                    .strip_prefix(root)
                    .unwrap()
                    .to_string_lossy()
                    .replace('\\', "/");
                out.insert(rel, fs::read(&path).unwrap());
            }
        }
    }
    let mut out = BTreeMap::new();
    walk(root, root, &mut out);
    out
}

#[test]
fn export_matches_committed_golden_files() {
    let manifest_text = fs::read_to_string(golden_dir().join("manifest.toml")).unwrap();
    let manifest = Manifest::from_toml(&manifest_text).unwrap();

    let out = std::env::temp_dir().join(format!(
        "qufi-golden-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = fs::remove_dir_all(&out);
    let outcome = run_to_completion(
        &manifest,
        &out,
        &RunOptions {
            quiet: true,
            ..RunOptions::default()
        },
    )
    .unwrap();
    assert_eq!(outcome.summary.status, RunStatus::Complete);
    let produced = tree(&out.join("results"));
    assert!(!produced.is_empty(), "campaign exported nothing");

    let snapshot_dir = golden_dir().join("results");
    if std::env::var_os("QUFI_BLESS").is_some() {
        let _ = fs::remove_dir_all(&snapshot_dir);
        for (rel, bytes) in &produced {
            let dest = snapshot_dir.join(rel);
            fs::create_dir_all(dest.parent().unwrap()).unwrap();
            fs::write(dest, bytes).unwrap();
        }
        eprintln!("blessed {} golden files", produced.len());
        let _ = fs::remove_dir_all(&out);
        return;
    }

    let expected = tree(&snapshot_dir);
    assert_eq!(
        expected.keys().collect::<Vec<_>>(),
        produced.keys().collect::<Vec<_>>(),
        "artifact set changed — if intentional, re-bless with QUFI_BLESS=1"
    );
    for (rel, bytes) in &expected {
        assert_eq!(
            bytes, &produced[rel],
            "artifact {rel} diverged from the golden snapshot — campaign \
             results changed; if intentional, re-bless with QUFI_BLESS=1"
        );
    }
    let _ = fs::remove_dir_all(&out);
}
