//! Trajectory-backend determinism, end to end: a `executor = "trajectory"`
//! manifest must export byte-identical JSON/CSV artifacts across
//!
//! * `--threads 1/2/4` (the point-worker × grid split),
//! * interrupt + resume cycles (checkpoint replay), and
//! * shot-chunking (`QUFI_TRAJ_SHOT_THREADS` worker counts).
//!
//! Per-shot seeds derive from (campaign seed, job, point, fault angles,
//! shot index), and shot blocks fold in fixed order, so no schedule can
//! leak into the averaged distributions.

use qufi_cli::{resume, run_to_completion, Manifest, RunOptions, RunStatus};
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

const TRAJECTORY: &str = r#"
[campaign]
name = "traj-invariance"
seed = 31
shots = 192
executor = "trajectory"
workloads = ["bv-3"]
backends = ["lima"]

[grid]
thetas = [0.0, 1.5707963267948966, 3.141592653589793]
phis = [0.0, 3.141592653589793]
"#;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "qufi-traj-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Every file under `root`, keyed by relative path.
fn tree(root: &Path) -> BTreeMap<String, Vec<u8>> {
    fn walk(root: &Path, dir: &Path, out: &mut BTreeMap<String, Vec<u8>>) {
        for entry in fs::read_dir(dir).unwrap() {
            let path = entry.unwrap().path();
            if path.is_dir() {
                walk(root, &path, out);
            } else {
                let rel = path
                    .strip_prefix(root)
                    .unwrap()
                    .to_string_lossy()
                    .into_owned();
                out.insert(rel, fs::read(&path).unwrap());
            }
        }
    }
    let mut out = BTreeMap::new();
    walk(root, root, &mut out);
    out
}

fn quiet() -> RunOptions {
    RunOptions {
        quiet: true,
        ..RunOptions::default()
    }
}

fn run_complete(manifest: &Manifest, tag: &str, opts: &RunOptions) -> BTreeMap<String, Vec<u8>> {
    let dir = temp_dir(tag);
    let outcome = run_to_completion(manifest, &dir, opts).unwrap();
    assert_eq!(outcome.summary.status, RunStatus::Complete);
    let artifacts = tree(&dir.join("results"));
    assert!(
        artifacts.keys().any(|p| p.ends_with(".json"))
            && artifacts.keys().any(|p| p.ends_with(".csv")),
        "expected JSON and CSV artifacts, got {:?}",
        artifacts.keys().collect::<Vec<_>>()
    );
    let _ = fs::remove_dir_all(dir);
    artifacts
}

fn assert_same_tree(a: &BTreeMap<String, Vec<u8>>, b: &BTreeMap<String, Vec<u8>>, what: &str) {
    assert_eq!(
        a.keys().collect::<Vec<_>>(),
        b.keys().collect::<Vec<_>>(),
        "{what}: different artifact sets"
    );
    for (path, bytes) in a {
        assert_eq!(bytes, &b[path], "{what}: artifact {path} differs");
    }
}

#[test]
fn trajectory_exports_are_thread_count_invariant() {
    let manifest = Manifest::from_toml(TRAJECTORY).unwrap();
    let reference = run_complete(
        &manifest,
        "t1",
        &RunOptions {
            threads: Some(1),
            ..quiet()
        },
    );
    for threads in [2usize, 4] {
        let other = run_complete(
            &manifest,
            &format!("t{threads}"),
            &RunOptions {
                threads: Some(threads),
                ..quiet()
            },
        );
        assert_same_tree(&reference, &other, &format!("--threads {threads}"));
    }
}

#[test]
fn trajectory_exports_survive_interrupt_and_resume() {
    let manifest = Manifest::from_toml(TRAJECTORY).unwrap();
    let reference = run_complete(&manifest, "uninterrupted", &quiet());

    let dir = temp_dir("interrupted");
    let first = run_to_completion(
        &manifest,
        &dir,
        &RunOptions {
            point_budget: Some(1),
            ..quiet()
        },
    )
    .unwrap();
    assert_eq!(first.summary.status, RunStatus::Interrupted);
    let mut cycles = 0;
    loop {
        cycles += 1;
        assert!(cycles < 100, "campaign never completed");
        let outcome = resume(
            &dir,
            &RunOptions {
                point_budget: Some(2),
                ..quiet()
            },
        )
        .unwrap();
        if outcome.summary.status == RunStatus::Complete {
            break;
        }
    }
    let resumed = tree(&dir.join("results"));
    assert_same_tree(&reference, &resumed, "interrupt + resume");
    let _ = fs::remove_dir_all(dir);
}

#[test]
fn trajectory_exports_are_shot_chunking_invariant() {
    // The shot-worker count is read per replay; it only changes how the
    // fixed shot blocks are scheduled, never what they sum to. (Any
    // concurrent reader of this env var is likewise chunking-invariant,
    // so the cross-test race is benign by construction.)
    let manifest = Manifest::from_toml(TRAJECTORY).unwrap();
    std::env::set_var("QUFI_TRAJ_SHOT_THREADS", "1");
    let reference = run_complete(&manifest, "shots-serial", &quiet());
    for workers in ["2", "5"] {
        std::env::set_var("QUFI_TRAJ_SHOT_THREADS", workers);
        let other = run_complete(&manifest, &format!("shots-w{workers}"), &quiet());
        assert_same_tree(
            &reference,
            &other,
            &format!("QUFI_TRAJ_SHOT_THREADS={workers}"),
        );
    }
    std::env::remove_var("QUFI_TRAJ_SHOT_THREADS");
}
