//! Kill-and-resume chaos harness: drives the real `qufi` binary through
//! sharded campaigns while crashing it on purpose — at named chaos sites
//! (`QUFI_CHAOS_KILL`/`QUFI_CHAOS_FAIL`) and with raw SIGKILLs at
//! schedule-driven moments — then resumes with fresh workers and asserts
//! the merged export is byte-identical to the committed single-node
//! golden under `tests/golden/results`.
//!
//! The randomized SIGKILL schedules are seeded (a plain LCG, no
//! wall-clock entropy), so a failing seed replays exactly. CI runs the
//! full 20-schedule sweep via `--ignored`; the default test run keeps a
//! 3-schedule smoke.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Output};
use std::time::Duration;

const BIN: &str = env!("CARGO_BIN_EXE_qufi");

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "qufi-chaos-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Every file under `root`, keyed by relative path.
fn tree(root: &Path) -> BTreeMap<String, Vec<u8>> {
    fn walk(root: &Path, dir: &Path, out: &mut BTreeMap<String, Vec<u8>>) {
        for entry in fs::read_dir(dir).unwrap() {
            let path = entry.unwrap().path();
            if path.is_dir() {
                walk(root, &path, out);
            } else {
                let rel = path
                    .strip_prefix(root)
                    .unwrap()
                    .to_string_lossy()
                    .replace('\\', "/");
                out.insert(rel, fs::read(&path).unwrap());
            }
        }
    }
    let mut out = BTreeMap::new();
    walk(root, root, &mut out);
    out
}

fn plan(dir: &Path) -> Output {
    let out = Command::new(BIN)
        .args(["shard", "plan"])
        .arg(golden_dir().join("manifest.toml"))
        .arg("--out")
        .arg(dir)
        .args(["--shards", "2", "--quiet"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "shard plan failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

fn worker_cmd(dir: &Path, name: &str, lease_ms: u64) -> Command {
    let mut cmd = Command::new(BIN);
    cmd.args(["shard", "work"])
        .arg(dir)
        .args(["--worker", name])
        .args(["--lease-timeout-ms", &lease_ms.to_string(), "--quiet"]);
    cmd
}

fn run_worker(dir: &Path, name: &str, lease_ms: u64, env: &[(&str, &str)]) -> Output {
    let mut cmd = worker_cmd(dir, name, lease_ms);
    for (k, v) in env {
        cmd.env(k, v);
    }
    cmd.output().unwrap()
}

fn merge(dir: &Path, env: &[(&str, &str)]) -> Output {
    let mut cmd = Command::new(BIN);
    cmd.args(["shard", "merge"]).arg(dir).arg("--quiet");
    for (k, v) in env {
        cmd.env(k, v);
    }
    cmd.output().unwrap()
}

#[track_caller]
fn assert_matches_golden(dir: &Path, context: &str) {
    let expected = tree(&golden_dir().join("results"));
    let produced = tree(&dir.join("results"));
    assert_eq!(
        expected.keys().collect::<Vec<_>>(),
        produced.keys().collect::<Vec<_>>(),
        "{context}: artifact set diverged from golden"
    );
    for (rel, bytes) in &expected {
        assert_eq!(
            bytes, &produced[rel],
            "{context}: artifact {rel} diverged from the single-node golden"
        );
    }
}

/// Process-killing chaos sites: crash one worker at each site in turn,
/// then let a rescue worker take over the stale lease and finish. Every
/// scenario must merge byte-identical to the golden.
#[test]
fn kill_sites_resume_to_golden() {
    // (site, guaranteed): the unit.* sites fire on every unit write, so
    // the worker MUST die there. lease.refresh only fires if a unit
    // outlives a heartbeat interval — on a fast machine the tiny golden
    // campaign may finish first, which degenerates to a clean run (the
    // rescue/merge/golden assertions still apply either way).
    for (site, guaranteed) in [
        ("unit.pre_write:1", true),
        ("unit.mid_write:1", true),
        ("unit.post_write:1", true),
        ("lease.refresh:2", false),
    ] {
        let dir = temp_dir(&format!("kill-{}", site.replace([':', '.'], "-")));
        plan(&dir);
        let crash = run_worker(&dir, "crash", 300, &[("QUFI_CHAOS_KILL", site)]);
        assert!(
            !guaranteed || !crash.status.success(),
            "worker should have died at {site}, got: {}",
            String::from_utf8_lossy(&crash.stdout)
        );
        let rescue = run_worker(&dir, "rescue", 300, &[]);
        assert!(
            rescue.status.success(),
            "rescue worker failed after {site}: {}",
            String::from_utf8_lossy(&rescue.stderr)
        );
        let merged = merge(&dir, &[]);
        assert!(
            merged.status.success(),
            "merge failed after {site}: {}",
            String::from_utf8_lossy(&merged.stderr)
        );
        assert_matches_golden(&dir, site);
        let _ = fs::remove_dir_all(dir);
    }
}

/// Transient IO faults (synthetic, via `QUFI_CHAOS_FAIL`) are absorbed by
/// the deterministic retry/backoff — the worker exits clean, nothing is
/// quarantined, and the merge still matches the golden.
#[test]
fn transient_faults_retry_to_golden() {
    let dir = temp_dir("transient");
    plan(&dir);
    let out = run_worker(
        &dir,
        "flaky",
        1000,
        &[("QUFI_CHAOS_FAIL", "unit.write:2,claim.io:1")],
    );
    assert!(
        out.status.success(),
        "retries should absorb transient faults: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let fails = fs::read_dir(dir.join("units"))
        .unwrap()
        .filter_map(Result::ok)
        .filter(|e| e.path().extension().is_some_and(|x| x == "fails"))
        .count();
    assert_eq!(fails, 0, "transient faults must not accrue unit strikes");
    assert!(merge(&dir, &[]).status.success());
    assert_matches_golden(&dir, "transient faults");
    let _ = fs::remove_dir_all(dir);
}

/// A persistent per-unit fault parks units in `poisoned/` with a
/// diagnostic and blocks the merge; clearing the quarantine and
/// re-running a healthy worker recovers to the golden bytes.
#[test]
fn poisoned_units_block_merge_until_cleared() {
    let dir = temp_dir("poison");
    plan(&dir);
    let out = run_worker(
        &dir,
        "doomed",
        1000,
        &[("QUFI_CHAOS_FAIL", "unit.write:9999")],
    );
    assert_eq!(
        out.status.code(),
        Some(2),
        "a worker that poisoned units must exit 2: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let poisoned: Vec<PathBuf> = fs::read_dir(dir.join("poisoned"))
        .unwrap()
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    assert!(!poisoned.is_empty(), "expected quarantined units");
    for diag in &poisoned {
        let text = fs::read_to_string(diag).unwrap();
        assert!(
            !text.trim().is_empty(),
            "diagnostic {} is empty",
            diag.display()
        );
    }
    let blocked = merge(&dir, &[]);
    assert!(
        !blocked.status.success(),
        "merge must refuse poisoned units"
    );
    assert!(
        String::from_utf8_lossy(&blocked.stderr).contains("quarantined"),
        "merge error should name the quarantine: {}",
        String::from_utf8_lossy(&blocked.stderr)
    );

    // Operator clears the quarantine and strike files; a healthy worker
    // re-runs the parked units and the campaign completes to golden.
    for path in poisoned {
        fs::remove_file(path).unwrap();
    }
    for entry in fs::read_dir(dir.join("units")).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|x| x == "fails") {
            fs::remove_file(path).unwrap();
        }
    }
    assert!(run_worker(&dir, "healthy", 1000, &[]).status.success());
    assert!(merge(&dir, &[]).status.success());
    assert_matches_golden(&dir, "poison recovery");
    let _ = fs::remove_dir_all(dir);
}

/// Crashing the merge (before publish, and mid-export) leaves a state a
/// plain re-merge repairs — checkpoint publishes and artifact writes are
/// atomic per file.
#[test]
fn merge_and_export_crashes_are_repairable() {
    let dir = temp_dir("merge-crash");
    plan(&dir);
    assert!(run_worker(&dir, "solo", 1000, &[]).status.success());

    let pre = merge(&dir, &[("QUFI_CHAOS_KILL", "merge.pre_publish:1")]);
    assert!(!pre.status.success(), "merge should have died pre-publish");
    let mid = merge(&dir, &[("QUFI_CHAOS_KILL", "export.write:3")]);
    assert!(!mid.status.success(), "merge should have died mid-export");

    assert!(merge(&dir, &[]).status.success());
    assert_matches_golden(&dir, "merge crash recovery");
    let _ = fs::remove_dir_all(dir);
}

/// Deterministic schedule source for the SIGKILL driver: a bare LCG so a
/// failing seed replays without any wall-clock randomness.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

/// One randomized kill schedule: spawn workers and SIGKILL each after a
/// seed-derived delay (some die mid-unit, some mid-heartbeat, some after
/// finishing), then let a clean worker take over whatever leases went
/// stale and finish the campaign. Must merge to the golden bytes.
fn run_sigkill_schedule(seed: u64) {
    let mut rng = Lcg(seed.wrapping_add(0x9e3779b97f4a7c15));
    let dir = temp_dir(&format!("sigkill-{seed}"));
    plan(&dir);

    let rounds = 2 + (rng.next() % 3) as usize; // 2..=4 doomed workers
    for round in 0..rounds {
        let name = format!("doomed{round}");
        let mut child: Child = worker_cmd(&dir, &name, 250)
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null())
            .spawn()
            .unwrap();
        let delay = Duration::from_millis(5 + rng.next() % 120);
        std::thread::sleep(delay);
        // kill() is SIGKILL on unix: no destructors, no lease release —
        // the takeover path has to reclaim the unit.
        let _ = child.kill();
        let _ = child.wait();
    }

    let rescue = run_worker(&dir, "rescue", 250, &[]);
    assert!(
        rescue.status.success(),
        "seed {seed}: rescue worker failed: {}",
        String::from_utf8_lossy(&rescue.stderr)
    );
    let merged = merge(&dir, &[]);
    assert!(
        merged.status.success(),
        "seed {seed}: merge failed: {}",
        String::from_utf8_lossy(&merged.stderr)
    );
    assert_matches_golden(&dir, &format!("sigkill seed {seed}"));
    let _ = fs::remove_dir_all(dir);
}

/// Default-run smoke: three schedules.
#[test]
fn sigkill_chaos_smoke() {
    for seed in 0..3 {
        run_sigkill_schedule(seed);
    }
}

/// Full CI sweep — 20 randomized kill schedules (`cargo test -p qufi-cli
/// --test chaos_kill -- --ignored`).
#[test]
#[ignore = "20-schedule chaos sweep; CI runs it via -- --ignored"]
fn sigkill_chaos_twenty_schedules() {
    for seed in 100..120 {
        run_sigkill_schedule(seed);
    }
}
