//! Thread-count invariance: the same manifest executed with `--threads 1`
//! and `--threads 4` must produce byte-identical JSON/CSV exports.
//!
//! This is the end-to-end check of the whole determinism chain: grid cells
//! are chunked deterministically (`PreparedSweep::replay_grid`), hardware
//! sampling seeds derive from (seed, job, point, fault angles) rather than
//! any shared stream, records sort into a canonical order, and artifacts
//! are generated from checkpoints — so neither the point-worker × grid
//! split of the thread budget nor OS scheduling can leak into the output.

use qufi_cli::{run_to_completion, Manifest, RunOptions, RunStatus};
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

/// Noisy (exact) and hardware (finite-shot sampling) scenarios: sampling
/// is the easiest place for scheduling order to leak in, so both run.
const NOISY: &str = r#"
[campaign]
name = "threads-noisy"
threads = 2
executor = "noisy"
workloads = ["bv-3"]
backends = ["jakarta"]

[grid]
thetas = [0.0, 1.5707963267948966, 3.141592653589793]
phis = [0.0, 3.141592653589793]
"#;

const HARDWARE: &str = r#"
[campaign]
name = "threads-hardware"
seed = 23
shots = 256
executor = "hardware"
workloads = ["bv-3"]
backends = ["lima"]

[grid]
thetas = [0.0, 3.141592653589793]
phis = [0.0, 3.141592653589793]
"#;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "qufi-threads-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Every file under `root`, keyed by relative path.
fn tree(root: &Path) -> BTreeMap<String, Vec<u8>> {
    fn walk(root: &Path, dir: &Path, out: &mut BTreeMap<String, Vec<u8>>) {
        for entry in fs::read_dir(dir).unwrap() {
            let path = entry.unwrap().path();
            if path.is_dir() {
                walk(root, &path, out);
            } else {
                let rel = path
                    .strip_prefix(root)
                    .unwrap()
                    .to_string_lossy()
                    .into_owned();
                out.insert(rel, fs::read(&path).unwrap());
            }
        }
    }
    let mut out = BTreeMap::new();
    walk(root, root, &mut out);
    out
}

fn run_with_threads(manifest: &Manifest, tag: &str, threads: usize) -> BTreeMap<String, Vec<u8>> {
    let dir = temp_dir(&format!("{tag}-t{threads}"));
    let outcome = run_to_completion(
        manifest,
        &dir,
        &RunOptions {
            threads: Some(threads),
            quiet: true,
            ..RunOptions::default()
        },
    )
    .unwrap();
    assert_eq!(outcome.summary.status, RunStatus::Complete);
    let artifacts = tree(&dir.join("results"));
    assert!(
        artifacts.keys().any(|p| p.ends_with(".json"))
            && artifacts.keys().any(|p| p.ends_with(".csv")),
        "expected JSON and CSV artifacts, got {:?}",
        artifacts.keys().collect::<Vec<_>>()
    );
    let _ = fs::remove_dir_all(dir);
    artifacts
}

fn assert_identical_artifacts(manifest_toml: &str, tag: &str) {
    let manifest = Manifest::from_toml(manifest_toml).unwrap();
    let reference = run_with_threads(&manifest, tag, 1);
    for threads in [2usize, 4] {
        let other = run_with_threads(&manifest, tag, threads);
        assert_eq!(
            reference.keys().collect::<Vec<_>>(),
            other.keys().collect::<Vec<_>>(),
            "{tag}: different artifact sets at --threads {threads}"
        );
        for (path, bytes) in &reference {
            assert_eq!(
                bytes, &other[path],
                "{tag}: artifact {path} differs between --threads 1 and --threads {threads}"
            );
        }
    }
}

#[test]
fn noisy_exports_are_thread_count_invariant() {
    assert_identical_artifacts(NOISY, "noisy");
}

#[test]
fn hardware_exports_are_thread_count_invariant() {
    assert_identical_artifacts(HARDWARE, "hardware");
}
