//! End-to-end orchestration tests: a multi-workload, multi-backend
//! campaign must survive interruption-and-resume with artifacts
//! byte-identical to an uninterrupted run, and its exported records
//! must match a direct `qufi_core::campaign` library invocation.

use qufi_cli::{resume, run_to_completion, Manifest, RunOptions, RunStatus};
use qufi_core::campaign::{golden_outputs, run_single_campaign, CampaignOptions};
use qufi_core::executor::NoisyExecutor;
use qufi_core::fault::FaultGrid;
use qufi_core::report::records_to_csv;
use qufi_noise::BackendCalibration;
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

const MANIFEST: &str = r#"
[campaign]
name = "roundtrip"
seed = 11
threads = 2
executor = "noisy"
workloads = ["bv-3", "ghz-3"]
backends = ["jakarta", "lima"]

[grid]
thetas = [0.0, 3.141592653589793]
phis = [0.0, 3.141592653589793]
"#;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "qufi-it-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn quiet() -> RunOptions {
    RunOptions {
        quiet: true,
        ..RunOptions::default()
    }
}

/// Every file under `root`, keyed by relative path.
fn tree(root: &Path) -> BTreeMap<String, Vec<u8>> {
    fn walk(root: &Path, dir: &Path, out: &mut BTreeMap<String, Vec<u8>>) {
        for entry in fs::read_dir(dir).unwrap() {
            let path = entry.unwrap().path();
            if path.is_dir() {
                walk(root, &path, out);
            } else {
                let rel = path
                    .strip_prefix(root)
                    .unwrap()
                    .to_string_lossy()
                    .into_owned();
                out.insert(rel, fs::read(&path).unwrap());
            }
        }
    }
    let mut out = BTreeMap::new();
    walk(root, root, &mut out);
    out
}

#[test]
fn interrupted_campaign_resumes_to_identical_artifacts() {
    let manifest = Manifest::from_toml(MANIFEST).unwrap();

    // Reference: one uninterrupted run.
    let dir_a = temp_dir("uninterrupted");
    let outcome_a = run_to_completion(&manifest, &dir_a, &quiet()).unwrap();
    assert_eq!(outcome_a.summary.status, RunStatus::Complete);
    assert_eq!(
        outcome_a.export.jobs_complete, 4,
        "2 workloads × 2 backends"
    );

    // The same campaign, killed by a 3-point budget…
    let dir_b = temp_dir("interrupted");
    let first = run_to_completion(
        &manifest,
        &dir_b,
        &RunOptions {
            point_budget: Some(3),
            ..quiet()
        },
    )
    .unwrap();
    assert_eq!(first.summary.status, RunStatus::Interrupted);
    assert_eq!(first.summary.points_run, 3);
    assert!(first.export.jobs_partial > 0);

    // …then resumed (with a budget again, to exercise several
    // interrupt/resume cycles) until it completes.
    let mut cycles = 0;
    loop {
        cycles += 1;
        assert!(cycles < 100, "campaign never completed");
        let outcome = resume(
            &dir_b,
            &RunOptions {
                point_budget: Some(5),
                ..quiet()
            },
        )
        .unwrap();
        if outcome.summary.status == RunStatus::Complete {
            assert_eq!(
                outcome.summary.points_run + outcome.summary.points_resumed,
                outcome_a.summary.points_run,
                "resumed campaign covered a different point set"
            );
            break;
        }
        assert!(outcome.summary.points_run <= 5);
    }

    // Artifact trees must match byte-for-byte.
    let results_a = tree(&dir_a.join("results"));
    let results_b = tree(&dir_b.join("results"));
    assert_eq!(
        results_a.keys().collect::<Vec<_>>(),
        results_b.keys().collect::<Vec<_>>(),
        "different artifact sets"
    );
    for (path, bytes_a) in &results_a {
        assert_eq!(
            bytes_a, &results_b[path],
            "artifact {path} differs between uninterrupted and resumed runs"
        );
    }

    let _ = fs::remove_dir_all(dir_a);
    let _ = fs::remove_dir_all(dir_b);
}

#[test]
fn exported_records_match_direct_library_campaign() {
    let manifest = Manifest::from_toml(MANIFEST).unwrap();
    let dir = temp_dir("library-match");
    run_to_completion(&manifest, &dir, &quiet()).unwrap();

    // The equivalent direct qufi_core invocation for one matrix cell.
    let w = qufi_algos::build_workload("bv-3").unwrap();
    let golden = golden_outputs(&w.circuit).unwrap();
    let executor = NoisyExecutor::new(BackendCalibration::jakarta());
    let opts = CampaignOptions {
        grid: FaultGrid::custom(
            vec![0.0, std::f64::consts::PI],
            vec![0.0, std::f64::consts::PI],
        ),
        points: None,
        threads: 2,
        naive: false,
    };
    let direct = run_single_campaign(&w.circuit, &golden, &executor, &opts).unwrap();

    // The CLI's canonical records.csv is exactly the library's CSV
    // rendering of the same campaign (checkpoint round-tripping is
    // format-idempotent).
    let exported = fs::read_to_string(dir.join("results/bv-3@jakarta/records.csv")).unwrap();
    assert_eq!(exported, records_to_csv(&direct.records));

    // And the summary carries the same baseline/golden.
    let summary = fs::read_to_string(dir.join("results/summary.json")).unwrap();
    let expected_baseline = qufi_core::serialize::json::num(direct.baseline_qvf);
    assert!(
        summary.contains(&format!("\"baseline_qvf\":{expected_baseline}")),
        "baseline {expected_baseline} not in summary: {summary}"
    );

    let _ = fs::remove_dir_all(dir);
}

#[test]
fn the_qufi_binary_runs_lists_and_resumes() {
    use std::process::Command;
    let bin = env!("CARGO_BIN_EXE_qufi");
    let dir = temp_dir("binary");
    fs::create_dir_all(&dir).unwrap();
    let manifest_path = dir.join("m.toml");
    fs::write(
        &manifest_path,
        "[campaign]\nname = \"bin\"\nexecutor = \"ideal\"\nworkloads = [\"ghz-2\"]\n\
         [grid]\nthetas = [0.0, 3.141592653589793]\nphis = [0.0]\n",
    )
    .unwrap();
    let out = dir.join("campaign");

    // A budgeted run exits 2 (interrupted)…
    let status = Command::new(bin)
        .args(["run", manifest_path.to_str().unwrap(), "--out"])
        .arg(&out)
        .args(["--budget", "1", "--quiet"])
        .status()
        .unwrap();
    assert_eq!(status.code(), Some(2), "budgeted run should exit 2");

    // …resume finishes with 0 and produces artifacts.
    let status = Command::new(bin)
        .args(["resume"])
        .arg(&out)
        .args(["--quiet"])
        .status()
        .unwrap();
    assert_eq!(status.code(), Some(0), "resume should complete");
    assert!(out.join("results/summary.json").is_file());

    // export regenerates in place; list subcommands answer.
    let status = Command::new(bin)
        .args(["export", out.to_str().unwrap()])
        .status()
        .unwrap();
    assert_eq!(status.code(), Some(0), "export failed");
    for what in ["workloads", "backends", "grids"] {
        let output = Command::new(bin).args(["list", what]).output().unwrap();
        assert!(output.status.success());
        assert!(!output.stdout.is_empty());
    }

    // Usage errors exit 1.
    let status = Command::new(bin).args(["frobnicate"]).status().unwrap();
    assert_eq!(status.code(), Some(1));

    let _ = fs::remove_dir_all(dir);
}
