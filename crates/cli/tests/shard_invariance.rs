//! Shard invariance: a campaign executed as N sharded workers — any
//! shard count, any worker count, workers racing concurrently, any
//! per-worker grid-thread budget — must merge into a results tree
//! byte-identical to the single-node `qufi run` export.
//!
//! This extends `thread_invariance` across the process boundary the
//! shard engine introduces: unit partitioning (LPT over costs), lease
//! claiming order, work stealing, and duplicate executions from lease
//! takeovers must all cancel out in `merge_records` canonicalization.

use qufi_cli::shard::{self, WorkOptions};
use qufi_cli::{run_to_completion, Manifest, RunOptions, RunStatus};
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Two jobs so the merge covers a multi-job matrix; noisy (exact) and
/// hardware (finite-shot sampling) variants, as in `thread_invariance`.
const NOISY: &str = r#"
[campaign]
name = "shards-noisy"
executor = "noisy"
workloads = ["bv-3", "ghz-3"]
backends = ["jakarta"]

[grid]
thetas = [0.0, 1.5707963267948966, 3.141592653589793]
phis = [0.0, 3.141592653589793]
"#;

const HARDWARE: &str = r#"
[campaign]
name = "shards-hardware"
seed = 23
shots = 256
executor = "hardware"
workloads = ["bv-3"]
backends = ["lima"]

[grid]
thetas = [0.0, 3.141592653589793]
phis = [0.0, 3.141592653589793]
"#;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "qufi-shardinv-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Every file under `root`, keyed by relative path.
fn tree(root: &Path) -> BTreeMap<String, Vec<u8>> {
    fn walk(root: &Path, dir: &Path, out: &mut BTreeMap<String, Vec<u8>>) {
        for entry in fs::read_dir(dir).unwrap() {
            let path = entry.unwrap().path();
            if path.is_dir() {
                walk(root, &path, out);
            } else {
                let rel = path
                    .strip_prefix(root)
                    .unwrap()
                    .to_string_lossy()
                    .into_owned();
                out.insert(rel, fs::read(&path).unwrap());
            }
        }
    }
    let mut out = BTreeMap::new();
    walk(root, root, &mut out);
    out
}

fn single_node(manifest: &Manifest, tag: &str) -> BTreeMap<String, Vec<u8>> {
    let dir = temp_dir(&format!("{tag}-single"));
    let outcome = run_to_completion(
        manifest,
        &dir,
        &RunOptions {
            threads: Some(1),
            quiet: true,
            ..RunOptions::default()
        },
    )
    .unwrap();
    assert_eq!(outcome.summary.status, RunStatus::Complete);
    let artifacts = tree(&dir.join("results"));
    let _ = fs::remove_dir_all(dir);
    artifacts
}

/// Plans `shards` shards, runs `workers` concurrent workers (each with a
/// different grid-thread budget), merges, and returns the results tree.
fn sharded(
    manifest: &Manifest,
    tag: &str,
    shards: usize,
    workers: usize,
) -> BTreeMap<String, Vec<u8>> {
    let dir = temp_dir(&format!("{tag}-s{shards}-w{workers}"));
    let report = shard::plan_campaign(manifest, &dir, shards, None).unwrap();
    assert_eq!(report.plan.shards, shards);

    std::thread::scope(|scope| {
        for w in 0..workers {
            let dir = &dir;
            scope.spawn(move || {
                let opts = WorkOptions {
                    worker: format!("w{w}"),
                    // Pin half the workers to a home shard, let the rest
                    // hash-pick and steal across shards.
                    shard: (w % 2 == 0).then_some(w % shards),
                    lease_timeout: Duration::from_millis(2000),
                    grid_threads: w + 1,
                    quiet: true,
                };
                let report = shard::work_campaign(dir, &opts).unwrap();
                assert_eq!(report.units_poisoned, 0, "worker w{w} poisoned units");
            });
        }
    });

    let merged = shard::merge_campaign(&dir).unwrap();
    assert_eq!(
        merged.units_merged,
        report.plan.units.len(),
        "merge must cover every planned unit"
    );
    let artifacts = tree(&dir.join("results"));
    let _ = fs::remove_dir_all(dir);
    artifacts
}

fn assert_shard_invariant(manifest_toml: &str, tag: &str) {
    let manifest = Manifest::from_toml(manifest_toml).unwrap();
    let reference = single_node(&manifest, tag);
    for (shards, workers) in [(1usize, 2usize), (2, 1), (3, 3)] {
        let other = sharded(&manifest, tag, shards, workers);
        assert_eq!(
            reference.keys().collect::<Vec<_>>(),
            other.keys().collect::<Vec<_>>(),
            "{tag}: different artifact sets at {shards} shards / {workers} workers"
        );
        for (path, bytes) in &reference {
            assert_eq!(
                bytes, &other[path],
                "{tag}: artifact {path} differs from single-node at \
                 {shards} shards / {workers} workers"
            );
        }
    }
}

#[test]
fn noisy_exports_are_shard_invariant() {
    assert_shard_invariant(NOISY, "noisy");
}

#[test]
fn hardware_exports_are_shard_invariant() {
    assert_shard_invariant(HARDWARE, "hardware");
}

/// Duplicate execution — the takeover race's worst case, where two
/// workers both complete the same unit — must still merge byte-identical:
/// records are bitwise-equal and deduplicate in canonicalization.
#[test]
fn duplicated_unit_executions_merge_identically() {
    let manifest = Manifest::from_toml(NOISY).unwrap();
    let reference = single_node(&manifest, "dup");

    let dir = temp_dir("dup-sharded");
    shard::plan_campaign(&manifest, &dir, 2, None).unwrap();
    // First worker completes everything...
    let first = shard::work_campaign(
        &dir,
        &WorkOptions {
            worker: "a".into(),
            quiet: true,
            ..WorkOptions::default()
        },
    )
    .unwrap();
    assert!(first.units_done > 0);
    // ...then every done-marker is erased so a second worker re-executes
    // each unit, leaving two record files per unit in shards/.
    for entry in fs::read_dir(dir.join(shard::UNITS_DIR)).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "done") {
            fs::remove_file(path).unwrap();
        }
    }
    shard::work_campaign(
        &dir,
        &WorkOptions {
            worker: "b".into(),
            quiet: true,
            ..WorkOptions::default()
        },
    )
    .unwrap();
    let per_unit = fs::read_dir(dir.join(shard::SHARDS_DIR)).unwrap().count();
    assert!(
        per_unit >= 2 * first.units_done,
        "expected duplicated record files, found {per_unit}"
    );

    shard::merge_campaign(&dir).unwrap();
    assert_eq!(tree(&dir.join("results")), reference);
    let _ = fs::remove_dir_all(dir);
}
