//! Fuzz-hardening for the manifest pipeline. The daemon's submit path
//! feeds client-supplied bytes straight into [`Manifest::from_toml`],
//! so the whole parser stack — TOML subset, schema validation, grid
//! expansion — must hold one property under arbitrary input: return
//! `Ok` or a structured [`ManifestIssue`], **never panic** (a panic in
//! a daemon worker burns a strike; in the batch CLI it's a crash).
//!
//! Three generators probe different depths:
//!
//! 1. arbitrary bytes (lossy-decoded) — the outermost parser surface,
//! 2. token soup assembled from TOML fragments — reaches the value and
//!    array grammar far more often than raw bytes do,
//! 3. byte-level mutations of a valid manifest — reaches schema
//!    validation (names, ranges, grids) with near-valid inputs.

use proptest::prelude::*;
use qufi_cli::Manifest;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A manifest exercising every section and key, used as mutation seed.
const SEED_MANIFEST: &str = r#"[campaign]
name = "fuzz-seed"
seed = 7
threads = 2
executor = "hardware"
shots = 256
drift = 0.05
workloads = ["bv-4", "ghz-3"]
backends = ["jakarta", "lima"]
noise_scales = [0.5, 1.0]

[grid]
thetas = [0.0, 1.5707963267948966]
phis = [0.0, 3.141592653589793]
"#;

#[test]
fn seed_manifest_is_valid() {
    Manifest::from_toml(SEED_MANIFEST).unwrap();
}

/// The fuzz property: parsing `text` either succeeds or yields a typed
/// manifest issue; unwinding is a bug.
fn structured_or_ok(text: &str) -> Result<(), String> {
    match catch_unwind(AssertUnwindSafe(|| Manifest::from_toml(text).err())) {
        Ok(None) => Ok(()),
        Ok(Some(e)) => match e.as_manifest_issue() {
            Some(_) => Ok(()),
            None => Err(format!("unstructured error {e:?} for input {text:?}")),
        },
        Err(_) => Err(format!("parser panicked on input {text:?}")),
    }
}

/// TOML fragments whose combinations reach the grammar's edge cases:
/// headers, escapes, nesting, comments, numeric oddities, unicode.
const TOKENS: &[&str] = &[
    "[campaign]",
    "[grid]",
    "[[t]]",
    "[",
    "]",
    ",",
    "=",
    "\"",
    "\\",
    "\\\"",
    "name",
    "seed",
    "workloads",
    "thetas",
    "preset",
    "\"bv-4\"",
    "true",
    "false",
    "0.5",
    "1e309",
    "-",
    "_",
    "1_0_0",
    "inf",
    "nan",
    "#c",
    "\n",
    " ",
    "\t",
    "\u{0}",
    "𝛉",
    "é",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary bytes — whatever a confused (or hostile) client sends.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(0u8..=255, 0..256)) {
        let text = String::from_utf8_lossy(&bytes).into_owned();
        prop_assert!(structured_or_ok(&text).is_ok(), "{:?}", structured_or_ok(&text));
    }

    /// TOML-shaped token soup — syntactically dense garbage that
    /// reaches string escapes, array splitting, and section handling.
    #[test]
    fn token_soup_never_panics(ids in prop::collection::vec(0usize..TOKENS.len(), 0..48)) {
        let text: String = ids.iter().map(|&i| TOKENS[i]).collect();
        prop_assert!(structured_or_ok(&text).is_ok(), "{:?}", structured_or_ok(&text));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(384))]

    /// Byte-level mutations of a valid manifest — near-valid inputs
    /// that reach schema validation rather than dying at the tokenizer.
    /// Ops: 0 = flip a byte, 1 = insert a byte, 2 = delete a byte,
    /// 3 = truncate, 4 = duplicate a line, 5 = delete a line.
    #[test]
    fn mutated_manifests_never_panic(
        ops in prop::collection::vec((0usize..6, 0usize..4096, 0u8..=255), 1..8),
    ) {
        let mut bytes = SEED_MANIFEST.as_bytes().to_vec();
        for &(op, pos, byte) in &ops {
            if bytes.is_empty() {
                break;
            }
            let pos = pos % bytes.len();
            match op {
                0 => bytes[pos] = byte,
                1 => bytes.insert(pos, byte),
                2 => {
                    bytes.remove(pos);
                }
                3 => bytes.truncate(pos),
                4 | 5 => {
                    let text = String::from_utf8_lossy(&bytes).into_owned();
                    let mut lines: Vec<&str> = text.lines().collect();
                    if lines.is_empty() {
                        break;
                    }
                    let idx = pos % lines.len();
                    if op == 4 {
                        lines.insert(idx, lines[idx]);
                    } else {
                        lines.remove(idx);
                    }
                    bytes = lines.join("\n").into_bytes();
                    bytes.push(b'\n');
                }
                _ => unreachable!(),
            }
        }
        let text = String::from_utf8_lossy(&bytes).into_owned();
        prop_assert!(structured_or_ok(&text).is_ok(), "{:?}", structured_or_ok(&text));
    }
}

/// Deterministic regressions for inputs the fuzz generators flagged (or
/// that are too structured for them to hit reliably).
#[test]
fn known_hostile_inputs_yield_structured_issues() {
    let deep = format!("a = {}{}\n", "[".repeat(50_000), "]".repeat(50_000));
    let cases: Vec<String> = vec![
        deep,                                                           // recursion bomb (depth-capped)
        "a = [\n".to_string(),              // unterminated multi-line array
        "a = \"\\q\"\n".to_string(),        // unsupported escape
        "a = \"unterminated\n".to_string(), // unterminated string
        "a = 1e309\n".to_string(),          // float overflow → inf
        "a = nan\n".to_string(),            // NaN literal
        "a = --5\n".to_string(),            // bad integer
        "[campaign]\nshots = 99999999999999999999999999\n".to_string(), // i64 overflow
        "\u{0}\u{fffd}[campaign\u{0}]\n".to_string(), // control chars in header
        "[campaign]\nname = \"..\"\n".to_string(), // path-escape name
    ];
    for text in &cases {
        structured_or_ok(text).unwrap();
        assert!(
            Manifest::from_toml(text).is_err(),
            "expected a rejection for {text:?}"
        );
    }
}
