//! Sharded campaign execution: `qufi shard plan / work / merge`.
//!
//! A campaign directory becomes a coordination surface that any number
//! of worker processes (possibly on different machines sharing a
//! filesystem) can attach to:
//!
//! ```text
//! <out>/
//!   manifest.toml        the experiment (store_or_check semantics)
//!   shard-plan.json      the partitioned job × point matrix
//!   units/               <unit>.lease / .done / .fails / .tomb.* markers
//!   shards/              <unit>.<worker>.csv raw per-unit record files
//!   poisoned/            <unit>.txt quarantine diagnostics
//!   checkpoints/         canonical per-job state (written by plan + merge)
//!   results/             exported artifacts (written by merge)
//! ```
//!
//! **plan** resolves the manifest's job × point matrix into work units,
//! allocates them across N shards cost-aware (measured `costs.csv` when
//! available, grid cells otherwise — [`qufi_core::shard`]), writes every
//! job's checkpoint metadata, and publishes `shard-plan.json`.
//!
//! **work** claims units under crash-safe leases ([`crate::lease`]):
//! each worker walks its own shard first, then steals unfinished units
//! from other shards (stale leases are taken over after the timeout).
//! A claimed unit executes exactly like the single-node scheduler's
//! point task and lands in its own `shards/<unit>.<worker>.csv` — one
//! writer per file, so concurrent workers never interleave bytes, and a
//! crash can only tear the file's tail. Transient failures retry on a
//! deterministic capped-exponential [`Backoff`]; units that keep
//! failing are parked in `poisoned/` with a diagnostic record instead
//! of wedging the campaign.
//!
//! **merge** folds the per-unit files into the canonical checkpoint
//! layout and exports `results/`. Unit execution is deterministic and
//! [`CampaignResult::merge_records`] deduplicates by (point, θ, φ), so
//! the merged artifacts are byte-identical to a single-node run no
//! matter how many workers ran, how work was stolen, or how many times
//! a unit was redundantly executed — leases are an efficiency
//! mechanism, never a correctness dependency. The `shard_invariance`
//! test suite enforces exactly this.

use crate::chaos;
use crate::checkpoint::{CheckpointStore, JobMeta};
use crate::error::CliError;
use crate::export::{export_artifacts, ExportReport};
use crate::job::{job_matrix, JobRuntime};
use crate::lease::{self, Backoff, Claim, Lease, LeaseConfig};
use crate::manifest::Manifest;
use crate::obs_artifacts;
use qufi_core::fault::{FaultGrid, InjectionPoint};
use qufi_core::report::records_to_csv;
use qufi_core::serialize::records_from_csv;
use qufi_core::shard::{unit_id as core_unit_id, ShardPlan, WorkUnit};
use qufi_core::{CampaignResult, InjectionRecord};
use qufi_obs::json;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// The plan document at the campaign root.
pub const PLAN_FILE: &str = "shard-plan.json";
/// Lease/done/failure markers live here.
pub const UNITS_DIR: &str = "units";
/// Per-unit, per-worker record files live here.
pub const SHARDS_DIR: &str = "shards";
/// Quarantined units' diagnostics live here.
pub const POISONED_DIR: &str = "poisoned";
/// A unit that fails this many times (across all workers) is poisoned.
pub const MAX_UNIT_FAILURES: u64 = 3;
/// Retry budget for one transient claim/write failure burst.
const RETRY_ATTEMPTS: u32 = 5;
const RETRY_BASE: Duration = Duration::from_millis(5);
const RETRY_CAP: Duration = Duration::from_millis(200);

/// What `shard plan` produced.
#[derive(Debug)]
pub struct PlanReport {
    /// The published plan.
    pub plan: ShardPlan,
    /// `"measured"` when `costs.csv` drove the allocation, `"cells"`
    /// when every unit fell back to its grid-cell weight.
    pub cost_source: &'static str,
    /// Human-facing allocation summary.
    pub summary: String,
}

/// What one `shard work` invocation did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkReport {
    /// Units this worker executed to completion.
    pub units_done: usize,
    /// Of those, units claimed by stealing a stale lease.
    pub units_stolen: usize,
    /// Units this worker poisoned after repeated failures.
    pub units_poisoned: usize,
}

/// What `shard merge` produced.
#[derive(Debug)]
pub struct MergeReport {
    /// Units folded into checkpoints.
    pub units_merged: usize,
    /// The export that followed.
    pub export: ExportReport,
}

/// Worker-invocation knobs.
#[derive(Debug, Clone)]
pub struct WorkOptions {
    /// This worker's unique name (lease identity and file suffix).
    /// Running two workers with the same name defeats the one-writer-
    /// per-file guarantee; give every process its own name.
    pub worker: String,
    /// Preferred shard; `None` derives one from the worker name. The
    /// worker still steals from other shards once its own is drained.
    pub shard: Option<usize>,
    /// Lease staleness threshold for takeover.
    pub lease_timeout: Duration,
    /// Grid threads per unit sweep (records are identical for any value).
    pub grid_threads: usize,
    /// Suppress progress logging.
    pub quiet: bool,
}

impl Default for WorkOptions {
    fn default() -> Self {
        WorkOptions {
            worker: "w0".to_string(),
            shard: None,
            lease_timeout: Duration::from_secs(5),
            grid_threads: 1,
            quiet: false,
        }
    }
}

// ---------------------------------------------------------------------
// plan
// ---------------------------------------------------------------------

/// Resolves the manifest into a shard plan under `out_dir`: enumerates
/// the job × point matrix (writing each job's checkpoint metadata so
/// merge/export/resume can run later), allocates units across `shards`
/// cost-aware, and publishes `shard-plan.json` atomically.
///
/// `costs_path` overrides the cost profile location (default:
/// `<out>/costs.csv` when present, e.g. from a prior profiling run).
///
/// # Errors
///
/// Manifest/grid failures, job preparation failures, a campaign
/// directory belonging to a different experiment, and I/O failures.
pub fn plan_campaign(
    manifest: &Manifest,
    out_dir: &Path,
    shards: usize,
    costs_path: Option<&Path>,
) -> Result<PlanReport, CliError> {
    crate::store_or_check_manifest(manifest, out_dir)?;
    let grid = manifest.grid.to_grid()?;
    let store = CheckpointStore::open(out_dir)?;

    let mut matrix: Vec<(String, InjectionPoint)> = Vec::new();
    for spec in job_matrix(manifest) {
        let runtime = JobRuntime::prepare(manifest, &spec)?;
        let fresh = JobMeta::from_runtime(&runtime);
        match store.load_meta(&spec.id())? {
            Some(stored) if stored == fresh => {}
            Some(_) => {
                return Err(CliError::checkpoint(format!(
                    "job {}: existing checkpoint metadata disagrees with the \
                     manifest; this directory belongs to a different campaign",
                    spec.id()
                )))
            }
            None => store.save_meta(&fresh)?,
        }
        matrix.extend(runtime.points.iter().map(|&p| (spec.id(), p)));
    }

    let costs = match costs_path {
        Some(path) => {
            let text = fs::read_to_string(path)
                .map_err(|e| CliError::io("reading cost profile", path, e))?;
            Some(qufi_obs::parse_costs_csv(&text).map_err(CliError::shard)?)
        }
        None => obs_artifacts::load_costs(out_dir)?,
    };
    let cost_map: HashMap<(String, usize, usize), u64> = costs
        .iter()
        .flatten()
        .map(|c| {
            (
                (c.job.clone(), c.op_index, c.qubit),
                (c.prepare_ns + c.replay_ns).max(1),
            )
        })
        .collect();
    let cost_source = if cost_map.is_empty() {
        "cells"
    } else {
        "measured"
    };

    let plan = ShardPlan::build(
        manifest.name.clone(),
        &matrix,
        grid.len(),
        shards,
        |job, p| {
            cost_map
                .get(&(job.to_string(), p.op_index, p.qubit))
                .copied()
        },
    );

    for sub in [UNITS_DIR, SHARDS_DIR, POISONED_DIR] {
        let dir = out_dir.join(sub);
        fs::create_dir_all(&dir).map_err(|e| CliError::io("creating shard directory", &dir, e))?;
    }
    crate::atomic_write(
        &out_dir.join(PLAN_FILE),
        plan_to_json(&plan).as_bytes(),
        "writing shard plan",
    )?;
    qufi_obs::add("shard.plans", 1);

    let mut summary = String::new();
    let _ = writeln!(
        summary,
        "shard plan: {} units across {} shard(s), {cost_source} costs, \
         imbalance {:.3}",
        plan.units.len(),
        plan.shards,
        plan.imbalance(),
    );
    for (shard, load) in plan.shard_loads().iter().enumerate() {
        let _ = writeln!(
            summary,
            "  shard {shard}: {} unit(s), load {load}",
            plan.shard_units(shard).len(),
        );
    }
    Ok(PlanReport {
        plan,
        cost_source,
        summary,
    })
}

/// Renders a plan as the `shard-plan.json` document.
pub fn plan_to_json(plan: &ShardPlan) -> String {
    let mut out = String::from("{\n  \"version\": 1,\n");
    let _ = writeln!(out, "  \"campaign\": {},", json::quote(&plan.campaign));
    let _ = writeln!(out, "  \"shards\": {},", plan.shards);
    let _ = writeln!(out, "  \"cells_per_unit\": {},", plan.cells_per_unit);
    out.push_str("  \"units\": [");
    for (i, u) in plan.units.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(
            out,
            "{sep}\n    {{\"id\":{},\"job\":{},\"op_index\":{},\"qubit\":{},\
             \"cost\":{},\"shard\":{}}}",
            json::quote(&u.id),
            json::quote(&u.job),
            u.point.op_index,
            u.point.qubit,
            u.cost,
            u.shard
        );
    }
    out.push_str(if plan.units.is_empty() {
        "]\n}\n"
    } else {
        "\n  ]\n}\n"
    });
    out
}

/// Parses a `shard-plan.json` document.
///
/// # Errors
///
/// Malformed JSON or an unexpected document shape.
pub fn plan_from_json(text: &str) -> Result<ShardPlan, CliError> {
    let doc = json::parse(text).map_err(|e| CliError::shard(e.to_string()))?;
    if doc.get("version").and_then(json::Value::as_u64) != Some(1) {
        return Err(CliError::shard("unsupported shard-plan version"));
    }
    let field = |name: &str| {
        doc.get(name)
            .and_then(json::Value::as_u64)
            .ok_or_else(|| CliError::shard(format!("plan missing {name:?}")))
    };
    let campaign = doc
        .get("campaign")
        .and_then(json::Value::as_str)
        .ok_or_else(|| CliError::shard("plan missing \"campaign\""))?
        .to_string();
    let shards = field("shards")? as usize;
    let cells_per_unit = field("cells_per_unit")? as usize;
    let units = doc
        .get("units")
        .and_then(json::Value::as_arr)
        .ok_or_else(|| CliError::shard("plan missing \"units\""))?
        .iter()
        .map(|u| {
            let num = |name: &str| {
                u.get(name)
                    .and_then(json::Value::as_u64)
                    .ok_or_else(|| CliError::shard(format!("plan unit missing {name:?}")))
            };
            let s = |name: &str| {
                u.get(name)
                    .and_then(json::Value::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| CliError::shard(format!("plan unit missing {name:?}")))
            };
            Ok(WorkUnit {
                id: s("id")?,
                job: s("job")?,
                point: InjectionPoint {
                    op_index: num("op_index")? as usize,
                    qubit: num("qubit")? as usize,
                },
                cost: num("cost")?,
                shard: num("shard")? as usize,
            })
        })
        .collect::<Result<Vec<_>, CliError>>()?;
    if units.iter().any(|u| u.shard >= shards.max(1)) {
        return Err(CliError::shard(
            "plan assigns a unit to an out-of-range shard",
        ));
    }
    Ok(ShardPlan {
        campaign,
        shards: shards.max(1),
        cells_per_unit,
        units,
    })
}

/// Loads the plan a campaign directory was sharded under.
///
/// # Errors
///
/// A missing or malformed plan file.
pub fn load_plan(out_dir: &Path) -> Result<ShardPlan, CliError> {
    let path = out_dir.join(PLAN_FILE);
    let text = fs::read_to_string(&path)
        .map_err(|e| CliError::io("reading shard plan (run `qufi shard plan` first)", &path, e))?;
    plan_from_json(&text)
}

// ---------------------------------------------------------------------
// work
// ---------------------------------------------------------------------

fn done_path(out_dir: &Path, unit: &str) -> PathBuf {
    out_dir.join(UNITS_DIR).join(format!("{unit}.done"))
}

fn fails_path(out_dir: &Path, unit: &str) -> PathBuf {
    out_dir.join(UNITS_DIR).join(format!("{unit}.fails"))
}

fn poison_path(out_dir: &Path, unit: &str) -> PathBuf {
    out_dir.join(POISONED_DIR).join(format!("{unit}.txt"))
}

fn unit_file(out_dir: &Path, unit: &str, worker: &str) -> PathBuf {
    out_dir
        .join(SHARDS_DIR)
        .join(format!("{unit}.{worker}.csv"))
}

/// Runs one worker against a planned campaign directory until every
/// unit is done or poisoned. Safe to run concurrently with any number
/// of other workers (unique names!) and safe to SIGKILL at any moment:
/// a later worker (or invocation) takes over via lease expiry and
/// re-executes whatever was not durably finished.
///
/// # Errors
///
/// Missing plan/manifest, a directory belonging to a different
/// campaign, and non-transient I/O failures. Unit execution failures
/// are *not* errors — they retry and eventually poison the unit.
pub fn work_campaign(out_dir: &Path, opts: &WorkOptions) -> Result<WorkReport, CliError> {
    let manifest = crate::load_stored_manifest(out_dir)?;
    let plan = load_plan(out_dir)?;
    let grid = manifest.grid.to_grid()?;
    let store = CheckpointStore::open(out_dir)?;
    let units_dir = out_dir.join(UNITS_DIR);
    let cfg = LeaseConfig {
        worker: opts.worker.clone(),
        timeout: opts.lease_timeout,
    };
    let home_shard = opts.shard.unwrap_or_else(|| {
        if plan.shards == 0 {
            0
        } else {
            (qufi_core::engine::SeedHasher::new()
                .mix_bytes(opts.worker.as_bytes())
                .finish()
                % plan.shards as u64) as usize
        }
    });

    // Own shard first (plan order), then everyone else's — work stealing
    // kicks in only once the home shard is drained or blocked.
    let mut order: Vec<&WorkUnit> = plan
        .units
        .iter()
        .filter(|u| u.shard == home_shard)
        .collect();
    order.extend(plan.units.iter().filter(|u| u.shard != home_shard));

    let mut runtimes: HashMap<String, JobRuntime> = HashMap::new();
    let mut report = WorkReport::default();
    let poll = (opts.lease_timeout / 4).min(Duration::from_millis(200));
    loop {
        let mut outstanding = 0usize;
        let mut progressed = false;
        for unit in &order {
            if done_path(out_dir, &unit.id).exists() || poison_path(out_dir, &unit.id).exists() {
                continue;
            }
            outstanding += 1;
            let lease = match claim_with_retry(&units_dir, &unit.id, &cfg)? {
                Claim::Acquired(lease) => lease,
                Claim::Miss(_) => continue,
            };
            let stolen = lease.took_over;
            let runtime = match runtimes.entry(unit.job.clone()) {
                std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                std::collections::hash_map::Entry::Vacant(e) => {
                    let spec = store
                        .load_meta(&unit.job)?
                        .ok_or_else(|| {
                            CliError::shard(format!(
                                "unit {} references job {} with no checkpoint metadata; \
                                 re-run `qufi shard plan`",
                                unit.id, unit.job
                            ))
                        })?
                        .spec();
                    e.insert(JobRuntime::prepare(&manifest, &spec)?)
                }
            };
            match execute_unit(out_dir, runtime, &grid, unit, &lease, &cfg, opts) {
                Ok(()) => {
                    report.units_done += 1;
                    report.units_stolen += usize::from(stolen);
                    progressed = true;
                    if !opts.quiet {
                        qufi_obs::log::info(&format!(
                            "[{}] unit {} ({} op {} q{}) done{}",
                            opts.worker,
                            unit.id,
                            unit.job,
                            unit.point.op_index,
                            unit.point.qubit,
                            if stolen { " (stolen)" } else { "" },
                        ));
                    }
                }
                Err(e) => {
                    // A failed unit is a campaign-health event, not a
                    // worker-fatal one: count the strike, quarantine on
                    // the limit, and move on to other units.
                    let fails = record_failure(out_dir, unit, &e)?;
                    qufi_obs::add("shard.unit_failures", 1);
                    qufi_obs::log::warn(&format!(
                        "[{}] unit {} failed (attempt {fails}/{MAX_UNIT_FAILURES}): {e}",
                        opts.worker, unit.id
                    ));
                    if fails >= MAX_UNIT_FAILURES {
                        poison_unit(out_dir, unit, fails, &e)?;
                        report.units_poisoned += 1;
                        qufi_obs::add("shard.units_poisoned", 1);
                    }
                    release_if_mine(lease);
                    continue;
                }
            }
            release_if_mine(lease);
        }
        if outstanding == 0 {
            break;
        }
        if !progressed {
            // Everything left is held by (or poisoned-pending from)
            // other workers; wait for their heartbeats to go stale or
            // their done markers to appear.
            std::thread::sleep(poll);
        }
    }
    qufi_obs::flush();
    Ok(report)
}

/// `try_claim` with transient failures retried on the deterministic
/// backoff schedule.
fn claim_with_retry(units_dir: &Path, unit: &str, cfg: &LeaseConfig) -> Result<Claim, CliError> {
    let mut backoff = Backoff::new(
        RETRY_BASE,
        RETRY_CAP,
        RETRY_ATTEMPTS,
        &format!("{}/{unit}/claim", cfg.worker),
    );
    loop {
        match lease::try_claim(units_dir, unit, cfg) {
            Ok(claim) => return Ok(claim),
            Err(e) if e.is_transient() => match backoff.next_delay() {
                Some(delay) => {
                    qufi_obs::add("shard.claim_retries", 1);
                    std::thread::sleep(delay);
                }
                None => return Err(e),
            },
            Err(e) => return Err(e),
        }
    }
}

/// Runs one unit under a heartbeating lease and publishes its record
/// file plus the done marker.
fn execute_unit(
    out_dir: &Path,
    runtime: &JobRuntime,
    grid: &FaultGrid,
    unit: &WorkUnit,
    lease: &Lease,
    cfg: &LeaseConfig,
    opts: &WorkOptions,
) -> Result<(), CliError> {
    let stop = AtomicBool::new(false);
    let result = std::thread::scope(|scope| {
        scope.spawn(|| heartbeat_loop(lease, cfg, &stop));
        let r = run_and_publish(out_dir, runtime, grid, unit, opts);
        stop.store(true, Ordering::SeqCst);
        r
    });
    result
}

/// Refreshes the lease on the heartbeat cadence until told to stop.
/// Refresh failures are logged and retried next beat — a missed beat
/// only matters if it persists past the takeover timeout, at which
/// point the dedup merge makes double execution harmless anyway.
fn heartbeat_loop(lease: &Lease, cfg: &LeaseConfig, stop: &AtomicBool) {
    let beat = cfg.heartbeat_interval();
    let slice = Duration::from_millis(5).min(beat);
    loop {
        let mut waited = Duration::ZERO;
        while waited < beat {
            if stop.load(Ordering::SeqCst) {
                return;
            }
            std::thread::sleep(slice);
            waited += slice;
        }
        if stop.load(Ordering::SeqCst) {
            return;
        }
        if let Err(e) = lease.refresh() {
            qufi_obs::add("lease.refresh_failures", 1);
            qufi_obs::log::warn(&format!("lease heartbeat failed: {e}"));
        }
    }
}

fn run_and_publish(
    out_dir: &Path,
    runtime: &JobRuntime,
    grid: &FaultGrid,
    unit: &WorkUnit,
    opts: &WorkOptions,
) -> Result<(), CliError> {
    let _job = qufi_obs::job_scope(&unit.job);
    let records = runtime
        .run_point_split(unit.point, grid, opts.grid_threads.max(1))
        .map_err(CliError::Exec)?;
    let csv = records_to_csv(&records);
    let path = unit_file(out_dir, &unit.id, &opts.worker);
    let mut backoff = Backoff::new(
        RETRY_BASE,
        RETRY_CAP,
        RETRY_ATTEMPTS,
        &format!("{}/{}/write", opts.worker, unit.id),
    );
    loop {
        match write_unit_file(&path, &csv) {
            Ok(()) => break,
            Err(e) if e.is_transient() => match backoff.next_delay() {
                Some(delay) => {
                    qufi_obs::add("shard.write_retries", 1);
                    std::thread::sleep(delay);
                }
                None => return Err(e),
            },
            Err(e) => return Err(e),
        }
    }
    // Between the record file and the done marker: a crash here leaves a
    // complete file without a marker, so the unit simply re-runs — the
    // duplicate records dedup away at merge.
    chaos::kill_point("unit.post_write");
    let done = done_path(out_dir, &unit.id);
    fs::write(&done, format!("{}\n", opts.worker))
        .map_err(|e| CliError::io("writing done marker", &done, e))?;
    qufi_obs::add("shard.units_done", 1);
    Ok(())
}

/// Writes one unit's record file. The write is a single `fs::write`
/// (truncate + write), so a re-executing worker replaces its own torn
/// leftovers; distinct workers never share a path.
fn write_unit_file(path: &Path, csv: &str) -> Result<(), CliError> {
    chaos::kill_point("unit.pre_write");
    if chaos::fail_point("unit.write") {
        return Err(CliError::io(
            "writing unit records",
            path,
            chaos::synthetic_io_error("unit.write"),
        ));
    }
    if chaos::kill_armed("unit.mid_write") {
        // Stage the torn-tail scenario the salvage path must survive:
        // persist a prefix that cuts the final record short, then die.
        let cut = csv.len() - csv.len().min(7);
        let _ = fs::write(path, &csv.as_bytes()[..cut]);
        chaos::kill_point("unit.mid_write"); // aborts
    }
    fs::write(path, csv).map_err(|e| CliError::io("writing unit records", path, e))
}

/// Records one failure strike for a unit; returns the new strike count.
/// The counter is a file so strikes accumulate across workers and
/// process restarts.
fn record_failure(out_dir: &Path, unit: &WorkUnit, err: &CliError) -> Result<u64, CliError> {
    let path = fails_path(out_dir, &unit.id);
    let prior: u64 = fs::read_to_string(&path)
        .ok()
        .and_then(|t| t.lines().next().and_then(|l| l.trim().parse().ok()))
        .unwrap_or(0);
    let fails = prior + 1;
    fs::write(&path, format!("{fails}\nlast_error: {err}\n"))
        .map_err(|e| CliError::io("recording unit failure", &path, e))?;
    Ok(fails)
}

/// Quarantines a unit: writes the diagnostic record that `shard merge`
/// will point operators at.
fn poison_unit(
    out_dir: &Path,
    unit: &WorkUnit,
    fails: u64,
    err: &CliError,
) -> Result<(), CliError> {
    let path = poison_path(out_dir, &unit.id);
    let diag = format!(
        "unit = {}\njob = {}\nop_index = {}\nqubit = {}\nfailures = {fails}\n\
         last_error = {err}\n\nThis unit exhausted its failure budget and was \
         quarantined. Fix the cause, delete this file and the unit's .fails \
         marker under units/, then re-run `qufi shard work`.\n",
        unit.id, unit.job, unit.point.op_index, unit.point.qubit,
    );
    crate::atomic_write(&path, diag.as_bytes(), "writing poison diagnostic")
}

/// Releases a lease only when it is still ours — if it went stale and
/// was stolen mid-execution, the path now belongs to the thief and must
/// be left alone.
fn release_if_mine(lease: Lease) {
    if lease.still_mine() {
        lease.release();
    }
}

// ---------------------------------------------------------------------
// merge
// ---------------------------------------------------------------------

/// Folds a fully-worked campaign's per-unit record files into the
/// canonical checkpoint layout and exports `results/` — byte-identical
/// to a single-node run of the same manifest.
///
/// # Errors
///
/// Poisoned or unfinished units (listed), missing/corrupt unit files,
/// grid-coverage gaps, and I/O failures.
pub fn merge_campaign(out_dir: &Path) -> Result<MergeReport, CliError> {
    let manifest = crate::load_stored_manifest(out_dir)?;
    let plan = load_plan(out_dir)?;
    let grid = manifest.grid.to_grid()?;
    let store = CheckpointStore::open(out_dir)?;

    let poisoned: Vec<&str> = plan
        .units
        .iter()
        .filter(|u| poison_path(out_dir, &u.id).exists())
        .map(|u| u.id.as_str())
        .collect();
    if !poisoned.is_empty() {
        return Err(CliError::shard(format!(
            "{} unit(s) are quarantined ({}); see {} for diagnostics",
            poisoned.len(),
            poisoned.join(", "),
            out_dir.join(POISONED_DIR).display(),
        )));
    }
    let unfinished: Vec<&str> = plan
        .units
        .iter()
        .filter(|u| !done_path(out_dir, &u.id).exists())
        .map(|u| u.id.as_str())
        .collect();
    if !unfinished.is_empty() {
        return Err(CliError::shard(format!(
            "{} unit(s) not finished yet ({}{}); run `qufi shard work` to completion first",
            unfinished.len(),
            unfinished
                .iter()
                .take(8)
                .copied()
                .collect::<Vec<_>>()
                .join(", "),
            if unfinished.len() > 8 { ", …" } else { "" },
        )));
    }

    let mut per_job: HashMap<&str, Vec<InjectionRecord>> = HashMap::new();
    for unit in &plan.units {
        let records = load_unit_records(out_dir, unit)?;
        let covered: std::collections::HashSet<(u64, u64)> = records
            .iter()
            .filter(|r| r.point == unit.point)
            .map(|r| (r.theta.to_bits(), r.phi.to_bits()))
            .collect();
        if covered.len() < grid.len() {
            return Err(CliError::shard(format!(
                "unit {} covers {}/{} grid cells; its record files are \
                 incomplete — delete its done marker to re-run it",
                unit.id,
                covered.len(),
                grid.len()
            )));
        }
        per_job.entry(&unit.job).or_default().extend(records);
    }

    // Everything validated; publish. A crash from here on is repaired by
    // re-running merge (checkpoint writes are atomic per file, and the
    // export re-derives from checkpoints).
    chaos::kill_point("merge.pre_publish");
    for spec in job_matrix(&manifest) {
        let id = spec.id();
        let meta = store.load_meta(&id)?.ok_or_else(|| {
            CliError::shard(format!(
                "job {id} has no checkpoint metadata; re-run `qufi shard plan`"
            ))
        })?;
        let mut result = CampaignResult::from_parts(
            meta.circuit.clone(),
            meta.golden.clone(),
            meta.baseline_qvf,
            grid.clone(),
            Vec::new(),
        );
        result.merge_records(per_job.remove(id.as_str()).unwrap_or_default());
        store.replace_records(&id, &result.records)?;
        qufi_obs::add("shard.jobs_merged", 1);
    }
    qufi_obs::add("shard.units_merged", plan.units.len() as u64);

    let export = export_artifacts(&manifest, out_dir)?;
    Ok(MergeReport {
        units_merged: plan.units.len(),
        export,
    })
}

/// Loads every record any worker produced for a unit, salvaging torn
/// tails the same way the checkpoint loader does: a final line without
/// its `\n` terminator is dropped before parsing — a merely-parseable
/// truncation must not be mistaken for a record. Duplicate complete
/// records across workers are bit-identical and dedup at merge.
fn load_unit_records(out_dir: &Path, unit: &WorkUnit) -> Result<Vec<InjectionRecord>, CliError> {
    let dir = out_dir.join(SHARDS_DIR);
    let entries =
        fs::read_dir(&dir).map_err(|e| CliError::io("listing shard record files", &dir, e))?;
    let prefix = format!("{}.", unit.id);
    let mut paths: Vec<PathBuf> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with(&prefix) && n.ends_with(".csv"))
        })
        .collect();
    paths.sort(); // deterministic read order (not that order matters post-merge)
    let mut records = Vec::new();
    for path in &paths {
        let mut text =
            fs::read_to_string(path).map_err(|e| CliError::io("reading unit records", path, e))?;
        if !text.is_empty() && !text.ends_with('\n') {
            let keep = text.rfind('\n').map(|i| i + 1).unwrap_or(0);
            text.truncate(keep);
            qufi_obs::add("shard.salvaged_lines", 1);
        }
        if text.is_empty() {
            continue;
        }
        records.extend(records_from_csv(&text).map_err(|e| {
            CliError::checkpoint(format!(
                "{e} (in {}; delete the file and the unit's \
                 done marker to re-run it)",
                path.display()
            ))
        })?);
    }
    if records.is_empty() {
        return Err(CliError::shard(format!(
            "unit {} is marked done but has no record file under {}",
            unit.id,
            dir.display()
        )));
    }
    Ok(records)
}

/// Re-exported for plan consumers that want the canonical unit id of an
/// enumeration index.
pub fn unit_id(idx: usize) -> String {
    core_unit_id(idx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_campaign, RunOptions};
    use std::collections::BTreeMap;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "qufi-shard-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn small_manifest() -> Manifest {
        Manifest::from_toml(
            "[campaign]\nname = \"s\"\nseed = 3\nexecutor = \"noisy\"\n\
             workloads = [\"bv-3\"]\nbackends = [\"lima\"]\n\
             [grid]\nthetas = [0.0, 3.141592653589793]\nphis = [0.0]\n",
        )
        .unwrap()
    }

    fn results_tree(root: &Path) -> BTreeMap<String, Vec<u8>> {
        fn walk(dir: &Path, root: &Path, out: &mut BTreeMap<String, Vec<u8>>) {
            for entry in fs::read_dir(dir).unwrap().flatten() {
                let path = entry.path();
                if path.is_dir() {
                    walk(&path, root, out);
                } else {
                    let rel = path
                        .strip_prefix(root)
                        .unwrap()
                        .to_string_lossy()
                        .into_owned();
                    out.insert(rel, fs::read(&path).unwrap());
                }
            }
        }
        let mut out = BTreeMap::new();
        walk(root, root, &mut out);
        out
    }

    #[test]
    fn plan_json_round_trips() {
        let plan = ShardPlan::build(
            "c",
            &[
                (
                    "a@x".to_string(),
                    InjectionPoint {
                        op_index: 0,
                        qubit: 1,
                    },
                ),
                (
                    "a@x".to_string(),
                    InjectionPoint {
                        op_index: 3,
                        qubit: 0,
                    },
                ),
            ],
            6,
            2,
            |_, p| (p.op_index == 3).then_some(500),
        );
        let back = plan_from_json(&plan_to_json(&plan)).unwrap();
        assert_eq!(back, plan);
        // An empty plan round-trips too.
        let empty = ShardPlan::build("c", &[], 1, 1, |_, _| None);
        assert_eq!(plan_from_json(&plan_to_json(&empty)).unwrap(), empty);
    }

    #[test]
    fn plan_work_merge_matches_single_node_bytes() {
        let m = small_manifest();
        let single = temp_dir("single");
        run_campaign(
            &m,
            &single,
            &RunOptions {
                quiet: true,
                ..RunOptions::default()
            },
        )
        .unwrap();
        export_artifacts(&m, &single).unwrap();

        let sharded = temp_dir("sharded");
        let report = plan_campaign(&m, &sharded, 2, None).unwrap();
        assert_eq!(report.cost_source, "cells");
        assert!(!report.plan.units.is_empty());
        for worker in ["alpha", "beta"] {
            let wr = work_campaign(
                &sharded,
                &WorkOptions {
                    worker: worker.to_string(),
                    quiet: true,
                    ..WorkOptions::default()
                },
            )
            .unwrap();
            assert_eq!(wr.units_poisoned, 0);
        }
        let merged = merge_campaign(&sharded).unwrap();
        assert_eq!(merged.units_merged, report.plan.units.len());
        assert_eq!(
            results_tree(&single.join("results")),
            results_tree(&sharded.join("results")),
            "sharded results must be byte-identical to single-node"
        );
        let _ = fs::remove_dir_all(single);
        let _ = fs::remove_dir_all(sharded);
    }

    #[test]
    fn merge_refuses_unfinished_and_poisoned_units() {
        let m = small_manifest();
        let dir = temp_dir("refuse");
        let report = plan_campaign(&m, &dir, 1, None).unwrap();
        let err = merge_campaign(&dir).unwrap_err().to_string();
        assert!(err.contains("not finished"), "{err}");

        // Poison one unit: merge must name it even once everything else runs.
        let unit = report.plan.units[0].clone();
        poison_unit(&dir, &unit, 3, &CliError::shard("synthetic")).unwrap();
        work_campaign(
            &dir,
            &WorkOptions {
                worker: "w".into(),
                quiet: true,
                ..WorkOptions::default()
            },
        )
        .unwrap();
        let err = merge_campaign(&dir).unwrap_err().to_string();
        assert!(
            err.contains("quarantined") && err.contains(&unit.id),
            "{err}"
        );
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn measured_costs_feed_the_planner() {
        let m = small_manifest();
        let dir = temp_dir("costs");
        // First: a profiled single-node run produces costs.csv in the
        // same directory; replanning there picks the measurements up.
        crate::run_to_completion(
            &m,
            &dir,
            &RunOptions {
                quiet: true,
                metrics: true,
                ..RunOptions::default()
            },
        )
        .unwrap();
        let report = plan_campaign(&m, &dir, 2, None).unwrap();
        assert_eq!(report.cost_source, "measured");
        assert!(report.plan.units.iter().all(|u| u.cost >= 1));
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn torn_unit_tail_is_salvaged_not_fabricated() {
        let m = small_manifest();
        let dir = temp_dir("torn");
        plan_campaign(&m, &dir, 1, None).unwrap();
        work_campaign(
            &dir,
            &WorkOptions {
                worker: "a".into(),
                quiet: true,
                ..WorkOptions::default()
            },
        )
        .unwrap();
        // Tear the tail of one unit file: the salvage must drop exactly
        // the torn record, and the campaign still merges because another
        // worker's (complete) file covers the unit. Simulate by copying
        // the complete file to a second worker name, then tearing the
        // first.
        let plan = load_plan(&dir).unwrap();
        let u = &plan.units[0];
        let a = unit_file(&dir, &u.id, "a");
        let b = unit_file(&dir, &u.id, "b");
        fs::copy(&a, &b).unwrap();
        let text = fs::read_to_string(&a).unwrap();
        fs::write(&a, &text[..text.len() - 9]).unwrap();
        let merged = merge_campaign(&dir).unwrap();
        assert_eq!(merged.units_merged, plan.units.len());
        let _ = fs::remove_dir_all(dir);
    }
}
