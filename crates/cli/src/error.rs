//! Error type shared by all orchestration layers.

use core::fmt;
use qufi_core::ExecError;
use std::path::PathBuf;

/// What class of manifest problem a [`ManifestIssue`] reports — the
/// machine-readable half of manifest validation, so callers (and tests)
/// can react to *what* went wrong instead of grepping prose.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ManifestErrorKind {
    /// The TOML text itself does not parse.
    Syntax,
    /// A section or key the schema does not know.
    UnknownKey,
    /// A required key is absent.
    MissingKey,
    /// A key holds the wrong type or a malformed value.
    BadValue,
    /// A name that is not in the workload/backend/preset registries.
    UnknownName,
    /// A duplicated matrix axis entry (would collide job ids).
    Duplicate,
    /// A fault grid with an empty axis.
    EmptyGrid,
    /// A numeric knob outside its valid range.
    OutOfRange,
    /// A combination of valid values that cannot run together.
    Conflict,
    /// Anything else (legacy free-form messages).
    Other,
}

impl ManifestErrorKind {
    /// Short tag rendered in the error message.
    pub fn tag(self) -> &'static str {
        match self {
            ManifestErrorKind::Syntax => "syntax",
            ManifestErrorKind::UnknownKey => "unknown-key",
            ManifestErrorKind::MissingKey => "missing-key",
            ManifestErrorKind::BadValue => "bad-value",
            ManifestErrorKind::UnknownName => "unknown-name",
            ManifestErrorKind::Duplicate => "duplicate",
            ManifestErrorKind::EmptyGrid => "empty-grid",
            ManifestErrorKind::OutOfRange => "out-of-range",
            ManifestErrorKind::Conflict => "conflict",
            ManifestErrorKind::Other => "invalid",
        }
    }
}

/// A structured manifest validation failure: what kind, what happened,
/// and — when the validator can find it — the offending manifest line.
#[derive(Debug, Clone, PartialEq)]
pub struct ManifestIssue {
    /// Problem class.
    pub kind: ManifestErrorKind,
    /// Human-readable description.
    pub message: String,
    /// `(1-based line number, trimmed line text)` in the manifest source.
    pub line: Option<(usize, String)>,
}

impl ManifestIssue {
    /// A free-form issue with no located line.
    pub fn other(message: impl Into<String>) -> Self {
        ManifestIssue {
            kind: ManifestErrorKind::Other,
            message: message.into(),
            line: None,
        }
    }

    /// A typed issue with no located line (yet).
    pub fn new(kind: ManifestErrorKind, message: impl Into<String>) -> Self {
        ManifestIssue {
            kind,
            message: message.into(),
            line: None,
        }
    }

    /// Attaches the first manifest line containing `needle` (no-op when
    /// a line is already attached or nothing matches).
    pub fn locate(mut self, src: &str, needle: &str) -> Self {
        if self.line.is_none() {
            self.line = src
                .lines()
                .enumerate()
                .find(|(_, l)| l.contains(needle))
                .map(|(i, l)| (i + 1, l.trim().to_string()));
        }
        self
    }
}

impl fmt::Display for ManifestIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "manifest error [{}]: {}", self.kind.tag(), self.message)?;
        if let Some((lineno, text)) = &self.line {
            write!(f, "\n  --> line {lineno}: `{text}`")?;
        }
        Ok(())
    }
}

/// Anything that can abort a campaign run.
#[derive(Debug)]
pub enum CliError {
    /// The manifest is syntactically or semantically invalid.
    Manifest(ManifestIssue),
    /// A filesystem operation failed.
    Io {
        /// What the CLI was doing.
        context: String,
        /// Path involved.
        path: PathBuf,
        /// Underlying error.
        source: std::io::Error,
    },
    /// A checkpoint or metadata file is corrupt beyond salvage.
    Checkpoint(String),
    /// The shard protocol cannot proceed (bad plan, incomplete campaign,
    /// quarantined units).
    Shard(String),
    /// Circuit execution failed mid-campaign.
    Exec(ExecError),
    /// Command-line usage error.
    Usage(String),
}

impl CliError {
    /// A manifest-level failure (free-form; see [`CliError::manifest_issue`]
    /// for typed/located failures).
    pub fn manifest(msg: impl Into<String>) -> Self {
        CliError::Manifest(ManifestIssue::other(msg))
    }

    /// A structured manifest failure.
    pub fn manifest_issue(issue: ManifestIssue) -> Self {
        CliError::Manifest(issue)
    }

    /// The manifest issue, when this is a manifest error.
    pub fn as_manifest_issue(&self) -> Option<&ManifestIssue> {
        match self {
            CliError::Manifest(issue) => Some(issue),
            _ => None,
        }
    }

    /// A checkpoint-level failure.
    pub fn checkpoint(msg: impl Into<String>) -> Self {
        CliError::Checkpoint(msg.into())
    }

    /// A shard-protocol failure.
    pub fn shard(msg: impl Into<String>) -> Self {
        CliError::Shard(msg.into())
    }

    /// A usage failure (prints with the subcommand help).
    pub fn usage(msg: impl Into<String>) -> Self {
        CliError::Usage(msg.into())
    }

    /// Wraps an I/O failure with its path and context.
    pub fn io(
        context: impl Into<String>,
        path: impl Into<PathBuf>,
        source: std::io::Error,
    ) -> Self {
        CliError::Io {
            context: context.into(),
            path: path.into(),
            source,
        }
    }

    /// Whether this failure is plausibly transient (worth a retry on the
    /// shard worker's backoff schedule) rather than deterministic.
    pub fn is_transient(&self) -> bool {
        matches!(self, CliError::Io { .. })
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Manifest(issue) => issue.fmt(f),
            CliError::Io {
                context,
                path,
                source,
            } => write!(f, "{context} {}: {source}", path.display()),
            CliError::Checkpoint(msg) => write!(f, "checkpoint error: {msg}"),
            CliError::Shard(msg) => write!(f, "shard error: {msg}"),
            CliError::Exec(e) => write!(f, "execution error: {e}"),
            CliError::Usage(msg) => write!(f, "usage error: {msg}"),
        }
    }
}

impl std::error::Error for CliError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CliError::Io { source, .. } => Some(source),
            CliError::Exec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ExecError> for CliError {
    fn from(e: ExecError) -> Self {
        CliError::Exec(e)
    }
}
