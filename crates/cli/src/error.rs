//! Error type shared by all orchestration layers.

use core::fmt;
use qufi_core::ExecError;
use std::path::PathBuf;

/// Anything that can abort a campaign run.
#[derive(Debug)]
pub enum CliError {
    /// The manifest is syntactically or semantically invalid.
    Manifest(String),
    /// A filesystem operation failed.
    Io {
        /// What the CLI was doing.
        context: String,
        /// Path involved.
        path: PathBuf,
        /// Underlying error.
        source: std::io::Error,
    },
    /// A checkpoint or metadata file is corrupt beyond salvage.
    Checkpoint(String),
    /// Circuit execution failed mid-campaign.
    Exec(ExecError),
    /// Command-line usage error.
    Usage(String),
}

impl CliError {
    /// A manifest-level failure.
    pub fn manifest(msg: impl Into<String>) -> Self {
        CliError::Manifest(msg.into())
    }

    /// A checkpoint-level failure.
    pub fn checkpoint(msg: impl Into<String>) -> Self {
        CliError::Checkpoint(msg.into())
    }

    /// A usage failure (prints with the subcommand help).
    pub fn usage(msg: impl Into<String>) -> Self {
        CliError::Usage(msg.into())
    }

    /// Wraps an I/O failure with its path and context.
    pub fn io(
        context: impl Into<String>,
        path: impl Into<PathBuf>,
        source: std::io::Error,
    ) -> Self {
        CliError::Io {
            context: context.into(),
            path: path.into(),
            source,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Manifest(msg) => write!(f, "manifest error: {msg}"),
            CliError::Io {
                context,
                path,
                source,
            } => write!(f, "{context} {}: {source}", path.display()),
            CliError::Checkpoint(msg) => write!(f, "checkpoint error: {msg}"),
            CliError::Exec(e) => write!(f, "execution error: {e}"),
            CliError::Usage(msg) => write!(f, "usage error: {msg}"),
        }
    }
}

impl std::error::Error for CliError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CliError::Io { source, .. } => Some(source),
            CliError::Exec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ExecError> for CliError {
    fn from(e: ExecError) -> Self {
        CliError::Exec(e)
    }
}
