//! Run manifests: the declarative description of a fault-injection
//! campaign — which workloads, on which backends, under which executor
//! scenario, across which fault grid and noise scales, with what thread
//! budget and seed.
//!
//! ```toml
//! [campaign]
//! name = "smoke"
//! seed = 42
//! threads = 0                     # 0 = all cores
//! executor = "noisy"              # ideal | noisy | hardware | trajectory
//! workloads = ["bv-4", "dj-4"]    # qufi_algos::registry names
//! backends = ["jakarta", "lima"]  # qufi_noise calibrations
//! noise_scales = [1.0]            # optional, per-backend scale sweep
//!
//! [grid]
//! preset = "paper"                # paper | paper-half-phi | coarse
//! # …or explicit axes:
//! # thetas = [0.0, 1.5707963267948966]
//! # phis = [0.0]
//! ```

use crate::error::{CliError, ManifestErrorKind, ManifestIssue};
use crate::toml::{self, Document, Table, Value};
use qufi_core::fault::FaultGrid;
use std::fmt::Write as _;

/// A typed, line-located manifest error: the issue plus the first
/// manifest line mentioning `needle` (quoted in the rendered message).
fn located(src: &str, kind: ManifestErrorKind, needle: &str, msg: impl Into<String>) -> CliError {
    CliError::manifest_issue(ManifestIssue::new(kind, msg).locate(src, needle))
}

/// Attaches a source line to an already-typed error bubbling up from a
/// helper that had no access to the manifest text.
fn locate_issue(err: CliError, src: &str, needle: &str) -> CliError {
    match err {
        CliError::Manifest(issue) => CliError::Manifest(issue.locate(src, needle)),
        other => other,
    }
}

/// Which §IV-B execution scenario a campaign runs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutorKind {
    /// Noiseless statevector simulation (golden-model studies).
    Ideal,
    /// Density-matrix simulation under a device calibration.
    Noisy,
    /// Noisy simulation plus calibration drift and finite-shot sampling.
    Hardware,
    /// Monte-Carlo statevector trajectories under the same noise model as
    /// `noisy` — `shots` samples per grid cell instead of the exact
    /// density evolution, for workloads past the density width wall.
    Trajectory,
}

impl ExecutorKind {
    /// The manifest keyword.
    pub fn keyword(self) -> &'static str {
        match self {
            ExecutorKind::Ideal => "ideal",
            ExecutorKind::Noisy => "noisy",
            ExecutorKind::Hardware => "hardware",
            ExecutorKind::Trajectory => "trajectory",
        }
    }

    fn parse(s: &str) -> Result<Self, CliError> {
        match s {
            "ideal" => Ok(ExecutorKind::Ideal),
            "noisy" => Ok(ExecutorKind::Noisy),
            "hardware" => Ok(ExecutorKind::Hardware),
            "trajectory" => Ok(ExecutorKind::Trajectory),
            other => Err(CliError::manifest_issue(ManifestIssue::new(
                ManifestErrorKind::UnknownName,
                format!("executor must be ideal|noisy|hardware|trajectory, got {other:?}"),
            ))),
        }
    }
}

/// The fault grid, either by preset name or explicit axes.
#[derive(Debug, Clone, PartialEq)]
pub enum GridSpec {
    /// A named preset (`paper`, `paper-half-phi`, `coarse`).
    Preset(String),
    /// Explicit θ/φ axes in radians.
    Custom {
        /// θ values.
        thetas: Vec<f64>,
        /// φ values.
        phis: Vec<f64>,
    },
}

impl GridSpec {
    /// The preset names [`GridSpec::to_grid`] resolves.
    pub const PRESETS: &'static [&'static str] = &["paper", "paper-half-phi", "coarse"];

    /// Materializes the grid.
    ///
    /// # Errors
    ///
    /// Unknown preset names and empty custom axes.
    pub fn to_grid(&self) -> Result<FaultGrid, CliError> {
        let grid = match self {
            GridSpec::Preset(name) => match name.as_str() {
                "paper" => FaultGrid::paper(),
                "paper-half-phi" => FaultGrid::paper_half_phi(),
                "coarse" => FaultGrid::coarse(),
                other => {
                    return Err(CliError::manifest_issue(ManifestIssue::new(
                        ManifestErrorKind::UnknownName,
                        format!(
                            "grid preset must be one of {:?}, got {other:?}",
                            Self::PRESETS
                        ),
                    )))
                }
            },
            GridSpec::Custom { thetas, phis } => FaultGrid::custom(thetas.clone(), phis.clone()),
        };
        if grid.is_empty() {
            return Err(CliError::manifest_issue(ManifestIssue::new(
                ManifestErrorKind::EmptyGrid,
                "fault grid has an empty axis",
            )));
        }
        Ok(grid)
    }
}

/// A parsed, validated campaign description.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// Campaign name (directory-safe).
    pub name: String,
    /// Master seed for the hardware scenario's drift/sampling streams.
    pub seed: u64,
    /// Worker threads; `0` = all available cores.
    pub threads: usize,
    /// Execution scenario.
    pub executor: ExecutorKind,
    /// Shots per execution (hardware scenario).
    pub shots: u64,
    /// Calibration drift σ (hardware scenario).
    pub drift: f64,
    /// Workload registry names.
    pub workloads: Vec<String>,
    /// Backend calibration names; empty only under the ideal executor.
    pub backends: Vec<String>,
    /// Noise scale factors applied to each backend calibration.
    pub noise_scales: Vec<f64>,
    /// The φ/θ fault grid.
    pub grid: GridSpec,
}

impl Manifest {
    /// Parses and validates manifest text. Every rejection is a typed
    /// [`ManifestIssue`] quoting the offending manifest line when the
    /// validator can find one.
    ///
    /// # Errors
    ///
    /// Syntax errors, unknown keys/names, and semantically-invalid
    /// combinations (e.g. a workload wider than a backend).
    pub fn from_toml(text: &str) -> Result<Self, CliError> {
        let doc = toml::parse(text).map_err(|e| {
            let line = text
                .lines()
                .nth(e.line.saturating_sub(1))
                .map(|l| (e.line, l.trim().to_string()));
            CliError::manifest_issue(ManifestIssue {
                kind: ManifestErrorKind::Syntax,
                message: e.reason,
                line,
            })
        })?;
        Self::from_document(&doc, text)
    }

    fn from_document(doc: &Document, src: &str) -> Result<Self, CliError> {
        use ManifestErrorKind as K;
        for section in doc.keys() {
            if !section.is_empty() && section != "campaign" && section != "grid" {
                return Err(located(
                    src,
                    K::UnknownKey,
                    &format!("[{section}]"),
                    format!(
                        "unknown section [{section}] (expected [campaign] and optional [grid])"
                    ),
                ));
            }
        }
        if let Some(root) = doc.get("") {
            if let Some(key) = root.keys().next() {
                return Err(located(
                    src,
                    K::UnknownKey,
                    key,
                    format!("key {key:?} outside any section; move it under [campaign]"),
                ));
            }
        }
        let campaign = doc.get("campaign").ok_or_else(|| {
            CliError::manifest_issue(ManifestIssue::new(
                K::MissingKey,
                "missing [campaign] section",
            ))
        })?;
        for key in campaign.keys() {
            const KNOWN: &[&str] = &[
                "name",
                "seed",
                "threads",
                "executor",
                "shots",
                "drift",
                "workloads",
                "backends",
                "noise_scales",
            ];
            if !KNOWN.contains(&key.as_str()) {
                return Err(located(
                    src,
                    K::UnknownKey,
                    key,
                    format!("unknown [campaign] key {key:?} (known: {KNOWN:?})"),
                ));
            }
        }

        let name = match campaign.get("name") {
            Some(v) => require_str(v, "campaign.name")?.to_string(),
            None => "campaign".to_string(),
        };
        if name.is_empty()
            || name.chars().all(|c| c == '.') // "." / ".." would escape the runs dir
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
        {
            return Err(located(
                src,
                K::BadValue,
                "name",
                format!(
                    "campaign.name {name:?} must be non-empty and [A-Za-z0-9._-] only \
                     (it becomes a directory name)"
                ),
            ));
        }

        let seed = opt_u64(campaign, "seed")?.unwrap_or(42);
        let threads = opt_u64(campaign, "threads")?.unwrap_or(0) as usize;
        let executor = match campaign.get("executor") {
            Some(v) => ExecutorKind::parse(require_str(v, "campaign.executor")?)
                .map_err(|e| locate_issue(e, src, "executor"))?,
            None => ExecutorKind::Noisy,
        };
        let shots = opt_u64(campaign, "shots")?.unwrap_or(1024);
        if shots == 0 {
            return Err(located(
                src,
                K::OutOfRange,
                "shots",
                "campaign.shots must be positive",
            ));
        }
        let drift = opt_f64(campaign, "drift")?.unwrap_or(0.05);
        if !(0.0..=1.0).contains(&drift) {
            return Err(located(
                src,
                K::OutOfRange,
                "drift",
                "campaign.drift must be in [0, 1]",
            ));
        }

        let workloads = str_array(campaign, "workloads")?.ok_or_else(|| {
            CliError::manifest_issue(ManifestIssue::new(
                K::MissingKey,
                "campaign.workloads is required",
            ))
        })?;
        if workloads.is_empty() {
            return Err(located(
                src,
                K::BadValue,
                "workloads",
                "campaign.workloads must not be empty",
            ));
        }
        let backends = str_array(campaign, "backends")?.unwrap_or_default();
        if backends.is_empty() && executor != ExecutorKind::Ideal {
            return Err(located(
                src,
                K::MissingKey,
                "executor",
                format!(
                    "campaign.backends is required for the {} executor",
                    executor.keyword()
                ),
            ));
        }
        let noise_scales = f64_array(campaign, "noise_scales")?.unwrap_or_else(|| vec![1.0]);
        if noise_scales.is_empty() {
            return Err(located(
                src,
                K::BadValue,
                "noise_scales",
                "campaign.noise_scales must not be empty",
            ));
        }
        for &s in &noise_scales {
            if !(s.is_finite() && s >= 0.0) {
                return Err(located(
                    src,
                    K::OutOfRange,
                    "noise_scales",
                    format!("noise scale {s} must be finite and non-negative"),
                ));
            }
        }

        let grid = match doc.get("grid") {
            None => GridSpec::Preset("paper".to_string()),
            Some(table) => parse_grid(table, src)?,
        };

        let manifest = Manifest {
            name,
            seed,
            threads,
            executor,
            shots,
            drift,
            workloads,
            backends,
            noise_scales,
            grid,
        };
        manifest.validate(src)?;
        Ok(manifest)
    }

    /// Cross-checks names against the registries and widths against the
    /// devices, quoting the manifest line that introduced the offender.
    fn validate(&self, src: &str) -> Result<(), CliError> {
        use ManifestErrorKind as K;
        self.grid
            .to_grid()
            .map_err(|e| locate_issue(e, src, "[grid]"))?;
        // Duplicate matrix axes would yield two jobs with the same id
        // appending to the same checkpoint file concurrently.
        let mut seen = std::collections::HashSet::new();
        for w in &self.workloads {
            if !seen.insert(w.as_str()) {
                return Err(located(
                    src,
                    K::Duplicate,
                    &format!("\"{w}\""),
                    format!("duplicate workload {w:?}"),
                ));
            }
        }
        seen.clear();
        for b in &self.backends {
            if !seen.insert(b.as_str()) {
                return Err(located(
                    src,
                    K::Duplicate,
                    &format!("\"{b}\""),
                    format!("duplicate backend {b:?}"),
                ));
            }
        }
        let mut seen_scales = std::collections::HashSet::new();
        for &s in &self.noise_scales {
            if !seen_scales.insert(s.to_bits()) {
                return Err(located(
                    src,
                    K::Duplicate,
                    "noise_scales",
                    format!("duplicate noise scale {s}"),
                ));
            }
        }
        let mut widths = Vec::new();
        for w in &self.workloads {
            let (_, n) = qufi_algos::parse_workload_name(w)
                .map_err(|e| located(src, K::UnknownName, &format!("\"{w}\""), e.to_string()))?;
            widths.push((w.clone(), n));
        }
        if self.executor == ExecutorKind::Ideal {
            return Ok(());
        }
        // The density-matrix executors stop at `qufi_sim::density`'s width
        // wall; past that the campaign must sample trajectories instead.
        if matches!(self.executor, ExecutorKind::Noisy | ExecutorKind::Hardware) {
            for (w, n) in &widths {
                if *n > qufi_sim::density::MAX_QUBITS {
                    return Err(located(
                        src,
                        K::Conflict,
                        &format!("\"{w}\""),
                        format!(
                            "workload {w} needs {n} qubits but the {} executor simulates \
                             density matrices up to {}; use executor = \"trajectory\" for \
                             wider campaigns",
                            self.executor.keyword(),
                            qufi_sim::density::MAX_QUBITS
                        ),
                    ));
                }
            }
        }
        for b in &self.backends {
            let cal = qufi_noise::BackendCalibration::named(b).ok_or_else(|| {
                located(
                    src,
                    K::UnknownName,
                    &format!("\"{b}\""),
                    format!(
                        "unknown backend {b:?} (known: {:?})",
                        qufi_noise::BackendCalibration::builtin_names()
                    ),
                )
            })?;
            for (w, n) in &widths {
                if *n > cal.num_qubits() {
                    return Err(located(
                        src,
                        K::Conflict,
                        &format!("\"{w}\""),
                        format!(
                            "workload {w} needs {n} qubits but backend {b} has {}",
                            cal.num_qubits()
                        ),
                    ));
                }
            }
        }
        Ok(())
    }

    /// Renders the manifest back as canonical TOML — stored alongside
    /// checkpoints so `qufi resume` reruns exactly what `qufi run` saw.
    pub fn to_toml(&self) -> String {
        let mut out = String::from("[campaign]\n");
        let _ = writeln!(out, "name = {}", toml::quote(&self.name));
        let _ = writeln!(out, "seed = {}", self.seed);
        let _ = writeln!(out, "threads = {}", self.threads);
        let _ = writeln!(out, "executor = {}", toml::quote(self.executor.keyword()));
        let _ = writeln!(out, "shots = {}", self.shots);
        let _ = writeln!(out, "drift = {}", toml::float(self.drift));
        let quoted = |names: &[String]| {
            names
                .iter()
                .map(|n| toml::quote(n))
                .collect::<Vec<_>>()
                .join(", ")
        };
        let _ = writeln!(out, "workloads = [{}]", quoted(&self.workloads));
        let _ = writeln!(out, "backends = [{}]", quoted(&self.backends));
        let floats = |vals: &[f64]| {
            vals.iter()
                .map(|&v| toml::float(v))
                .collect::<Vec<_>>()
                .join(", ")
        };
        let _ = writeln!(out, "noise_scales = [{}]", floats(&self.noise_scales));
        out.push_str("\n[grid]\n");
        match &self.grid {
            GridSpec::Preset(p) => {
                let _ = writeln!(out, "preset = {}", toml::quote(p));
            }
            GridSpec::Custom { thetas, phis } => {
                let _ = writeln!(out, "thetas = [{}]", floats(thetas));
                let _ = writeln!(out, "phis = [{}]", floats(phis));
            }
        }
        out
    }
}

fn parse_grid(table: &Table, src: &str) -> Result<GridSpec, CliError> {
    for key in table.keys() {
        if !matches!(key.as_str(), "preset" | "thetas" | "phis") {
            return Err(located(
                src,
                ManifestErrorKind::UnknownKey,
                key,
                format!("unknown [grid] key {key:?} (known: preset, thetas, phis)"),
            ));
        }
    }
    match (table.get("preset"), table.get("thetas"), table.get("phis")) {
        (Some(p), None, None) => Ok(GridSpec::Preset(require_str(p, "grid.preset")?.to_string())),
        (None, Some(_), Some(_)) => Ok(GridSpec::Custom {
            thetas: f64_array(table, "thetas")?.expect("present"),
            phis: f64_array(table, "phis")?.expect("present"),
        }),
        _ => Err(located(
            src,
            ManifestErrorKind::Conflict,
            "[grid]",
            "[grid] needs either `preset = \"…\"` or both `thetas` and `phis`",
        )),
    }
}

fn require_str<'v>(v: &'v Value, what: &str) -> Result<&'v str, CliError> {
    v.as_str()
        .ok_or_else(|| CliError::manifest(format!("{what} must be a string")))
}

fn opt_u64(table: &Table, key: &str) -> Result<Option<u64>, CliError> {
    table
        .get(key)
        .map(|v| {
            v.as_u64().ok_or_else(|| {
                CliError::manifest(format!("campaign.{key} must be a non-negative integer"))
            })
        })
        .transpose()
}

fn opt_f64(table: &Table, key: &str) -> Result<Option<f64>, CliError> {
    table
        .get(key)
        .map(|v| {
            v.as_f64()
                .ok_or_else(|| CliError::manifest(format!("campaign.{key} must be a number")))
        })
        .transpose()
}

fn str_array(table: &Table, key: &str) -> Result<Option<Vec<String>>, CliError> {
    let Some(v) = table.get(key) else {
        return Ok(None);
    };
    let items = v
        .as_array()
        .ok_or_else(|| CliError::manifest(format!("{key} must be an array of strings")))?;
    items
        .iter()
        .map(|item| {
            item.as_str()
                .map(str::to_string)
                .ok_or_else(|| CliError::manifest(format!("{key} must contain only strings")))
        })
        .collect::<Result<Vec<_>, _>>()
        .map(Some)
}

fn f64_array(table: &Table, key: &str) -> Result<Option<Vec<f64>>, CliError> {
    let Some(v) = table.get(key) else {
        return Ok(None);
    };
    let items = v
        .as_array()
        .ok_or_else(|| CliError::manifest(format!("{key} must be an array of numbers")))?;
    items
        .iter()
        .map(|item| {
            item.as_f64()
                .ok_or_else(|| CliError::manifest(format!("{key} must contain only numbers")))
        })
        .collect::<Result<Vec<_>, _>>()
        .map(Some)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMOKE: &str = r#"
[campaign]
name = "smoke"
seed = 7
threads = 2
executor = "noisy"
workloads = ["bv-4", "ghz-3"]
backends = ["jakarta", "lima"]
noise_scales = [1.0, 2.0]

[grid]
preset = "coarse"
"#;

    #[test]
    fn parses_a_full_manifest() {
        let m = Manifest::from_toml(SMOKE).unwrap();
        assert_eq!(m.name, "smoke");
        assert_eq!(m.seed, 7);
        assert_eq!(m.executor, ExecutorKind::Noisy);
        assert_eq!(m.workloads, vec!["bv-4", "ghz-3"]);
        assert_eq!(m.backends, vec!["jakarta", "lima"]);
        assert_eq!(m.noise_scales, vec![1.0, 2.0]);
        assert!(!m.grid.to_grid().unwrap().is_empty());
    }

    #[test]
    fn defaults_fill_in() {
        let m =
            Manifest::from_toml("[campaign]\nworkloads = [\"bv-4\"]\nbackends = [\"jakarta\"]\n")
                .unwrap();
        assert_eq!(m.name, "campaign");
        assert_eq!(m.seed, 42);
        assert_eq!(m.threads, 0);
        assert_eq!(m.executor, ExecutorKind::Noisy);
        assert_eq!(m.shots, 1024);
        assert_eq!(m.noise_scales, vec![1.0]);
        assert_eq!(m.grid, GridSpec::Preset("paper".to_string()));
    }

    #[test]
    fn custom_grids_parse() {
        let m = Manifest::from_toml(
            "[campaign]\nworkloads = [\"bv-4\"]\nexecutor = \"ideal\"\n\
             [grid]\nthetas = [0.0, 3.14]\nphis = [0.0]\n",
        )
        .unwrap();
        let grid = m.grid.to_grid().unwrap();
        assert_eq!(grid.len(), 2);
    }

    #[test]
    fn ideal_campaigns_need_no_backends() {
        let m = Manifest::from_toml("[campaign]\nexecutor = \"ideal\"\nworkloads = [\"qft-4\"]\n")
            .unwrap();
        assert!(m.backends.is_empty());
    }

    #[test]
    fn semantic_validation_catches_bad_names() {
        let err = |text: &str| Manifest::from_toml(text).unwrap_err().to_string();
        assert!(err("[campaign]\nworkloads = [\"bv-4\"]\n").contains("backends is required"));
        assert!(
            err("[campaign]\nworkloads = [\"nope-4\"]\nbackends = [\"jakarta\"]\n")
                .contains("family")
        );
        assert!(
            err("[campaign]\nworkloads = [\"bv-4\"]\nbackends = [\"quito\"]\n")
                .contains("unknown backend")
        );
        assert!(
            err("[campaign]\nworkloads = [\"bv-6\"]\nbackends = [\"lima\"]\n")
                .contains("needs 6 qubits")
        );
        assert!(
            err("[campaign]\nworkloads = [\"bv-4\"]\nbackends = [\"jakarta\"]\nshots = 0\n")
                .contains("shots")
        );
        assert!(err(SMOKE
            .replace("name = \"smoke\"", "name = \"s m/oke\"")
            .as_str())
        .contains("directory name"));
        assert!(
            err("[campaign]\nworkloads = [\"bv-4\"]\nbackends = [\"jakarta\"]\ntypo = 1\n")
                .contains("unknown [campaign] key")
        );
    }

    #[test]
    fn errors_are_typed_and_quote_the_offending_line() {
        let issue_of = |text: &str| {
            let err = Manifest::from_toml(text).unwrap_err();
            err.as_manifest_issue().cloned().unwrap_or_else(|| {
                panic!("expected a manifest issue, got {err}");
            })
        };

        let dup =
            issue_of("[campaign]\nworkloads = [\"bv-4\", \"bv-4\"]\nbackends = [\"jakarta\"]\n");
        assert_eq!(dup.kind, ManifestErrorKind::Duplicate);
        let (lineno, text) = dup.line.expect("located line");
        assert_eq!(lineno, 2);
        assert!(text.contains("bv-4"));

        let unknown = issue_of("[campaign]\nworkloads = [\"bv-4\"]\nbackends = [\"quito\"]\n");
        assert_eq!(unknown.kind, ManifestErrorKind::UnknownName);
        assert_eq!(unknown.line.expect("located line").0, 3);

        let shots =
            issue_of("[campaign]\nworkloads = [\"bv-4\"]\nbackends = [\"lima\"]\nshots = 0\n");
        assert_eq!(shots.kind, ManifestErrorKind::OutOfRange);
        assert_eq!(shots.line.expect("located line").0, 4);

        let syntax = issue_of("[campaign]\nworkloads = not-an-array\n");
        assert_eq!(syntax.kind, ManifestErrorKind::Syntax);
        assert_eq!(syntax.line.expect("located line").0, 2);

        let empty = issue_of(
            "[campaign]\nexecutor = \"ideal\"\nworkloads = [\"bv-4\"]\n\
             [grid]\nthetas = []\nphis = [0.0]\n",
        );
        assert_eq!(empty.kind, ManifestErrorKind::EmptyGrid);

        // The rendered message carries both the tag and the quoted line.
        let rendered = Manifest::from_toml(
            "[campaign]\nworkloads = [\"bv-4\"]\nbackends = [\"lima\", \"lima\"]\n",
        )
        .unwrap_err()
        .to_string();
        assert!(rendered.contains("[duplicate]"), "{rendered}");
        assert!(rendered.contains("--> line 3"), "{rendered}");
    }

    #[test]
    fn trajectory_executor_parses_and_requires_backends() {
        let m = Manifest::from_toml(
            "[campaign]\nexecutor = \"trajectory\"\nshots = 512\n\
             workloads = [\"ghz-14\"]\nbackends = [\"guadalupe\"]\n",
        )
        .unwrap();
        assert_eq!(m.executor, ExecutorKind::Trajectory);
        assert_eq!(m.shots, 512);

        let err =
            Manifest::from_toml("[campaign]\nexecutor = \"trajectory\"\nworkloads = [\"bv-4\"]\n")
                .unwrap_err()
                .to_string();
        assert!(err.contains("backends is required"), "{err}");
    }

    #[test]
    fn density_wall_misconfigurations_are_typed_conflicts() {
        // A 14-qubit workload on a density executor is a structured
        // conflict pointing at the trajectory backend, not a runtime panic.
        for executor in ["noisy", "hardware"] {
            let text = format!(
                "[campaign]\nexecutor = \"{executor}\"\nworkloads = [\"ghz-14\"]\n\
                 backends = [\"guadalupe\"]\n"
            );
            let err = Manifest::from_toml(&text).unwrap_err();
            let issue = err.as_manifest_issue().expect("typed issue");
            assert_eq!(issue.kind, ManifestErrorKind::Conflict);
            assert!(issue.message.contains("trajectory"), "{}", issue.message);
            let (lineno, line) = issue.line.clone().expect("located line");
            assert_eq!(lineno, 3);
            assert!(line.contains("ghz-14"), "{line}");
        }
        // Zero shots under trajectory is the same structured rejection the
        // hardware scenario gets.
        let err = Manifest::from_toml(
            "[campaign]\nexecutor = \"trajectory\"\nshots = 0\n\
             workloads = [\"bv-4\"]\nbackends = [\"jakarta\"]\n",
        )
        .unwrap_err();
        let issue = err.as_manifest_issue().expect("typed issue");
        assert_eq!(issue.kind, ManifestErrorKind::OutOfRange);
        assert_eq!(issue.line.clone().expect("located line").0, 3);
    }

    #[test]
    fn duplicate_matrix_axes_are_rejected() {
        let err = |text: &str| Manifest::from_toml(text).unwrap_err().to_string();
        assert!(
            err("[campaign]\nworkloads = [\"bv-4\", \"bv-4\"]\nbackends = [\"jakarta\"]\n")
                .contains("duplicate workload")
        );
        assert!(
            err("[campaign]\nworkloads = [\"bv-4\"]\nbackends = [\"lima\", \"lima\"]\n")
                .contains("duplicate backend")
        );
        assert!(err(
            "[campaign]\nworkloads = [\"bv-4\"]\nbackends = [\"lima\"]\n\
                     noise_scales = [1.0, 1.0]\n"
        )
        .contains("duplicate noise scale"));
    }

    #[test]
    fn dots_only_names_cannot_escape_the_runs_dir() {
        for name in [".", "..", "..."] {
            let text = format!(
                "[campaign]\nname = \"{name}\"\nexecutor = \"ideal\"\nworkloads = [\"bv-4\"]\n"
            );
            assert!(
                Manifest::from_toml(&text)
                    .unwrap_err()
                    .to_string()
                    .contains("directory name"),
                "{name:?} accepted"
            );
        }
        // Dots inside a name stay legal.
        assert!(Manifest::from_toml(
            "[campaign]\nname = \"v1.2\"\nexecutor = \"ideal\"\nworkloads = [\"bv-4\"]\n"
        )
        .is_ok());
    }

    #[test]
    fn canonical_toml_round_trips() {
        for text in [
            SMOKE.to_string(),
            "[campaign]\nexecutor = \"ideal\"\nworkloads = [\"bv-4\"]\n\
             [grid]\nthetas = [0.0, 0.7853981633974483]\nphis = [0.0, 3.141592653589793]\n"
                .to_string(),
            "[campaign]\nexecutor = \"trajectory\"\nshots = 256\n\
             workloads = [\"ghz-13\"]\nbackends = [\"guadalupe\"]\n"
                .to_string(),
        ] {
            let m = Manifest::from_toml(&text).unwrap();
            let round = Manifest::from_toml(&m.to_toml()).unwrap();
            assert_eq!(m, round);
        }
    }
}
