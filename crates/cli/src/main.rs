//! `qufi` — campaign orchestration for the QuFI fault injector.
//!
//! ```text
//! qufi run <manifest.toml> [--out DIR] [--threads N] [--budget N] [--quiet] [--dry-run]
//! qufi resume <campaign-dir> [--threads N] [--budget N] [--quiet]
//! qufi export <campaign-dir>
//! qufi list {workloads|backends|grids}
//! ```
//!
//! Exit codes: `0` success / campaign complete, `2` budget expired
//! (resume to continue), `1` any error.

use qufi_cli::{
    default_out_dir, dry_run_plan, export_artifacts, load_stored_manifest, resume,
    run_to_completion, CliError, GridSpec, Manifest, RunOptions, RunStatus,
};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "\
qufi — QuFI campaign orchestration

USAGE:
    qufi run <manifest.toml> [--out DIR] [--threads N] [--budget N] [--quiet] [--dry-run]
    qufi resume <campaign-dir> [--threads N] [--budget N] [--quiet]
    qufi export <campaign-dir>
    qufi list {workloads|backends|grids}

COMMANDS:
    run      Execute a campaign manifest; checkpoints land in the output
             directory, artifacts in <out>/results.
    resume   Continue an interrupted campaign from its checkpoints.
    export   Regenerate <dir>/results from checkpoints, without running.
    list     Show the registered workloads, backends, or grid presets.

OPTIONS:
    --out DIR      Output directory (default: qufi-runs/<campaign name>)
    --threads N    Override the manifest's worker-thread count
    --budget N     Stop after N injection points (graceful; resume later)
    --quiet        Suppress progress reporting on stderr
    --dry-run      (run only) Print the resolved job × point × config task
                   matrix and thread split without executing anything
";

fn main() -> ExitCode {
    match dispatch(std::env::args().skip(1).collect()) {
        Ok(status) => status,
        Err(e) => {
            eprintln!("error: {e}");
            if matches!(e, CliError::Usage(_)) {
                eprintln!("\n{USAGE}");
            }
            ExitCode::FAILURE
        }
    }
}

fn dispatch(args: Vec<String>) -> Result<ExitCode, CliError> {
    let mut args = args.into_iter();
    let command = args.next().unwrap_or_else(|| "help".to_string());
    match command.as_str() {
        "run" => cmd_run(args.collect()),
        "resume" => cmd_resume(args.collect()),
        "export" => cmd_export(args.collect()),
        "list" => cmd_list(args.collect()),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        other => Err(CliError::usage(format!("unknown command {other:?}"))),
    }
}

struct CommonFlags {
    positional: Vec<String>,
    out: Option<PathBuf>,
    opts: RunOptions,
    dry_run: bool,
}

fn parse_flags(args: Vec<String>) -> Result<CommonFlags, CliError> {
    let mut flags = CommonFlags {
        positional: Vec::new(),
        out: None,
        opts: RunOptions::default(),
        dry_run: false,
    };
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--dry-run" => flags.dry_run = true,
            "--out" => flags.out = Some(PathBuf::from(take_value(&mut iter, "--out")?)),
            "--threads" => {
                flags.opts.threads = Some(parse_number(&take_value(&mut iter, "--threads")?)?)
            }
            "--budget" => {
                flags.opts.point_budget = Some(parse_number(&take_value(&mut iter, "--budget")?)?)
            }
            "--quiet" | "-q" => flags.opts.quiet = true,
            a if a.starts_with("--") => return Err(CliError::usage(format!("unknown flag {a:?}"))),
            _ => flags.positional.push(arg),
        }
    }
    Ok(flags)
}

fn take_value(iter: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, CliError> {
    iter.next()
        .ok_or_else(|| CliError::usage(format!("{flag} needs a value")))
}

fn parse_number(text: &str) -> Result<usize, CliError> {
    text.parse()
        .map_err(|_| CliError::usage(format!("{text:?} is not a number")))
}

fn finish(outcome: qufi_cli::CampaignOutcome, out_dir: &Path, quiet: bool) -> ExitCode {
    if !quiet {
        println!(
            "artifacts: {} files under {}",
            outcome.export.files.len(),
            out_dir.join("results").display()
        );
    }
    match outcome.summary.status {
        RunStatus::Complete => ExitCode::SUCCESS,
        RunStatus::Interrupted => {
            eprintln!(
                "budget expired after {} points; continue with: qufi resume {}",
                outcome.summary.points_run,
                out_dir.display()
            );
            ExitCode::from(2)
        }
    }
}

fn cmd_run(args: Vec<String>) -> Result<ExitCode, CliError> {
    let flags = parse_flags(args)?;
    let [manifest_path] = &flags.positional[..] else {
        return Err(CliError::usage("run takes exactly one manifest path"));
    };
    let text = std::fs::read_to_string(manifest_path)
        .map_err(|e| CliError::io("reading manifest", manifest_path, e))?;
    let manifest = Manifest::from_toml(&text)?;
    if flags.dry_run {
        print!("{}", dry_run_plan(&manifest, &flags.opts)?);
        return Ok(ExitCode::SUCCESS);
    }
    let out_dir = flags.out.unwrap_or_else(|| default_out_dir(&manifest));
    let outcome = run_to_completion(&manifest, &out_dir, &flags.opts)?;
    if !flags.opts.quiet {
        print!("{}", outcome.export.summary_table);
    }
    Ok(finish(outcome, &out_dir, flags.opts.quiet))
}

/// `--dry-run` must never be silently ignored: outside `qufi run` it would
/// read as "preview only" while the command does its real work.
fn reject_dry_run(flags: &CommonFlags) -> Result<(), CliError> {
    if flags.dry_run {
        return Err(CliError::usage("--dry-run only applies to `qufi run`"));
    }
    Ok(())
}

fn cmd_resume(args: Vec<String>) -> Result<ExitCode, CliError> {
    let flags = parse_flags(args)?;
    reject_dry_run(&flags)?;
    let [dir] = &flags.positional[..] else {
        return Err(CliError::usage(
            "resume takes exactly one campaign directory",
        ));
    };
    let out_dir = PathBuf::from(dir);
    let outcome = resume(&out_dir, &flags.opts)?;
    if !flags.opts.quiet {
        print!("{}", outcome.export.summary_table);
    }
    Ok(finish(outcome, &out_dir, flags.opts.quiet))
}

fn cmd_export(args: Vec<String>) -> Result<ExitCode, CliError> {
    let flags = parse_flags(args)?;
    reject_dry_run(&flags)?;
    let [dir] = &flags.positional[..] else {
        return Err(CliError::usage(
            "export takes exactly one campaign directory",
        ));
    };
    let out_dir = PathBuf::from(dir);
    let manifest = load_stored_manifest(&out_dir)?;
    let report = export_artifacts(&manifest, &out_dir)?;
    println!(
        "exported {} files ({} complete jobs, {} partial) under {}",
        report.files.len(),
        report.jobs_complete,
        report.jobs_partial,
        out_dir.join("results").display()
    );
    Ok(ExitCode::SUCCESS)
}

fn cmd_list(args: Vec<String>) -> Result<ExitCode, CliError> {
    let flags = parse_flags(args)?;
    reject_dry_run(&flags)?;
    let [what] = &flags.positional[..] else {
        return Err(CliError::usage(
            "list takes one of: workloads, backends, grids",
        ));
    };
    match what.as_str() {
        "workloads" => {
            println!("workload families (instantiate as <family>-<qubits>):");
            for info in qufi_algos::registry::families() {
                println!(
                    "  {:<8} {}..={} qubits  {}",
                    info.family, info.min_qubits, info.max_qubits, info.summary
                );
            }
        }
        "backends" => {
            println!("backend calibrations:");
            for &name in qufi_noise::BackendCalibration::builtin_names() {
                let cal = qufi_noise::BackendCalibration::named(name).expect("builtin");
                println!(
                    "  {:<12} {} qubits, {} coupled pairs ({})",
                    name,
                    cal.num_qubits(),
                    cal.coupling().len(),
                    cal.name
                );
            }
        }
        "grids" => {
            println!("grid presets:");
            for &preset in GridSpec::PRESETS {
                let grid = GridSpec::Preset(preset.to_string()).to_grid()?;
                println!(
                    "  {:<15} {} θ × {} φ = {} configurations per injection point",
                    preset,
                    grid.thetas.len(),
                    grid.phis.len(),
                    grid.len()
                );
            }
        }
        other => {
            return Err(CliError::usage(format!(
                "cannot list {other:?}; try workloads, backends, or grids"
            )))
        }
    }
    Ok(ExitCode::SUCCESS)
}
