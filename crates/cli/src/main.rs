//! `qufi` — campaign orchestration for the QuFI fault injector.
//!
//! ```text
//! qufi run <manifest.toml> [--out DIR] [--threads N] [--budget N] [--quiet|--verbose]
//!                          [--no-metrics] [--no-batch] [--trace] [--dry-run]
//! qufi resume <campaign-dir> [--threads N] [--budget N] [--quiet|--verbose]
//!                            [--no-metrics] [--no-batch] [--trace]
//! qufi export <campaign-dir>
//! qufi stats <campaign-dir> [--top N]
//! qufi list {workloads|backends|grids|runs [DIR]}
//! qufi shard plan <manifest.toml> [--out DIR] [--shards N] [--costs FILE]
//! qufi shard work <campaign-dir> --worker NAME [--shard K]
//!                 [--lease-timeout-ms N] [--threads N]
//! qufi shard merge <campaign-dir>
//! qufi serve [--addr HOST:PORT] [--out DIR] [--workers N] [--queue N]
//!            [--job-timeout-ms N] [--threads N]
//! ```
//!
//! Exit codes: `0` success / campaign complete, `2` budget expired
//! (resume to continue), `1` any error.

use qufi_cli::{
    default_out_dir, dry_run_plan, export_artifacts, load_stored_manifest, merge_campaign,
    plan_campaign, render_runs, render_stats, resume, run_to_completion, serve, work_campaign,
    CliError, GridSpec, Manifest, RunOptions, RunStatus, ServeOptions, WorkOptions,
};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "\
qufi — QuFI campaign orchestration

USAGE:
    qufi run <manifest.toml> [--out DIR] [--threads N] [--budget N] [--quiet|--verbose]
                             [--no-metrics] [--no-batch] [--trace] [--dry-run]
    qufi resume <campaign-dir> [--threads N] [--budget N] [--quiet|--verbose]
                               [--no-metrics] [--no-batch] [--trace]
    qufi export <campaign-dir>
    qufi stats <campaign-dir> [--top N]
    qufi list {workloads|backends|grids|runs [DIR]}
    qufi shard plan <manifest.toml> [--out DIR] [--shards N] [--costs FILE]
    qufi shard work <campaign-dir> --worker NAME [--shard K]
                    [--lease-timeout-ms N] [--threads N]
    qufi shard merge <campaign-dir>
    qufi serve [--addr HOST:PORT] [--out DIR] [--workers N] [--queue N]
               [--job-timeout-ms N] [--threads N]

COMMANDS:
    run      Execute a campaign manifest; checkpoints land in the output
             directory, artifacts in <out>/results, telemetry in
             <out>/metrics.json and <out>/costs.csv.
    resume   Continue an interrupted campaign from its checkpoints.
    export   Regenerate <dir>/results from checkpoints, without running.
    stats    Render the phase breakdown, counters, and slowest points
             from a run's telemetry artifacts.
    list     Show the registered workloads, backends, grid presets — or
             per-job progress of the runs under DIR (default: qufi-runs).
    shard    Crash-safe multi-worker campaigns: `plan` partitions the
             job × point matrix into cost-weighted work units, any number
             of `work` processes execute them under expiring leases
             (SIGKILL-safe; stale units are taken over), and `merge`
             folds the per-unit files into checkpoints + results that
             are byte-identical to a single-node run.
    serve    Run the campaign daemon: line-delimited JSON over TCP
             (submit/status/cancel/list/health/shutdown), a durable
             bounded queue with idempotent content-addressed submission,
             per-job timeouts, 3-strike poison quarantine, and graceful
             drain. Kill it any time; the next start resumes the queue
             and its checkpoints. See README \"Service & failure model\".

OPTIONS:
    --out DIR      Output directory (default: qufi-runs/<campaign name>)
    --threads N    Override the manifest's worker-thread count
    --budget N     Stop after N injection points (graceful; resume later)
    --quiet        Errors only on stderr
    --verbose      Progress on stderr even when it is not a terminal
    --no-metrics   Skip telemetry recording and its artifacts
    --no-batch     Replay grid cells one at a time instead of in batched
                   cell-major blocks (results are bit-identical either way;
                   sets QUFI_BATCH_CELLS=1 for this process)
    --trace        Also write a trace.jsonl span log (implies metrics)
    --top N        (stats only) Slowest points to show (default: 10)
    --dry-run      (run only) Print the resolved job × point × config task
                   matrix and thread split without executing anything
    --shards N     (shard plan) Number of shards to partition into (default: 2)
    --costs FILE   (shard plan) Cost profile to allocate by (default:
                   <out>/costs.csv when present, else grid-cell weights)
    --worker NAME  (shard work) Unique name for this worker process
    --shard K      (shard work) Home shard (default: derived from NAME)
    --lease-timeout-ms N
                   (shard work) Stale-lease takeover threshold (default: 5000)
    --addr HOST:PORT
                   (serve) Listen address (default: 127.0.0.1:7077; port 0
                   binds an ephemeral port, published in <out>/serve.addr)
    --workers N    (serve) Campaign worker threads (default: 2)
    --queue N      (serve) Admission-queue bound; submissions past it are
                   shed with a structured `overloaded` error (default: 64)
    --job-timeout-ms N
                   (serve) Per-job wall-clock timeout; a timed-out job is
                   canceled cooperatively, checkpoints kept (default: none)

Set QUFI_FSYNC=1 to fsync every checkpoint append (durability against
power loss, not just process death).

Telemetry never changes campaign results: everything under results/ is
byte-identical with metrics on or off, at any thread count.
";

fn main() -> ExitCode {
    match dispatch(std::env::args().skip(1).collect()) {
        Ok(status) => status,
        Err(e) => {
            qufi_obs::log::error(&e.to_string());
            if matches!(e, CliError::Usage(_)) {
                eprintln!("\n{USAGE}");
            }
            ExitCode::FAILURE
        }
    }
}

fn dispatch(args: Vec<String>) -> Result<ExitCode, CliError> {
    let mut args = args.into_iter();
    let command = args.next().unwrap_or_else(|| "help".to_string());
    match command.as_str() {
        "run" => cmd_run(args.collect()),
        "resume" => cmd_resume(args.collect()),
        "export" => cmd_export(args.collect()),
        "stats" => cmd_stats(args.collect()),
        "list" => cmd_list(args.collect()),
        "shard" => cmd_shard(args.collect()),
        "serve" => cmd_serve(args.collect()),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        other => Err(CliError::usage(format!("unknown command {other:?}"))),
    }
}

struct CommonFlags {
    positional: Vec<String>,
    out: Option<PathBuf>,
    opts: RunOptions,
    dry_run: bool,
    verbose: bool,
    no_metrics: bool,
    no_batch: bool,
    top: Option<usize>,
    shards: Option<usize>,
    costs: Option<PathBuf>,
    worker: Option<String>,
    shard: Option<usize>,
    lease_timeout_ms: Option<u64>,
    addr: Option<String>,
    workers: Option<usize>,
    queue: Option<usize>,
    job_timeout_ms: Option<u64>,
}

fn parse_flags(args: Vec<String>) -> Result<CommonFlags, CliError> {
    let mut flags = CommonFlags {
        positional: Vec::new(),
        out: None,
        opts: RunOptions::default(),
        dry_run: false,
        verbose: false,
        no_metrics: false,
        no_batch: false,
        top: None,
        shards: None,
        costs: None,
        worker: None,
        shard: None,
        lease_timeout_ms: None,
        addr: None,
        workers: None,
        queue: None,
        job_timeout_ms: None,
    };
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--dry-run" => flags.dry_run = true,
            "--out" => flags.out = Some(PathBuf::from(take_value(&mut iter, "--out")?)),
            "--threads" => {
                flags.opts.threads = Some(parse_number(&take_value(&mut iter, "--threads")?)?)
            }
            "--budget" => {
                flags.opts.point_budget = Some(parse_number(&take_value(&mut iter, "--budget")?)?)
            }
            "--quiet" | "-q" => flags.opts.quiet = true,
            "--verbose" | "-v" => flags.verbose = true,
            "--no-metrics" => flags.no_metrics = true,
            "--no-batch" => flags.no_batch = true,
            "--trace" => flags.opts.trace = true,
            "--top" => flags.top = Some(parse_number(&take_value(&mut iter, "--top")?)?),
            "--shards" => flags.shards = Some(parse_number(&take_value(&mut iter, "--shards")?)?),
            "--costs" => flags.costs = Some(PathBuf::from(take_value(&mut iter, "--costs")?)),
            "--worker" => flags.worker = Some(take_value(&mut iter, "--worker")?),
            "--shard" => flags.shard = Some(parse_number(&take_value(&mut iter, "--shard")?)?),
            "--lease-timeout-ms" => {
                flags.lease_timeout_ms =
                    Some(parse_number(&take_value(&mut iter, "--lease-timeout-ms")?)? as u64)
            }
            "--addr" => flags.addr = Some(take_value(&mut iter, "--addr")?),
            "--workers" => {
                flags.workers = Some(parse_number(&take_value(&mut iter, "--workers")?)?)
            }
            "--queue" => flags.queue = Some(parse_number(&take_value(&mut iter, "--queue")?)?),
            "--job-timeout-ms" => {
                flags.job_timeout_ms =
                    Some(parse_number(&take_value(&mut iter, "--job-timeout-ms")?)? as u64)
            }
            a if a.starts_with("--") => return Err(CliError::usage(format!("unknown flag {a:?}"))),
            _ => flags.positional.push(arg),
        }
    }
    if flags.opts.quiet && flags.verbose {
        return Err(CliError::usage(
            "--quiet and --verbose are mutually exclusive",
        ));
    }
    // Telemetry is on by default for run/resume; --no-metrics opts out
    // (a --trace next to it still wins, since a trace needs the recorder).
    flags.opts.metrics = !flags.no_metrics;
    // Batched grid replay is on by default; --no-batch pins the width to 1
    // (the engine's scalar path). Exports are bit-identical either way —
    // this is an escape hatch for debugging and A/B timing, not semantics.
    if flags.no_batch {
        std::env::set_var("QUFI_BATCH_CELLS", "1");
    }
    // The log sink is process-wide: every command's warnings (e.g. a
    // torn-checkpoint salvage during list/export) obey the same flags.
    qufi_obs::log::set_verbosity(if flags.opts.quiet {
        qufi_obs::log::Verbosity::Quiet
    } else if flags.verbose {
        qufi_obs::log::Verbosity::Verbose
    } else {
        qufi_obs::log::Verbosity::Normal
    });
    Ok(flags)
}

fn take_value(iter: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, CliError> {
    iter.next()
        .ok_or_else(|| CliError::usage(format!("{flag} needs a value")))
}

fn parse_number(text: &str) -> Result<usize, CliError> {
    text.parse()
        .map_err(|_| CliError::usage(format!("{text:?} is not a number")))
}

fn finish(outcome: qufi_cli::CampaignOutcome, out_dir: &Path, opts: &RunOptions) -> ExitCode {
    if !opts.quiet {
        println!(
            "artifacts: {} files under {}",
            outcome.export.files.len(),
            out_dir.join("results").display()
        );
        if opts.metrics || opts.trace {
            println!(
                "telemetry: {} (inspect with `qufi stats {}`)",
                out_dir.join("metrics.json").display(),
                out_dir.display()
            );
        }
    }
    match outcome.summary.status {
        RunStatus::Complete => ExitCode::SUCCESS,
        RunStatus::Interrupted => {
            qufi_obs::log::warn(&format!(
                "budget expired after {} points; continue with: qufi resume {}",
                outcome.summary.points_run,
                out_dir.display()
            ));
            ExitCode::from(2)
        }
    }
}

fn cmd_run(args: Vec<String>) -> Result<ExitCode, CliError> {
    let flags = parse_flags(args)?;
    let [manifest_path] = &flags.positional[..] else {
        return Err(CliError::usage("run takes exactly one manifest path"));
    };
    let text = std::fs::read_to_string(manifest_path)
        .map_err(|e| CliError::io("reading manifest", manifest_path, e))?;
    let manifest = Manifest::from_toml(&text)?;
    if flags.dry_run {
        print!("{}", dry_run_plan(&manifest, &flags.opts)?);
        return Ok(ExitCode::SUCCESS);
    }
    let out_dir = flags.out.unwrap_or_else(|| default_out_dir(&manifest));
    let outcome = run_to_completion(&manifest, &out_dir, &flags.opts)?;
    if !flags.opts.quiet {
        print!("{}", outcome.export.summary_table);
    }
    Ok(finish(outcome, &out_dir, &flags.opts))
}

/// `--dry-run` must never be silently ignored: outside `qufi run` it would
/// read as "preview only" while the command does its real work.
fn reject_dry_run(flags: &CommonFlags) -> Result<(), CliError> {
    if flags.dry_run {
        return Err(CliError::usage("--dry-run only applies to `qufi run`"));
    }
    Ok(())
}

fn cmd_resume(args: Vec<String>) -> Result<ExitCode, CliError> {
    let flags = parse_flags(args)?;
    reject_dry_run(&flags)?;
    let [dir] = &flags.positional[..] else {
        return Err(CliError::usage(
            "resume takes exactly one campaign directory",
        ));
    };
    let out_dir = PathBuf::from(dir);
    let outcome = resume(&out_dir, &flags.opts)?;
    if !flags.opts.quiet {
        print!("{}", outcome.export.summary_table);
    }
    Ok(finish(outcome, &out_dir, &flags.opts))
}

fn cmd_export(args: Vec<String>) -> Result<ExitCode, CliError> {
    let flags = parse_flags(args)?;
    reject_dry_run(&flags)?;
    let [dir] = &flags.positional[..] else {
        return Err(CliError::usage(
            "export takes exactly one campaign directory",
        ));
    };
    let out_dir = PathBuf::from(dir);
    let manifest = load_stored_manifest(&out_dir)?;
    let report = export_artifacts(&manifest, &out_dir)?;
    println!(
        "exported {} files ({} complete jobs, {} partial) under {}",
        report.files.len(),
        report.jobs_complete,
        report.jobs_partial,
        out_dir.join("results").display()
    );
    Ok(ExitCode::SUCCESS)
}

fn cmd_stats(args: Vec<String>) -> Result<ExitCode, CliError> {
    let flags = parse_flags(args)?;
    reject_dry_run(&flags)?;
    let [dir] = &flags.positional[..] else {
        return Err(CliError::usage(
            "stats takes exactly one campaign directory",
        ));
    };
    print!("{}", render_stats(Path::new(dir), flags.top.unwrap_or(10))?);
    Ok(ExitCode::SUCCESS)
}

fn cmd_list(args: Vec<String>) -> Result<ExitCode, CliError> {
    let flags = parse_flags(args)?;
    reject_dry_run(&flags)?;
    let (what, rest) = match &flags.positional[..] {
        [what] => (what, None),
        [what, dir] if what == "runs" => (what, Some(PathBuf::from(dir))),
        _ => {
            return Err(CliError::usage(
                "list takes one of: workloads, backends, grids, runs [DIR]",
            ))
        }
    };
    match what.as_str() {
        "runs" => {
            let dir = rest.unwrap_or_else(|| PathBuf::from("qufi-runs"));
            print!("{}", render_runs(&dir)?);
        }
        "workloads" => {
            println!("workload families (instantiate as <family>-<qubits>):");
            for info in qufi_algos::registry::families() {
                println!(
                    "  {:<8} {}..={} qubits  {}",
                    info.family, info.min_qubits, info.max_qubits, info.summary
                );
            }
        }
        "backends" => {
            println!("backend calibrations:");
            for &name in qufi_noise::BackendCalibration::builtin_names() {
                let cal = qufi_noise::BackendCalibration::named(name).expect("builtin");
                println!(
                    "  {:<12} {} qubits, {} coupled pairs ({})",
                    name,
                    cal.num_qubits(),
                    cal.coupling().len(),
                    cal.name
                );
            }
        }
        "grids" => {
            println!("grid presets:");
            for &preset in GridSpec::PRESETS {
                let grid = GridSpec::Preset(preset.to_string()).to_grid()?;
                println!(
                    "  {:<15} {} θ × {} φ = {} configurations per injection point",
                    preset,
                    grid.thetas.len(),
                    grid.phis.len(),
                    grid.len()
                );
            }
        }
        other => {
            return Err(CliError::usage(format!(
                "cannot list {other:?}; try workloads, backends, grids, or runs"
            )))
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_shard(args: Vec<String>) -> Result<ExitCode, CliError> {
    let flags = parse_flags(args)?;
    reject_dry_run(&flags)?;
    let [sub, target] = &flags.positional[..] else {
        return Err(CliError::usage(
            "shard takes a subcommand and a path: \
             shard {plan <manifest.toml> | work <campaign-dir> | merge <campaign-dir>}",
        ));
    };
    match sub.as_str() {
        "plan" => {
            let text = std::fs::read_to_string(target)
                .map_err(|e| CliError::io("reading manifest", target, e))?;
            let manifest = Manifest::from_toml(&text)?;
            let out_dir = flags.out.unwrap_or_else(|| default_out_dir(&manifest));
            let report = plan_campaign(
                &manifest,
                &out_dir,
                flags.shards.unwrap_or(2),
                flags.costs.as_deref(),
            )?;
            print!("{}", report.summary);
            println!(
                "plan written to {}; start workers with: \
                 qufi shard work {} --worker <name>",
                out_dir.join("shard-plan.json").display(),
                out_dir.display()
            );
            Ok(ExitCode::SUCCESS)
        }
        "work" => {
            let worker = flags.worker.clone().ok_or_else(|| {
                CliError::usage("shard work needs --worker NAME (unique per process)")
            })?;
            if worker.is_empty()
                || !worker
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_'))
            {
                return Err(CliError::usage(
                    "--worker must be non-empty and [A-Za-z0-9_-] only (it becomes a file suffix)",
                ));
            }
            let opts = WorkOptions {
                worker,
                shard: flags.shard,
                lease_timeout: Duration::from_millis(flags.lease_timeout_ms.unwrap_or(5000)),
                grid_threads: flags.opts.threads.unwrap_or(1),
                quiet: flags.opts.quiet,
            };
            let report = work_campaign(Path::new(target), &opts)?;
            println!(
                "worker {}: {} unit(s) done ({} stolen), {} poisoned",
                opts.worker, report.units_done, report.units_stolen, report.units_poisoned
            );
            Ok(if report.units_poisoned == 0 {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(2)
            })
        }
        "merge" => {
            let report = merge_campaign(Path::new(target))?;
            if !flags.opts.quiet {
                print!("{}", report.export.summary_table);
            }
            println!(
                "merged {} unit(s); {} artifact file(s) under {}",
                report.units_merged,
                report.export.files.len(),
                Path::new(target).join("results").display()
            );
            Ok(ExitCode::SUCCESS)
        }
        other => Err(CliError::usage(format!(
            "unknown shard subcommand {other:?}; try plan, work, or merge"
        ))),
    }
}

fn cmd_serve(args: Vec<String>) -> Result<ExitCode, CliError> {
    let flags = parse_flags(args)?;
    reject_dry_run(&flags)?;
    if !flags.positional.is_empty() {
        return Err(CliError::usage("serve takes no positional arguments"));
    }
    let defaults = ServeOptions::default();
    let opts = ServeOptions {
        addr: flags.addr.unwrap_or(defaults.addr),
        dir: flags.out.unwrap_or(defaults.dir),
        workers: flags.workers.unwrap_or(defaults.workers),
        queue_cap: flags.queue.unwrap_or(defaults.queue_cap),
        job_timeout_ms: flags.job_timeout_ms,
        threads: flags.opts.threads,
    };
    serve(&opts)?;
    // A drained daemon is a success: admissions stopped, in-flight work
    // finished or checkpointed, queue persisted.
    Ok(ExitCode::SUCCESS)
}
