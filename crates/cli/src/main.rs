//! `qufi` — campaign orchestration for the QuFI fault injector.
//!
//! ```text
//! qufi run <manifest.toml> [--out DIR] [--threads N] [--budget N] [--quiet|--verbose]
//!                          [--no-metrics] [--trace] [--dry-run]
//! qufi resume <campaign-dir> [--threads N] [--budget N] [--quiet|--verbose]
//!                            [--no-metrics] [--trace]
//! qufi export <campaign-dir>
//! qufi stats <campaign-dir> [--top N]
//! qufi list {workloads|backends|grids|runs [DIR]}
//! ```
//!
//! Exit codes: `0` success / campaign complete, `2` budget expired
//! (resume to continue), `1` any error.

use qufi_cli::{
    default_out_dir, dry_run_plan, export_artifacts, load_stored_manifest, render_runs,
    render_stats, resume, run_to_completion, CliError, GridSpec, Manifest, RunOptions, RunStatus,
};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "\
qufi — QuFI campaign orchestration

USAGE:
    qufi run <manifest.toml> [--out DIR] [--threads N] [--budget N] [--quiet|--verbose]
                             [--no-metrics] [--trace] [--dry-run]
    qufi resume <campaign-dir> [--threads N] [--budget N] [--quiet|--verbose]
                               [--no-metrics] [--trace]
    qufi export <campaign-dir>
    qufi stats <campaign-dir> [--top N]
    qufi list {workloads|backends|grids|runs [DIR]}

COMMANDS:
    run      Execute a campaign manifest; checkpoints land in the output
             directory, artifacts in <out>/results, telemetry in
             <out>/metrics.json and <out>/costs.csv.
    resume   Continue an interrupted campaign from its checkpoints.
    export   Regenerate <dir>/results from checkpoints, without running.
    stats    Render the phase breakdown, counters, and slowest points
             from a run's telemetry artifacts.
    list     Show the registered workloads, backends, grid presets — or
             per-job progress of the runs under DIR (default: qufi-runs).

OPTIONS:
    --out DIR      Output directory (default: qufi-runs/<campaign name>)
    --threads N    Override the manifest's worker-thread count
    --budget N     Stop after N injection points (graceful; resume later)
    --quiet        Errors only on stderr
    --verbose      Progress on stderr even when it is not a terminal
    --no-metrics   Skip telemetry recording and its artifacts
    --trace        Also write a trace.jsonl span log (implies metrics)
    --top N        (stats only) Slowest points to show (default: 10)
    --dry-run      (run only) Print the resolved job × point × config task
                   matrix and thread split without executing anything

Telemetry never changes campaign results: everything under results/ is
byte-identical with metrics on or off, at any thread count.
";

fn main() -> ExitCode {
    match dispatch(std::env::args().skip(1).collect()) {
        Ok(status) => status,
        Err(e) => {
            qufi_obs::log::error(&e.to_string());
            if matches!(e, CliError::Usage(_)) {
                eprintln!("\n{USAGE}");
            }
            ExitCode::FAILURE
        }
    }
}

fn dispatch(args: Vec<String>) -> Result<ExitCode, CliError> {
    let mut args = args.into_iter();
    let command = args.next().unwrap_or_else(|| "help".to_string());
    match command.as_str() {
        "run" => cmd_run(args.collect()),
        "resume" => cmd_resume(args.collect()),
        "export" => cmd_export(args.collect()),
        "stats" => cmd_stats(args.collect()),
        "list" => cmd_list(args.collect()),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        other => Err(CliError::usage(format!("unknown command {other:?}"))),
    }
}

struct CommonFlags {
    positional: Vec<String>,
    out: Option<PathBuf>,
    opts: RunOptions,
    dry_run: bool,
    verbose: bool,
    no_metrics: bool,
    top: Option<usize>,
}

fn parse_flags(args: Vec<String>) -> Result<CommonFlags, CliError> {
    let mut flags = CommonFlags {
        positional: Vec::new(),
        out: None,
        opts: RunOptions::default(),
        dry_run: false,
        verbose: false,
        no_metrics: false,
        top: None,
    };
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--dry-run" => flags.dry_run = true,
            "--out" => flags.out = Some(PathBuf::from(take_value(&mut iter, "--out")?)),
            "--threads" => {
                flags.opts.threads = Some(parse_number(&take_value(&mut iter, "--threads")?)?)
            }
            "--budget" => {
                flags.opts.point_budget = Some(parse_number(&take_value(&mut iter, "--budget")?)?)
            }
            "--quiet" | "-q" => flags.opts.quiet = true,
            "--verbose" | "-v" => flags.verbose = true,
            "--no-metrics" => flags.no_metrics = true,
            "--trace" => flags.opts.trace = true,
            "--top" => flags.top = Some(parse_number(&take_value(&mut iter, "--top")?)?),
            a if a.starts_with("--") => return Err(CliError::usage(format!("unknown flag {a:?}"))),
            _ => flags.positional.push(arg),
        }
    }
    if flags.opts.quiet && flags.verbose {
        return Err(CliError::usage(
            "--quiet and --verbose are mutually exclusive",
        ));
    }
    // Telemetry is on by default for run/resume; --no-metrics opts out
    // (a --trace next to it still wins, since a trace needs the recorder).
    flags.opts.metrics = !flags.no_metrics;
    // The log sink is process-wide: every command's warnings (e.g. a
    // torn-checkpoint salvage during list/export) obey the same flags.
    qufi_obs::log::set_verbosity(if flags.opts.quiet {
        qufi_obs::log::Verbosity::Quiet
    } else if flags.verbose {
        qufi_obs::log::Verbosity::Verbose
    } else {
        qufi_obs::log::Verbosity::Normal
    });
    Ok(flags)
}

fn take_value(iter: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, CliError> {
    iter.next()
        .ok_or_else(|| CliError::usage(format!("{flag} needs a value")))
}

fn parse_number(text: &str) -> Result<usize, CliError> {
    text.parse()
        .map_err(|_| CliError::usage(format!("{text:?} is not a number")))
}

fn finish(outcome: qufi_cli::CampaignOutcome, out_dir: &Path, opts: &RunOptions) -> ExitCode {
    if !opts.quiet {
        println!(
            "artifacts: {} files under {}",
            outcome.export.files.len(),
            out_dir.join("results").display()
        );
        if opts.metrics || opts.trace {
            println!(
                "telemetry: {} (inspect with `qufi stats {}`)",
                out_dir.join("metrics.json").display(),
                out_dir.display()
            );
        }
    }
    match outcome.summary.status {
        RunStatus::Complete => ExitCode::SUCCESS,
        RunStatus::Interrupted => {
            qufi_obs::log::warn(&format!(
                "budget expired after {} points; continue with: qufi resume {}",
                outcome.summary.points_run,
                out_dir.display()
            ));
            ExitCode::from(2)
        }
    }
}

fn cmd_run(args: Vec<String>) -> Result<ExitCode, CliError> {
    let flags = parse_flags(args)?;
    let [manifest_path] = &flags.positional[..] else {
        return Err(CliError::usage("run takes exactly one manifest path"));
    };
    let text = std::fs::read_to_string(manifest_path)
        .map_err(|e| CliError::io("reading manifest", manifest_path, e))?;
    let manifest = Manifest::from_toml(&text)?;
    if flags.dry_run {
        print!("{}", dry_run_plan(&manifest, &flags.opts)?);
        return Ok(ExitCode::SUCCESS);
    }
    let out_dir = flags.out.unwrap_or_else(|| default_out_dir(&manifest));
    let outcome = run_to_completion(&manifest, &out_dir, &flags.opts)?;
    if !flags.opts.quiet {
        print!("{}", outcome.export.summary_table);
    }
    Ok(finish(outcome, &out_dir, &flags.opts))
}

/// `--dry-run` must never be silently ignored: outside `qufi run` it would
/// read as "preview only" while the command does its real work.
fn reject_dry_run(flags: &CommonFlags) -> Result<(), CliError> {
    if flags.dry_run {
        return Err(CliError::usage("--dry-run only applies to `qufi run`"));
    }
    Ok(())
}

fn cmd_resume(args: Vec<String>) -> Result<ExitCode, CliError> {
    let flags = parse_flags(args)?;
    reject_dry_run(&flags)?;
    let [dir] = &flags.positional[..] else {
        return Err(CliError::usage(
            "resume takes exactly one campaign directory",
        ));
    };
    let out_dir = PathBuf::from(dir);
    let outcome = resume(&out_dir, &flags.opts)?;
    if !flags.opts.quiet {
        print!("{}", outcome.export.summary_table);
    }
    Ok(finish(outcome, &out_dir, &flags.opts))
}

fn cmd_export(args: Vec<String>) -> Result<ExitCode, CliError> {
    let flags = parse_flags(args)?;
    reject_dry_run(&flags)?;
    let [dir] = &flags.positional[..] else {
        return Err(CliError::usage(
            "export takes exactly one campaign directory",
        ));
    };
    let out_dir = PathBuf::from(dir);
    let manifest = load_stored_manifest(&out_dir)?;
    let report = export_artifacts(&manifest, &out_dir)?;
    println!(
        "exported {} files ({} complete jobs, {} partial) under {}",
        report.files.len(),
        report.jobs_complete,
        report.jobs_partial,
        out_dir.join("results").display()
    );
    Ok(ExitCode::SUCCESS)
}

fn cmd_stats(args: Vec<String>) -> Result<ExitCode, CliError> {
    let flags = parse_flags(args)?;
    reject_dry_run(&flags)?;
    let [dir] = &flags.positional[..] else {
        return Err(CliError::usage(
            "stats takes exactly one campaign directory",
        ));
    };
    print!("{}", render_stats(Path::new(dir), flags.top.unwrap_or(10))?);
    Ok(ExitCode::SUCCESS)
}

fn cmd_list(args: Vec<String>) -> Result<ExitCode, CliError> {
    let flags = parse_flags(args)?;
    reject_dry_run(&flags)?;
    let (what, rest) = match &flags.positional[..] {
        [what] => (what, None),
        [what, dir] if what == "runs" => (what, Some(PathBuf::from(dir))),
        _ => {
            return Err(CliError::usage(
                "list takes one of: workloads, backends, grids, runs [DIR]",
            ))
        }
    };
    match what.as_str() {
        "runs" => {
            let dir = rest.unwrap_or_else(|| PathBuf::from("qufi-runs"));
            print!("{}", render_runs(&dir)?);
        }
        "workloads" => {
            println!("workload families (instantiate as <family>-<qubits>):");
            for info in qufi_algos::registry::families() {
                println!(
                    "  {:<8} {}..={} qubits  {}",
                    info.family, info.min_qubits, info.max_qubits, info.summary
                );
            }
        }
        "backends" => {
            println!("backend calibrations:");
            for &name in qufi_noise::BackendCalibration::builtin_names() {
                let cal = qufi_noise::BackendCalibration::named(name).expect("builtin");
                println!(
                    "  {:<12} {} qubits, {} coupled pairs ({})",
                    name,
                    cal.num_qubits(),
                    cal.coupling().len(),
                    cal.name
                );
            }
        }
        "grids" => {
            println!("grid presets:");
            for &preset in GridSpec::PRESETS {
                let grid = GridSpec::Preset(preset.to_string()).to_grid()?;
                println!(
                    "  {:<15} {} θ × {} φ = {} configurations per injection point",
                    preset,
                    grid.thetas.len(),
                    grid.phis.len(),
                    grid.len()
                );
            }
        }
        other => {
            return Err(CliError::usage(format!(
                "cannot list {other:?}; try workloads, backends, grids, or runs"
            )))
        }
    }
    Ok(ExitCode::SUCCESS)
}
