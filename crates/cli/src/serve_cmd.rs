//! `qufi serve`: the campaign daemon, wired to the real checkpointed
//! runner. The daemon machinery (protocol, durable queue, backpressure,
//! supervision, drain) lives in [`qufi_serve`]; this module supplies the
//! [`JobHandler`] that turns an accepted manifest into a
//! [`run_to_completion`] call — which means service jobs inherit every
//! batch-mode guarantee: checkpoint-resumable interruption, and exports
//! byte-identical to an uninterrupted `qufi run`.

use crate::error::CliError;
use crate::job::RuntimeCache;
use crate::manifest::Manifest;
use crate::runner::{RunOptions, RunStatus};
use crate::{chaos, run_to_completion};
use qufi_core::CacheCounters;
use qufi_serve::{Config, HandlerOutcome, JobHandler, Server};
use std::path::{Path, PathBuf};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

/// Prepared job runtimes kept warm across tenants.
const RUNTIME_CACHE_CAP: usize = 16;

/// Invocation knobs for the daemon (the `qufi serve` flag surface).
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Listen address (port 0 = ephemeral, published in `serve.addr`).
    pub addr: String,
    /// Service state directory.
    pub dir: PathBuf,
    /// Worker threads running campaigns.
    pub workers: usize,
    /// Admission-queue bound.
    pub queue_cap: usize,
    /// Per-job wall-clock timeout in milliseconds (`None` = unbounded).
    pub job_timeout_ms: Option<u64>,
    /// Per-campaign thread override (passed through to the runner).
    pub threads: Option<usize>,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            addr: "127.0.0.1:7077".to_string(),
            dir: PathBuf::from("qufi-serve"),
            workers: 2,
            queue_cap: 64,
            job_timeout_ms: None,
            threads: None,
        }
    }
}

/// The real-campaign handler: canonicalizes through the manifest
/// parser (so submissions content-address by *meaning*, not by
/// whitespace) and runs through the checkpointed runner with the
/// daemon's shared prepare cache and the job's cancel flag.
pub struct CampaignHandler {
    runtime_cache: Arc<RuntimeCache>,
    threads: Option<usize>,
}

impl CampaignHandler {
    /// A handler with a fresh shared prepare cache.
    #[must_use]
    pub fn new(threads: Option<usize>) -> CampaignHandler {
        CampaignHandler {
            runtime_cache: Arc::new(RuntimeCache::new(RUNTIME_CACHE_CAP).instrumented(
                CacheCounters {
                    hits: "serve.cache.hits",
                    misses: "serve.cache.misses",
                    evictions: "serve.cache.evictions",
                    waits: "serve.cache.waits",
                },
            )),
            threads,
        }
    }
}

impl JobHandler for CampaignHandler {
    fn canonicalize(&self, manifest: &str) -> Result<(String, String), String> {
        let parsed = Manifest::from_toml(manifest).map_err(|e| e.to_string())?;
        Ok((parsed.to_toml(), parsed.name.clone()))
    }

    fn run(
        &self,
        manifest: &str,
        dir: &Path,
        cancel: &Arc<AtomicBool>,
    ) -> Result<HandlerOutcome, String> {
        // Chaos sites bracketing the campaign: the crash-recovery e2e
        // kills the daemon here (and mid-run via `runner.append`).
        chaos::kill_point("serve.job.pre_run");
        let parsed = Manifest::from_toml(manifest).map_err(|e| e.to_string())?;
        let opts = RunOptions {
            threads: self.threads,
            quiet: true, // worker progress would interleave across jobs
            cancel: Some(Arc::clone(cancel)),
            runtime_cache: Some(Arc::clone(&self.runtime_cache)),
            ..RunOptions::default()
        };
        let outcome = run_to_completion(&parsed, dir, &opts).map_err(|e| e.to_string())?;
        chaos::kill_point("serve.job.post_run");
        Ok(match outcome.summary.status {
            RunStatus::Complete => HandlerOutcome::Complete,
            RunStatus::Interrupted => HandlerOutcome::Stopped,
        })
    }
}

/// Runs the daemon until a client's `shutdown` op drains it.
///
/// The process-wide telemetry recorder stays enabled for the daemon's
/// lifetime (`serve.*` counters, runner phase spans, prepare-cache
/// hits); the final snapshot lands in `<dir>/metrics.json` at drain.
/// Individual jobs run with per-run telemetry off — their `results/`
/// artifacts are byte-identical either way.
///
/// # Errors
///
/// Bind and state-directory failures.
pub fn serve(opts: &ServeOptions) -> Result<(), CliError> {
    qufi_obs::reset();
    qufi_obs::enable();
    let cfg = Config {
        addr: opts.addr.clone(),
        dir: opts.dir.clone(),
        workers: opts.workers,
        queue_cap: opts.queue_cap,
        job_timeout: opts.job_timeout_ms.map(Duration::from_millis),
        ..Config::default()
    };
    let dir = cfg.dir.clone();
    let handler = Arc::new(CampaignHandler::new(opts.threads));
    let server = Server::start(cfg, handler)
        .map_err(|e| CliError::io("starting campaign daemon", &dir, e))?;
    server
        .wait()
        .map_err(|e| CliError::io("draining campaign daemon", &dir, e))
}
