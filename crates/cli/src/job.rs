//! The campaign job matrix: one job per (workload × backend ×
//! noise-scale) cell, each sweeping the full fault grid over every
//! injection point of its circuit.
//!
//! Jobs are the checkpointing unit; injection points are the scheduling
//! unit. Hardware-scenario randomness is derived per *point* from the
//! campaign seed and the job/point identity, so results are
//! bit-reproducible no matter how the thread pool interleaves work or
//! how often a campaign is interrupted and resumed.

use crate::error::CliError;
use crate::manifest::{ExecutorKind, Manifest};
use qufi_core::campaign::{golden_outputs, run_point_sweep_parallel};
use qufi_core::executor::{
    Executor, HardwareExecutor, IdealExecutor, NoisyExecutor, TrajectoryExecutor,
};
use qufi_core::fault::{enumerate_injection_points, FaultGrid, InjectionPoint};
use qufi_core::{ExecError, InjectionRecord};
use qufi_noise::BackendCalibration;
use qufi_sim::QuantumCircuit;

/// Identity of one job in the campaign matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Workload registry name (`"bv-4"`).
    pub workload: String,
    /// Backend name, or `"logical"` for backend-less ideal campaigns.
    pub backend: String,
    /// Noise scale applied to the backend calibration.
    pub scale: f64,
}

impl JobSpec {
    /// The job's stable identifier — used for checkpoint and artifact
    /// file names, so it is restricted to filesystem-safe characters.
    pub fn id(&self) -> String {
        if (self.scale - 1.0).abs() < f64::EPSILON {
            format!("{}@{}", self.workload, self.backend)
        } else {
            format!("{}@{}@x{}", self.workload, self.backend, self.scale)
        }
    }
}

/// Placeholder backend name for ideal (backend-less) campaigns.
pub const LOGICAL_BACKEND: &str = "logical";

/// Enumerates the campaign's job matrix in manifest order — the
/// canonical job numbering that progress reporting and artifact
/// directories follow.
pub fn job_matrix(manifest: &Manifest) -> Vec<JobSpec> {
    let backends: Vec<String> = if manifest.backends.is_empty() {
        vec![LOGICAL_BACKEND.to_string()]
    } else {
        manifest.backends.clone()
    };
    let mut jobs = Vec::new();
    for workload in &manifest.workloads {
        for backend in &backends {
            for &scale in &manifest.noise_scales {
                jobs.push(JobSpec {
                    workload: workload.clone(),
                    backend: backend.clone(),
                    scale,
                });
            }
        }
    }
    jobs
}

/// How a job executes circuits. Ideal and noisy executors are
/// deterministic and shared across the job's points; the hardware
/// scenario rebuilds its executor per point from a derived seed so the
/// drift/shot streams do not depend on scheduling order.
pub enum JobExecutor {
    /// Shared noiseless executor.
    Ideal(IdealExecutor),
    /// Shared density-matrix executor (boxed: its calibration tables
    /// dwarf the other variants).
    Noisy(Box<NoisyExecutor>),
    /// Per-point hardware executors (calibration kept for rebuilding).
    Hardware {
        /// Scaled calibration the per-point executors start from.
        calibration: BackendCalibration,
        /// Shots per execution.
        shots: u64,
        /// Calibration drift σ.
        drift: f64,
        /// Campaign master seed.
        campaign_seed: u64,
        /// This job's id (folded into per-point seeds).
        job_id: String,
    },
    /// Per-point Monte-Carlo trajectory executors — like the hardware
    /// scenario, randomness derives from the point identity so shot
    /// streams are schedule- and resume-invariant.
    Trajectory {
        /// Scaled calibration the per-point executors start from.
        calibration: BackendCalibration,
        /// Trajectory samples per grid cell.
        shots: u64,
        /// Campaign master seed.
        campaign_seed: u64,
        /// This job's id (folded into per-point seeds).
        job_id: String,
    },
}

/// A job bound to its circuit, golden outputs and executor — everything
/// needed to run injection points.
pub struct JobRuntime {
    /// The job's identity.
    pub spec: JobSpec,
    /// The workload circuit.
    pub circuit: QuantumCircuit,
    /// Golden outcome indices.
    pub golden: Vec<usize>,
    /// QVF of the fault-free execution under this job's executor.
    pub baseline_qvf: f64,
    /// All injection points of the circuit, in enumeration order.
    pub points: Vec<InjectionPoint>,
    executor: JobExecutor,
}

/// FNV-1a over the campaign seed and a point identity — the per-point
/// seed for hardware-scenario executors (the shared
/// [`qufi_core::engine::SeedHasher`] construction).
fn derive_seed(campaign_seed: u64, job_id: &str, op_index: usize, qubit: usize) -> u64 {
    qufi_core::engine::SeedHasher::new()
        .mix_u64(campaign_seed)
        .mix_bytes(job_id.as_bytes())
        .mix_u64(op_index as u64)
        .mix_u64(qubit as u64)
        .finish()
}

/// Sentinel point identity for a job's fault-free baseline execution.
const BASELINE_POINT: (usize, usize) = (usize::MAX, usize::MAX);

impl JobRuntime {
    /// Builds the runtime for one job: resolves the workload and
    /// backend, constructs the executor, and measures golden outputs
    /// and the fault-free baseline QVF.
    ///
    /// # Errors
    ///
    /// Unknown names (normally caught by manifest validation) and
    /// execution failures of the fault-free circuit.
    pub fn prepare(manifest: &Manifest, spec: &JobSpec) -> Result<Self, CliError> {
        let workload = qufi_algos::build_workload(&spec.workload)
            .map_err(|e| CliError::manifest(e.to_string()))?;
        let executor = match manifest.executor {
            ExecutorKind::Ideal => JobExecutor::Ideal(IdealExecutor),
            ExecutorKind::Noisy => {
                JobExecutor::Noisy(Box::new(NoisyExecutor::new(scaled_calibration(spec)?)))
            }
            ExecutorKind::Hardware => JobExecutor::Hardware {
                calibration: scaled_calibration(spec)?,
                shots: manifest.shots,
                drift: manifest.drift,
                campaign_seed: manifest.seed,
                job_id: spec.id(),
            },
            ExecutorKind::Trajectory => JobExecutor::Trajectory {
                calibration: scaled_calibration(spec)?,
                shots: manifest.shots,
                campaign_seed: manifest.seed,
                job_id: spec.id(),
            },
        };
        let golden = golden_outputs(&workload.circuit)?;
        let baseline_qvf = {
            let dist = match &executor {
                JobExecutor::Ideal(ex) => ex.execute(&workload.circuit)?,
                JobExecutor::Noisy(ex) => ex.execute(&workload.circuit)?,
                JobExecutor::Hardware { .. } => executor
                    .hardware_for_point(BASELINE_POINT.0, BASELINE_POINT.1)
                    .expect("hardware variant")
                    .execute(&workload.circuit)?,
                JobExecutor::Trajectory { .. } => executor
                    .trajectory_for_point(BASELINE_POINT.0, BASELINE_POINT.1)
                    .expect("trajectory variant")
                    .execute(&workload.circuit)?,
            };
            qufi_core::metrics::qvf_from_dist(&dist, &golden)
        };
        let points = enumerate_injection_points(&workload.circuit);
        Ok(JobRuntime {
            spec: spec.clone(),
            circuit: workload.circuit,
            golden,
            baseline_qvf,
            points,
            executor,
        })
    }

    /// Runs the full grid at one injection point — the scheduling unit.
    ///
    /// # Errors
    ///
    /// Propagates the first execution failure.
    pub fn run_point(
        &self,
        point: InjectionPoint,
        grid: &FaultGrid,
    ) -> Result<Vec<InjectionRecord>, ExecError> {
        self.run_point_split(point, grid, 1)
    }

    /// [`JobRuntime::run_point`] with the grid fanned across `grid_threads`
    /// threads — the second level of the scheduler's thread split. Records
    /// are bit-identical for every `grid_threads` value (see
    /// [`qufi_core::engine::PreparedSweep::replay_grid`]).
    ///
    /// # Errors
    ///
    /// Propagates the first execution failure.
    pub fn run_point_split(
        &self,
        point: InjectionPoint,
        grid: &FaultGrid,
        grid_threads: usize,
    ) -> Result<Vec<InjectionRecord>, ExecError> {
        let (qc, golden) = (&self.circuit, &self.golden[..]);
        match &self.executor {
            JobExecutor::Ideal(ex) => {
                run_point_sweep_parallel(qc, golden, ex, point, grid, grid_threads)
            }
            JobExecutor::Noisy(ex) => {
                run_point_sweep_parallel(qc, golden, ex.as_ref(), point, grid, grid_threads)
            }
            JobExecutor::Hardware { .. } => {
                let ex = self
                    .executor
                    .hardware_for_point(point.op_index, point.qubit)
                    .expect("hardware variant");
                run_point_sweep_parallel(qc, golden, &ex, point, grid, grid_threads)
            }
            JobExecutor::Trajectory { .. } => {
                let ex = self
                    .executor
                    .trajectory_for_point(point.op_index, point.qubit)
                    .expect("trajectory variant");
                run_point_sweep_parallel(qc, golden, &ex, point, grid, grid_threads)
            }
        }
    }
}

impl JobExecutor {
    fn hardware_for_point(&self, op_index: usize, qubit: usize) -> Option<HardwareExecutor> {
        match self {
            JobExecutor::Hardware {
                calibration,
                shots,
                drift,
                campaign_seed,
                job_id,
            } => Some(HardwareExecutor::with_config(
                calibration.clone(),
                derive_seed(*campaign_seed, job_id, op_index, qubit),
                *shots,
                *drift,
            )),
            _ => None,
        }
    }

    fn trajectory_for_point(&self, op_index: usize, qubit: usize) -> Option<TrajectoryExecutor> {
        match self {
            JobExecutor::Trajectory {
                calibration,
                shots,
                campaign_seed,
                job_id,
            } => Some(TrajectoryExecutor::with_shots(
                calibration.clone(),
                derive_seed(*campaign_seed, job_id, op_index, qubit),
                *shots,
            )),
            _ => None,
        }
    }
}

/// Everything [`JobRuntime::prepare`] reads, flattened into a hashable
/// key: the executor scenario plus the manifest knobs that reach it.
/// Two (manifest, spec) pairs with equal keys build byte-identical
/// runtimes, which is what makes runtimes safe to share across
/// campaigns — and across tenants of the campaign service.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RuntimeKey {
    executor: &'static str,
    workload: String,
    backend: String,
    scale_bits: u64,
    seed: u64,
    shots: u64,
    drift_bits: u64,
}

impl RuntimeKey {
    /// The cache key for `spec` under `manifest`.
    pub fn new(manifest: &Manifest, spec: &JobSpec) -> RuntimeKey {
        RuntimeKey {
            executor: manifest.executor.keyword(),
            workload: spec.workload.clone(),
            backend: spec.backend.clone(),
            scale_bits: spec.scale.to_bits(),
            seed: manifest.seed,
            shots: manifest.shots,
            drift_bits: manifest.drift.to_bits(),
        }
    }
}

/// A shared single-flight cache of prepared job runtimes, keyed by
/// [`RuntimeKey`]. Concurrent campaigns that name the same (workload,
/// backend, scale, executor-config) cell pay the prepare cost —
/// workload build, golden outputs, baseline execution, point
/// enumeration — exactly once and share the result.
pub type RuntimeCache = qufi_core::PrepareCache<RuntimeKey, JobRuntime>;

/// [`JobRuntime::prepare`] through a shared [`RuntimeCache`].
///
/// # Errors
///
/// Propagates [`JobRuntime::prepare`] failures; a failed prepare is not
/// cached, so a later retry rebuilds.
pub fn prepare_cached(
    cache: &RuntimeCache,
    manifest: &Manifest,
    spec: &JobSpec,
) -> Result<std::sync::Arc<JobRuntime>, CliError> {
    cache.get_or_try_build(&RuntimeKey::new(manifest, spec), || {
        JobRuntime::prepare(manifest, spec)
    })
}

fn scaled_calibration(spec: &JobSpec) -> Result<BackendCalibration, CliError> {
    let cal = BackendCalibration::named(&spec.backend)
        .ok_or_else(|| CliError::manifest(format!("unknown backend {:?}", spec.backend)))?;
    Ok(if (spec.scale - 1.0).abs() < f64::EPSILON {
        cal
    } else {
        cal.scaled(spec.scale)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::Manifest;

    fn manifest(executor: &str) -> Manifest {
        Manifest::from_toml(&format!(
            "[campaign]\nname = \"t\"\nseed = 9\nexecutor = \"{executor}\"\n\
             workloads = [\"bv-3\", \"ghz-3\"]\nbackends = [\"lima\", \"jakarta\"]\n\
             noise_scales = [1.0, 2.0]\n[grid]\npreset = \"coarse\"\n"
        ))
        .unwrap()
    }

    #[test]
    fn matrix_is_workload_major_and_ids_are_stable() {
        let jobs = job_matrix(&manifest("noisy"));
        assert_eq!(jobs.len(), 2 * 2 * 2);
        assert_eq!(jobs[0].id(), "bv-3@lima");
        assert_eq!(jobs[1].id(), "bv-3@lima@x2");
        assert_eq!(jobs[2].id(), "bv-3@jakarta");
        assert_eq!(jobs[7].id(), "ghz-3@jakarta@x2");
    }

    #[test]
    fn ideal_manifest_without_backends_gets_logical_job() {
        let m = Manifest::from_toml("[campaign]\nexecutor = \"ideal\"\nworkloads = [\"bv-3\"]\n")
            .unwrap();
        let jobs = job_matrix(&m);
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].id(), "bv-3@logical");
    }

    #[test]
    fn prepare_measures_golden_and_baseline() {
        let m = manifest("noisy");
        let rt = JobRuntime::prepare(&m, &job_matrix(&m)[0]).unwrap();
        assert_eq!(rt.golden, vec![0b10]); // alternating secret "10"
        assert!(rt.baseline_qvf > 0.0 && rt.baseline_qvf < 0.45);
        assert!(!rt.points.is_empty());
    }

    #[test]
    fn hardware_points_are_reproducible_and_independent() {
        let m = manifest("hardware");
        let jobs = job_matrix(&m);
        let rt = JobRuntime::prepare(&m, &jobs[0]).unwrap();
        let grid = FaultGrid::custom(vec![0.0, 1.0], vec![0.0]);
        let p0 = rt.points[0];
        let p1 = rt.points[1];
        // Same point twice → identical records (order-independence).
        let a = rt.run_point(p1, &grid).unwrap();
        let _ = rt.run_point(p0, &grid).unwrap();
        let b = rt.run_point(p1, &grid).unwrap();
        assert_eq!(a, b);
        // A fresh runtime reproduces them too.
        let rt2 = JobRuntime::prepare(&m, &jobs[0]).unwrap();
        assert_eq!(rt2.run_point(p1, &grid).unwrap(), a);
        assert_eq!(rt2.baseline_qvf, rt.baseline_qvf);
    }

    #[test]
    fn trajectory_points_are_reproducible_and_independent() {
        let m = Manifest::from_toml(
            "[campaign]\nname = \"t\"\nseed = 9\nexecutor = \"trajectory\"\nshots = 192\n\
             workloads = [\"bv-3\"]\nbackends = [\"lima\"]\n[grid]\npreset = \"coarse\"\n",
        )
        .unwrap();
        let jobs = job_matrix(&m);
        let rt = JobRuntime::prepare(&m, &jobs[0]).unwrap();
        let grid = FaultGrid::custom(vec![0.0, 1.0], vec![0.0]);
        let p0 = rt.points[0];
        let p1 = rt.points[1];
        // Same point twice → identical records (order-independence).
        let a = rt.run_point(p1, &grid).unwrap();
        let _ = rt.run_point(p0, &grid).unwrap();
        let b = rt.run_point(p1, &grid).unwrap();
        assert_eq!(a, b);
        // A fresh runtime and a split grid reproduce them too.
        let rt2 = JobRuntime::prepare(&m, &jobs[0]).unwrap();
        assert_eq!(rt2.run_point_split(p1, &grid, 2).unwrap(), a);
        assert_eq!(rt2.baseline_qvf, rt.baseline_qvf);
    }

    #[test]
    fn runtime_cache_shares_across_equal_specs_and_splits_on_config() {
        let m = manifest("noisy");
        let jobs = job_matrix(&m);
        let cache = RuntimeCache::new(8);
        let a = prepare_cached(&cache, &m, &jobs[0]).unwrap();
        let b = prepare_cached(&cache, &m, &jobs[0]).unwrap();
        assert!(
            std::sync::Arc::ptr_eq(&a, &b),
            "same cell shares one runtime"
        );
        let other = prepare_cached(&cache, &m, &jobs[1]).unwrap();
        assert!(
            !std::sync::Arc::ptr_eq(&a, &other),
            "x2 scale is a different cell"
        );
        // A different seed changes hardware-scenario streams → distinct key.
        let mh = manifest("hardware");
        let mut mh2 = mh.clone();
        mh2.seed = mh.seed + 1;
        assert_ne!(
            RuntimeKey::new(&mh, &jobs[0]),
            RuntimeKey::new(&mh2, &jobs[0])
        );
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn scale_changes_the_noise_floor() {
        let m = manifest("noisy");
        let jobs = job_matrix(&m);
        let nominal = JobRuntime::prepare(&m, &jobs[0]).unwrap();
        let doubled = JobRuntime::prepare(&m, &jobs[1]).unwrap();
        assert!(doubled.baseline_qvf > nominal.baseline_qvf);
    }
}
