//! A minimal TOML-subset parser for run manifests and checkpoint
//! metadata. The real `toml` crate is not vendorable offline (see
//! `vendor/README.md`), and campaign manifests only need a small,
//! line-oriented slice of the format:
//!
//! * `[section]` headers (one level, no dotted keys),
//! * `key = value` pairs with bare keys,
//! * strings (basic `"…"` with `\" \\ \n \r \t` escapes), integers,
//!   floats, booleans, and flat arrays of those (multi-line allowed),
//! * `#` comments and blank lines.
//!
//! Floats round-trip exactly: the writer emits Rust's shortest
//! round-trip form and the parser reads it back bit-identically, which
//! the resume machinery relies on for checkpoint metadata.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed TOML value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A quoted string.
    Str(String),
    /// A signed integer.
    Int(i64),
    /// A float.
    Float(f64),
    /// A boolean.
    Bool(bool),
    /// A flat array.
    Array(Vec<Value>),
}

/// One `[section]`'s key/value pairs.
pub type Table = BTreeMap<String, Value>;

/// A parsed document: section name → table. Keys above the first
/// section header land in the `""` table.
pub type Document = BTreeMap<String, Table>;

/// A parse failure with its 1-based line number.
#[derive(Debug, Clone, PartialEq)]
pub struct TomlError {
    /// Line where parsing failed.
    pub line: usize,
    /// Why.
    pub reason: String,
}

impl fmt::Display for TomlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "manifest parse error at line {}: {}",
            self.line, self.reason
        )
    }
}

impl std::error::Error for TomlError {}

fn err(line: usize, reason: impl Into<String>) -> TomlError {
    TomlError {
        line,
        reason: reason.into(),
    }
}

/// Strips a trailing comment, respecting string literals.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_string => escaped = !escaped,
            '"' if !escaped => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => escaped = false,
        }
    }
    line
}

/// `true` when every `[`/`]` outside strings is balanced — used to join
/// multi-line arrays.
fn brackets_balanced(s: &str) -> bool {
    let mut depth: i64 = 0;
    let mut in_string = false;
    let mut escaped = false;
    for c in s.chars() {
        match c {
            '\\' if in_string => escaped = !escaped,
            '"' if !escaped => in_string = !in_string,
            '[' if !in_string => depth += 1,
            ']' if !in_string => depth -= 1,
            _ => escaped = false,
        }
    }
    depth <= 0
}

/// Parses a TOML-subset document.
///
/// # Errors
///
/// Returns the first malformed construct with its line number.
pub fn parse(text: &str) -> Result<Document, TomlError> {
    let mut doc = Document::new();
    let mut current = String::new();
    doc.insert(current.clone(), Table::new());

    let mut lines = text.lines().enumerate().peekable();
    while let Some((idx, raw)) = lines.next() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix('[') {
            if name.starts_with('[') {
                return Err(err(lineno, "arrays of tables ([[…]]) are not supported"));
            }
            let name = name
                .strip_suffix(']')
                .ok_or_else(|| err(lineno, "unterminated section header"))?
                .trim();
            if name.is_empty() {
                return Err(err(lineno, "empty section name"));
            }
            current = name.to_string();
            doc.entry(current.clone()).or_default();
            continue;
        }
        let (key, value_text) = line
            .split_once('=')
            .map(|(k, v)| (k.trim().to_string(), v.trim().to_string()))
            .ok_or_else(|| err(lineno, "expected `key = value` or `[section]`"))?;
        if key.is_empty() {
            return Err(err(lineno, "empty key"));
        }
        // Join continuation lines of a multi-line array.
        let mut value_text = value_text;
        while value_text.starts_with('[') && !brackets_balanced(&value_text) {
            let (_, next) = lines
                .next()
                .ok_or_else(|| err(lineno, "unterminated array"))?;
            value_text.push(' ');
            value_text.push_str(strip_comment(next).trim());
        }
        let value = parse_value(&value_text, lineno, 0)?;
        let table = doc.entry(current.clone()).or_default();
        if table.insert(key.clone(), value).is_some() {
            return Err(err(lineno, format!("duplicate key {key:?}")));
        }
    }
    Ok(doc)
}

/// Array-nesting bound. `parse_value` recurses once per nesting level,
/// so without a cap a hostile `[[[[…]]]]` input overflows the stack;
/// real manifests only ever use flat arrays.
const MAX_ARRAY_DEPTH: usize = 32;

fn parse_value(text: &str, line: usize, depth: usize) -> Result<Value, TomlError> {
    let text = text.trim();
    if text.is_empty() {
        return Err(err(line, "missing value"));
    }
    if let Some(body) = text.strip_prefix('[') {
        if depth >= MAX_ARRAY_DEPTH {
            return Err(err(
                line,
                format!("arrays nested deeper than {MAX_ARRAY_DEPTH} levels"),
            ));
        }
        let body = body
            .strip_suffix(']')
            .ok_or_else(|| err(line, "unterminated array"))?;
        let mut items = Vec::new();
        for piece in split_array_items(body, line)? {
            items.push(parse_value(&piece, line, depth + 1)?);
        }
        return Ok(Value::Array(items));
    }
    if text.starts_with('"') {
        return parse_string(text, line).map(Value::Str);
    }
    match text {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    let numeric = text.replace('_', "");
    if numeric.contains(['.', 'e', 'E']) || numeric.contains("inf") || numeric.contains("nan") {
        numeric
            .parse::<f64>()
            .map(Value::Float)
            .map_err(|_| err(line, format!("bad float {text:?}")))
    } else {
        numeric
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|_| err(line, format!("bad value {text:?}")))
    }
}

/// Splits array body text on top-level commas, respecting strings.
fn split_array_items(body: &str, line: usize) -> Result<Vec<String>, TomlError> {
    let mut items = Vec::new();
    let mut current = String::new();
    let mut in_string = false;
    let mut escaped = false;
    let mut depth = 0usize;
    for c in body.chars() {
        match c {
            '\\' if in_string => {
                escaped = !escaped;
                current.push(c);
                continue;
            }
            '"' if !escaped => in_string = !in_string,
            '[' if !in_string => depth += 1,
            ']' if !in_string => {
                depth = depth
                    .checked_sub(1)
                    .ok_or_else(|| err(line, "unbalanced brackets in array"))?;
            }
            ',' if !in_string && depth == 0 => {
                let piece = current.trim().to_string();
                if !piece.is_empty() {
                    items.push(piece);
                }
                current.clear();
                continue;
            }
            _ => {}
        }
        escaped = false;
        current.push(c);
    }
    if in_string {
        return Err(err(line, "unterminated string in array"));
    }
    let piece = current.trim().to_string();
    if !piece.is_empty() {
        items.push(piece);
    }
    Ok(items)
}

fn parse_string(text: &str, line: usize) -> Result<String, TomlError> {
    let body = text
        .strip_prefix('"')
        .and_then(|t| t.strip_suffix('"'))
        .ok_or_else(|| err(line, "unterminated string"))?;
    let mut out = String::with_capacity(body.len());
    let mut chars = body.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            if c == '"' {
                return Err(err(line, "unescaped quote inside string"));
            }
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            other => return Err(err(line, format!("unsupported escape \\{other:?}"))),
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Typed accessors — manifest code reads through these for uniform errors.

impl Value {
    /// The value as a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Int(i) if i >= 0 => Some(i as u64),
            _ => None,
        }
    }

    /// The value as a float (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Float(f) => Some(f),
            Value::Int(i) => Some(i as f64),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Renders a string as a TOML literal.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders a float so the parser reads it back bit-identically, always
/// typed as a float.
pub fn float(v: f64) -> String {
    let s = format!("{v}");
    if s.contains('.') || s.contains('e') || s.contains("inf") || s.contains("nan") {
        s
    } else {
        format!("{s}.0")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_scalars_and_arrays() {
        let doc = parse(
            r#"
# a manifest
top = 1
[campaign]
name = "smoke test"   # trailing comment
seed = 42
threads = 0
drift = 0.05
fast = true
workloads = ["bv-4", "dj-4"]
scales = [0.5, 1.0, 2]
"#,
        )
        .unwrap();
        assert_eq!(doc[""]["top"], Value::Int(1));
        let c = &doc["campaign"];
        assert_eq!(c["name"].as_str(), Some("smoke test"));
        assert_eq!(c["seed"].as_u64(), Some(42));
        assert_eq!(c["drift"].as_f64(), Some(0.05));
        assert_eq!(c["fast"], Value::Bool(true));
        assert_eq!(c["workloads"].as_array().unwrap().len(), 2);
        let scales: Vec<f64> = c["scales"]
            .as_array()
            .unwrap()
            .iter()
            .map(|v| v.as_f64().unwrap())
            .collect();
        assert_eq!(scales, vec![0.5, 1.0, 2.0]);
    }

    #[test]
    fn multi_line_arrays_join() {
        let doc = parse("[g]\nthetas = [\n  0.0, # zero\n  3.14,\n]\n").unwrap();
        assert_eq!(doc["g"]["thetas"].as_array().unwrap().len(), 2);
    }

    #[test]
    fn strings_with_escapes_and_hashes() {
        let doc = parse("s = \"a#b \\\"q\\\" \\\\ end\"\n").unwrap();
        assert_eq!(doc[""]["s"].as_str(), Some("a#b \"q\" \\ end"));
    }

    #[test]
    fn errors_carry_line_numbers() {
        assert_eq!(parse("x 1\n").unwrap_err().line, 1);
        assert_eq!(parse("a = 1\nb = \n").unwrap_err().line, 2);
        assert!(parse("[[t]]\n")
            .unwrap_err()
            .reason
            .contains("not supported"));
        assert!(parse("a = 1\na = 2\n")
            .unwrap_err()
            .reason
            .contains("duplicate"));
    }

    #[test]
    fn hostile_nesting_is_rejected_not_a_stack_overflow() {
        let mut s = String::from("a = ");
        for _ in 0..100_000 {
            s.push('[');
        }
        for _ in 0..100_000 {
            s.push(']');
        }
        s.push('\n');
        let e = parse(&s).unwrap_err();
        assert!(e.reason.contains("nested deeper"), "{e}");
        // At the boundary: 32 levels parse, 33 do not.
        let nested = |n: usize| format!("a = {}1{}\n", "[".repeat(n), "]".repeat(n));
        assert!(parse(&nested(MAX_ARRAY_DEPTH)).is_ok());
        assert!(parse(&nested(MAX_ARRAY_DEPTH + 1)).is_err());
    }

    #[test]
    fn floats_round_trip_exactly() {
        for v in [0.1, 1.0 / 3.0, 1e-17, 123456.789, f64::MIN_POSITIVE] {
            let text = format!("x = {}\n", float(v));
            let doc = parse(&text).unwrap();
            assert_eq!(doc[""]["x"].as_f64(), Some(v), "{text}");
        }
        assert_eq!(float(2.0), "2.0");
    }

    #[test]
    fn quote_round_trips() {
        let s = "weird \"name\"\nwith\ttabs\\";
        let doc = parse(&format!("x = {}\n", quote(s))).unwrap();
        assert_eq!(doc[""]["x"].as_str(), Some(s));
    }
}
