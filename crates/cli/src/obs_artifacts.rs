//! Telemetry artifacts of a campaign run: `metrics.json`, `costs.csv`
//! and (under `--trace`) `trace.jsonl`.
//!
//! These land in the campaign directory **root**, next to `manifest.toml`
//! — deliberately outside `results/`, which holds only deterministic
//! exports derived from checkpoints. Telemetry describes *the latest
//! invocation* (the recorder resets per run): a resumed campaign's
//! metrics cover the resuming process, not the sum of all invocations.

use crate::error::CliError;
use qufi_obs::Snapshot;
use std::fs;
use std::path::{Path, PathBuf};

/// Counter/histogram dump of one invocation.
pub const METRICS_FILE: &str = "metrics.json";
/// Per-point cost rows (`job,op_index,qubit,prepare_ns,replay_ns,cells`).
pub const COSTS_FILE: &str = "costs.csv";
/// Span log (JSONL), written only under `--trace`.
pub const TRACE_FILE: &str = "trace.jsonl";

/// Drains the recorder into `out_dir` — `metrics.json` + `costs.csv`,
/// plus `trace.jsonl` when `with_trace`. Returns the paths written.
///
/// # Errors
///
/// Filesystem failures.
pub fn write_artifacts(out_dir: &Path, with_trace: bool) -> Result<Vec<PathBuf>, CliError> {
    let snap = qufi_obs::snapshot();
    let mut written = Vec::new();
    let metrics_path = out_dir.join(METRICS_FILE);
    crate::atomic_write(&metrics_path, snap.to_json().as_bytes(), "writing metrics")?;
    written.push(metrics_path);
    let costs_path = out_dir.join(COSTS_FILE);
    crate::atomic_write(
        &costs_path,
        snap.costs_csv().as_bytes(),
        "writing cost profile",
    )?;
    written.push(costs_path);
    if with_trace {
        let trace_path = out_dir.join(TRACE_FILE);
        let events = qufi_obs::take_trace();
        crate::atomic_write(
            &trace_path,
            qufi_obs::trace::to_jsonl(&events).as_bytes(),
            "writing trace",
        )?;
        written.push(trace_path);
    }
    Ok(written)
}

/// Loads a run directory's `metrics.json`, if present.
///
/// # Errors
///
/// An unreadable or malformed file ( *absence* is `Ok(None)`).
pub fn load_metrics(run_dir: &Path) -> Result<Option<Snapshot>, CliError> {
    let path = run_dir.join(METRICS_FILE);
    let text = match fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(CliError::io("reading metrics", &path, e)),
    };
    Snapshot::from_json(&text)
        .map(Some)
        .map_err(|e| CliError::manifest(format!("{}: {e}", path.display())))
}

/// Loads a run directory's `costs.csv`, if present.
///
/// # Errors
///
/// An unreadable or malformed file (absence is `Ok(None)`).
pub fn load_costs(run_dir: &Path) -> Result<Option<Vec<qufi_obs::CostRecord>>, CliError> {
    let path = run_dir.join(COSTS_FILE);
    let text = match fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(CliError::io("reading cost profile", &path, e)),
    };
    qufi_obs::parse_costs_csv(&text)
        .map(Some)
        .map_err(|e| CliError::manifest(format!("{}: {e}", path.display())))
}

/// Loads a run directory's `trace.jsonl`, if present.
///
/// # Errors
///
/// An unreadable or malformed file (absence is `Ok(None)`).
pub fn load_trace(run_dir: &Path) -> Result<Option<Vec<qufi_obs::trace::TraceEvent>>, CliError> {
    let path = run_dir.join(TRACE_FILE);
    let text = match fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(CliError::io("reading trace", &path, e)),
    };
    qufi_obs::trace::parse_jsonl(&text)
        .map(Some)
        .map_err(|e| CliError::manifest(format!("{}: {e}", path.display())))
}
