//! The campaign scheduler: fans the (workload × backend × scale ×
//! injection-point) task matrix across a worker pool, checkpointing each
//! completed point so an interrupted campaign resumes without
//! recomputation.
//!
//! Determinism contract: every task's result depends only on the
//! manifest (executors are either stateless or seeded per point, see
//! [`crate::job`]), so any interleaving of workers — and any
//! interrupt/resume split — produces the same record values. Artifacts
//! are generated from the checkpoint files afterwards
//! ([`crate::export`]), which makes an interrupted-and-resumed campaign
//! byte-identical to an uninterrupted one.

use crate::checkpoint::{CheckpointStore, JobMeta};
use crate::error::CliError;
use crate::job::{job_matrix, JobRuntime, RuntimeCache};
use crate::manifest::Manifest;
use parking_lot::Mutex;
use qufi_core::fault::{FaultGrid, InjectionPoint};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Invocation-level knobs that do not belong in the manifest.
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Overrides the manifest's thread budget.
    pub threads: Option<usize>,
    /// Stop (gracefully, checkpoint intact) after this many injection
    /// points have been *executed* in this invocation — time-boxed runs
    /// and interruption tests.
    pub point_budget: Option<usize>,
    /// Suppress progress reporting on stderr. (Progress also respects the
    /// process-wide [`qufi_obs::log`] verbosity; this is a hard off.)
    pub quiet: bool,
    /// Record telemetry (counters, phase histograms, per-point costs) for
    /// this run and write `metrics.json`/`costs.csv` next to the
    /// checkpoints. Telemetry observes wall time only — artifacts under
    /// `results/` are byte-identical either way.
    pub metrics: bool,
    /// Additionally write a `trace.jsonl` span log (implies `metrics`).
    pub trace: bool,
    /// Cooperative cancellation: when the flag flips true, workers stop
    /// claiming tasks and the pass returns [`RunStatus::Interrupted`]
    /// with every completed point checkpointed — the same resumable
    /// state a budget expiry leaves. The campaign service uses this for
    /// client cancels, per-job timeouts, and drain-on-shutdown.
    pub cancel: Option<Arc<AtomicBool>>,
    /// Shared prepare cache: when set, job runtimes are built through it
    /// (single-flight, bounded), so concurrent campaigns naming the same
    /// (workload × backend × scale × executor-config) cell pay transpile
    /// + golden + baseline once.
    pub runtime_cache: Option<Arc<RuntimeCache>>,
}

impl RunOptions {
    fn cancel_requested(&self) -> bool {
        self.cancel
            .as_ref()
            .is_some_and(|c| c.load(Ordering::SeqCst))
    }
}

/// Whether the campaign ran to completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunStatus {
    /// Every job's every point is checkpointed.
    Complete,
    /// The point budget expired first; resume to continue.
    Interrupted,
}

/// Per-job completion accounting.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// The job's metadata.
    pub meta: JobMeta,
    /// Fully-checkpointed injection points.
    pub points_done: usize,
}

impl JobOutcome {
    /// `true` when every point is checkpointed.
    pub fn is_complete(&self) -> bool {
        self.points_done >= self.meta.points_total
    }
}

/// What a scheduling pass did.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Completion status.
    pub status: RunStatus,
    /// Per-job accounting, in manifest order.
    pub jobs: Vec<JobOutcome>,
    /// Points executed by this invocation.
    pub points_run: usize,
    /// Points already satisfied by checkpoints.
    pub points_resumed: usize,
    /// Wall-clock time of the scheduling pass.
    pub elapsed: Duration,
}

struct PreparedJob {
    runtime: Arc<JobRuntime>,
    meta: JobMeta,
    pending: Vec<InjectionPoint>,
    append_lock: Mutex<()>,
    done: AtomicUsize,
}

/// Runs (or resumes — the two are the same operation over the
/// checkpoint store) the manifest's campaign under `out_dir`.
///
/// # Errors
///
/// Manifest/validation failures, checkpoint corruption, filesystem
/// failures, and the first circuit-execution error.
pub fn run_campaign(
    manifest: &Manifest,
    out_dir: &Path,
    opts: &RunOptions,
) -> Result<RunSummary, CliError> {
    let started = Instant::now();
    let grid = manifest.grid.to_grid()?;
    let store = CheckpointStore::open(out_dir)?;

    // Prepare every job: build runtimes, reconcile checkpoints, and
    // collect the pending point list.
    let prepare_span = qufi_obs::span("campaign.prepare_ns");
    let specs = job_matrix(manifest);
    let mut jobs = Vec::with_capacity(specs.len());
    let mut points_resumed = 0usize;
    for (idx, spec) in specs.iter().enumerate() {
        let job_span = qufi_obs::span("job.prepare_ns");
        let runtime = match &opts.runtime_cache {
            Some(cache) => crate::job::prepare_cached(cache, manifest, spec)?,
            None => Arc::new(JobRuntime::prepare(manifest, spec)?),
        };
        job_span.finish();
        let meta = match store.load_meta(&spec.id())? {
            Some(stored) => {
                reconcile(&stored, &JobMeta::from_runtime(&runtime))?;
                stored
            }
            None => {
                let meta = JobMeta::from_runtime(&runtime);
                store.save_meta(&meta)?;
                meta
            }
        };
        let records = store.load_records(&spec.id())?;
        let done_points = complete_points(&records, &grid);
        let pending: Vec<InjectionPoint> = runtime
            .points
            .iter()
            .copied()
            .filter(|p| !done_points.contains(p))
            .collect();
        points_resumed += runtime.points.len() - pending.len();
        if !opts.quiet {
            qufi_obs::log::info(&format!(
                "[prepare {}/{}] {}: {} points ({} checkpointed, {} to run)",
                idx + 1,
                specs.len(),
                spec.id(),
                runtime.points.len(),
                runtime.points.len() - pending.len(),
                pending.len(),
            ));
        }
        jobs.push(PreparedJob {
            runtime,
            meta,
            pending,
            append_lock: Mutex::new(()),
            done: AtomicUsize::new(done_points.len()),
        });
    }
    prepare_span.finish();
    qufi_obs::add("campaign.points_resumed", points_resumed as u64);

    // Fan pending (job, point) tasks across the pool.
    let (tx, rx) = crossbeam::channel::unbounded::<(usize, InjectionPoint)>();
    let mut total_pending = 0usize;
    for (job_idx, job) in jobs.iter().enumerate() {
        for &point in &job.pending {
            tx.send((job_idx, point)).expect("queue open");
            total_pending += 1;
        }
    }
    drop(tx);

    let budget = opts.point_budget.unwrap_or(usize::MAX);
    let executed = AtomicUsize::new(0);
    let stopped = AtomicBool::new(false);
    let first_error: Mutex<Option<CliError>> = Mutex::new(None);
    // Two-level split of the thread budget: point workers pull (job, point)
    // tasks from the queue; each point fans its fault grid across the
    // leftover per-worker threads. Results are byte-identical for every
    // split (and every budget), so this is purely a scheduling choice.
    let (n_threads, grid_threads) =
        qufi_core::campaign::split_thread_budget(resolve_threads(manifest, opts), total_pending);
    if !opts.quiet && total_pending > 0 {
        qufi_obs::log::info(&format!(
            "[threads] {n_threads} point worker(s) × {grid_threads} grid thread(s) \
             for {total_pending} pending point(s)"
        ));
    }

    let execute_span = qufi_obs::span("campaign.execute_ns");
    std::thread::scope(|scope| {
        for _ in 0..n_threads {
            let rx = rx.clone();
            let jobs = &jobs;
            let grid = &grid;
            let store = &store;
            let executed = &executed;
            let stopped = &stopped;
            let first_error = &first_error;
            scope.spawn(move || {
                while let Ok((job_idx, point)) = rx.recv() {
                    if stopped.load(Ordering::SeqCst) || first_error.lock().is_some() {
                        break;
                    }
                    if opts.cancel_requested() {
                        stopped.store(true, Ordering::SeqCst);
                        break;
                    }
                    // Claim budget before running so an exhausted budget
                    // never executes (and never checkpoints) extra work.
                    if executed.fetch_add(1, Ordering::SeqCst) >= budget {
                        executed.fetch_sub(1, Ordering::SeqCst);
                        stopped.store(true, Ordering::SeqCst);
                        break;
                    }
                    let job = &jobs[job_idx];
                    let _job_label = qufi_obs::job_scope(&job.meta.id);
                    match job.runtime.run_point_split(point, grid, grid_threads) {
                        Ok(shard) => {
                            let guard = job.append_lock.lock();
                            if let Err(e) = store.append_records(&job.meta.id, &shard) {
                                first_error.lock().get_or_insert(e);
                                break;
                            }
                            drop(guard);
                            // Chaos site: abort *after* a durable append —
                            // the crash-recovery tests' mid-campaign kill.
                            crate::chaos::kill_point("runner.append");
                            let done = job.done.fetch_add(1, Ordering::SeqCst) + 1;
                            if !opts.quiet {
                                report_progress(&job.meta, done);
                            }
                        }
                        Err(e) => {
                            first_error.lock().get_or_insert(CliError::Exec(e));
                            break;
                        }
                    }
                }
                // Merge telemetry before the closure returns: the scope's
                // exit synchronizes with closure completion, not with TLS
                // destructors, so at-exit merging would race the snapshot
                // taken after the scope.
                qufi_obs::flush();
            });
        }
    });
    execute_span.finish();

    if let Some(e) = first_error.into_inner() {
        return Err(e);
    }

    let status = if stopped.into_inner() {
        RunStatus::Interrupted
    } else {
        RunStatus::Complete
    };
    let points_run = executed.into_inner();
    qufi_obs::add("campaign.points_run", points_run as u64);
    let jobs: Vec<JobOutcome> = jobs
        .into_iter()
        .map(|j| JobOutcome {
            meta: j.meta,
            points_done: j.done.into_inner(),
        })
        .collect();
    if !opts.quiet {
        let done_jobs = jobs.iter().filter(|j| j.is_complete()).count();
        qufi_obs::log::info(&format!(
            "{}: {done_jobs}/{} jobs complete, {points_run} points run, \
             {points_resumed} resumed from checkpoint ({:.1}s)",
            match status {
                RunStatus::Complete => "campaign complete",
                RunStatus::Interrupted => "campaign interrupted (budget)",
            },
            jobs.len(),
            started.elapsed().as_secs_f64(),
        ));
    }
    Ok(RunSummary {
        status,
        jobs,
        points_run,
        points_resumed,
        elapsed: started.elapsed(),
    })
}

/// The `qufi run --dry-run` report: the resolved job × point × config task
/// matrix, the two-level thread split, and total task counts — computed
/// without executing a single circuit (workloads are *built* to count
/// their injection points, never simulated).
///
/// # Errors
///
/// Grid resolution failures and unknown workload/backend names.
pub fn dry_run_plan(manifest: &Manifest, opts: &RunOptions) -> Result<String, CliError> {
    use std::fmt::Write as _;
    let grid = manifest.grid.to_grid()?;
    let specs = job_matrix(manifest);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "dry run: campaign {:?} ({} executor), {} θ × {} φ = {} configurations per point",
        manifest.name,
        manifest.executor.keyword(),
        grid.thetas.len(),
        grid.phis.len(),
        grid.len()
    );
    let id_width = specs.iter().map(|s| s.id().len()).max().unwrap_or(0);
    let mut total_points = 0usize;
    let mut total_tasks = 0usize;
    for spec in &specs {
        if spec.backend != crate::job::LOGICAL_BACKEND {
            qufi_noise::BackendCalibration::named(&spec.backend)
                .ok_or_else(|| CliError::manifest(format!("unknown backend {:?}", spec.backend)))?;
        }
        let workload = qufi_algos::build_workload(&spec.workload)
            .map_err(|e| CliError::manifest(e.to_string()))?;
        let points = qufi_core::fault::enumerate_injection_points(&workload.circuit).len();
        let tasks = points * grid.len();
        total_points += points;
        total_tasks += tasks;
        let _ = writeln!(
            out,
            "  job {:<id_width$}  {points:>4} points × {:>4} configs = {tasks:>7} injections",
            spec.id(),
            grid.len(),
        );
    }
    let threads = resolve_threads(manifest, opts);
    let (workers, grid_threads) = qufi_core::campaign::split_thread_budget(threads, total_points);
    let _ = writeln!(
        out,
        "  total: {} jobs, {total_points} injection points, {total_tasks} injections",
        specs.len()
    );
    let _ = writeln!(
        out,
        "  threads: {threads} budget → {workers} point worker(s) × {grid_threads} grid thread(s)"
    );
    let _ = writeln!(out, "  nothing executed (dry run)");
    Ok(out)
}

fn resolve_threads(manifest: &Manifest, opts: &RunOptions) -> usize {
    match opts.threads.unwrap_or(manifest.threads) {
        0 => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        n => n,
    }
}

/// Points whose full grid is present in the checkpointed records.
/// Completeness means every *distinct* (θ, φ) cell is covered — raw
/// record counts would be fooled by the duplicates that repeated
/// interrupt/re-run cycles legitimately leave behind. Partially-swept
/// points count as missing and are re-run; duplicates merge away at
/// export time.
pub(crate) fn complete_points(
    records: &[qufi_core::InjectionRecord],
    grid: &FaultGrid,
) -> std::collections::HashSet<InjectionPoint> {
    let mut cells: std::collections::HashMap<
        InjectionPoint,
        std::collections::HashSet<(u64, u64)>,
    > = std::collections::HashMap::new();
    for r in records {
        cells
            .entry(r.point)
            .or_default()
            .insert((r.theta.to_bits(), r.phi.to_bits()));
    }
    cells
        .into_iter()
        .filter(|(_, covered)| covered.len() >= grid.len())
        .map(|(p, _)| p)
        .collect()
}

/// A stored meta must describe the same experiment the manifest
/// produces now, or the checkpoint belongs to a different campaign.
fn reconcile(stored: &JobMeta, fresh: &JobMeta) -> Result<(), CliError> {
    let mismatch = |what: &str| {
        Err(CliError::checkpoint(format!(
            "job {}: checkpointed {what} disagrees with the manifest; \
             this output directory belongs to a different campaign",
            stored.id
        )))
    };
    if stored.golden != fresh.golden {
        return mismatch("golden outputs");
    }
    if stored.points_total != fresh.points_total {
        return mismatch("injection-point count");
    }
    // Executors are deterministic, so the baseline must reproduce
    // bit-for-bit; any drift means a different executor configuration.
    if stored.baseline_qvf.to_bits() != fresh.baseline_qvf.to_bits() {
        return mismatch("baseline QVF");
    }
    Ok(())
}

fn report_progress(meta: &JobMeta, done: usize) {
    let total = meta.points_total;
    let stride = (total / 10).max(1);
    if done == total || done.is_multiple_of(stride) {
        qufi_obs::log::info(&format!("  [{}] {done}/{total} points", meta.id));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::path::PathBuf;

    fn manifest(threads: usize) -> Manifest {
        Manifest::from_toml(&format!(
            "[campaign]\nname = \"t\"\nthreads = {threads}\nexecutor = \"noisy\"\n\
             workloads = [\"bv-3\"]\nbackends = [\"lima\"]\n\
             [grid]\nthetas = [0.0, 3.141592653589793]\nphis = [0.0]\n"
        ))
        .unwrap()
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "qufi-runner-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn complete_run_then_noop_resume() {
        let dir = temp_dir("noop");
        let m = manifest(2);
        let opts = RunOptions {
            quiet: true,
            ..RunOptions::default()
        };
        let first = run_campaign(&m, &dir, &opts).unwrap();
        assert_eq!(first.status, RunStatus::Complete);
        assert!(first.points_run > 0);
        assert_eq!(first.points_resumed, 0);
        assert!(first.jobs.iter().all(JobOutcome::is_complete));

        let second = run_campaign(&m, &dir, &opts).unwrap();
        assert_eq!(second.status, RunStatus::Complete);
        assert_eq!(second.points_run, 0, "resume must not recompute");
        assert_eq!(second.points_resumed, first.points_run);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn budget_interrupts_then_resume_finishes() {
        let dir = temp_dir("budget");
        let m = manifest(1);
        let quiet = RunOptions {
            quiet: true,
            ..RunOptions::default()
        };
        let first = run_campaign(
            &m,
            &dir,
            &RunOptions {
                point_budget: Some(2),
                ..quiet.clone()
            },
        )
        .unwrap();
        assert_eq!(first.status, RunStatus::Interrupted);
        assert_eq!(first.points_run, 2);

        let second = run_campaign(&m, &dir, &quiet).unwrap();
        assert_eq!(second.status, RunStatus::Complete);
        assert_eq!(second.points_resumed, 2);
        assert!(second.jobs.iter().all(JobOutcome::is_complete));
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn cancel_interrupts_and_leaves_a_resumable_checkpoint() {
        let dir = temp_dir("cancel");
        let m = manifest(1);
        let cancel = Arc::new(AtomicBool::new(true)); // pre-canceled
        let first = run_campaign(
            &m,
            &dir,
            &RunOptions {
                quiet: true,
                cancel: Some(Arc::clone(&cancel)),
                ..RunOptions::default()
            },
        )
        .unwrap();
        assert_eq!(first.status, RunStatus::Interrupted);
        assert_eq!(first.points_run, 0, "canceled before any claim");
        // Clearing the flag resumes to completion from the checkpoint.
        cancel.store(false, Ordering::SeqCst);
        let second = run_campaign(
            &m,
            &dir,
            &RunOptions {
                quiet: true,
                cancel: Some(cancel),
                ..RunOptions::default()
            },
        )
        .unwrap();
        assert_eq!(second.status, RunStatus::Complete);
        assert!(second.jobs.iter().all(JobOutcome::is_complete));
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn shared_runtime_cache_prepares_each_cell_once() {
        let dir_a = temp_dir("cache-a");
        let dir_b = temp_dir("cache-b");
        let m = manifest(1);
        let cache = Arc::new(RuntimeCache::new(8));
        let opts = RunOptions {
            quiet: true,
            runtime_cache: Some(Arc::clone(&cache)),
            ..RunOptions::default()
        };
        run_campaign(&m, &dir_a, &opts).unwrap();
        run_campaign(&m, &dir_b, &opts).unwrap();
        let stats = cache.stats();
        assert_eq!(stats.misses, 1, "one prepare for two campaigns");
        assert_eq!(stats.hits, 1);
        let _ = fs::remove_dir_all(dir_a);
        let _ = fs::remove_dir_all(dir_b);
    }

    #[test]
    fn dry_run_reports_the_task_matrix_and_thread_split() {
        let m = Manifest::from_toml(
            "[campaign]\nname = \"plan\"\nthreads = 8\nexecutor = \"noisy\"\n\
             workloads = [\"bv-3\"]\nbackends = [\"lima\"]\n\
             [grid]\nthetas = [0.0, 1.0]\nphis = [0.0]\n",
        )
        .unwrap();
        let plan = dry_run_plan(&m, &RunOptions::default()).unwrap();
        assert!(plan.starts_with("dry run: campaign \"plan\""), "{plan}");
        assert!(plan.contains("bv-3@lima"), "{plan}");
        assert!(plan.contains("2 θ × 1 φ = 2 configurations"), "{plan}");
        assert!(plan.contains("nothing executed"), "{plan}");
        assert!(plan.contains("point worker(s)"), "{plan}");
        // The --threads override wins over the manifest budget.
        let overridden = dry_run_plan(
            &m,
            &RunOptions {
                threads: Some(3),
                ..RunOptions::default()
            },
        )
        .unwrap();
        assert!(overridden.contains("threads: 3 budget"), "{overridden}");
    }

    #[test]
    fn dry_run_rejects_unknown_names() {
        let m = Manifest::from_toml(
            "[campaign]\nexecutor = \"noisy\"\nworkloads = [\"bv-3\"]\n\
             backends = [\"lima\"]\n",
        )
        .unwrap();
        let mut bad = m.clone();
        bad.backends = vec!["nonexistent".into()];
        let err = dry_run_plan(&bad, &RunOptions::default()).unwrap_err();
        assert!(err.to_string().contains("unknown backend"), "{err}");
    }

    #[test]
    fn foreign_checkpoints_are_rejected() {
        let dir = temp_dir("foreign");
        let quiet = RunOptions {
            quiet: true,
            ..RunOptions::default()
        };
        run_campaign(&manifest(1), &dir, &quiet).unwrap();
        // Same job ids, different executor scenario → different baseline.
        let other = Manifest::from_toml(
            "[campaign]\nname = \"t\"\nexecutor = \"ideal\"\nworkloads = [\"bv-3\"]\n\
             backends = [\"lima\"]\n[grid]\nthetas = [0.0, 3.141592653589793]\nphis = [0.0]\n",
        )
        .unwrap();
        let err = run_campaign(&other, &dir, &quiet).unwrap_err().to_string();
        assert!(err.contains("different campaign"), "{err}");
        let _ = fs::remove_dir_all(dir);
    }
}
