//! On-disk campaign state: per-job metadata (TOML) plus an append-only
//! record log (the CSV format of `qufi_core::report::records_to_csv`).
//!
//! Durability model: metadata is written once when a job is first
//! prepared; records are appended shard-by-shard as injection points
//! complete. A crash can only tear the final CSV line, which the
//! lenient loader drops — the affected point is simply re-run on
//! resume (executions are deterministic per point, so replays merge
//! cleanly).

use crate::error::CliError;
use crate::job::{JobRuntime, JobSpec};
use crate::toml;
use qufi_core::report::records_to_csv;
use qufi_core::serialize::records_from_csv;
use qufi_core::InjectionRecord;
use std::fmt::Write as _;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Everything about a job that is not a per-injection record — enough
/// to rebuild the job's `CampaignResult` without re-executing anything.
#[derive(Debug, Clone, PartialEq)]
pub struct JobMeta {
    /// Job identifier ([`JobSpec::id`]).
    pub id: String,
    /// Workload registry name.
    pub workload: String,
    /// Backend name.
    pub backend: String,
    /// Noise scale.
    pub scale: f64,
    /// Circuit name (the workload's, kept for reports).
    pub circuit: String,
    /// Golden outcome indices.
    pub golden: Vec<usize>,
    /// Fault-free QVF under the job's executor.
    pub baseline_qvf: f64,
    /// Number of injection points the circuit exposes.
    pub points_total: usize,
}

impl JobMeta {
    /// Captures a prepared runtime's metadata.
    pub fn from_runtime(rt: &JobRuntime) -> Self {
        JobMeta {
            id: rt.spec.id(),
            workload: rt.spec.workload.clone(),
            backend: rt.spec.backend.clone(),
            scale: rt.spec.scale,
            circuit: rt.circuit.name.clone(),
            golden: rt.golden.clone(),
            baseline_qvf: rt.baseline_qvf,
            points_total: rt.points.len(),
        }
    }

    /// The job spec this metadata belongs to.
    pub fn spec(&self) -> JobSpec {
        JobSpec {
            workload: self.workload.clone(),
            backend: self.backend.clone(),
            scale: self.scale,
        }
    }

    /// Renders as TOML (floats in round-trip form).
    pub fn to_toml(&self) -> String {
        let mut out = String::from("[job]\n");
        let _ = writeln!(out, "id = {}", toml::quote(&self.id));
        let _ = writeln!(out, "workload = {}", toml::quote(&self.workload));
        let _ = writeln!(out, "backend = {}", toml::quote(&self.backend));
        let _ = writeln!(out, "scale = {}", toml::float(self.scale));
        let _ = writeln!(out, "circuit = {}", toml::quote(&self.circuit));
        let golden: Vec<String> = self.golden.iter().map(|g| g.to_string()).collect();
        let _ = writeln!(out, "golden = [{}]", golden.join(", "));
        let _ = writeln!(out, "baseline_qvf = {}", toml::float(self.baseline_qvf));
        let _ = writeln!(out, "points_total = {}", self.points_total);
        out
    }

    /// Parses metadata TOML.
    ///
    /// # Errors
    ///
    /// Malformed TOML or missing/ill-typed fields.
    pub fn from_toml(text: &str) -> Result<Self, CliError> {
        let doc = toml::parse(text).map_err(|e| CliError::checkpoint(e.to_string()))?;
        let job = doc
            .get("job")
            .ok_or_else(|| CliError::checkpoint("metadata missing [job] section"))?;
        let get = |key: &str| {
            job.get(key)
                .ok_or_else(|| CliError::checkpoint(format!("metadata missing {key:?}")))
        };
        let get_str = |key: &str| -> Result<String, CliError> {
            get(key)?
                .as_str()
                .map(str::to_string)
                .ok_or_else(|| CliError::checkpoint(format!("metadata {key:?} must be a string")))
        };
        let golden = get("golden")?
            .as_array()
            .ok_or_else(|| CliError::checkpoint("metadata golden must be an array"))?
            .iter()
            .map(|v| {
                v.as_u64()
                    .map(|g| g as usize)
                    .ok_or_else(|| CliError::checkpoint("metadata golden must hold integers"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(JobMeta {
            id: get_str("id")?,
            workload: get_str("workload")?,
            backend: get_str("backend")?,
            scale: get("scale")?
                .as_f64()
                .ok_or_else(|| CliError::checkpoint("metadata scale must be a number"))?,
            circuit: get_str("circuit")?,
            golden,
            baseline_qvf: get("baseline_qvf")?
                .as_f64()
                .ok_or_else(|| CliError::checkpoint("metadata baseline_qvf must be a number"))?,
            points_total: get("points_total")?
                .as_u64()
                .ok_or_else(|| CliError::checkpoint("metadata points_total must be an integer"))?
                as usize,
        })
    }
}

/// Whether checkpoint appends should also `fsync` — the durability
/// knob for operators whose failure model includes power loss, not just
/// process death. Off by default (a torn tail is already survivable);
/// set `QUFI_FSYNC=1` to pay the sync on every append.
fn fsync_enabled() -> bool {
    static ON: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ON.get_or_init(|| {
        std::env::var("QUFI_FSYNC").is_ok_and(|v| v == "1" || v.eq_ignore_ascii_case("true"))
    })
}

/// The checkpoint directory of one campaign.
pub struct CheckpointStore {
    dir: PathBuf,
}

impl CheckpointStore {
    /// Opens (creating if needed) `<out_dir>/checkpoints`.
    ///
    /// # Errors
    ///
    /// Directory creation failures.
    pub fn open(out_dir: &Path) -> Result<Self, CliError> {
        let dir = out_dir.join("checkpoints");
        fs::create_dir_all(&dir)
            .map_err(|e| CliError::io("creating checkpoint directory", &dir, e))?;
        Ok(CheckpointStore { dir })
    }

    fn meta_path(&self, job_id: &str) -> PathBuf {
        self.dir.join(format!("{job_id}.meta.toml"))
    }

    fn records_path(&self, job_id: &str) -> PathBuf {
        self.dir.join(format!("{job_id}.records.csv"))
    }

    /// Loads a job's metadata; `None` when the job has never started.
    ///
    /// # Errors
    ///
    /// Unreadable or corrupt metadata (corrupt metadata is fatal — the
    /// baseline cannot be trusted, so the operator must clear the job's
    /// checkpoint files).
    pub fn load_meta(&self, job_id: &str) -> Result<Option<JobMeta>, CliError> {
        let path = self.meta_path(job_id);
        match fs::read_to_string(&path) {
            Ok(text) => JobMeta::from_toml(&text).map(Some).map_err(|e| {
                CliError::checkpoint(format!(
                    "{e} (in {}; delete the job's checkpoint files to recompute)",
                    path.display()
                ))
            }),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(CliError::io("reading job metadata", &path, e)),
        }
    }

    /// Writes a job's metadata (atomically via a temp file + rename).
    ///
    /// # Errors
    ///
    /// Filesystem failures.
    pub fn save_meta(&self, meta: &JobMeta) -> Result<(), CliError> {
        let path = self.meta_path(&meta.id);
        let tmp = path.with_extension("toml.tmp");
        fs::write(&tmp, meta.to_toml())
            .map_err(|e| CliError::io("writing job metadata", &tmp, e))?;
        fs::rename(&tmp, &path).map_err(|e| CliError::io("publishing job metadata", &path, e))
    }

    /// Loads a job's checkpointed records, dropping a torn final line if
    /// the previous run crashed mid-append.
    ///
    /// Every complete row ends with `\n` and carries all six fields, so a
    /// mid-append crash leaves exactly one detectable artifact: a final
    /// line that is missing its terminator. That line is dropped *before*
    /// parsing — merely parseable prefixes (e.g. a qvf torn from
    /// `0.421735` to `0.42`, which the column-tolerant parser would
    /// accept) must not be trusted as records. Anything unparsable after
    /// that pruning is real corruption and fatal.
    ///
    /// # Errors
    ///
    /// Unreadable files or corruption.
    pub fn load_records(&self, job_id: &str) -> Result<Vec<InjectionRecord>, CliError> {
        let path = self.records_path(job_id);
        let mut text = match fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(CliError::io("reading job records", &path, e)),
        };
        if !text.is_empty() && !text.ends_with('\n') {
            let keep = text.rfind('\n').map(|i| i + 1).unwrap_or(0);
            let torn_bytes = text.len() - keep;
            text.truncate(keep);
            // A healed checkpoint must not look identical to a clean one:
            // count the salvage and say so (the interrupted point re-runs,
            // so the campaign result is unaffected).
            qufi_obs::add("checkpoint.salvaged_lines", 1);
            qufi_obs::log::warn(&format!(
                "job {job_id}: salvaged a torn checkpoint line ({torn_bytes} bytes \
                 dropped from {}); the interrupted point will re-run",
                path.display()
            ));
            // Heal the file so later appends land after a complete line
            // (and so the header-or-not decision in append_records stays
            // a simple is-the-file-empty check). Loads and appends never
            // run concurrently: loads happen in the prepare and export
            // phases, appends only while the worker pool is live.
            let tmp = path.with_extension("csv.tmp");
            fs::write(&tmp, &text).map_err(|e| CliError::io("healing job records", &tmp, e))?;
            fs::rename(&tmp, &path).map_err(|e| CliError::io("healing job records", &path, e))?;
        }
        if text.is_empty() {
            return Ok(Vec::new());
        }
        records_from_csv(&text).map_err(|e| {
            CliError::checkpoint(format!(
                "{e} (in {}; delete the file to re-run the job)",
                path.display()
            ))
        })
    }

    /// Appends one shard of records (creating the file, with header, on
    /// first use). The shard is written in a single `write_all` so only
    /// a hard crash can tear a line.
    ///
    /// # Errors
    ///
    /// Filesystem failures.
    pub fn append_records(&self, job_id: &str, shard: &[InjectionRecord]) -> Result<(), CliError> {
        if shard.is_empty() {
            return Ok(());
        }
        let path = self.records_path(job_id);
        let csv = records_to_csv(shard);
        let (header, rows) = csv.split_once('\n').expect("csv has a header line");
        let mut file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| CliError::io("opening job records", &path, e))?;
        let payload = if file
            .metadata()
            .map_err(|e| CliError::io("inspecting job records", &path, e))?
            .len()
            == 0
        {
            format!("{header}\n{rows}")
        } else {
            rows.to_string()
        };
        file.write_all(payload.as_bytes())
            .map_err(|e| CliError::io("appending job records", &path, e))?;
        file.flush()
            .map_err(|e| CliError::io("flushing job records", &path, e))?;
        if fsync_enabled() {
            file.sync_all()
                .map_err(|e| CliError::io("syncing job records", &path, e))?;
            qufi_obs::add("checkpoint.fsyncs", 1);
        }
        qufi_obs::add("checkpoint.appends", 1);
        qufi_obs::add("checkpoint.bytes", payload.len() as u64);
        Ok(())
    }

    /// Replaces a job's record log with `records` wholesale, atomically
    /// (temp file + rename). The shard merge uses this to fold per-unit
    /// files into the canonical single-node checkpoint layout; unlike
    /// [`CheckpointStore::append_records`] the result never mixes old
    /// and new generations.
    ///
    /// # Errors
    ///
    /// Filesystem failures.
    pub fn replace_records(
        &self,
        job_id: &str,
        records: &[InjectionRecord],
    ) -> Result<(), CliError> {
        let path = self.records_path(job_id);
        let csv = records_to_csv(records);
        crate::atomic_write(&path, csv.as_bytes(), "replacing job records")?;
        qufi_obs::add("checkpoint.replaces", 1);
        qufi_obs::add("checkpoint.bytes", csv.len() as u64);
        Ok(())
    }

    /// Job ids present in the store (sorted), whether complete or not.
    ///
    /// # Errors
    ///
    /// Directory read failures.
    pub fn job_ids(&self) -> Result<Vec<String>, CliError> {
        let mut ids = Vec::new();
        let entries = fs::read_dir(&self.dir)
            .map_err(|e| CliError::io("listing checkpoints", &self.dir, e))?;
        for entry in entries {
            let entry = entry.map_err(|e| CliError::io("listing checkpoints", &self.dir, e))?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if let Some(id) = name.strip_suffix(".meta.toml") {
                ids.push(id.to_string());
            }
        }
        ids.sort();
        Ok(ids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qufi_core::fault::InjectionPoint;

    fn record(op: usize, qubit: usize, theta: f64, qvf: f64) -> InjectionRecord {
        InjectionRecord {
            point: InjectionPoint {
                op_index: op,
                qubit,
            },
            theta,
            phi: 0.0,
            qvf,
        }
    }

    fn temp_store(tag: &str) -> (PathBuf, CheckpointStore) {
        let dir = std::env::temp_dir().join(format!(
            "qufi-ckpt-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        let store = CheckpointStore::open(&dir).unwrap();
        (dir, store)
    }

    #[test]
    fn meta_round_trips_exactly() {
        let meta = JobMeta {
            id: "bv-4@jakarta".into(),
            workload: "bv-4".into(),
            backend: "jakarta".into(),
            scale: 1.0,
            circuit: "bv-4".into(),
            golden: vec![5],
            baseline_qvf: 0.123456789012345,
            points_total: 24,
        };
        let back = JobMeta::from_toml(&meta.to_toml()).unwrap();
        assert_eq!(back, meta);
        assert_eq!(back.baseline_qvf.to_bits(), meta.baseline_qvf.to_bits());
    }

    #[test]
    fn append_load_cycle_preserves_shards() {
        let (dir, store) = temp_store("cycle");
        store
            .append_records("j", &[record(0, 0, 0.0, 0.1)])
            .unwrap();
        store
            .append_records("j", &[record(1, 0, 0.5, 0.9), record(1, 1, 0.5, 0.2)])
            .unwrap();
        let all = store.load_records("j").unwrap();
        assert_eq!(all.len(), 3);
        assert_eq!(
            all[2].point,
            InjectionPoint {
                op_index: 1,
                qubit: 1
            }
        );
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn torn_final_line_is_dropped() {
        let (dir, store) = temp_store("torn");
        store
            .append_records("j", &[record(0, 0, 0.0, 0.1), record(0, 1, 0.0, 0.2)])
            .unwrap();
        let path = dir.join("checkpoints/j.records.csv");
        let mut text = fs::read_to_string(&path).unwrap();
        text.truncate(text.len() - 20); // tear the last row inside the qvf field
        fs::write(&path, text).unwrap();
        let salvaged = store.load_records("j").unwrap();
        assert_eq!(salvaged.len(), 1);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn parseable_torn_line_is_still_dropped() {
        // A tear inside the qvf digits can leave a prefix the
        // column-tolerant CSV parser would happily accept (severity is
        // ignored); the missing terminator must disqualify it anyway.
        let (dir, store) = temp_store("parseable-tear");
        store
            .append_records("j", &[record(0, 0, 0.0, 0.1), record(0, 1, 0.0, 0.421735)])
            .unwrap();
        let path = dir.join("checkpoints/j.records.csv");
        let text = fs::read_to_string(&path).unwrap();
        let torn = text.replace("0.421735,masked\n", "0.42");
        assert_ne!(torn, text);
        fs::write(&path, torn).unwrap();
        let salvaged = store.load_records("j").unwrap();
        assert_eq!(salvaged.len(), 1, "truncated qvf must not survive");
        // The file was healed in place: appending again keeps it parseable.
        store
            .append_records("j", &[record(0, 1, 0.0, 0.2)])
            .unwrap();
        assert_eq!(store.load_records("j").unwrap().len(), 2);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn torn_header_resets_to_fresh_file() {
        let (dir, store) = temp_store("torn-header");
        let path = dir.join("checkpoints/j.records.csv");
        fs::write(&path, "op_index,qu").unwrap(); // crash mid-header
        assert!(store.load_records("j").unwrap().is_empty());
        store
            .append_records("j", &[record(0, 0, 0.0, 0.1)])
            .unwrap();
        assert_eq!(store.load_records("j").unwrap().len(), 1);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn corruption_in_the_middle_is_fatal() {
        let (dir, store) = temp_store("corrupt");
        store
            .append_records("j", &[record(0, 0, 0.0, 0.1), record(0, 1, 0.0, 0.2)])
            .unwrap();
        let path = dir.join("checkpoints/j.records.csv");
        // Corrupt the *first* data row — only a torn final line may be
        // salvaged, so damage before it must be fatal.
        let text = fs::read_to_string(&path).unwrap().replace("0,0,", "x,y,");
        fs::write(&path, text).unwrap();
        assert!(store.load_records("j").is_err());
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn missing_files_mean_fresh_job() {
        let (dir, store) = temp_store("fresh");
        assert_eq!(store.load_meta("nope").unwrap(), None);
        assert!(store.load_records("nope").unwrap().is_empty());
        assert!(store.job_ids().unwrap().is_empty());
        let _ = fs::remove_dir_all(dir);
    }
}
