//! Fault-injection-for-the-fault-injector: env-triggered chaos points
//! that the kill-and-resume harness uses to crash (or fail) a worker at
//! precisely chosen moments inside the shard protocol.
//!
//! Two kinds of sites, both inert unless their variable is set (the
//! check is one lazily-initialized lookup against a parsed table, so
//! production runs pay a hash lookup on a cold path only):
//!
//! * **Kill points** — `QUFI_CHAOS_KILL="site:n[,site:n…]"` makes the
//!   n-th arrival at `site` abort the process (SIGABRT, no unwinding,
//!   no destructors — the closest in-process stand-in for SIGKILL).
//!   [`kill_point`] returns how many arrivals the site has seen so a
//!   caller can stage *partial* work before dying (torn-file scenarios).
//! * **Fail points** — `QUFI_CHAOS_FAIL="site:n[,site:n…]"` makes the
//!   first n arrivals at `site` report a synthetic failure, which the
//!   caller surfaces as an I/O error — the retry/backoff path's test
//!   hook. Arrivals after the budget succeed, so a retrying caller
//!   eventually gets through.
//!
//! Sites live in this crate's shard/lease/export layers
//! (`unit.pre_write`, `unit.mid_write`, `unit.post_write`,
//! `lease.refresh`, `merge.pre_publish`, `export.write`, `claim.io`),
//! the checkpointed runner (`runner.append`, armed by the daemon
//! crash-recovery e2e to die mid-append), and the service job handler
//! (`serve.job.pre_run`, `serve.job.post_run`). The tables parse the
//! environment once per process: harness tests set the variables
//! *before* spawning the worker binary.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

struct ChaosTable {
    /// site → (trigger threshold, arrivals so far).
    sites: HashMap<String, (u64, AtomicU64)>,
}

impl ChaosTable {
    fn parse(var: &str) -> ChaosTable {
        let mut sites = HashMap::new();
        if let Ok(spec) = std::env::var(var) {
            for part in spec.split(',') {
                let part = part.trim();
                if part.is_empty() {
                    continue;
                }
                let (site, n) = match part.split_once(':') {
                    Some((site, n)) => (site, n.parse::<u64>().unwrap_or(1)),
                    None => (part, 1),
                };
                sites.insert(site.to_string(), (n.max(1), AtomicU64::new(0)));
            }
        }
        ChaosTable { sites }
    }

    /// Counts an arrival; `Some(hits)` when the site is armed.
    fn arrive(&self, site: &str) -> Option<(u64, u64)> {
        let (threshold, hits) = self.sites.get(site)?;
        Some((*threshold, hits.fetch_add(1, Ordering::SeqCst) + 1))
    }
}

fn kill_table() -> &'static ChaosTable {
    static TABLE: OnceLock<ChaosTable> = OnceLock::new();
    TABLE.get_or_init(|| ChaosTable::parse("QUFI_CHAOS_KILL"))
}

fn fail_table() -> &'static ChaosTable {
    static TABLE: OnceLock<ChaosTable> = OnceLock::new();
    TABLE.get_or_init(|| ChaosTable::parse("QUFI_CHAOS_FAIL"))
}

/// Whether the *next* arrival at `site` would abort — callers staging
/// partial work (torn writes) check this before producing the tear.
pub fn kill_armed(site: &str) -> bool {
    kill_table()
        .sites
        .get(site)
        .map(|(threshold, hits)| hits.load(Ordering::SeqCst) + 1 >= *threshold)
        .is_some_and(|armed| armed)
}

/// A crash site: aborts the process on the configured arrival.
pub fn kill_point(site: &str) {
    if let Some((threshold, hit)) = kill_table().arrive(site) {
        if hit >= threshold {
            // abort(), not exit(): no unwinding, no Drop, no atexit —
            // whatever bytes are on disk stay exactly as they are.
            eprintln!("chaos: killing at {site} (arrival {hit})");
            std::process::abort();
        }
    }
}

/// A failure site: `true` while the site's failure budget lasts.
/// Callers turn this into their layer's transient-error type.
pub fn fail_point(site: &str) -> bool {
    match fail_table().arrive(site) {
        Some((threshold, hit)) => hit <= threshold,
        None => false,
    }
}

/// A synthetic I/O error for an exhausted [`fail_point`].
pub fn synthetic_io_error(site: &str) -> std::io::Error {
    std::io::Error::other(format!("chaos fail point {site}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    // Env-driven behavior is exercised end-to-end by the chaos harness
    // (tests/chaos_kill.rs) against the spawned binary; in-process we
    // only pin the parse/trigger mechanics on a private table.
    #[test]
    fn fail_budget_exhausts_then_passes() {
        let table = ChaosTable {
            sites: [("s".to_string(), (2u64, AtomicU64::new(0)))]
                .into_iter()
                .collect(),
        };
        let fails: Vec<bool> = (0..4)
            .map(|_| match table.arrive("s") {
                Some((t, h)) => h <= t,
                None => false,
            })
            .collect();
        assert_eq!(fails, vec![true, true, false, false]);
        assert!(table.arrive("other").is_none());
    }

    #[test]
    fn unset_sites_are_inert() {
        assert!(!fail_point("never-configured-site"));
        assert!(!kill_armed("never-configured-site"));
        kill_point("never-configured-site"); // must not abort
    }
}
